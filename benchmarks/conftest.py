"""Shared fixtures for the figure/table benchmarks.

Each benchmark module regenerates one table or figure of the paper:
``benchmark()`` times a representative simulated workload (wall-clock of
the simulator — useful for tracking simulator performance), and the
assertions check the *paper's qualitative shape* on the simulated
metrics (who wins, by roughly what factor, where crossovers fall).

The expensive Figure 5/6 measurement matrix is collected once per
session and shared.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.config import SCALES
from repro.bench.experiments.latency_matrix import collect_matrix

# benchmarks time wall-clock: results served from an on-disk cache would
# measure JSON deserialisation instead of the simulator. Export the
# kill-switch before any default engine can be constructed.
os.environ.setdefault("REPRO_BENCH_NO_CACHE", "1")

#: benchmarks run at the tiny scale so `pytest benchmarks/` stays fast;
#: use `python -m repro.bench all --scale medium` for the full reports
SCALE = SCALES["tiny"]
SEED = 42


@pytest.fixture(scope="session")
def scale():
    return SCALE


@pytest.fixture(scope="session")
def engine():
    """Serial, uncached engine: every cell genuinely executes."""
    from repro.bench.engine import Engine

    return Engine(jobs=1, cache=False)


@pytest.fixture(scope="session")
def matrix(engine):
    """(trace, load factor, scheme) → RunResult for the whole grid."""
    return collect_matrix(SCALE, SEED, engine)


def pairwise_ratio(matrix, trace, lf, logged, plain, op, metric):
    """metric ratio logged/plain for one grid cell."""
    a = getattr(matrix[(trace, lf, logged)].phase(op), metric)
    b = getattr(matrix[(trace, lf, plain)].phase(op), metric)
    return a / b
