"""Ablation benchmarks (DESIGN.md Section 6) — the paper's prose claims,
measured."""

import pytest

from benchmarks.conftest import SCALE, SEED
from repro.bench.experiments import ablations


@pytest.fixture(scope="module")
def tech():
    return ablations.run_technology(SCALE, seed=SEED)


@pytest.fixture(scope="module")
def clwb():
    return ablations.run_clwb(SCALE, seed=SEED)


@pytest.fixture(scope="module")
def two_hash():
    return ablations.run_two_hash_group(SCALE, seed=SEED)


@pytest.fixture(scope="module")
def excluded():
    return ablations.run_excluded_schemes(SCALE, seed=SEED)


@pytest.fixture(scope="module")
def wear_leveling():
    return ablations.run_wear_leveling(SCALE, seed=SEED)


def test_technology_write_latency_dominates(benchmark, tech):
    data = benchmark(lambda: tech.data)
    # write-path latency follows Table 1's medium write speed...
    assert data["dram"]["insert"] < data["stt-mram"]["insert"]
    assert data["stt-mram"]["insert"] < data["reram"]["insert"]
    assert data["reram"]["insert"] < data["pcm"]["insert"]
    # ...while the read path barely moves (queries never flush)
    assert data["pcm"]["query"] < 1.6 * data["dram"]["query"]


def test_clwb_removes_invalidation_misses(benchmark, clwb):
    data = benchmark(lambda: clwb.data)
    # clwb keeps flushed lines resident: insert misses collapse
    linear = data[("linear", "clwb")], data[("linear", "clflush")]
    assert linear[0]["insert_misses"] < linear[1]["insert_misses"]
    logged = data[("linear-L", "clwb")], data[("linear-L", "clflush")]
    assert logged[0]["insert_misses"] < 0.5 * logged[1]["insert_misses"]
    # but the write-latency part of the logging tax remains
    assert (
        data[("linear-L", "clwb")]["insert_ns"]
        > 1.4 * data[("linear", "clwb")]["insert_ns"]
    )


def test_second_hash_function_trade_off(benchmark, two_hash):
    """Section 4.4: two hashes would raise utilization but hurt the
    request path. Both directions must show."""
    data = benchmark(lambda: two_hash.data)
    assert data[2]["utilization"] > data[1]["utilization"]
    assert data[2]["insert_ns"] >= data[1]["insert_ns"]


def test_start_gap_flattens_wear_at_a_latency_cost(benchmark, wear_leveling):
    """Section 2.1's composition claim, measured: an aggressive start-gap
    cadence cuts the hottest line's wear several-fold, paying per-op
    latency; the un-levelled run concentrates all metadata wear on one
    line."""
    data = benchmark(lambda: wear_leveling.data)
    plain = data["plain"]
    fast = data["start-gap/1"]
    assert fast["max_line_writes"] < 0.5 * plain["max_line_writes"]
    assert fast["wear_imbalance"] < 0.5 * plain["wear_imbalance"]
    assert fast["insert_ns"] > plain["insert_ns"]  # rotation isn't free


def test_excluded_schemes_justify_exclusion(benchmark, excluded):
    data = benchmark(lambda: excluded.data)
    # 2-choice: unusable utilization (paper's reason)
    assert data["two-choice"]["utilization"] < 0.3
    # chained: pays allocator + pointer traffic on the request path
    assert data["chained"]["insert_ns"] > data["group"]["insert_ns"]
    assert data["chained"]["query_ns"] > data["group"]["query_ns"]
    # classic cuckoo: far lower first-failure load than its bounded
    # descendants (the reason PFHT/level bound displacements)
    assert data["cuckoo"]["utilization"] < data["level"]["utilization"]
    # level hashing (contemporaneous OSDI'18): the historically accurate
    # outcome — higher utilization than group hashing at equal budgets
    assert data["level"]["utilization"] > data["group"]["utilization"]
