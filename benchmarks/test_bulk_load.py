"""Bulk-load benchmark: the loading fast path vs one-at-a-time inserts."""


from benchmarks.conftest import SCALE, SEED
from repro.bench.config import make_trace, region_for
from repro.core import GroupHashTable, bulk_load


def build_and_items(n_items):
    trace = make_trace("randomnum", seed=SEED)
    region = region_for(SCALE.total_cells, trace.spec)
    table = GroupHashTable(
        region, SCALE.total_cells, trace.spec, group_size=SCALE.group_size
    )
    return region, table, trace.items(n_items)


def test_bulk_load_wallclock(benchmark):
    n = SCALE.total_cells // 4

    def load():
        region, table, items = build_and_items(n)
        bulk_load(table, items)
        return region, table

    region, table = benchmark.pedantic(load, rounds=1, iterations=1)
    assert table.count == n


def test_bulk_load_simulated_speedup(benchmark):
    n = SCALE.total_cells // 4

    def measure():
        r1, t1, items = build_and_items(n)
        for k, v in items:
            t1.insert(k, v)
        r2, t2, items = build_and_items(n)
        bulk_load(t2, items)
        return r1.stats.sim_time_ns, r2.stats.sim_time_ns

    incremental_ns, bulk_ns = benchmark.pedantic(measure, rounds=1, iterations=1)
    # one flush per touched line instead of three persists per item
    assert bulk_ns < 0.5 * incremental_ns
