"""Figure 2 — the consistency cost of logging.

Paper's headline: the ``-L`` variants average **1.95×** the latency and
**2.16×** the L3 misses of their unlogged versions on insert+delete,
with queries unaffected. Every test both benchmarks the relevant driver
(wall-clock of the simulator) and asserts the reproduced ratios land in
a generous band around the paper's values.
"""

import pytest

from benchmarks.conftest import SCALE, SEED, pairwise_ratio
from repro.bench.experiments import fig2

PAIRS = (("linear", "linear-L"), ("pfht", "pfht-L"), ("path", "path-L"))


@pytest.fixture(scope="module")
def result(engine):
    return fig2.run(SCALE, seed=SEED, engine=engine)


def test_fig2_headline_ratios(benchmark, result, engine):
    from repro.bench.runner import RunSpec

    # timing run: the session engine is uncached, so run_one really
    # executes the workload rather than loading a stored result
    spec = RunSpec.from_scale("linear-L", "randomnum", 0.5, SCALE, seed=SEED)
    benchmark.pedantic(engine.run_one, args=(spec,), rounds=1, iterations=1)
    # paper: 1.95x slower — accept 1.5x–3x
    assert 1.5 < result.data["latency_ratio"] < 3.0
    # paper: 2.16x more misses — accept 1.5x–3.5x
    assert 1.5 < result.data["miss_ratio"] < 3.5


def test_logging_taxes_every_scheme(benchmark, matrix):
    ratios = benchmark(
        lambda: {
            (logged, op): pairwise_ratio(
                matrix, "randomnum", 0.5, logged, plain, op, "avg_latency_ns"
            )
            for plain, logged in PAIRS
            for op in ("insert", "delete")
        }
    )
    for (logged, op), ratio in ratios.items():
        assert ratio > 1.4, f"{logged} {op} only {ratio:.2f}x"


def test_queries_unaffected_by_logging(benchmark, matrix):
    """Logging touches only write paths: query latency identical."""
    pairs = benchmark(
        lambda: [
            (
                matrix[("randomnum", 0.5, plain)].query.avg_latency_ns,
                matrix[("randomnum", 0.5, logged)].query.avg_latency_ns,
            )
            for plain, logged in PAIRS
        ]
    )
    for a, b in pairs:
        assert b == pytest.approx(a, rel=0.05)


def test_miss_inflation_mechanism(benchmark, matrix):
    """The misses come from clflush-invalidated log/cell lines: the -L
    variants flush strictly more lines per op."""
    flushes = benchmark(
        lambda: [
            (
                matrix[("randomnum", 0.5, plain)].insert.avg_flushes,
                matrix[("randomnum", 0.5, logged)].insert.avg_flushes,
            )
            for plain, logged in PAIRS
        ]
    )
    for a, b in flushes:
        assert b >= a + 2  # ≥ 2 extra flushes per logged cell write
