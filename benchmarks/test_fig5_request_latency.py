"""Figure 5 — average request latency, full grid.

Shape assertions from the paper's Section 4.2 narrative:

- group hashing is competitive on every operation and never the worst;
- every ``-L`` variant is slower than its plain version on writes;
- linear probing's delete collapses at load factor 0.75;
- PFHT beats path hashing at 0.5 but loses at 0.75 (stash search);
- the 32-byte Fingerprint trace is slower than the 16-byte traces on
  writes;
- group hashing beats every *crash-consistent* alternative (the -L
  variants) on every operation — the paper's central claim.
"""


from repro.bench.config import SCHEMES


def grid_latency(matrix, trace, lf, op):
    return {s: matrix[(trace, lf, s)].phase(op).avg_latency_ns for s in SCHEMES}


def test_fig5_grid_collection(benchmark, matrix):
    grid = benchmark(
        lambda: {
            (t, lf, op): grid_latency(matrix, t, lf, op)
            for t in ("randomnum", "bagofwords", "fingerprint")
            for lf in (0.5, 0.75)
            for op in ("insert", "query", "delete")
        }
    )
    for cell, latencies in grid.items():
        assert all(v > 0 for v in latencies.values()), cell


def test_group_beats_consistent_alternatives_on_writes(benchmark, matrix):
    """The paper's central claim: among crash-consistent schemes (group
    + the -L variants), group hashing wins every *write* path — that is
    where the consistency mechanism costs. (Queries are not taxed by
    logging, so an -L variant's read path equals its plain version's;
    see EXPERIMENTS.md for the group-vs-linear query discussion.)"""
    def check():
        failures = []
        for trace in ("randomnum", "bagofwords", "fingerprint"):
            for lf in (0.5, 0.75):
                for op in ("insert", "delete"):
                    g = matrix[(trace, lf, "group")].phase(op).avg_latency_ns
                    for rival in ("linear-L", "pfht-L", "path-L"):
                        r = matrix[(trace, lf, rival)].phase(op).avg_latency_ns
                        if g >= r:
                            failures.append((trace, lf, op, rival, g, r))
        return failures

    failures = benchmark(check)
    assert not failures, failures


def test_group_query_competitive(benchmark, matrix):
    """Group's query sits in the contiguous-scan class: far below a
    multiple of linear's, and never materially above path hashing."""
    def check():
        failures = []
        for trace in ("randomnum", "bagofwords", "fingerprint"):
            for lf in (0.5, 0.75):
                g = matrix[(trace, lf, "group")].query.avg_latency_ns
                lin = matrix[(trace, lf, "linear")].query.avg_latency_ns
                pth = matrix[(trace, lf, "path")].query.avg_latency_ns
                if g > 3.0 * lin or g > 1.15 * pth:
                    failures.append((trace, lf, g, lin, pth))
        return failures

    assert not benchmark(check)


def test_linear_delete_collapses_at_075(benchmark, matrix):
    vals = benchmark(
        lambda: (
            matrix[("randomnum", 0.75, "linear")].delete.avg_latency_ns,
            matrix[("randomnum", 0.5, "linear")].delete.avg_latency_ns,
            matrix[("randomnum", 0.75, "group")].delete.avg_latency_ns,
        )
    )
    del_75, del_50, group_75 = vals
    assert del_75 > 1.5 * del_50  # backward shifting explodes with clusters
    assert del_75 > 2.0 * group_75  # and loses badly to group hashing


def test_pfht_path_crossover(benchmark, matrix):
    """PFHT < path at lf 0.5; the gap shrinks or reverses at 0.75 as the
    stash fills (the paper observes a full reversal on inserts)."""
    vals = benchmark(
        lambda: {
            lf: (
                matrix[("randomnum", lf, "pfht")].insert.avg_latency_ns,
                matrix[("randomnum", lf, "path")].insert.avg_latency_ns,
            )
            for lf in (0.5, 0.75)
        }
    )
    pfht_50, path_50 = vals[0.5]
    pfht_75, path_75 = vals[0.75]
    assert pfht_50 < path_50
    assert (pfht_75 / path_75) > (pfht_50 / path_50)  # relative worsening


def test_fingerprint_writes_slower_than_16_byte_traces(benchmark, matrix):
    vals = benchmark(
        lambda: {
            t: matrix[(t, 0.5, "group")].insert.avg_latency_ns
            for t in ("randomnum", "fingerprint")
        }
    )
    assert vals["fingerprint"] > vals["randomnum"]


def test_group_never_materially_worst(benchmark, matrix):
    """Group hashing is never the worst scheme by a meaningful margin
    (>10 %) in any grid cell — at worst it ties path hashing on reads."""
    def check():
        for trace in ("randomnum", "bagofwords", "fingerprint"):
            for lf in (0.5, 0.75):
                for op in ("insert", "query", "delete"):
                    lat = grid_latency(matrix, trace, lf, op)
                    group = lat.pop("group")
                    if group > 1.10 * max(lat.values()):
                        return (trace, lf, op, group, lat)
        return None

    offender = benchmark(check)
    assert offender is None, offender
