"""Figure 6 — average L3 cache misses, full grid.

Paper shape: contiguity wins — linear probing and group hashing produce
few misses, path hashing (probe path scattered across level arrays) the
most, and logging roughly doubles miss counts.
"""


from repro.bench.config import SCHEMES


def grid_misses(matrix, trace, lf, op):
    return {s: matrix[(trace, lf, s)].phase(op).avg_misses for s in SCHEMES}


def test_fig6_grid_collection(benchmark, matrix):
    grid = benchmark(
        lambda: {
            (t, lf, op): grid_misses(matrix, t, lf, op)
            for t in ("randomnum", "bagofwords", "fingerprint")
            for lf in (0.5, 0.75)
            for op in ("insert", "query", "delete")
        }
    )
    assert all(all(v >= 0 for v in g.values()) for g in grid.values())


def test_path_has_most_query_misses(benchmark, matrix):
    """Non-contiguous probe paths: path hashing pays a miss per level."""
    def check():
        out = []
        for trace in ("randomnum", "bagofwords", "fingerprint"):
            for lf in (0.5, 0.75):
                misses = grid_misses(matrix, trace, lf, "query")
                out.append(
                    misses["path"] > misses["linear"]
                    and misses["path"] > misses["group"]
                )
        return out

    assert all(benchmark(check))


def test_group_query_misses_near_linear(benchmark, matrix):
    """Group sharing's point: collision scans are contiguous, so group's
    demand misses stay within ~2x of linear probing's (both ~1 line)."""
    vals = benchmark(
        lambda: {
            lf: (
                grid_misses(matrix, "randomnum", lf, "query")["group"],
                grid_misses(matrix, "randomnum", lf, "query")["linear"],
            )
            for lf in (0.5, 0.75)
        }
    )
    for lf, (group, linear) in vals.items():
        assert group < 2.0 * linear + 0.5, (lf, group, linear)


def test_logging_doubles_misses(benchmark, matrix):
    def ratios():
        out = []
        for plain, logged in (
        ("linear", "linear-L"), ("pfht", "pfht-L"), ("path", "path-L")
    ):
            for op in ("insert", "delete"):
                a = matrix[("randomnum", 0.5, plain)].phase(op).avg_misses
                b = matrix[("randomnum", 0.5, logged)].phase(op).avg_misses
                out.append(b / a)
        return out

    values = benchmark(ratios)
    assert min(values) > 1.4
    avg = sum(values) / len(values)
    assert 1.6 < avg < 3.0  # paper: 2.16x


def test_linear_delete_misses_blow_up_at_high_load(benchmark, matrix):
    vals = benchmark(
        lambda: (
            grid_misses(matrix, "randomnum", 0.75, "delete")["linear"],
            grid_misses(matrix, "randomnum", 0.75, "delete")["group"],
        )
    )
    linear, group = vals
    assert linear > 1.5 * group
