"""Figure 7 — space utilization ratios.

Paper shape: path hashing highest (~0.95), PFHT slightly lower, group
hashing ≈ 0.82 (with group size 256). At the scaled-down default the
absolute group number sits a little lower (smaller groups); Figure 8b
covers the group-size dependence explicitly.
"""

import pytest

from benchmarks.conftest import SCALE, SEED
from repro.bench.experiments import fig7


@pytest.fixture(scope="module")
def result():
    return fig7.run(SCALE, seed=SEED)


def test_fig7_driver(benchmark):
    from repro.bench.runner import measure_space_utilization

    util = benchmark.pedantic(
        measure_space_utilization,
        args=("group", "randomnum"),
        kwargs=dict(
            total_cells=SCALE.total_cells, group_size=SCALE.group_size, seed=SEED
        ),
        rounds=1,
        iterations=1,
    )
    assert 0.5 < util < 1.0


def test_ordering_two_hash_schemes_above_group(benchmark, result):
    """Paper ordering: path > pfht > group. At scaled-down sizes path
    and PFHT land within ~2 points of each other (path's reserved-level
    count shrinks with the table), so we assert the robust part: both
    two-hash schemes clearly exceed group hashing, and path/pfht are
    within a whisker of each other."""
    data = benchmark(lambda: result.data)
    for trace in ("randomnum", "bagofwords", "fingerprint"):
        assert data["path"][trace] > data["group"][trace], trace
        assert data["pfht"][trace] > data["group"][trace], trace
        assert abs(data["path"][trace] - data["pfht"][trace]) < 0.08, trace


def test_absolute_bands(benchmark, result):
    data = benchmark(lambda: result.data)
    for trace in ("randomnum", "bagofwords", "fingerprint"):
        assert data["path"][trace] > 0.85  # paper: ~0.95
        assert data["pfht"][trace] > 0.7
        assert 0.6 < data["group"][trace] < 0.95  # paper: ~0.82 at G=256


def test_utilization_stable_across_traces(benchmark, result):
    """The paper reports near-identical bars per trace: utilization is a
    structural property, not a key-distribution one."""
    data = benchmark(lambda: result.data)
    for scheme in ("pfht", "path", "group"):
        values = [data[scheme][t] for t in ("randomnum", "bagofwords", "fingerprint")]
        assert max(values) - min(values) < 0.12, (scheme, values)
