"""Figure 8 — group size vs latency and space utilization.

Paper shape: both curves rise with group size; the default (256 at
paper scale) sits past the utilization knee (>0.8) at acceptable
latency.
"""

import pytest

from benchmarks.conftest import SCALE, SEED
from repro.bench.experiments import fig8


@pytest.fixture(scope="module")
def result():
    return fig8.run(SCALE, seed=SEED)


def test_fig8_driver(benchmark, result):
    data = benchmark(lambda: result.data)
    assert set(data) == set(SCALE.group_sizes)


def test_latency_increases_with_group_size(benchmark, result):
    data = benchmark(lambda: result.data)
    sizes = sorted(data)
    # monotone-ish: the largest group must cost more than the smallest
    # on every operation (small local non-monotonicity tolerated)
    for op in ("insert", "query", "delete"):
        first = data[sizes[0]]["latency"][op]
        last = data[sizes[-1]]["latency"][op]
        assert last > first, (op, first, last)


def test_utilization_increases_with_group_size(benchmark, result):
    data = benchmark(lambda: result.data)
    sizes = sorted(data)
    utils = [data[s]["utilization"] for s in sizes]
    assert all(b >= a - 0.02 for a, b in zip(utils, utils[1:])), utils
    assert utils[-1] > utils[0] + 0.1


def test_default_group_size_past_knee(benchmark, result):
    """The scaled default group size reaches >0.8 utilization, matching
    the paper's choice criterion for 256."""
    data = benchmark(lambda: result.data)
    default = SCALE.group_size
    if default in data:
        assert data[default]["utilization"] > 0.7
    assert data[max(data)]["utilization"] > 0.8
