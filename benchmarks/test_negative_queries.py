"""Negative-query benchmark (extension): the cost of proving absence."""

import pytest

from benchmarks.conftest import SCALE, SEED
from repro.bench.experiments import negative


@pytest.fixture(scope="module")
def result():
    return negative.run(SCALE, seed=SEED)


def test_linear_wins_negative_queries(benchmark, result):
    """Stop-at-first-empty makes linear probing the only cheap scheme
    for absent keys below saturation."""
    data = benchmark(lambda: result.data)
    for lf in (0.5, 0.75):
        linear = data["linear"][lf]["latency_ns"]
        for rival in ("pfht", "path", "group"):
            assert linear < 0.5 * data[rival][lf]["latency_ns"], (lf, rival)


def test_group_absence_proof_costs_a_group_scan(benchmark, result):
    """Group hashing's negative query scans the whole matched group:
    costlier than its positive queries, cheaper than PFHT's stash scan."""
    data = benchmark(lambda: result.data)
    for lf in (0.5, 0.75):
        group = data["group"][lf]["latency_ns"]
        assert group < data["pfht"][lf]["latency_ns"], lf
        assert group < data["path"][lf]["latency_ns"], lf


def test_path_has_most_negative_misses(benchmark, result):
    """Every reserved level is a separate array: absence proofs in path
    hashing touch the most distinct cachelines."""
    data = benchmark(lambda: result.data)
    for lf in (0.5, 0.75):
        path = data["path"][lf]["misses"]
        for rival in ("linear", "pfht", "group", "level"):
            assert path > data[rival][lf]["misses"], (lf, rival)
