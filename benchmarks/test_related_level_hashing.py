"""Level hashing (OSDI'18) vs group hashing — the related-work bench.

Places the reproduced paper among its design generation: level hashing
shares the token-commit consistency idea but buckets both levels and
shares downward, which buys utilization. The assertions pin the
historically accurate relationships at equal cell budgets.
"""

import pytest

from benchmarks.conftest import SCALE, SEED
from repro.bench.runner import RunSpec, UtilizationSpec


@pytest.fixture(scope="module")
def runs(engine):
    schemes = ("group", "level", "pfht")
    specs = [
        RunSpec.from_scale(scheme, "randomnum", 0.5, SCALE, seed=SEED)
        for scheme in schemes
    ]
    return dict(zip(schemes, engine.run(specs)))


@pytest.fixture(scope="module")
def utilizations(engine):
    schemes = ("group", "level")
    specs = [
        UtilizationSpec(
            scheme=scheme,
            trace="randomnum",
            total_cells=SCALE.total_cells,
            group_size=SCALE.group_size,
            seed=SEED,
        )
        for scheme in schemes
    ]
    return dict(zip(schemes, engine.run(specs)))


def test_level_utilization_exceeds_group(benchmark, utilizations):
    data = benchmark(lambda: utilizations)
    assert data["level"] > data["group"]
    assert data["level"] > 0.85


def test_level_competitive_on_requests(benchmark, runs):
    """Level hashing's probes span ≤ 4 buckets (4 lines): its request
    latency lands in the same class as group hashing's."""
    data = benchmark(lambda: runs)
    for op in ("insert", "query", "delete"):
        level = data["level"].phase(op).avg_latency_ns
        group = data["group"].phase(op).avg_latency_ns
        assert level < 1.5 * group, op


def test_level_is_crash_consistent_without_log(benchmark, runs):
    """Like group hashing — and unlike PFHT — level hashing's
    single-cell commits need no log, so its insert flush count matches
    group's three-persist discipline (movements excepted)."""
    data = benchmark(lambda: runs)
    level = data["level"].insert.avg_flushes
    group = data["group"].insert.avg_flushes
    assert level == pytest.approx(group, rel=0.25)
