"""Load-factor sweep benchmark (extension figure).

Asserts the curve shapes that the paper's 0.5/0.75 sample points imply:
linear's delete curve is super-linear in load, PFHT's insert takes off
past ~0.55 (stash pressure), path's and group's delete curves stay flat.
"""

import pytest

from benchmarks.conftest import SCALE, SEED
from repro.bench.experiments import sweep_lf


@pytest.fixture(scope="module")
def result():
    return sweep_lf.run(SCALE, seed=SEED)


def test_sweep_covers_grid(benchmark, result):
    data = benchmark(lambda: result.data)
    assert set(data) == {"linear", "pfht", "path", "group"}
    for scheme, curve in data.items():
        assert set(curve) == set(sweep_lf.LOAD_FACTORS)


def test_linear_delete_curve_superlinear(benchmark, result):
    data = benchmark(lambda: result.data)
    curve = [data["linear"][lf]["delete"] for lf in sweep_lf.LOAD_FACTORS]
    # strictly increasing and accelerating: last step > 2x first step
    assert all(b > a for a, b in zip(curve, curve[1:]))
    first_step = curve[1] - curve[0]
    last_step = curve[-1] - curve[-2]
    assert last_step > 2 * first_step


def test_pfht_insert_takes_off_with_stash(benchmark, result):
    data = benchmark(lambda: result.data)
    low = data["pfht"][0.25]["insert"]
    high = data["pfht"][0.85]["insert"]
    assert high > 1.4 * low
    # while path's insert grows far less steeply
    path_ratio = data["path"][0.85]["insert"] / data["path"][0.25]["insert"]
    pfht_ratio = high / low
    assert pfht_ratio > path_ratio


def test_group_delete_stays_flat(benchmark, result):
    data = benchmark(lambda: result.data)
    curve = [data["group"][lf]["delete"] for lf in sweep_lf.LOAD_FACTORS]
    assert curve[-1] < 1.35 * curve[0]  # bounded group scan, no shifting
    linear_curve = [data["linear"][lf]["delete"] for lf in sweep_lf.LOAD_FACTORS]
    assert linear_curve[-1] / linear_curve[0] > 3 * (curve[-1] / curve[0])


def test_query_curves_rank_consistently(benchmark, result):
    """At every load factor: contiguous probes (linear) stay cheapest,
    and the sharing schemes (path, group) track each other."""
    data = benchmark(lambda: result.data)
    for lf in sweep_lf.LOAD_FACTORS[2:]:  # past trivial occupancy
        linear = data["linear"][lf]["query"]
        group = data["group"][lf]["query"]
        path = data["path"][lf]["query"]
        assert linear <= group * 1.05, lf
        assert abs(group - path) < 0.45 * path, lf
