"""Table 1 — memory-technology characteristics, encoded as presets.

Benchmarks one simulated persist on each technology and asserts the
write-latency ordering of the paper's Table 1 holds in the model.
"""

import pytest

from repro.nvm import NVMRegion, SimConfig, TECHNOLOGY_PRESETS
from repro.nvm.cache import CacheConfig

CACHE = CacheConfig(size_bytes=8192, line_size=64, associativity=2)


def persist_cost(tech: str) -> float:
    region = NVMRegion(
        1 << 16, SimConfig(latency=TECHNOLOGY_PRESETS[tech], cache=CACHE)
    )
    region.write(0, b"x" * 8)
    before = region.stats.sim_time_ns
    region.persist(0, 8)
    return region.stats.sim_time_ns - before


@pytest.mark.parametrize("tech", sorted(TECHNOLOGY_PRESETS))
def test_persist_cost_per_technology(benchmark, tech):
    cost = benchmark(persist_cost, tech)
    assert cost > 0


def test_table1_write_latency_ordering(benchmark):
    costs = benchmark(lambda: {t: persist_cost(t) for t in TECHNOLOGY_PRESETS})
    # Table 1: DRAM (10ns) < STT-MRAM (10-30) < ReRAM (100) < PCM (150-1000)
    assert costs["dram"] < costs["stt-mram"] < costs["reram"] < costs["pcm"]
    # the paper's emulation knob sits between ReRAM and PCM
    assert costs["reram"] <= costs["paper-nvm"] <= costs["pcm"]
