"""Table 3 — recovery time vs table size.

Paper shape: recovery time is linear in the table size and stays below
~1 % of the execution (fill) time at every size (paper: 0.92–0.93 %).
"""

import pytest

from benchmarks.conftest import SCALE, SEED
from repro.bench.experiments import table3


@pytest.fixture(scope="module")
def result():
    return table3.run(SCALE, seed=SEED)


def test_table3_driver(benchmark):
    from repro.bench.runner import measure_recovery

    out = benchmark.pedantic(
        measure_recovery,
        kwargs=dict(
            total_cells=SCALE.recovery_cells[0],
            group_size=SCALE.group_size,
            seed=SEED,
        ),
        rounds=1,
        iterations=1,
    )
    assert out["recovery_ms"] > 0


def test_recovery_linear_in_table_size(benchmark, result):
    data = benchmark(lambda: result.data)
    sizes = sorted(data)
    times = [data[s]["recovery_ms"] for s in sizes]
    assert all(b > a for a, b in zip(times, times[1:]))
    # doubling the table ≈ doubles recovery (loose band)
    for a, b in zip(times, times[1:]):
        assert 1.5 < b / a < 2.6, times


def test_recovery_fraction_small_and_stable(benchmark, result):
    data = benchmark(lambda: result.data)
    fractions = [data[s]["percentage"] for s in sorted(data)]
    assert all(f < 3.0 for f in fractions)  # paper: <1 %
    assert max(fractions) - min(fractions) < 1.0  # roughly constant


def test_execution_time_linear_too(benchmark, result):
    data = benchmark(lambda: result.data)
    sizes = sorted(data)
    times = [data[s]["execution_ms"] for s in sizes]
    assert all(b > 1.5 * a for a, b in zip(times, times[1:]))
