"""Write-traffic benchmark: the paper's "write-efficient" title claim."""

import pytest

from benchmarks.conftest import SCALE, SEED
from repro.bench.experiments import writes


@pytest.fixture(scope="module")
def result():
    return writes.run(SCALE, seed=SEED)


def test_logging_doubles_write_bytes(benchmark, result):
    data = benchmark(lambda: result.data)
    for plain, logged in (
        ("linear", "linear-L"), ("pfht", "pfht-L"), ("path", "path-L")
    ):
        assert data[logged]["ins_bytes"] > 1.7 * data[plain]["ins_bytes"]
        assert data[logged]["ins_flushes"] > 1.7 * data[plain]["ins_flushes"]


def test_group_write_traffic_is_minimal(benchmark, result):
    """Group hashing never writes more than any consistent rival and
    matches the unlogged baselines' floor (cell + count)."""
    data = benchmark(lambda: result.data)
    group = data["group"]
    for rival in ("linear-L", "pfht-L", "path-L"):
        assert group["ins_bytes"] < 0.6 * data[rival]["ins_bytes"]
        assert group["del_bytes"] < 0.6 * data[rival]["del_bytes"]
    # floor: within 10% of the cheapest unlogged scheme
    floor = min(data[s]["ins_bytes"] for s in ("linear", "pfht", "path"))
    assert group["ins_bytes"] <= 1.1 * floor


def test_linear_delete_amplifies_writes(benchmark, result):
    """Backward shifting rewrites cluster cells: linear's delete bytes
    exceed its insert bytes; group's do not."""
    data = benchmark(lambda: result.data)
    assert data["linear"]["del_bytes"] > 1.2 * data["linear"]["ins_bytes"]
    assert data["group"]["del_bytes"] < 1.1 * data["group"]["ins_bytes"]


def test_amplification_is_line_granularity_bound(benchmark, result):
    """Every flush writes a whole 64-byte line for a 16-byte payload, so
    amplification ≈ flushes x 4; sanity-pin the accounting."""
    data = benchmark(lambda: result.data)
    for scheme, values in data.items():
        expected = values["ins_flushes"] * 64 / 16
        assert values["amplification"] == pytest.approx(expected, rel=0.15), scheme
