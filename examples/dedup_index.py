#!/usr/bin/env python
"""A deduplication fingerprint index on persistent memory.

The paper's third trace comes from a deduplication study (FSL Mac OS X
snapshots): file-content MD5 fingerprints are the hash keys, 32-byte
items. This example builds that application: a backup stream of file
chunks arrives; each chunk's fingerprint is looked up in an NVM-resident
group hash table — a hit means the chunk is a duplicate and only a
reference is stored; a miss inserts the fingerprint.

A dedup index is the canonical case for the paper's consistency story:
losing index entries after a crash means re-storing (or worse,
corrupting references to) chunks, so the index must recover to exactly
the set of fingerprints whose chunks were committed.

Run:  python examples/dedup_index.py
"""

from repro import GroupHashTable, NVMRegion, SimulatedPowerFailure, random_schedule
from repro.traces import FingerprintTrace

N_CELLS = 2**13
CHUNKS = 6_000


def main() -> None:
    trace = FingerprintTrace(seed=1, duplicate_rate=0.45)
    region = NVMRegion(16 << 20)
    index = GroupHashTable(region, N_CELLS, trace.spec, group_size=128)

    print(f"dedup index: {index.capacity} cells, 32-byte items "
          "(16-byte MD5 key + 16-byte chunk metadata)\n")

    # ---- ingest a backup stream --------------------------------------
    unique = duplicates = 0
    stored_bytes = logical_bytes = 0
    before = region.stats.snapshot()
    stream = trace._generate()  # raw stream WITH duplicates
    for _ in range(CHUNKS):
        fingerprint, metadata = next(stream)
        size = int.from_bytes(metadata[:8], "little") % 65536
        logical_bytes += size
        if index.query(fingerprint) is not None:
            duplicates += 1  # chunk already stored: reference only
        else:
            index.insert(fingerprint, metadata)
            unique += 1
            stored_bytes += size
    delta = region.stats.delta(before)

    print(f"ingested {CHUNKS} chunks: {unique} unique, {duplicates} duplicates")
    print(f"dedup ratio {logical_bytes / max(1, stored_bytes):.2f}x "
          f"({logical_bytes >> 20} MiB logical -> {stored_bytes >> 20} MiB stored)")
    print(f"index cost: {delta.sim_time_ns / CHUNKS:.0f} simulated ns/chunk, "
          f"{delta.cache_misses / CHUNKS:.2f} L3 misses/chunk")
    print(f"index load factor {index.load_factor:.2f}\n")

    # ---- crash mid-ingest --------------------------------------------
    committed = dict(index.items())
    region.arm_crash(2)  # dies on the next insert's kv flush (line dirty)
    fp, meta = next(stream)
    while index.query(fp) is not None:  # want a fresh fingerprint
        fp, meta = next(stream)
    try:
        index.insert(fp, meta)
        print("(insert completed before the armed crash point)")
    except SimulatedPowerFailure:
        report = region.crash(random_schedule(seed=404))
        print(f"power failure mid-insert: torn={report.torn} "
              f"({report.words_persisted} words persisted, "
              f"{report.words_dropped} dropped)")
        index.reattach()
        index.recover()

    # ---- verify the recovery contract --------------------------------
    state = dict(index.items())
    lost = {k for k in committed if k not in state}
    phantom = {k for k in state if k not in committed and k != fp}
    print(f"after recovery: {len(state)} fingerprints, "
          f"lost={len(lost)}, phantom={len(phantom)}, "
          f"in-flight fingerprint present: {fp in state}")
    assert not lost, "recovery lost committed fingerprints!"
    assert not phantom, "recovery fabricated fingerprints!"
    assert index.check_count()
    print("dedup index consistent: every committed chunk reference survives, "
          "the in-flight one is atomic")


if __name__ == "__main__":
    main()
