#!/usr/bin/env python
"""NVM endurance: write traffic, wear hot spots, and start-gap leveling.

The paper's Section 2.1 motivates write reduction with NVM's limited
endurance (Table 1: 10^8 writes for PCM) and notes that group hashing
"can be combined with wear-leveling schemes to further lengthen NVM's
lifetime". This example quantifies both halves of that sentence:

1. run the same workload on group hashing and on undo-logged linear
   probing, with per-cacheline wear tracking, and translate the hottest
   line's write count into consumed PCM lifetime;
2. rerun group hashing on a start-gap wear-levelled device and show the
   hot spot being smeared across the device.

Run:  python examples/endurance_analysis.py
"""

from repro import (
    CacheConfig,
    GroupHashTable,
    LinearProbingTable,
    NVMRegion,
    SimConfig,
    UndoLog,
    WearLevelledRegion,
)
from repro.traces import RandomNumTrace

PCM_ENDURANCE = 1e8  # Table 1
N_CELLS = 2**10
OPS = 3000

CFG = SimConfig(cache=CacheConfig(size_bytes=16 * 1024), track_wear=True)


def churn_workload(region, table):
    # distinct name from repro.bench.runner.run_workload on purpose:
    # this drives steady-state churn for wear tracking, not the paper's
    # fill/measure protocol (which goes through the bench engine)
    trace = RandomNumTrace(seed=3)
    stream = trace.unique_items()
    resident = []
    for _ in range(OPS):
        key, value = next(stream)
        if table.insert(key, value):
            resident.append(key)
        if len(resident) > N_CELLS // 3:  # steady-state churn
            table.delete(resident.pop(0))
    return region.wear.report()


def describe(name, region, report):
    lifetime_pct = 100 * report.lifetime_fraction(PCM_ENDURANCE) * (1e8 / OPS)
    print(f"{name:<22} {report.total_line_writes:>8} line writes   "
          f"hottest line {report.max_line_writes:>6}   "
          f"imbalance {report.imbalance:6.1f}x   "
          f"hot-1% share {report.hot1pct_share:5.1%}")
    # extrapolate: at this per-op wear rate, how many ops until the
    # hottest line dies?
    ops_to_death = PCM_ENDURANCE / (report.max_line_writes / OPS)
    print(f"{'':<22} -> on PCM (10^8 endurance), hottest line survives "
          f"~{ops_to_death:.2e} operations")


def main() -> None:
    print(f"steady-state churn workload, {OPS} ops, wear tracked per 64-B line\n")

    region = NVMRegion(1 << 20, CFG)
    table = GroupHashTable(region, N_CELLS, group_size=64)
    describe("group hashing", region, churn_workload(region, table))

    region = NVMRegion(1 << 20, CFG)
    log = UndoLog(region, record_size=32, capacity=4096)
    table = LinearProbingTable(region, N_CELLS, log=log)
    describe("linear + undo log", region, churn_workload(region, table))

    print("\nthe log tail takes 2 writes/op and the count line 1/op — the "
          "log's duplicate-copy\nwrites both add traffic and concentrate it "
          "(the paper's endurance argument).\n")

    wl = WearLevelledRegion(64 * 1024, CFG, rotate_every=2)
    table = GroupHashTable(wl, N_CELLS, group_size=64)
    describe("group + start-gap", wl, churn_workload(wl, table))
    print(f"{'':<22} -> start/gap registers rotated the hot metadata line "
          f"across {wl.mapper.n + 1} physical slots")


if __name__ == "__main__":
    main()
