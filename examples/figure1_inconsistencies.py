#!/usr/bin/env python
"""Walk through the paper's Figure 1 — the three inconsistency cases.

Figure 1 shows what can go wrong when a system failure interrupts a
naive hash-table insertion on NVM:

  case 1: crash after the key-value write, before the count update
          → count is stale;
  case 2: the count update reaches NVM *before* the key-value pair
          (store reordering), crash in between → count overshoots;
  case 3: crash in the middle of the key-value write itself
          → the value field is torn (partially written).

This script reproduces each case on the simulator with a *naive* insert
(no commit protocol), shows the damage, then repeats the experiment with
group hashing's Algorithm 1 + Algorithm 4 and shows all three vanish.

Run:  python examples/figure1_inconsistencies.py
"""

from repro import GroupHashTable, ItemSpec, NVMRegion, SimulatedPowerFailure
from repro.nvm.crash import FunctionSchedule, drop_all_schedule, persist_all_schedule
from repro.tables.cell import CellCodec

SPEC = ItemSpec(8, 8)


def naive_region():
    """A bare region holding: count (8 B at 0) + one cell at 64."""
    region = NVMRegion(4096)
    region.alloc(64, label="count")
    region.alloc(64, align=64, label="cell")
    return region


def naive_insert(region, key, value):
    """Figure 1's pseudocode: write kv, then count++ — no ordering, no
    commit bit. Both writes sit in the cache until flushed."""
    codec = CellCodec(SPEC)
    codec.write_kv(region, 64, key, value)
    codec.set_occupied(region, 64, True)
    count = region.read_u64(0)
    region.write_u64(0, count + 1)


def show(title, region):
    codec = CellCodec(SPEC)
    count = int.from_bytes(region.peek_persistent(0, 8), "little")
    occupied = region.peek_persistent(64, 1)[0] & 1
    kv = region.peek_persistent(72, 16)
    print(f"  {title}: count={count} occupied={occupied} "
          f"key={kv[:8]!r} value={kv[8:]!r}")


def main() -> None:
    key, value = b"\x15\0\0\0\0\0\0\0", b"HashTabl"  # (21, "Hash Table")

    print("== Naive insertion (Figure 1's pseudocode), three crash cases ==\n")

    print("case 1: kv persisted, crash before count update")
    region = naive_region()
    naive_insert(region, key, value)
    # cacheline of the cell persists (evicted), count line does not
    region.crash(FunctionSchedule(lambda line, offs: offs if line >= 64 else []))
    show("state", region)
    print("  -> item is present but count == 0: INCONSISTENT\n")

    print("case 2: count update reordered ahead, crash before kv write")
    region = naive_region()
    naive_insert(region, key, value)
    region.crash(FunctionSchedule(lambda line, offs: offs if line < 64 else []))
    show("state", region)
    print("  -> count == 1 but no item: INCONSISTENT\n")

    print("case 3: crash tears the 16-byte kv write")
    region = naive_region()
    naive_insert(region, key, value)
    # persist the header+key words of the cell line, drop the value word
    region.crash(FunctionSchedule(lambda line, offs: [o for o in offs if o < 80]))
    show("state", region)
    print("  -> value field half-written: INCONSISTENT\n")

    print("== Group hashing: same crashes, Algorithm 1 + recovery ==\n")
    for case, at_event, schedule in (
        (1, 7, persist_all_schedule()),   # after bitmap commit, before count
        (2, 4, drop_all_schedule()),      # kv persisted, bitmap not yet
        (3, 2, FunctionSchedule(lambda line, offs: offs[:1])),  # torn kv
    ):
        region = NVMRegion(1 << 20)
        table = GroupHashTable(region, 512, SPEC, group_size=32)
        table.insert(b"pre-item", b"durable!")
        region.arm_crash(at_event)
        try:
            table.insert(key, value)
        except SimulatedPowerFailure:
            pass
        region.crash(schedule)
        table.reattach()
        table.recover()
        present = table.query(key)
        consistent = table.check_count() and table.query(b"pre-item") == b"durable!"
        print(f"  case {case}: after recovery -> in-flight item "
              f"{'committed' if present else 'rolled away'}, "
              f"count consistent: {consistent}")
    print("\nall three cases recover to a consistent state — the 8-byte "
          "atomic bitmap is the only commit point, and Algorithm 4 "
          "repairs count and clears torn cells.")


if __name__ == "__main__":
    main()
