#!/usr/bin/env python
"""A memcached-style workload on persistent memory.

The paper motivates NVM hashing with in-memory key-value stores
(memcached, MemC3), whose workloads are dominated by small items and
skewed (Zipfian) popularity. This example runs a GET-heavy cache
workload — 90 % GET / 8 % SET / 2 % DELETE over a Zipfian key
popularity, the shape reported for Facebook's memcached pools — against
three NVM-resident index choices:

- group hashing (crash-consistent by construction),
- linear probing + undo log (crash-consistent the expensive way),
- linear probing without a log (fast but unsafe — shown for reference).

Two mixes are run: a GET-heavy cache (90/8/2) where the read path
dominates, and a write-heavy session store (50/40/10) where the
consistency mechanism is what you pay for — the paper's effect: the
undo-logged index falls ~2x behind group hashing on writes. Finally the
power is killed mid-SET and both consistent indexes recover.

Run:  python examples/kv_cache_server.py
"""

import random

from repro import (
    GroupHashTable,
    ItemSpec,
    LinearProbingTable,
    NVMRegion,
    SimulatedPowerFailure,
    UndoLog,
    random_schedule,
)

N_CELLS = 2**13
N_OPS = 8_000
SPEC = ItemSpec(key_size=8, value_size=8)


def zipf_key(rng: random.Random, n_keys: int, s: float = 1.07) -> bytes:
    """Approximate Zipf sampling by rejection (fast enough here)."""
    while True:
        k = int(rng.paretovariate(s - 1.0))
        if 1 <= k <= n_keys:
            return k.to_bytes(8, "little")


def build_indexes():
    indexes = {}
    region = NVMRegion(8 << 20)
    indexes["group"] = (region, GroupHashTable(region, N_CELLS, SPEC, group_size=128))
    region = NVMRegion(8 << 20)
    log = UndoLog(region, record_size=24 + 8, capacity=4096)
    indexes["linear-L"] = (region, LinearProbingTable(region, N_CELLS, SPEC, log=log))
    region = NVMRegion(8 << 20)
    indexes["linear (unsafe)"] = (region, LinearProbingTable(region, N_CELLS, SPEC))
    return indexes


def run_cache_workload(name, region, table, *, get_frac=0.90, del_frac=0.02, seed=7):
    rng = random.Random(seed)
    n_keys = N_CELLS  # key universe ≈ table size → working set skewed
    store: dict[bytes, bytes] = {}
    counters = {"GET": 0, "HIT": 0, "SET": 0, "DEL": 0}
    before = region.stats.snapshot()
    for _ in range(N_OPS):
        r = rng.random()
        key = zipf_key(rng, n_keys)
        if r < get_frac:
            counters["GET"] += 1
            value = table.query(key)
            assert value == store.get(key)
            if value is not None:
                counters["HIT"] += 1
        elif r < 1.0 - del_frac:
            if key in store:  # overwrite = delete + insert (no update op)
                table.delete(key)
                del store[key]
            value = rng.getrandbits(64).to_bytes(8, "little")
            if table.insert(key, value):
                store[key] = value
                counters["SET"] += 1
        else:
            counters["DEL"] += 1
            existed = table.delete(key)
            assert existed == (key in store)
            store.pop(key, None)
    delta = region.stats.delta(before)
    print(
        f"{name:<16} {delta.sim_time_ns / N_OPS:8.0f} ns/op   "
        f"{delta.nvm_bytes_written / 1024:8.0f} KiB to NVM   "
        f"{delta.cache_misses / N_OPS:5.2f} misses/op   "
        f"hit-rate {counters['HIT'] / max(1, counters['GET']):.2f}"
    )
    return store


def main() -> None:
    print(f"GET-heavy cache: {N_OPS} ops, 90/8/2 GET/SET/DELETE, Zipfian keys")
    print("(read-dominated: the index's probe contiguity matters most)\n")
    for name, (region, table) in build_indexes().items():
        run_cache_workload(name, region, table, get_frac=0.90, del_frac=0.02)

    print(f"\nwrite-heavy session store: {N_OPS} ops, 50/40/10 mix")
    print("(write-dominated: the consistency mechanism is what you pay for)\n")
    indexes = build_indexes()
    stores = {}
    for name, (region, table) in indexes.items():
        stores[name] = run_cache_workload(
            name, region, table, get_frac=0.50, del_frac=0.10
        )

    # ---- pull the plug mid-operation on the consistent indexes --------
    print("\ncrashing each index mid-SET and recovering:")
    for name, (region, table) in indexes.items():
        rng = random.Random(99)
        key = b"\xFE" * 8
        region.arm_crash(rng.randint(2, 8))
        try:
            if key in stores[name]:
                table.delete(key)
                stores[name].pop(key)
            table.insert(key, b"inflight")
        except SimulatedPowerFailure:
            region.crash(random_schedule(31337))
            table.reattach()
            table.recover()
        state = dict(table.items())
        expected = stores[name]
        committed_ok = all(state.get(k) == v for k, v in expected.items() if k != key)
        atomic = state.get(key) in (None, b"inflight")
        print(
            f"  {name:<16} committed items intact: {committed_ok}   "
            f"in-flight SET atomic: {atomic}   count ok: {table.check_count()}"
        )


if __name__ == "__main__":
    main()
