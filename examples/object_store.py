#!/usr/bin/env python
"""Variable-size object store: the KV layer over group hashing.

The paper's fixed-cell hash table indexes 16–32-byte items; real
key-value workloads (its own motivation: memcached) carry variable-size
values. `repro.kv.KVStore` composes three pieces of this repository:

- a slab allocator whose bookkeeping costs *zero* NVM writes (it is
  rebuilt from the index on recovery),
- out-of-place value writes persisted before publication,
- group hashing's 8-byte-atomic insert as the single commit point.

This example stores JSON-ish session blobs of wildly varying size,
crashes mid-PUT, recovers, and audits storage utilization.

Run:  python examples/object_store.py
"""

import random

from repro import NVMRegion, SimulatedPowerFailure, random_schedule
from repro.kv import KVStore


def blob(rng: random.Random, user: int) -> bytes:
    fields = [
        f'"visit{i}":"page-{rng.randint(1, 999)}"'
        for i in range(rng.randint(1, 40))
    ]
    return (f'{{"user":{user},' + ",".join(fields) + "}").encode()


def main() -> None:
    region = NVMRegion(16 << 20)
    store = KVStore(
        region,
        n_index_cells=1 << 12,
        group_size=128,
        max_value=4096,
        slab_bytes_per_class=1 << 20,
    )
    rng = random.Random(7)

    # ---- load session objects -----------------------------------------
    sessions = {}
    before = region.stats.snapshot()
    for user in range(1500):
        key = f"session:{user}".encode()
        value = blob(rng, user)
        store.put(key, value)
        sessions[key] = value
    delta = region.stats.delta(before)
    sizes = [len(v) for v in sessions.values()]
    print(f"stored {len(sessions)} sessions, value sizes "
          f"{min(sizes)}-{max(sizes)} B (mean {sum(sizes)//len(sizes)})")
    print(f"  {delta.sim_time_ns / len(sessions):.0f} simulated ns/PUT, "
          f"{delta.flushes / len(sessions):.1f} flushes/PUT "
          "(allocator itself: 0 — bookkeeping is derived, not persisted)")
    print("  slab utilization:",
          {k: round(v, 2) for k, v in store.slab.utilization().items() if v})

    # ---- read back, overwrite, delete ---------------------------------
    for key, value in list(sessions.items())[:200]:
        assert store.get(key) == value
    for user in range(0, 300, 3):
        key = f"session:{user}".encode()
        new = blob(rng, user)
        store.put(key, new)
        sessions[key] = new
    for user in range(1000, 1100):
        key = f"session:{user}".encode()
        store.delete(key)
        del sessions[key]
    print(f"\nafter churn: {len(store)} sessions, "
          f"{store.slab.allocated_chunks()} live chunks")

    # ---- crash mid-PUT -------------------------------------------------
    region.arm_crash(2)
    key = b"session:inflight"
    try:
        store.put(key, blob(rng, 9999))
    except SimulatedPowerFailure:
        report = region.crash(random_schedule(2018))
        print(f"\npower failure mid-PUT ({report.words_persisted} words "
              f"persisted, {report.words_dropped} dropped)")
        store.recover()

    state = dict(store.items())
    assert all(state[k] == v for k, v in sessions.items()), "lost a session!"
    assert store.slab.allocated_chunks() == len(state), "allocator leaked!"
    print(f"recovered: all {len(sessions)} committed sessions intact, "
          f"in-flight PUT {'published' if key in state else 'rolled away'}, "
          "allocator rebuilt with zero leaks")


if __name__ == "__main__":
    main()
