#!/usr/bin/env python
"""Quickstart: a persistent hash table on simulated NVM in ~40 lines.

Builds a group hash table, inserts/queries/deletes a few thousand items,
pulls the plug mid-insert, and runs the paper's Algorithm 4 recovery —
printing the simulated cost of everything along the way.

Run:  python examples/quickstart.py
"""

from repro import (
    GroupHashTable,
    ItemSpec,
    NVMRegion,
    SimulatedPowerFailure,
    random_schedule,
)


def main() -> None:
    # A 16 MiB simulated persistent-memory region. Stores land in a
    # simulated CPU cache; only clflush'd (or evicted) lines survive a
    # crash. Latencies are simulated ns (default: the paper's +300 ns
    # NVM write penalty).
    region = NVMRegion(16 << 20)

    # The paper's table: two levels, collision groups of 256 cells.
    table = GroupHashTable(
        region, n_cells=2**14, spec=ItemSpec(key_size=8, value_size=8), group_size=256
    )

    print(f"table: {table.capacity} cells across two levels, "
          f"{table.layout.n_groups} groups of {table.group_size}")

    # ---- insert ------------------------------------------------------
    items = {i.to_bytes(8, "little"): (i * i).to_bytes(8, "little")
             for i in range(1, 5001)}
    before = region.stats.snapshot()
    for key, value in items.items():
        table.insert(key, value)
    delta = region.stats.delta(before)
    print(f"\ninserted {table.count} items at load factor {table.load_factor:.2f}")
    print(f"  avg {delta.sim_time_ns / len(items):.0f} simulated ns/insert, "
          f"{delta.flushes / len(items):.1f} flushes, "
          f"{delta.cache_misses / len(items):.2f} L3 misses")

    # ---- query -------------------------------------------------------
    before = region.stats.snapshot()
    for key, value in items.items():
        assert table.query(key) == value
    delta = region.stats.delta(before)
    print(f"queried all items: avg {delta.sim_time_ns / len(items):.0f} ns, "
          f"{delta.cache_misses / len(items):.2f} misses (0 flushes: "
          f"{delta.flushes} — queries never write)")

    # ---- crash mid-insert -------------------------------------------
    # Arm a power failure 3 memory events into the next insert: the
    # key-value write may be persisted, torn, or lost — but never
    # half-committed, because the bitmap flip had not happened yet.
    region.arm_crash(2)  # die on the kv flush: the cell line is dirty
    doomed_key = (999_999_999).to_bytes(8, "little")
    try:
        table.insert(doomed_key, b"doomed!!")
    except SimulatedPowerFailure:
        report = region.crash(random_schedule(seed=2018))
        print(f"\npower failure mid-insert: {report.dirty_lines} dirty lines, "
              f"{report.words_persisted} words persisted / "
              f"{report.words_dropped} dropped")

    # ---- recover (Algorithm 4) ---------------------------------------
    table.reattach()
    before = region.stats.snapshot()
    table.recover()
    delta = region.stats.delta(before)
    print(f"recovered in {delta.sim_time_ns / 1e6:.2f} simulated ms "
          "(full-table scan)")
    assert table.query(doomed_key) is None, "uncommitted insert must vanish"
    assert table.check_count(), "count must match occupancy"
    for key, value in list(items.items())[:100]:
        assert table.query(key) == value
    print(f"consistent: {table.count} items, count field verified, "
          "in-flight insert cleanly rolled away")

    # ---- delete ------------------------------------------------------
    for key in items:
        assert table.delete(key)
    print(f"\ndeleted everything: count={table.count}, "
          f"lifetime NVM write traffic {region.stats.nvm_bytes_written >> 20} MiB")


if __name__ == "__main__":
    main()
