"""CI gate: the result cache must make a warm re-run free.

Runs the same benchmark twice against a throwaway cache directory and
compares the machine-readable ``cache_stats`` block of the ``--json``
dumps — the cold run must execute every cell, the warm run must serve
every cell from cache. No timing heuristics, no stdout scraping, and
nothing left behind in the workspace: both the cache and the JSON dumps
live in a :class:`~tempfile.TemporaryDirectory`.

Usage (defaults shown)::

    python scripts/ci_cache_check.py [--experiment fig5] [--jobs 2]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

#: repo-root src/ tree, prepended to PYTHONPATH so the script works from
#: a bare checkout without an editable install
SRC = Path(__file__).resolve().parent.parent / "src"


def run_bench(experiment: str, jobs: int, cache_dir: Path, json_path: Path) -> dict:
    """Run one quick benchmark and return its JSON dump."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p
    )
    subprocess.run(
        [
            sys.executable, "-m", "repro.bench", experiment,
            "--quick", "--jobs", str(jobs),
            "--cache-dir", str(cache_dir), "--json", str(json_path),
        ],
        check=True,
        env=env,
    )
    with json_path.open() as fh:
        return json.load(fh)


def main(argv: list[str] | None = None) -> int:
    """Cold run, warm run, assert the warm one was served from cache."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiment", default="fig5")
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-cache-ci-") as tmp:
        tmp_path = Path(tmp)
        cold = run_bench(
            args.experiment, args.jobs, tmp_path / "cache", tmp_path / "cold.json"
        )["cache_stats"]
        warm = run_bench(
            args.experiment, args.jobs, tmp_path / "cache", tmp_path / "warm.json"
        )["cache_stats"]

    print(f"cold: {cold}")
    print(f"warm: {warm}")
    if not (cold["enabled"] and warm["enabled"]):
        print("FAIL: cache was disabled", file=sys.stderr)
        return 1
    if cold["executed"] == 0:
        print("FAIL: cold run executed nothing (stale cache?)", file=sys.stderr)
        return 1
    if warm["misses"] != 0 or warm["executed"] != 0:
        print("FAIL: warm run missed the result cache", file=sys.stderr)
        return 1
    if warm["hits"] != cold["executed"]:
        print(
            f"FAIL: warm hits ({warm['hits']}) != cold executions "
            f"({cold['executed']})",
            file=sys.stderr,
        )
        return 1
    print(f"ok: {cold['executed']} cell(s) executed cold, all served warm")
    return 0


if __name__ == "__main__":
    sys.exit(main())
