"""CI gate over a contention experiment's JSON report.

Reads the ``--json`` dump of ``python -m repro.bench contention`` and
enforces the concurrency layer's contract:

- **coverage floor** — the grid must span at least
  ``--min-client-counts`` distinct client counts (so a shrunken grid
  cannot pass by measuring a single point), and every cell must report
  a positive throughput and a positive p99 latency;
- **zero lost updates** — the scheduler's shadow model linearizes every
  committed op in physical commit order; any lost update or
  linearizability divergence (``check_failures``) is printed — along
  with the cell's flight-recorder dump of the ops and persist events
  leading up to it — and fails the job;
- **bounded aborts** — optimistic readers may abort and retry under
  contention, but the per-cell abort rate (aborts per committed op)
  must stay under ``--max-abort-rate``: livelock or a broken
  lock/validate protocol shows up here long before it corrupts data;
- **completeness** — every cell must commit every op it issued
  (``failed_ops == 0``), so the shadow check cannot be trivially green
  by dropping work.

Usage::

    python scripts/ci_contention_gate.py report.json \
        [--min-client-counts 2] [--max-abort-rate 5.0]
"""

from __future__ import annotations

import argparse
import sys

from gate_common import Gate, load_report, print_failure_context, report_section


def main(argv: list[str] | None = None) -> int:
    """Validate one contention JSON report; 0 = gate passes."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report")
    parser.add_argument("--min-client-counts", type=int, default=2)
    parser.add_argument("--max-abort-rate", type=float, default=5.0)
    args = parser.parse_args(argv)

    grid = report_section(load_report(args.report), "contention")

    gate = Gate()
    counts: set[int] = set()
    for cell in grid["cells"]:
        clients = cell["clients"]
        counts.add(clients)
        label = f"{clients} client(s)"
        problems: list[str] = []
        if cell["lost_updates"]:
            problems.append(f"{cell['lost_updates']} lost update(s)")
        if cell["check_failures"]:
            problems.append(
                f"{len(cell['check_failures'])} shadow-check failure(s): "
                f"{cell['check_failures'][:3]}"
            )
        if cell["failed_ops"]:
            problems.append(f"{cell['failed_ops']} op(s) failed to commit")
        if not cell["throughput_kops"] > 0:
            problems.append("no throughput reported")
        if not cell["total"]["p99"] > 0:
            problems.append("no p99 latency reported")
        rate = cell["read_aborts"] / max(1, cell["committed"])
        if rate > args.max_abort_rate:
            problems.append(
                f"abort rate {rate:.2f}/op exceeds {args.max_abort_rate}"
            )
        if problems:
            for problem in problems:
                gate.fail(f"{label}: {problem}")
            print_failure_context(cell.get("failure_context"))
        else:
            gate.ok(
                f"{label}: {cell['committed']} ops, "
                f"{cell['throughput_kops']:.1f} kops/s, "
                f"p99 {cell['total']['p99']:.0f} ns, "
                f"{cell['read_aborts']} abort(s) ({rate:.2f}/op)"
            )

    if len(counts) < args.min_client_counts:
        gate.fail(
            f"only client counts {sorted(counts)} "
            f"(need >= {args.min_client_counts} distinct)"
        )
    if not grid["ok"]:
        gate.fail("experiment-level shadow check flag is not ok")
    total = sum(cell["committed"] for cell in grid["cells"])
    return gate.finish(
        f"{len(counts)} client counts, {total} committed "
        "ops, 0 lost updates, shadow checks clean"
    )


if __name__ == "__main__":
    sys.exit(main())
