"""CI gate over a crash-matrix campaign's JSON report.

Reads the ``--json`` dump of ``python -m repro.bench crashmatrix`` and
enforces the campaign's contract:

- **zero oracle violations** — any violation prints its cell, oracle
  and minimal failing event prefix (plus the cell's flight-recorder
  dump of the ops and persist events leading up to the failing
  boundary), then fails the job;
- **coverage floor** — at least ``--min-points`` distinct crash
  boundaries across at least ``--min-schemes`` schemes, so a silently
  shrunken workload cannot turn the gate green by testing nothing;
- **split coverage** — at least one cell must be a growing
  (directory-of-segments) scheme with ``--min-splits`` segment splits
  inside the recorded window and ``--min-split-points`` crash
  boundaries landing mid-split, so the incremental-growth path stays
  in the enumerated matrix;
- **batch coverage** — at least ``--min-batch-points`` crash
  boundaries must come from batched-insert cells (``spec.batch > 0``),
  whose workload commits through the coalesced ``put_many`` flush
  window — proving batch coalescing never weakens recovery;
- **concurrent coverage** — at least ``--min-concurrent-points`` crash
  boundaries must land between two different clients' in-flight ops
  (multi-client cells, ``spec.clients > 0``, interleaved by the
  deterministic scheduler) — proving recovery with concurrent work
  outstanding.

Usage::

    python scripts/ci_crashmatrix_gate.py report.json \
        [--min-points 200] [--min-schemes 2] \
        [--min-splits 3] [--min-split-points 1] \
        [--min-batch-points 50] [--min-concurrent-points 10]
"""

from __future__ import annotations

import argparse
import sys

from gate_common import Gate, load_report, print_failure_context, report_section


def main(argv: list[str] | None = None) -> int:
    """Validate one crashmatrix JSON report; 0 = gate passes."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report")
    parser.add_argument("--min-points", type=int, default=200)
    parser.add_argument("--min-schemes", type=int, default=2)
    parser.add_argument("--min-splits", type=int, default=3)
    parser.add_argument("--min-split-points", type=int, default=1)
    parser.add_argument("--min-batch-points", type=int, default=50)
    parser.add_argument("--min-concurrent-points", type=int, default=10)
    args = parser.parse_args(argv)

    matrix = report_section(load_report(args.report), "crashmatrix")

    gate = Gate()
    for cell in matrix["cells"]:
        label = "{scheme}/{backend}/shards={n_shards}".format(**cell["spec"])
        if cell["violations"]:
            gate.fail(f"{label}: {len(cell['violations'])} violation(s)")
            for violation in cell["violations"][:10]:
                print(f"  {violation}")
            prefix = cell["min_failing_prefix"]
            print(f"  minimal failing prefix ({len(prefix)} event(s)):")
            for event in prefix[-20:]:
                print(f"    {event}")
            print_failure_context(cell.get("failure_context"))
        else:
            gate.ok(
                f"{label}: {cell['points']} points, "
                f"{cell['replays']} replays clean"
            )

    schemes = {cell["spec"]["scheme"] for cell in matrix["cells"]}
    if matrix["total_points"] < args.min_points:
        gate.fail(
            f"only {matrix['total_points']} crash points "
            f"(need >= {args.min_points})"
        )
    if len(schemes) < args.min_schemes:
        gate.fail(f"only schemes {sorted(schemes)} (need >= {args.min_schemes})")
    split_cells = [
        cell
        for cell in matrix["cells"]
        if cell.get("splits", 0) >= args.min_splits
        and cell.get("split_points", 0) >= args.min_split_points
    ]
    if args.min_splits > 0 and not split_cells:
        gate.fail(
            "no split-in-progress cell "
            f"(need >= 1 cell with >= {args.min_splits} in-window splits "
            f"and >= {args.min_split_points} mid-split crash points)"
        )
    batch_points = sum(
        cell["points"]
        for cell in matrix["cells"]
        if cell["spec"].get("batch", 0) > 0
    )
    if args.min_batch_points > 0 and batch_points < args.min_batch_points:
        gate.fail(
            f"only {batch_points} crash points in batched-insert "
            f"cells (need >= {args.min_batch_points})"
        )
    concurrent_points = sum(
        cell.get("concurrent_points", 0) for cell in matrix["cells"]
    )
    if (
        args.min_concurrent_points > 0
        and concurrent_points < args.min_concurrent_points
    ):
        gate.fail(
            f"only {concurrent_points} crash points between "
            f"different clients' in-flight ops "
            f"(need >= {args.min_concurrent_points})"
        )
    split_points = sum(c.get("split_points", 0) for c in matrix["cells"])
    return gate.finish(
        f"{matrix['total_points']} points, "
        f"{matrix['total_replays']} replays, {len(schemes)} schemes, "
        f"{split_points} mid-split points, {batch_points} batch points, "
        f"{concurrent_points} concurrent points, 0 violations"
    )


if __name__ == "__main__":
    sys.exit(main())
