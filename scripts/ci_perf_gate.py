"""Single CI regression gate over committed ``bench_*.json`` trajectories.

Compares a fresh ``python -m repro.bench <exp> --json`` dump against a
committed baseline dump, section by section, cell by cell (cells are
matched by their full frozen-spec dict), metric by metric with
per-metric tolerances:

- **throughput** — wall-clock ``fill`` / ``query`` ops/s. CI runner
  clocks are noisy, so regressions here print ``WARN`` and never gate
  (this subsumes the retired ``ci_throughput_trend.py``);
- **contention** — simulated throughput, p99 and abort counts. The
  scheduler is a pure function of the spec, so these are deterministic:
  a drift beyond tolerance means the code's behavior moved, and the PR
  must either fix it or deliberately reseed the baseline;
- **timeline** — the derived transient scalars (during-split spike
  ratio, steady-window p99, abort rate) plus the **health report**: a
  fresh report whose overall status is ``fail`` fails the gate even if
  every trajectory matched, and ``warn`` checks are surfaced as
  warnings;
- **serving** — the networked serving grid. Simulated throughput and
  p99 are deterministic like contention; ``wrong_answers`` and
  ``shadow_failures`` gate at zero tolerance (a stale location hint
  returning a wrong value is a correctness bug, not a perf drift), and
  ``one_sided_reads`` gates downward so the location-cache fast path
  cannot silently stop firing.

A baseline cell missing from the fresh run fails the gate (a silently
shrunken grid must not turn it green). Cells that only exist in the
fresh run are reported and skipped — they gate once the baseline is
reseeded to include them.

Usage::

    python scripts/ci_perf_gate.py fresh.json --baseline bench_timeline.json \
        [--section timeline ...]
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

from gate_common import Gate, cells_by_spec, dig, load_report, report_section


@dataclass(frozen=True)
class Metric:
    """One per-cell trajectory comparison.

    ``worse`` names the regression direction (``"down"``: lower is a
    regression, e.g. throughput; ``"up"``: higher is, e.g. latency);
    ``tolerance`` is the relative drift allowed in that direction;
    non-``gating`` metrics warn instead of failing (wall-clock)."""

    path: str
    worse: str
    tolerance: float
    gating: bool = True


#: per-section metric policy; a metric absent from a cell (e.g. a growth
#: timeline cell has no abort rate) is skipped for that cell
SECTION_METRICS: dict[str, tuple[Metric, ...]] = {
    "throughput": (
        Metric("fill.wall_ops_per_s", "down", 0.2, gating=False),
        Metric("query.wall_ops_per_s", "down", 0.2, gating=False),
    ),
    "contention": (
        Metric("throughput_kops", "down", 0.10),
        Metric("total.p99", "up", 0.25),
        Metric("read_aborts", "up", 0.50),
    ),
    "timeline": (
        Metric("split_spike_ratio", "up", 0.50),
        Metric("steady_window_p99_ns", "up", 0.25),
        Metric("abort_rate", "up", 0.50),
        Metric("throughput_kops", "down", 0.10),
    ),
    "serving": (
        Metric("throughput_kops", "down", 0.10),
        Metric("total.p99", "up", 0.25),
        Metric("wrong_answers", "up", 0.0),
        Metric("shadow_failures", "up", 0.0),
        Metric("one_sided_reads", "down", 0.25),
    ),
}


def cell_label(spec: dict) -> str:
    """Short human label for a cell's spec in gate log lines."""
    if "kind" in spec:
        label = str(spec["kind"])
        if spec["kind"] == "contention":
            label += f" {spec.get('n_clients', '?')}c"
        return label
    if "batch_max" in spec and "n_clients" in spec:
        label = f"{spec['n_clients']}c b{spec['batch_max']}"
        if spec.get("location_cache"):
            label += " +loc"
        return label
    if "n_clients" in spec:
        return f"{spec['n_clients']} client(s)"
    if "batch" in spec:
        return "{scheme}/{backend} b{batch}".format(**spec)
    return "/".join(str(v) for _, v in sorted(spec.items()))


def compare_cells(
    gate: Gate, section: str, metrics, base_cell: dict, fresh_cell: dict
) -> int:
    """Compare every applicable metric of one matched cell pair;
    returns the number of comparisons made."""
    label = cell_label(fresh_cell["spec"])
    compared = 0
    for metric in metrics:
        was = dig(base_cell, metric.path)
        now = dig(fresh_cell, metric.path)
        if not isinstance(was, (int, float)) or not isinstance(now, (int, float)):
            continue
        compared += 1
        if was == 0:
            # relative drift is undefined at a zero baseline; any move
            # off zero in the bad direction is reported as a regression
            regressed = now > 0 if metric.worse == "up" else False
            shown = f"{now:g} vs baseline 0"
        else:
            change = (now - was) / was
            regressed = (
                change > metric.tolerance
                if metric.worse == "up"
                else change < -metric.tolerance
            )
            shown = f"{now:g} vs baseline {was:g} ({change:+.1%})"
        line = (
            f"{section}/{label} {metric.path}: {shown}"
            f" [tolerance {metric.tolerance:.0%} {metric.worse}]"
        )
        if not regressed:
            gate.ok(line)
        elif metric.gating:
            gate.fail(line)
        else:
            gate.warn(line + " (wall-clock, non-gating)")
    return compared


def check_health(gate: Gate, section: str, payload: dict) -> None:
    """Gate on a section's embedded health report, if it carries one:
    overall ``fail`` fails the gate, ``warn`` checks become warnings."""
    health = payload.get("health")
    if not health:
        return
    for check in health.get("checks", []):
        shown = "missing" if check["value"] is None else f"{check['value']:g}"
        line = (
            f"{section} health {check['metric']} = {shown} "
            f"(warn {check['warn']:g} / fail {check['fail']:g})"
        )
        if check["status"] == "fail":
            gate.fail(line)
        elif check["status"] == "warn":
            gate.warn(line)
    if health.get("status") == "fail":
        gate.fail(f"{section}: health report status is 'fail'")
    else:
        gate.ok(f"{section}: health report status is {health.get('status')!r}")


def main(argv: list[str] | None = None) -> int:
    """Compare fresh vs baseline trajectories; 0 = gate passes."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh")
    parser.add_argument("--baseline", required=True)
    parser.add_argument(
        "--section",
        action="append",
        choices=sorted(SECTION_METRICS),
        default=None,
        help="gate this section (repeatable; default: every known "
        "section present in both dumps)",
    )
    args = parser.parse_args(argv)

    fresh_dump = load_report(args.fresh)
    try:
        base_dump = load_report(args.baseline)
    except FileNotFoundError:
        print(f"FAIL: no baseline at {args.baseline} (commit one to enable the gate)")
        return 1

    gate = Gate()
    sections = args.section or sorted(
        name
        for name in SECTION_METRICS
        if name in fresh_dump and name in base_dump
    )
    if not sections:
        gate.fail("no gateable section present in both fresh and baseline dumps")
        return gate.finish("")

    cells = comparisons = 0
    for section in sections:
        fresh_payload = report_section(fresh_dump, section)
        base_payload = report_section(base_dump, section)
        fresh_cells = cells_by_spec(fresh_payload)
        base_cells = cells_by_spec(base_payload)
        for key, base_cell in sorted(base_cells.items()):
            fresh_cell = fresh_cells.get(key)
            if fresh_cell is None:
                gate.fail(
                    f"{section}: baseline cell {cell_label(base_cell['spec'])} "
                    "missing from fresh run"
                )
                continue
            cells += 1
            comparisons += compare_cells(
                gate, section, SECTION_METRICS[section], base_cell, fresh_cell
            )
        for key in sorted(set(fresh_cells) - set(base_cells)):
            print(
                f"note: {section}: fresh cell "
                f"{cell_label(fresh_cells[key]['spec'])} not in baseline "
                "(reseed the baseline to gate it)"
            )
        check_health(gate, section, fresh_payload)

    return gate.finish(
        f"{len(sections)} section(s), {cells} cell(s), {comparisons} "
        f"comparison(s), {gate.warnings} warning(s)"
    )


if __name__ == "__main__":
    sys.exit(main())
