"""Non-gating trend check for the wall-clock throughput trajectory.

Compares a fresh ``python -m repro.bench throughput --json`` dump
against the committed baseline (``bench_throughput.json`` at the repo
root, reseeded whenever a PR intentionally moves the trajectory). Cells
are matched by their full spec dict; for each match, the fill and
query ``wall_ops_per_s`` are compared and any drop beyond
``--tolerance`` (default 20%) prints a ``WARN`` line.

CI runners have noisy clocks, so this script **always exits 0** — it
exists to put a regression in the job log where a reviewer will see
it, not to block a merge on a slow runner. Simulated metrics need no
tolerance and are pinned by tests instead.

Usage::

    python scripts/ci_throughput_trend.py fresh.json \
        [--baseline bench_throughput.json] [--tolerance 0.2]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _cells_by_spec(dump: dict) -> dict[tuple, dict]:
    """Index a dump's throughput cells by their (sorted) spec items."""
    cells = dump["throughput"]["cells"]
    return {tuple(sorted(cell["spec"].items())): cell for cell in cells}


def main(argv: list[str] | None = None) -> int:
    """Compare fresh vs baseline wall-clock throughput; always 0."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh")
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent.parent / "bench_throughput.json"),
    )
    parser.add_argument("--tolerance", type=float, default=0.2)
    args = parser.parse_args(argv)

    with open(args.fresh) as fh:
        fresh = _cells_by_spec(json.load(fh))
    try:
        with open(args.baseline) as fh:
            base = _cells_by_spec(json.load(fh))
    except FileNotFoundError:
        print(f"trend: no baseline at {args.baseline}; nothing to compare")
        return 0

    matched = 0
    warned = 0
    for spec_key, base_cell in sorted(base.items()):
        fresh_cell = fresh.get(spec_key)
        if fresh_cell is None:
            print(f"trend: baseline cell {dict(spec_key)} missing from fresh run")
            continue
        matched += 1
        label = "{scheme}/{backend} b{batch}".format(**fresh_cell["spec"])
        for phase in ("fill", "query"):
            was = base_cell[phase]["wall_ops_per_s"]
            now = fresh_cell[phase]["wall_ops_per_s"]
            if was <= 0:
                continue
            change = (now - was) / was
            if change < -args.tolerance:
                warned += 1
                print(
                    f"WARN: {label} {phase}: {now:,.0f} ops/s vs baseline "
                    f"{was:,.0f} ({change:+.1%}, tolerance -{args.tolerance:.0%})"
                )
            else:
                print(
                    f"ok:   {label} {phase}: {now:,.0f} ops/s vs baseline "
                    f"{was:,.0f} ({change:+.1%})"
                )
    print(
        f"trend: {matched} cell(s) compared, {warned} regression warning(s) "
        "(non-gating)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
