"""Shared plumbing for the ``scripts/ci_*_gate.py`` CI gates.

Every gate does the same bookkeeping: load a ``--json`` bench dump,
pick one experiment section out of it, index cells by their frozen spec,
print ``ok:`` / ``WARN:`` / ``FAIL:`` lines as it checks them, and exit
1 iff anything failed. This module holds that plumbing once so the
gates themselves are just their policy. The line formats are part of
the gates' contract (tests and CI logs grep for them), so helpers here
never reword a message — they only route it.
"""

from __future__ import annotations

import json


class Gate:
    """Accumulates pass/fail state while printing a gate's log lines.

    ``fail`` lines flip the gate red; ``warn`` lines are counted but
    never gate (wall-clock checks on noisy CI runners use them);
    :meth:`finish` prints the ``gate passed:`` summary only on success
    and returns the process exit code."""

    def __init__(self) -> None:
        self.failed = False
        self.warnings = 0

    def ok(self, message: str) -> None:
        """Print one passing check."""
        print(f"ok: {message}")

    def warn(self, message: str) -> None:
        """Print one non-gating regression warning."""
        self.warnings += 1
        print(f"WARN: {message}")

    def fail(self, message: str) -> None:
        """Print one failing check and mark the gate failed."""
        self.failed = True
        print(f"FAIL: {message}")

    def finish(self, summary: str) -> int:
        """Print the success summary (if clean) and return 0/1."""
        if not self.failed:
            print(f"gate passed: {summary}")
        return 1 if self.failed else 0


def load_report(path: str) -> dict:
    """Load one ``python -m repro.bench ... --json`` dump."""
    with open(path) as fh:
        return json.load(fh)


def report_section(dump: dict, name: str) -> dict:
    """One experiment's payload out of a dump, or a clean SystemExit
    (the dump simply not containing the experiment is a gate failure,
    not a traceback)."""
    try:
        return dump[name]
    except KeyError:
        raise SystemExit(
            f"FAIL: report has no {name!r} section "
            f"(found: {sorted(k for k in dump if isinstance(dump[k], dict))})"
        ) from None


def spec_key(spec: dict) -> tuple:
    """Hashable identity of a cell's frozen spec (sorted field items)."""
    return tuple(sorted(spec.items()))


def cells_by_spec(payload: dict) -> dict[tuple, dict]:
    """Index an experiment payload's cells by :func:`spec_key`."""
    return {spec_key(cell["spec"]): cell for cell in payload["cells"]}


def dig(mapping: dict, dotted: str, default=None):
    """Walk a nested dict by a dotted path (``"total.p99"``)."""
    node = mapping
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return default
        node = node[part]
    return node


def print_failure_context(context: dict | None, *, indent: str = "  ") -> None:
    """Pretty-print a cell's flight-recorder dump (the
    ``failure_context`` payload attached to shadow-oracle and
    crash-matrix failures): the persist events and per-client op rings
    leading up to the first failure."""
    if not context:
        return
    head = f"{indent}flight recorder"
    boundary = context.get("first_failing_boundary")
    if boundary is not None:
        head += f" (events before failing boundary {boundary})"
    print(
        head + f": {context.get('events_seen', 0)} event(s), "
        f"{context.get('ops_seen', 0)} op(s) seen"
    )
    for event in context.get("events", [])[-20:]:
        print(f"{indent}  event {event}")
    for client, ring in sorted(context.get("ops", {}).items()):
        for op in ring[-5:]:
            print(f"{indent}  client {client} op {op}")
