"""repro — reproduction of "A Write-efficient and Consistent Hashing
Scheme for Non-Volatile Memory" (Zhang, Feng, Hua, Chen, Fu — ICPP 2018).

The package has three layers:

1. :mod:`repro.nvm` — a simulated persistent-memory hierarchy
   (cacheline-accurate cache, ``clflush``/``mfence`` semantics, 8-byte
   failure atomicity, crash injection, discrete latency model);
2. :mod:`repro.core` (group hashing, the paper's contribution) and
   :mod:`repro.tables` (the baselines it is compared against), all
   running on that substrate;
3. :mod:`repro.traces` and :mod:`repro.bench` — the workloads and the
   harness that regenerate every figure and table of the paper's
   evaluation (``python -m repro.bench all``).

Quickstart::

    from repro import GroupHashTable, ItemSpec, NVMRegion

    region = NVMRegion(8 << 20)
    table = GroupHashTable(region, n_cells=2**12, spec=ItemSpec(8, 8))
    table.insert(b"k" * 8, b"v" * 8)
    assert table.query(b"k" * 8) == b"v" * 8
    report = region.crash()          # power failure: unflushed data torn
    table.recover()                  # Algorithm 4 restores consistency
"""

from repro.core import (
    DirectoryTable,
    ExpansionError,
    GroupHashTable,
    GroupLayout,
    GrowableTable,
    ShardedTable,
    SplitError,
    bulk_load,
    expand_group_table,
    insert_with_expansion,
    recover_group_table,
)
from repro.nvm import (
    CACHELINE,
    CacheConfig,
    CacheSim,
    CrashReport,
    LatencyModel,
    MemStats,
    MemoryBackend,
    NVMRegion,
    RawBackend,
    ShardedBackend,
    SimBackend,
    SimConfig,
    SimulatedPowerFailure,
    StartGapMapper,
    TECHNOLOGY_PRESETS,
    WearLevelledRegion,
    WearMap,
    WearReport,
    drop_all_schedule,
    persist_all_schedule,
    random_schedule,
)
from repro.kv import KVStore, SlabAllocator
from repro.tables import (
    CellCodec,
    ChainedHashTable,
    CuckooHashTable,
    ItemSpec,
    LevelHashTable,
    LinearProbingTable,
    PFHTTable,
    PathHashingTable,
    PersistentHashTable,
    TwoChoiceTable,
    UndoLog,
)

__version__ = "0.1.0"

__all__ = [
    "CACHELINE",
    "CacheConfig",
    "CacheSim",
    "CellCodec",
    "ChainedHashTable",
    "CrashReport",
    "CuckooHashTable",
    "DirectoryTable",
    "ExpansionError",
    "GrowableTable",
    "SplitError",
    "KVStore",
    "LevelHashTable",
    "SlabAllocator",
    "StartGapMapper",
    "WearLevelledRegion",
    "SimulatedPowerFailure",
    "WearMap",
    "WearReport",
    "bulk_load",
    "expand_group_table",
    "insert_with_expansion",
    "GroupHashTable",
    "GroupLayout",
    "ItemSpec",
    "LatencyModel",
    "LinearProbingTable",
    "MemStats",
    "MemoryBackend",
    "NVMRegion",
    "RawBackend",
    "ShardedBackend",
    "ShardedTable",
    "SimBackend",
    "PFHTTable",
    "PathHashingTable",
    "PersistentHashTable",
    "SimConfig",
    "TECHNOLOGY_PRESETS",
    "TwoChoiceTable",
    "UndoLog",
    "drop_all_schedule",
    "persist_all_schedule",
    "random_schedule",
    "recover_group_table",
]
