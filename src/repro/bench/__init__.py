"""Benchmark harness: regenerates every table and figure of the paper.

Entry points:

- ``python -m repro.bench <experiment>`` where experiment is one of
  ``fig2 fig5 fig6 fig7 fig8 table3 ablations all`` — prints the same
  rows/series the paper reports, from the simulator's clock and miss
  counters;
- :class:`repro.bench.engine.Engine` for programmatic use — declare a
  list of frozen specs and ``engine.run(specs)`` executes them with
  process-level parallelism and a content-addressed result cache (the
  pytest benchmarks go through this);
- :func:`repro.bench.runner.run_workload` / ``measure_*`` for direct
  single-run use where caching/parallelism would get in the way
  (wall-clock timing loops).

Scales: the paper fills 2^23–2^25-cell tables; a pure-Python simulator
cannot, so every experiment takes a :class:`~repro.bench.config.Scale`
(default ``small``) that shrinks the table while keeping the
cache:table ratio — all reported metrics are per-request intensive
quantities whose shape survives the scaling (DESIGN.md Section 2).
"""

from repro.bench.config import (
    SCALES,
    SCHEMES,
    Scale,
    build_table,
    region_for,
)
from repro.bench.cache import ResultCache, code_version, spec_fingerprint
from repro.bench.engine import Engine, default_engine
from repro.bench.runner import (
    NegativeQuerySpec,
    OpMetrics,
    RecoverySpec,
    RunResult,
    RunSpec,
    UtilizationSpec,
    measure_negative_queries,
    measure_recovery,
    measure_space_utilization,
    run_workload,
)

__all__ = [
    "Engine",
    "NegativeQuerySpec",
    "OpMetrics",
    "RecoverySpec",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "SCALES",
    "SCHEMES",
    "Scale",
    "UtilizationSpec",
    "build_table",
    "code_version",
    "default_engine",
    "measure_negative_queries",
    "measure_recovery",
    "measure_space_utilization",
    "region_for",
    "run_workload",
    "spec_fingerprint",
]
