"""Benchmark harness: regenerates every table and figure of the paper.

Entry points:

- ``python -m repro.bench <experiment>`` where experiment is one of
  ``fig2 fig5 fig6 fig7 fig8 table3 ablations all`` — prints the same
  rows/series the paper reports, from the simulator's clock and miss
  counters;
- :func:`repro.bench.runner.run_workload` / ``measure_*`` for
  programmatic use (the pytest benchmarks call these).

Scales: the paper fills 2^23–2^25-cell tables; a pure-Python simulator
cannot, so every experiment takes a :class:`~repro.bench.config.Scale`
(default ``small``) that shrinks the table while keeping the
cache:table ratio — all reported metrics are per-request intensive
quantities whose shape survives the scaling (DESIGN.md Section 2).
"""

from repro.bench.config import (
    SCALES,
    SCHEMES,
    Scale,
    build_table,
    region_for,
)
from repro.bench.runner import (
    OpMetrics,
    RunResult,
    RunSpec,
    measure_recovery,
    measure_space_utilization,
    run_workload,
)

__all__ = [
    "OpMetrics",
    "RunResult",
    "RunSpec",
    "SCALES",
    "SCHEMES",
    "Scale",
    "build_table",
    "measure_recovery",
    "measure_space_utilization",
    "region_for",
    "run_workload",
]
