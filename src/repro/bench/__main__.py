"""CLI: ``python -m repro.bench <experiment> [--scale small] [--seed 42]``.

Regenerates the paper's tables and figures as text reports. ``all`` runs
every experiment in paper order. Execution is handled by the
:class:`~repro.bench.engine.Engine`: ``--jobs`` fans workload cells out
across processes, and a content-addressed result cache (keyed on the
spec fields plus a hash of the ``repro`` source tree) makes re-runs
nearly free — ``--no-cache`` / ``--cache-dir`` override it, and
``--profile`` runs one worker under :mod:`cProfile`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.bench.config import SCALES
from repro.bench.experiments import (
    ablations,
    backends,
    contention,
    crashmatrix,
    engine as engine_exp,
    fig2,
    fig5,
    fig6,
    fig7,
    fig8,
    growth,
    mixed,
    negative,
    profile as profile_exp,
    serving,
    sweep_lf,
    table3,
    throughput,
    timeline,
    writes,
)
from repro.bench.report import hrule

EXPERIMENTS = {
    "fig2": fig2.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "table3": table3.run,
    "ablations": ablations.run,
    "sweep": sweep_lf.run,
    "writes": writes.run,
    "growth": growth.run,
    "mixed": mixed.run,
    "negative": negative.run,
    "backends": backends.run,
    "engine": engine_exp.run,
    "contention": contention.run,
    "crashmatrix": crashmatrix.run,
    "serving": serving.run,
    "profile": profile_exp.run,
    "throughput": throughput.run,
    "timeline": timeline.run,
}

#: experiments that measure wall-clock and therefore build their own
#: engines (or none) — the CLI's engine flags do not apply to them
_SELF_TIMED = {"backends", "engine"}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables and figures "
        "on the simulated NVM hierarchy.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="table-size preset (DESIGN.md explains the scaling argument)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: force the tiny scale (overrides --scale)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also dump the structured results as JSON to PATH",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for workload cells (default: all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result-cache directory (default .bench-cache or "
        "$REPRO_BENCH_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="execute every cell even if a cached result exists",
    )
    parser.add_argument(
        "--scheme",
        action="append",
        metavar="NAME",
        default=None,
        help="crashmatrix only: campaign this scheme (repeatable; "
        "default: the scale's standard grid)",
    )
    parser.add_argument(
        "--backend",
        choices=("raw", "sim"),
        default="raw",
        help="crashmatrix only: memory backend for monolithic cells",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="crashmatrix only: word-survival subsets per crash "
        "boundary beyond the drop-all/persist-all extremes",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the first uncached cell under cProfile and print the "
        "top-20 cumulative entries to stderr",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="fig5/fig6 only: record span traces for every grid cell "
        "(results carry spans + Chrome trace events)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="fig5/fig6 only: collect the metrics registry for every "
        "grid cell (probe histograms, WAL counters, group heat)",
    )
    args = parser.parse_args(argv)

    from repro.bench.cache import NO_CACHE_ENV, ResultCache
    from repro.bench.engine import Engine

    scale = SCALES["tiny"] if args.quick else SCALES[args.scale]
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    # run in paper order when "all"
    if args.experiment == "all":
        names = [
            "fig2", "fig5", "fig6", "fig7", "fig8", "table3",
            "writes", "ablations", "sweep", "negative", "mixed",
            "growth", "contention", "serving", "timeline", "throughput",
            "crashmatrix", "profile", "backends", "engine",
        ]

    jobs = args.jobs if args.jobs is not None else os.cpu_count() or 1
    no_cache = args.no_cache or bool(os.environ.get(NO_CACHE_ENV))
    cache: ResultCache | bool = False if no_cache else ResultCache(args.cache_dir)
    eng = Engine(jobs=jobs, cache=cache, profile=args.profile)

    dump: dict[str, object] = {"scale": scale.name, "seed": args.seed}
    for name in names:
        start = time.perf_counter()
        runner = EXPERIMENTS[name]
        if name in _SELF_TIMED:
            result = runner(scale, seed=args.seed)
        elif name == "crashmatrix":
            result = runner(
                scale,
                seed=args.seed,
                engine=eng,
                schemes=tuple(args.scheme) if args.scheme else None,
                backend=args.backend,
                budget=args.budget,
            )
        elif name in ("fig5", "fig6"):
            result = runner(
                scale,
                seed=args.seed,
                engine=eng,
                with_trace=args.trace,
                with_metrics=args.metrics,
            )
        else:
            result = runner(scale, seed=args.seed, engine=eng)
        elapsed = time.perf_counter() - start
        print(hrule(f"{result.paper_ref} ({name}, scale={scale.name})"))
        print(result.text)
        print(f"  [wall-clock {elapsed:.1f}s — latencies above are simulated ns]")
        payload = result.data
        if "chrome_trace" in payload:
            # the Chrome trace goes to its own file (it is an artifact
            # for a viewer, not part of the structured report)
            payload = {k: v for k, v in payload.items() if k != "chrome_trace"}
            # default scratch artifacts land under the gitignored out/
            # directory, never at the repo root; suffix with the
            # experiment name when several in one run emit traces
            if args.json and len(names) == 1:
                trace_path = os.path.splitext(args.json)[0] + ".trace.json"
            elif args.json:
                trace_path = os.path.splitext(args.json)[0] + f".{name}.trace.json"
            else:
                os.makedirs("out", exist_ok=True)
                trace_path = os.path.join("out", f"{name}.trace.json")
            with open(trace_path, "w") as fh:
                json.dump(result.data["chrome_trace"], fh)
            print(
                f"  [chrome trace written to {trace_path} — load it in "
                "chrome://tracing or Perfetto]"
            )
        dump[name] = _jsonable(payload)
    if eng.cache:
        print(
            f"  [result cache: {eng.cache.hits} hit(s), "
            f"{eng.cache.misses} miss(es) at {eng.cache.root}]"
        )
    # machine-readable engine counters: CI gates on these instead of
    # scraping the human-oriented lines above
    dump["cache_stats"] = {
        "enabled": eng.cache is not None,
        "hits": eng.cache.hits if eng.cache else 0,
        "misses": eng.cache.misses if eng.cache else 0,
        "executed": eng.executed,
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(dump, fh, indent=2)
        print(f"\nstructured results written to {args.json}")
    return 0


def _jsonable(value):
    """Coerce experiment payloads (tuple/float-keyed dicts) to JSON."""
    if isinstance(value, dict):
        return {_key(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _key(key) -> str:
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


if __name__ == "__main__":
    sys.exit(main())
