"""CLI: ``python -m repro.bench <experiment> [--scale small] [--seed 42]``.

Regenerates the paper's tables and figures as text reports. ``all`` runs
every experiment in paper order.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.config import SCALES
from repro.bench.experiments import (
    ablations,
    backends,
    fig2,
    fig5,
    fig6,
    fig7,
    fig8,
    negative,
    sweep_lf,
    table3,
    writes,
)
from repro.bench.report import hrule

EXPERIMENTS = {
    "fig2": fig2.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "table3": table3.run,
    "ablations": ablations.run,
    "sweep": sweep_lf.run,
    "writes": writes.run,
    "negative": negative.run,
    "backends": backends.run,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables and figures "
        "on the simulated NVM hierarchy.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="table-size preset (DESIGN.md explains the scaling argument)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: force the tiny scale (overrides --scale)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also dump the structured results as JSON to PATH",
    )
    args = parser.parse_args(argv)

    scale = SCALES["tiny"] if args.quick else SCALES[args.scale]
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    # run in paper order when "all"
    if args.experiment == "all":
        names = [
            "fig2", "fig5", "fig6", "fig7", "fig8", "table3",
            "writes", "ablations", "sweep", "negative", "backends",
        ]

    dump: dict[str, object] = {"scale": scale.name, "seed": args.seed}
    for name in names:
        start = time.perf_counter()
        result = EXPERIMENTS[name](scale, seed=args.seed)
        elapsed = time.perf_counter() - start
        print(hrule(f"{result.paper_ref} ({name}, scale={scale.name})"))
        print(result.text)
        print(f"  [wall-clock {elapsed:.1f}s — latencies above are simulated ns]")
        dump[name] = _jsonable(result.data)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(dump, fh, indent=2)
        print(f"\nstructured results written to {args.json}")
    return 0


def _jsonable(value):
    """Coerce experiment payloads (tuple/float-keyed dicts) to JSON."""
    if isinstance(value, dict):
        return {_key(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _key(key) -> str:
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


if __name__ == "__main__":
    sys.exit(main())
