"""Analytic models of the hashing schemes, for validating the simulator.

The schemes' probe behaviour has closed forms under uniform hashing;
having them next to the simulator serves two purposes:

- **cross-validation**: property tests check the simulated occupancies
  and probe lengths against theory (a systematic deviation would mean a
  scheme or substrate bug);
- **extrapolation**: the paper runs 2^23-cell tables; the models say how
  the scaled-down measurements extrapolate (all the quantities below
  depend only on the load factor, not the absolute size — the formal
  version of DESIGN.md's scaling argument).

Models (m items, level size n, group size G; α = load factor over all
cells):

- group hashing level-1 occupancy: balls-into-bins first-choice —
  ``n·(1 − (1 − 1/n)^m) ≈ n·(1 − e^(−m/n))``;
- level-2 population: the overflow, ``m − occupancy₁``;
- expected level-2 scan to the first empty cell of a group with fill
  fraction f: the group is prefix-packed under insert-only load, so the
  scan length is simply the fill, ``f·G`` cells;
- linear probing (Knuth): successful search ``(1 + 1/(1−α))/2`` probes,
  insertion/unsuccessful ``(1 + 1/(1−α)²)/2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.nvm.latency import LatencyModel


def group_level1_occupancy(m: int, n_level: int) -> float:
    """Expected occupied level-1 cells after ``m`` insert-only items."""
    if m < 0 or n_level <= 0:
        raise ValueError("m must be ≥ 0 and n_level positive")
    return n_level * (1.0 - (1.0 - 1.0 / n_level) ** m)


def group_level2_population(m: int, n_level: int) -> float:
    """Expected items living in level 2 (the overflow)."""
    return m - group_level1_occupancy(m, n_level)


def group_fill_fraction(m: int, n_level: int) -> float:
    """Expected fill fraction of a level-2 group."""
    return group_level2_population(m, n_level) / n_level


def expected_group_scan_cells(m: int, n_level: int, group_size: int) -> float:
    """Expected cells scanned by a colliding insert (first empty cell of
    a prefix-packed group)."""
    return group_fill_fraction(m, n_level) * group_size


def level1_hit_rate(m: int, n_level: int) -> float:
    """Probability a random *resident* item lives in level 1."""
    if m == 0:
        return 1.0
    return group_level1_occupancy(m, n_level) / m


def linear_success_probes(alpha: float) -> float:
    """Knuth: expected probes for a successful linear-probing search."""
    if not 0 <= alpha < 1:
        raise ValueError("alpha must be in [0, 1)")
    return 0.5 * (1.0 + 1.0 / (1.0 - alpha))


def linear_insert_probes(alpha: float) -> float:
    """Knuth: expected probes for insertion / unsuccessful search."""
    if not 0 <= alpha < 1:
        raise ValueError("alpha must be in [0, 1)")
    return 0.5 * (1.0 + 1.0 / (1.0 - alpha) ** 2)


@dataclass(frozen=True)
class CommitCost:
    """Cost of the shared three-persist commit discipline, from a
    latency model (used to sanity-check simulated insert latency)."""

    model: LatencyModel

    @property
    def flushes(self) -> int:
        return 3  # kv, bitmap, count

    @property
    def fences(self) -> int:
        return 3

    @property
    def ns(self) -> float:
        # three dirty-line flushes + fences + the header re-fill after the
        # kv flush invalidated the cell line + the count line re-fill
        return (
            3 * self.model.flush_cost(dirty=True)
            + 3 * self.model.fence_ns
            + 2 * self.model.line_fill_ns
        )


def predicted_group_insert_ns(
    m: int, n_level: int, group_size: int, model: LatencyModel
) -> float:
    """First-order prediction of group hashing's simulated insert cost."""
    commit = CommitCost(model).ns
    p_collision = 1.0 - math.exp(-m / n_level)
    # home-cell fill + (on collision) group-entry fill plus a prefetched
    # scan over the packed prefix
    scan_cells = expected_group_scan_cells(m, n_level, group_size)
    lines_per_cell = 24 / 64  # 24-byte cells on 64-byte lines
    scan_ns = (
        model.line_fill_ns
        + scan_cells * lines_per_cell * model.prefetch_hit_ns
        + scan_cells * model.cache_hit_ns
    )
    return model.line_fill_ns + p_collision * scan_ns + commit


def predicted_linear_insert_ns(alpha: float, model: LatencyModel) -> float:
    """First-order prediction of linear probing's simulated insert cost."""
    probes = linear_insert_probes(alpha)
    lines_per_cell = 24 / 64
    probe_ns = (
        model.line_fill_ns
        + (probes - 1) * (model.cache_hit_ns + lines_per_cell * model.prefetch_hit_ns)
        + probes * model.cache_hit_ns
    )
    return probe_ns + CommitCost(model).ns
