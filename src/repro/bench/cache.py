"""Content-addressed on-disk cache for benchmark results.

Every unit of benchmark work is a frozen spec dataclass (a
:class:`~repro.bench.runner.RunSpec`, :class:`~repro.bench.runner.UtilizationSpec`,
:class:`~repro.bench.runner.RecoverySpec` or
:class:`~repro.bench.runner.NegativeQuerySpec`). Results are pure
functions of (spec, simulator code), so a cache entry is keyed by the
SHA-256 of:

- the spec's kind (its class name),
- every dataclass field of the spec, and
- a **code-version token**: a hash over the source text of the whole
  ``repro`` package.

The code token is what makes staleness impossible rather than unlikely:
touch any ``.py`` file under ``src/repro/`` and every previous entry
stops matching. The cost is that *any* edit — even a comment — cold-
starts the cache; for a pure-Python simulator whose every module can
move simulated events, that is the right trade.

Entries are single JSON files under ``<root>/<kind>/<digest>.json``,
written atomically (temp file + rename) so parallel workers and
interrupted runs can never leave a torn entry. The default root is
``.bench-cache`` in the working directory, overridable with the
``REPRO_BENCH_CACHE_DIR`` environment variable or ``--cache-dir``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Any

#: environment override for the default cache directory
CACHE_DIR_ENV = "REPRO_BENCH_CACHE_DIR"

#: environment kill-switch: any non-empty value disables caching in
#: :func:`~repro.bench.engine.default_engine` (timing runs set this)
NO_CACHE_ENV = "REPRO_BENCH_NO_CACHE"

#: default cache directory name (relative to the working directory)
DEFAULT_CACHE_DIR = ".bench-cache"


@lru_cache(maxsize=1)
def code_version() -> str:
    """Hash of the ``repro`` package's source text (16 hex chars).

    Computed once per process by walking every ``*.py`` file under the
    installed package directory in sorted order. Cached results are
    keyed by this token, so editing any source file invalidates the
    whole cache — see the module docstring for why that is deliberate.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def spec_fingerprint(spec: Any) -> str:
    """Content digest of one frozen spec dataclass (full SHA-256 hex).

    The digest covers the spec's class name, all of its fields, and the
    :func:`code_version` token, serialised as canonical (sorted-key)
    JSON so the fingerprint is stable across processes and
    ``PYTHONHASHSEED`` values.
    """
    payload = {
        "kind": type(spec).__name__,
        "spec": dataclasses.asdict(spec),
        "code": code_version(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """On-disk result store keyed by :func:`spec_fingerprint`.

    ``get`` returns the decoded JSON payload or ``None`` (missing or
    unreadable entries are treated as misses — a corrupt file is
    silently recomputed, never trusted). ``put`` writes atomically.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, spec: Any) -> Path:
        return self.root / type(spec).__name__ / f"{spec_fingerprint(spec)}.json"

    def get(self, spec: Any) -> dict | None:
        """Cached payload for ``spec``, or ``None`` on a miss."""
        path = self._path(spec)
        try:
            with path.open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, spec: Any, payload: dict) -> None:
        """Store ``payload`` for ``spec`` (atomic: temp file + rename)."""
        path = self._path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry under the cache root; returns the count."""
        removed = 0
        if self.root.exists():
            for path in self.root.rglob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(root={str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )
