"""Experiment configuration: scales, scheme registry, table factories.

The scheme registry maps the paper's scheme names (including the ``-L``
logged variants) to factories that build a correctly sized table on a
fresh region. Sizing rules keep *total cell count* comparable across
schemes, mirroring the paper's "we use 2^23 hash table cells":

- linear / two-choice / chained / group: ``total_cells`` cells exactly;
- PFHT: ``total_cells`` bucket cells plus the paper's 3 % stash;
- path hashing: level 0 gets ``total_cells // 2`` cells so the reserved
  levels sum to ≈ ``total_cells``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import GroupHashTable
from repro.nvm import (
    CacheConfig,
    MemoryBackend,
    NVMRegion,
    RawBackend,
    SimConfig,
    TECHNOLOGY_PRESETS,
)
from repro.tables import (
    ChainedHashTable,
    ItemSpec,
    LinearProbingTable,
    PFHTTable,
    PathHashingTable,
    PersistentHashTable,
    UndoLog,
)
from repro.tables.cell import CellCodec
from repro.traces import TRACES, Trace


@dataclass(frozen=True)
class Scale:
    """Shrunk-but-shape-preserving experiment size.

    ``cache_ratio`` is table-data bytes per cache byte; the paper's
    RandomNum setting is a 128 MiB table against a 15 MiB L3 (~8.5:1),
    which is what makes random probes miss.
    """

    name: str
    #: target total cells per table (paper: 2^23–2^25)
    total_cells: int
    #: measured operations per phase (paper: 1000)
    measure_ops: int
    #: group-hashing group size default (paper: 256) — scaled down with
    #: the table so n_groups stays meaningful
    group_size: int
    #: table:cache size ratio
    cache_ratio: float = 8.0
    #: table sizes for the Table 3 recovery sweep
    recovery_cells: tuple[int, ...] = ()
    #: group sizes for the Figure 8 sweep
    group_sizes: tuple[int, ...] = (64, 128, 256, 512, 1024)


SCALES: dict[str, Scale] = {
    "tiny": Scale(
        name="tiny",
        total_cells=1 << 12,
        measure_ops=200,
        group_size=64,
        recovery_cells=(1 << 10, 1 << 11, 1 << 12, 1 << 13),
        group_sizes=(16, 32, 64, 128, 256),
    ),
    "small": Scale(
        name="small",
        total_cells=1 << 14,
        measure_ops=500,
        group_size=128,
        recovery_cells=(1 << 12, 1 << 13, 1 << 14, 1 << 15),
        group_sizes=(32, 64, 128, 256, 512),
    ),
    "medium": Scale(
        name="medium",
        total_cells=1 << 16,
        measure_ops=1000,
        group_size=256,
        recovery_cells=(1 << 14, 1 << 15, 1 << 16, 1 << 17),
        group_sizes=(64, 128, 256, 512, 1024),
    ),
    # The paper's actual scale — runnable, but hours of wall-clock in
    # pure Python; documented for completeness.
    "paper": Scale(
        name="paper",
        total_cells=1 << 23,
        measure_ops=1000,
        group_size=256,
        cache_ratio=8.5,
        recovery_cells=(1 << 21, 1 << 22, 1 << 23, 1 << 24),
        group_sizes=(64, 128, 256, 512, 1024),
    ),
}


#: scheme display order used throughout reports (paper figure order)
SCHEMES: tuple[str, ...] = (
    "linear",
    "linear-L",
    "pfht",
    "pfht-L",
    "path",
    "path-L",
    "group",
)

#: schemes implemented beyond the paper's comparison (exclusion ablation
#: + contemporaneous related work)
EXTRA_SCHEMES: tuple[str, ...] = ("chained", "two-choice", "cuckoo", "level")

#: worst-case undo records per operation (backward-shift deletes at high
#: load factors dominate) — sized generously
LOG_CAPACITY = 8192


def region_for(
    total_cells: int,
    spec: ItemSpec,
    *,
    cache_ratio: float = 8.0,
    tech: str = "paper-nvm",
    logged: bool = False,
    flush_invalidates: bool = True,
    backend: str = "sim",
) -> MemoryBackend:
    """Build a backend big enough for any scheme of ``total_cells`` cells.

    ``backend="sim"`` (the default, and the only choice for figure
    benches — latencies and miss counts need the simulator) gets a cache
    sized at ``1/cache_ratio`` of the table data; ``backend="raw"``
    skips the cache/latency simulation entirely for wall-clock-oriented
    runs."""
    codec = CellCodec(spec)
    table_bytes = codec.array_bytes(total_cells)
    # headroom: metadata, PFHT stash (3 %), chained pool slack, undo log
    overhead = 1 << 16
    if logged:
        overhead += LOG_CAPACITY * (16 + codec.cell_size + 8)
    size = int(table_bytes * 1.25) + overhead
    if backend == "raw":
        return RawBackend(size, name=f"bench-{total_cells}")
    if backend != "sim":
        raise ValueError(f"unknown backend {backend!r}; choose 'sim' or 'raw'")
    cache_bytes = max(4096, int(table_bytes / cache_ratio))
    # track_wear: per-line medium-write counters are volatile bookkeeping
    # with zero simulated cost, and give every sim-backed bench a wear
    # summary (exported as wear.* gauges) for free
    config = SimConfig(
        latency=TECHNOLOGY_PRESETS[tech],
        cache=CacheConfig(size_bytes=cache_bytes, line_size=64, associativity=8),
        flush_invalidates=flush_invalidates,
        track_wear=True,
    )
    return NVMRegion(size, config, name=f"bench-{total_cells}")


@dataclass
class BuiltTable:
    """A table plus the context the runner needs."""

    region: MemoryBackend
    table: PersistentHashTable
    scheme: str
    log: UndoLog | None = None


def build_table(
    scheme: str,
    total_cells: int,
    spec: ItemSpec,
    *,
    group_size: int = 256,
    seed: int = 0x5EED,
    cache_ratio: float = 8.0,
    tech: str = "paper-nvm",
    flush_invalidates: bool = True,
    region: MemoryBackend | None = None,
    backend: str = "sim",
) -> BuiltTable:
    """Instantiate ``scheme`` (paper name, ``-L`` suffix for logged) with
    ≈ ``total_cells`` total cells on a fresh (or provided) backend."""
    logged = scheme.endswith("-L")
    base = scheme[:-2] if logged else scheme
    if region is None:
        region = region_for(
            total_cells,
            spec,
            cache_ratio=cache_ratio,
            tech=tech,
            logged=logged,
            flush_invalidates=flush_invalidates,
            backend=backend,
        )
    codec = CellCodec(spec)
    log = (
        UndoLog(region, record_size=codec.cell_size, capacity=LOG_CAPACITY)
        if logged
        else None
    )

    table: PersistentHashTable
    if base == "linear":
        table = LinearProbingTable(region, total_cells, spec, log=log, seed=seed)
    elif base == "pfht":
        table = PFHTTable(region, total_cells, spec, log=log, seed=seed)
    elif base == "path":
        # level 0 = total/2 → reserved levels sum to ≈ total_cells
        table = PathHashingTable(
            region, max(2, total_cells // 2), spec, log=log, seed=seed
        )
    elif base == "group":
        if log is not None:
            raise ValueError("group hashing does not take a log")
        table = GroupHashTable(
            region, total_cells, spec, group_size=group_size, seed=seed
        )
    elif base == "chained":
        table = ChainedHashTable(region, total_cells, spec, log=log, seed=seed)
    elif base == "two-choice":
        from repro.tables import TwoChoiceTable

        table = TwoChoiceTable(region, total_cells, spec, log=log, seed=seed)
    elif base == "cuckoo":
        from repro.tables import CuckooHashTable

        table = CuckooHashTable(region, total_cells, spec, log=log, seed=seed)
    elif base == "level":
        from repro.tables import LevelHashTable

        table = LevelHashTable(region, total_cells, spec, log=log, seed=seed)
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    return BuiltTable(region=region, table=table, scheme=scheme, log=log)


def make_trace(name: str, seed: int = 0) -> Trace:
    """Instantiate a registered trace by its paper name."""
    try:
        cls = TRACES[name]
    except KeyError:
        raise ValueError(
            f"unknown trace {name!r}; choose from {sorted(TRACES)}"
        ) from None
    return cls(seed)
