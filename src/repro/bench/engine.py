"""Parallel, cached execution engine for benchmark spec grids.

Every experiment driver declares its grid as a list of frozen spec
dataclasses up front and hands the whole list to :meth:`Engine.run`,
which:

1. **deduplicates** — identical specs in one batch (and across
   experiments: Figures 5 and 6 share their entire grid) execute once;
2. **consults the cache** — each spec is fingerprinted (all fields + a
   code-version token, :mod:`repro.bench.cache`) and previously
   computed results load from disk instead of re-simulating;
3. **fans out** the remaining misses across a
   :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs`` workers;
   ``jobs=1`` runs inline with zero pool overhead).

Results come back in input order, so an experiment's output — and the
JSON the CLI dumps — is byte-identical whatever ``jobs`` is; every spec
executor is fully seeded, so results are also identical across
processes and ``PYTHONHASHSEED`` values (pinned by
``tests/test_engine.py``).

:func:`default_engine` is the module-level engine experiment drivers use
when the caller passes none: serial, cache-enabled (disable with the
``REPRO_BENCH_NO_CACHE`` environment variable — genuine timing runs of
the *simulator* must not short-circuit through the cache).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

from repro.bench.cache import NO_CACHE_ENV, ResultCache
from repro.bench.runner import (
    GrowthSpec,
    MixedResult,
    MixedSpec,
    NegativeQuerySpec,
    RecoverySpec,
    RunResult,
    RunSpec,
    UtilizationSpec,
    measure_negative_queries,
    run_growth_workload,
    run_mixed_workload,
    run_recovery_spec,
    run_utilization_spec,
    run_workload,
)

#: every spec kind the engine can execute:
#: type -> (execute, encode result -> JSON, decode JSON -> result)
SPEC_KINDS: dict[type, tuple[Callable, Callable, Callable]] = {
    RunSpec: (run_workload, lambda r: r.to_dict(), RunResult.from_dict),
    MixedSpec: (run_mixed_workload, lambda r: r.to_dict(), MixedResult.from_dict),
    UtilizationSpec: (run_utilization_spec, lambda r: r, lambda p: p),
    RecoverySpec: (run_recovery_spec, lambda r: dict(r), lambda p: dict(p)),
    NegativeQuerySpec: (measure_negative_queries, lambda r: dict(r), lambda p: dict(p)),
    GrowthSpec: (run_growth_workload, lambda r: dict(r), lambda p: dict(p)),
}


def register_spec_kind(
    spec_type: type,
    execute: Callable,
    encode: Callable | None = None,
    decode: Callable | None = None,
) -> None:
    """Register an additional spec kind with the engine.

    Must run as an import-time side effect of the module *defining*
    ``spec_type``: pool workers unpickle a spec (importing its module,
    and therefore registering it) before :func:`execute_spec` looks the
    kind up, so registration-by-import is what keeps ``--jobs`` fan-out
    working for externally defined kinds. ``encode``/``decode`` default
    to the identity, which suits executors that already return plain
    JSON-ready dicts."""
    SPEC_KINDS[spec_type] = (
        execute,
        encode or (lambda r: r),
        decode or (lambda p: p),
    )


def execute_spec(spec: Any) -> Any:
    """Run one spec of any registered kind (the pool-worker entrypoint)."""
    try:
        execute, _, _ = SPEC_KINDS[type(spec)]
    except KeyError:
        raise TypeError(
            f"unknown spec kind {type(spec).__name__}; "
            f"expected one of {sorted(t.__name__ for t in SPEC_KINDS)}"
        ) from None
    return execute(spec)


def _profiled_execute(spec: Any) -> Any:
    """Run one spec under cProfile and print the top-20 cumulative
    functions — the ``--profile`` flag's one observed worker."""
    import cProfile
    import pstats
    import sys

    profiler = cProfile.Profile()
    result = profiler.runcall(execute_spec, spec)
    stats = pstats.Stats(profiler, stream=sys.stderr)
    print(f"\n--- profile of {spec!r} (top 20 by cumulative time) ---", file=sys.stderr)
    stats.sort_stats("cumulative").print_stats(20)
    return result


class Engine:
    """Deduplicating, caching, parallel spec runner.

    Parameters:

    - ``jobs`` — worker processes for cache misses; ``None`` or ``1``
      executes inline (deterministic results either way — parallelism
      only changes wall-clock).
    - ``cache`` — a :class:`~repro.bench.cache.ResultCache`, ``None``
      for the default on-disk location, or ``False`` to disable caching.
    - ``profile`` — cProfile the first executed (non-cached) spec and
      report the top-20 cumulative functions to stderr.
    """

    def __init__(
        self,
        *,
        jobs: int | None = None,
        cache: ResultCache | None | bool = None,
        profile: bool = False,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs or 1
        if cache is False:
            self.cache: ResultCache | None = None
        elif cache is None or cache is True:
            self.cache = ResultCache()
        else:
            self.cache = cache
        self.profile = profile
        #: specs executed (cache misses) / loaded from cache, lifetime
        self.executed = 0
        self.cache_hits = 0
        #: measurement-quality warnings accumulated across runs (e.g.
        #: insert shortfalls); drained by :meth:`take_warnings`
        self.warnings: list[str] = []

    # ------------------------------------------------------------------

    def run(self, specs: Sequence[Any]) -> list[Any]:
        """Execute ``specs`` and return their results in input order.

        Duplicate specs run once; cached specs load from disk; the rest
        fan out across ``jobs`` workers."""
        unique: dict[Any, Any] = {}
        for spec in specs:
            unique.setdefault(spec, None)

        todo: list[Any] = []
        for spec in unique:
            payload = self.cache.get(spec) if self.cache is not None else None
            if payload is not None:
                _, _, decode = SPEC_KINDS[type(spec)]
                unique[spec] = (True, decode(payload["result"]))
                self.cache_hits += 1
            else:
                todo.append(spec)

        for spec, result in zip(todo, self._execute_all(todo)):
            unique[spec] = (True, result)
            self.executed += 1
            if self.cache is not None:
                _, encode, _ = SPEC_KINDS[type(spec)]
                self.cache.put(spec, {"result": encode(result)})

        results = []
        for spec in specs:
            _, result = unique[spec]
            self._collect_warnings(spec, result)
            results.append(result)
        return results

    def run_one(self, spec: Any) -> Any:
        """Convenience wrapper: :meth:`run` on a single spec."""
        return self.run([spec])[0]

    # ------------------------------------------------------------------

    def _execute_all(self, todo: list[Any]) -> list[Any]:
        if not todo:
            return []
        head: list[Any] = []
        if self.profile:
            head = [_profiled_execute(todo[0])]
            todo = todo[1:]
        if not todo:
            return head
        jobs = min(self.jobs, len(todo))
        if jobs <= 1:
            return head + [execute_spec(spec) for spec in todo]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            return head + list(pool.map(execute_spec, todo))

    def _collect_warnings(self, spec: Any, result: Any) -> None:
        if isinstance(result, MixedResult):
            if result.failed_ops:
                self.warnings.append(
                    f"{spec.scheme}/{spec.preset}/lf={spec.load_factor}: "
                    f"{result.failed_ops}/{result.phase.attempted} mixed ops "
                    "failed (inserts at capacity and their dependents) — "
                    "percentiles cover all attempts, averages only successes"
                )
            return
        if not isinstance(result, RunResult):
            return
        shortfalls = result.shortfalls()
        if shortfalls:
            detail = ", ".join(
                f"{phase}: {result.phase(phase).ops}"
                f"/{result.phase(phase).attempted} ops"
                for phase in shortfalls
            )
            self.warnings.append(
                f"{spec.scheme}/{spec.trace}/lf={spec.load_factor}: measured "
                f"fewer ops than attempted ({detail}) — averages cover only "
                "the successful operations"
            )

    def take_warnings(self) -> list[str]:
        """Return accumulated warnings and clear the list."""
        out, self.warnings = self.warnings, []
        return out


_default_engine: Engine | None = None


def default_engine() -> Engine:
    """Process-wide serial engine used when a driver gets no engine.

    Cache-enabled unless ``REPRO_BENCH_NO_CACHE`` is set (non-empty), so
    repeated local pytest/benchmark iterations reuse simulated cells."""
    global _default_engine
    if _default_engine is None:
        use_cache = not os.environ.get(NO_CACHE_ENV)
        _default_engine = Engine(jobs=1, cache=None if use_cache else False)
    return _default_engine


def reset_default_engine() -> None:
    """Drop the memoised default engine (tests re-point the cache)."""
    global _default_engine
    _default_engine = None
