"""Experiment drivers — one per table/figure of the paper.

Each module exposes ``run(scale, seed=42) -> ExperimentResult``; the CLI
(`python -m repro.bench`) renders results as text, and the pytest
benchmarks assert the paper's qualitative shapes on the same structured
data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    """Structured output of one experiment."""

    #: experiment id, e.g. "fig5"
    name: str
    #: paper reference, e.g. "Figure 5"
    paper_ref: str
    #: arbitrary structured payload (dict of series/rows)
    data: dict[str, Any] = field(default_factory=dict)
    #: pre-rendered text report
    text: str = ""
    #: measurement-quality warnings (e.g. measured-insert shortfalls)
    warnings: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        return self.text


def attach_warnings(result: ExperimentResult, engine) -> ExperimentResult:
    """Drain ``engine``'s accumulated warnings into ``result`` and append
    them to the text report, so shortfalls are visible wherever the
    report is read."""
    from repro.bench.report import format_warnings

    result.warnings = engine.take_warnings()
    if result.warnings:
        result.text += "\n\n" + format_warnings(result.warnings)
    return result
