"""Experiment drivers — one per table/figure of the paper.

Each module exposes ``run(scale, seed=42) -> ExperimentResult``; the CLI
(`python -m repro.bench`) renders results as text, and the pytest
benchmarks assert the paper's qualitative shapes on the same structured
data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    """Structured output of one experiment."""

    #: experiment id, e.g. "fig5"
    name: str
    #: paper reference, e.g. "Figure 5"
    paper_ref: str
    #: arbitrary structured payload (dict of series/rows)
    data: dict[str, Any] = field(default_factory=dict)
    #: pre-rendered text report
    text: str = ""

    def __str__(self) -> str:
        return self.text
