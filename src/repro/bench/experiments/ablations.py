"""Ablations beyond the paper's figures (DESIGN.md Section 6).

These quantify claims the paper makes in prose but never measures:

- **technology**: how the results shift across Table 1's memory
  technologies (DRAM / PCM / ReRAM / STT-MRAM presets);
- **clwb**: how much of logging's penalty is ``clflush``'s *invalidation*
  (re-miss) vs its write latency — rerun Figure 2 with non-invalidating
  ``clwb``-style flushes;
- **two-hash group**: Section 4.4 argues a second hash function would
  raise group hashing's utilization but damage contiguity; measure both
  sides of that trade-off;
- **excluded schemes**: Section 4.1 excludes chained hashing (allocator
  traffic, pointer chasing) and 2-choice hashing (low utilization);
  measure them against group hashing to verify the exclusions.
"""

from __future__ import annotations

from repro.bench.config import Scale
from repro.bench.experiments import ExperimentResult
from repro.bench.report import format_ratio_note, format_table
from repro.bench.runner import RunSpec, UtilizationSpec

OPS = ("insert", "query", "delete")

TECHS = ("dram", "stt-mram", "reram", "paper-nvm", "pcm")


def _engine_or_default(engine):
    from repro.bench.engine import default_engine

    return engine or default_engine()


def run_technology(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Measure group hashing across the Table 1 technology presets."""
    engine = _engine_or_default(engine)
    specs = [
        RunSpec.from_scale("group", "randomnum", 0.5, scale, seed=seed, tech=tech)
        for tech in TECHS
    ]
    rows = []
    data = {}
    for tech, r in zip(TECHS, engine.run(specs)):
        values = {op: r.phase(op).avg_latency_ns for op in OPS}
        rows.append((tech, values))
        data[tech] = values
    text = "\n".join(
        [
            format_table(
                "Ablation: memory technology (Table 1 presets) — group "
                "hashing latency",
                OPS,
                rows,
                unit="simulated ns/request",
            ),
            format_ratio_note(
                "write latency of the medium dominates insert/delete; "
                "queries are read-path only and barely move"
            ),
        ]
    )
    return ExperimentResult(
        name="ablation-technology", paper_ref="Table 1", data=data, text=text
    )


def run_clwb(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Separate clflush-invalidation cost from write latency (clwb mode)."""
    engine = _engine_or_default(engine)
    cells = [
        (scheme, label, invalidates)
        for scheme in ("linear", "linear-L")
        for invalidates, label in ((True, "clflush"), (False, "clwb"))
    ]
    specs = [
        RunSpec.from_scale(scheme, "randomnum", 0.5, scale, seed=seed).replace(
            flush_invalidates=invalidates
        )
        for scheme, _, invalidates in cells
    ]
    rows = []
    data = {}
    for (scheme, label, _), r in zip(cells, engine.run(specs)):
        values = {
            "insert_ns": r.insert.avg_latency_ns,
            "insert_misses": r.insert.avg_misses,
            "delete_ns": r.delete.avg_latency_ns,
            "delete_misses": r.delete.avg_misses,
        }
        rows.append((f"{scheme}/{label}", values))
        data[(scheme, label)] = values
    text = "\n".join(
        [
            format_table(
                "Ablation: clflush (invalidating) vs clwb (retaining) flushes",
                ("insert_ns", "insert_misses", "delete_ns", "delete_misses"),
                rows,
                precision=2,
            ),
            format_ratio_note(
                "clwb removes the re-miss on lines written twice (log tail, "
                "cell headers): part of the logging penalty is invalidation, "
                "not write latency"
            ),
        ]
    )
    return ExperimentResult(
        name="ablation-clwb", paper_ref="Section 2.2", data=data, text=text
    )


def run_two_hash_group(scale: Scale, seed: int = 42) -> ExperimentResult:
    """Section 4.4's untested claim: a second hash function buys
    utilization at the cost of contiguity (latency/misses)."""
    from repro.bench.config import BuiltTable, make_trace, region_for
    from repro.bench.runner import fill_to_load_factor
    from repro.core import GroupHashTable

    def fresh_table(trace_seed: int, n_hash: int) -> tuple:
        trace = make_trace("randomnum", seed=trace_seed)
        region = region_for(
        scale.total_cells, trace.spec, cache_ratio=scale.cache_ratio
    )
        table = GroupHashTable(
            region,
            scale.total_cells,
            trace.spec,
            group_size=scale.group_size,
            n_hash_functions=n_hash,
            seed=seed,
        )
        return trace, region, table

    rows = []
    data = {}
    for n_hash in (1, 2):
        # latency at load factor 0.7 — high enough that the second hash
        # function actually engages (below ~0.6 the first hash's group is
        # almost never full, so both configurations behave identically)
        trace, region, table = fresh_table(seed, n_hash)
        stream = trace.unique_items()
        fill_to_load_factor(
            BuiltTable(region=region, table=table, scheme="group"), stream, 0.7
        )
        fresh = [next(stream) for _ in range(scale.measure_ops)]
        before = region.stats.snapshot()
        for key, value in fresh:
            table.insert(key, value)
        delta = region.stats.delta(before)
        insert_ns = delta.sim_time_ns / len(fresh)
        insert_misses = delta.cache_misses / len(fresh)

        # utilization: insert to failure on a fresh table
        trace2, _, table2 = fresh_table(seed + 1, n_hash)
        utilization = 0.0
        for key, value in trace2.unique_items():
            if not table2.insert(key, value):
                utilization = table2.load_factor
                break
        values = {
            "insert_ns": insert_ns,
            "insert_misses": insert_misses,
            "utilization": utilization,
        }
        rows.append((f"{n_hash} hash fn", values))
        data[n_hash] = values
    text = "\n".join(
        [
            format_table(
                "Ablation: group hashing with a second hash function "
                "(Section 4.4 trade-off)",
                ("insert_ns", "insert_misses", "utilization"),
                rows,
                precision=3,
            ),
            format_ratio_note(
                "the paper predicts: higher utilization, worse latency/misses"
            ),
        ]
    )
    return ExperimentResult(
        name="ablation-two-hash", paper_ref="Section 4.4", data=data, text=text
    )


def run_excluded_schemes(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Measure the schemes Section 4.1 excludes (plus the
    contemporaneous level hashing and classic cuckoo), to verify the
    exclusion reasons and place the paper among its neighbours."""
    engine = _engine_or_default(engine)
    schemes = ("group", "level", "cuckoo", "chained", "two-choice")
    workload_results = engine.run(
        [RunSpec.from_scale(s, "randomnum", 0.25, scale, seed=seed) for s in schemes]
    )
    rows = []
    data = {}
    for scheme, r in zip(schemes, workload_results):
        try:
            utilization = engine.run_one(
                UtilizationSpec(
                    scheme=scheme,
                    trace="randomnum",
                    total_cells=scale.total_cells,
                    group_size=scale.group_size,
                    seed=seed,
                )
            )
        except RuntimeError:  # chained: fills the pool fully
            utilization = 1.0
        values = {
            "insert_ns": r.insert.avg_latency_ns,
            "query_ns": r.query.avg_latency_ns,
            "utilization": utilization,
        }
        rows.append((scheme, values))
        data[scheme] = values
    text = "\n".join(
        [
            format_table(
                "Ablation: the schemes Section 4.1 excludes, at load factor "
                "0.25 (two-choice cannot go higher)",
                ("insert_ns", "query_ns", "utilization"),
                rows,
                precision=2,
            ),
            format_ratio_note(
                "paper's exclusion reasons: chained = allocator+pointer "
                "traffic; two-choice = low utilization"
            ),
        ]
    )
    return ExperimentResult(
        name="ablation-excluded", paper_ref="Section 4.1", data=data, text=text
    )


def run_wear_leveling(scale: Scale, seed: int = 42) -> ExperimentResult:
    """Section 2.1's assumed substrate, measured: run group hashing on a
    plain region vs a start-gap wear-levelled one and report both the
    request-latency overhead of rotation and the wear flattening."""
    from repro.bench.config import make_trace
    from repro.bench.runner import fill_to_load_factor
    from repro.core import GroupHashTable
    from repro.nvm import CacheConfig, NVMRegion, SimConfig, WearLevelledRegion
    from repro.tables.cell import CellCodec

    # small device so the gap completes multiple sweeps within the
    # experiment's write volume (start-gap only re-homes a line when the
    # gap passes its physical position)
    n_cells = 1 << 10
    rows = []
    data = {}
    for label, rotate_every in (
        ("plain", None), ("start-gap/4", 4), ("start-gap/1", 1)
    ):
        trace = make_trace("randomnum", seed=seed)
        codec = CellCodec(trace.spec)
        table_bytes = codec.array_bytes(n_cells)
        config = SimConfig(
            cache=CacheConfig(size_bytes=max(4096, table_bytes // 8)),
            track_wear=True,
        )
        size = int(table_bytes * 1.3) + 4096
        if rotate_every is None:
            region = NVMRegion(size, config)
        else:
            region = WearLevelledRegion(size, config, rotate_every=rotate_every)
        table = GroupHashTable(
            region, n_cells, trace.spec,
            group_size=min(scale.group_size, n_cells // 4), seed=seed,
        )
        from repro.bench.config import BuiltTable

        stream = trace.unique_items()
        fill_to_load_factor(
            BuiltTable(region=region, table=table, scheme="group"), stream, 0.5
        )
        fresh = [next(stream) for _ in range(scale.measure_ops)]
        before = region.stats.snapshot()
        for key, value in fresh:
            table.insert(key, value)
        delta = region.stats.delta(before)
        report = region.wear.report()
        values = {
            "insert_ns": delta.sim_time_ns / len(fresh),
            "max_line_writes": float(report.max_line_writes),
            "wear_imbalance": report.imbalance,
        }
        rows.append((label, values))
        data[label] = values
    text = "\n".join(
        [
            format_table(
                "Ablation: start-gap wear leveling under group hashing "
                "(Section 2.1's assumed substrate)",
                ("insert_ns", "max_line_writes", "wear_imbalance"),
                rows,
                precision=1,
            ),
            format_ratio_note(
                "rotation must complete full sweeps to flatten wear: too "
                "slow a cadence pays overhead without benefit; a fast "
                "cadence cuts the hottest line's wear several-fold at a "
                "per-op latency cost"
            ),
        ]
    )
    return ExperimentResult(
        name="ablation-wear-leveling", paper_ref="Section 2.1", data=data, text=text
    )


def run(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """All ablations, concatenated.

    The grid-shaped ablations (technology, clwb, excluded schemes)
    funnel through the engine; the bespoke-table ablations (two-hash
    group, wear leveling) build custom regions and stay inline."""
    engine = _engine_or_default(engine)
    parts = [
        run_technology(scale, seed, engine),
        run_clwb(scale, seed, engine),
        run_two_hash_group(scale, seed),
        run_excluded_schemes(scale, seed, engine),
        run_wear_leveling(scale, seed),
    ]
    return ExperimentResult(
        name="ablations",
        paper_ref="DESIGN.md Section 6",
        data={p.name: p.data for p in parts},
        text="\n\n".join(p.text for p in parts),
    )
