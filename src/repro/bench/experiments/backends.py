"""Backend comparison — wall-clock cost of the memory substrates.

Not a paper figure: this experiment characterises the repository's own
infrastructure after the pluggable-backend refactor.

- **Sim vs Raw fill**: one :class:`~repro.core.GroupHashTable` filled to
  load factor 0.8 on the costed simulator and on the raw bytearray
  backend, driven by identical code. The two runs issue the identical
  program-order event stream (asserted from the stats); the wall-clock
  ratio is the price of the cache/latency simulation — the speedup a
  correctness suite buys by choosing ``backend="raw"``. At the default
  ``small`` scale the fill table has 2^16 cells.
- **Sharded throughput**: insert throughput of
  :class:`~repro.core.ShardedTable` over 1/2/4/8 raw-backed shards at
  the same total cell count. Sharding pays a routing hash per op and
  wins back shorter per-shard group scans; the sweep shows where the
  trade lands.

Wall-clock numbers are machine-dependent by nature — the JSON payload
records them for trend-watching, not for exact pinning.
"""

from __future__ import annotations

import time

from repro.bench.config import Scale, region_for
from repro.bench.experiments import ExperimentResult
from repro.bench.report import format_ratio_note, format_table
from repro.core import GroupHashTable, ShardedTable
from repro.tables.cell import ItemSpec

#: shard counts swept by the throughput comparison
SHARD_COUNTS = (1, 2, 4, 8)

#: target load factor of the fill benchmark — high enough that the
#: contiguous group scans (the paper's hot loop) dominate
FILL_LOAD_FACTOR = 0.8


def _fill_keys(n: int) -> list[bytes]:
    return [i.to_bytes(8, "little") for i in range(n)]


def _timed_fill(table, keys: list[bytes], value: bytes) -> float:
    start = time.perf_counter()
    for key in keys:
        table.insert(key, value)
    return time.perf_counter() - start


def run(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Compare backend wall-clock at 4x the scale's table size (2^16
    cells at the default ``small`` scale).

    ``engine`` is accepted for CLI uniformity but unused: wall-clock
    timings must not be served from the result cache.
    """
    spec = ItemSpec(8, 8)
    fill_cells = scale.total_cells * 4
    group_size = min(scale.group_size, fill_cells // 4)
    n_items = int(fill_cells * FILL_LOAD_FACTOR)
    keys = _fill_keys(n_items)
    value = b"v" * spec.value_size

    # -- sim vs raw, identical drive ------------------------------------
    seconds: dict[str, float] = {}
    events: dict[str, tuple[int, int, int, int]] = {}
    for backend in ("sim", "raw"):
        region = region_for(
        fill_cells, spec, cache_ratio=scale.cache_ratio, backend=backend
    )
        table = GroupHashTable(
        region, fill_cells, spec, group_size=group_size, seed=seed
    )
        seconds[backend] = _timed_fill(table, keys, value)
        stats = region.stats
        events[backend] = (stats.reads, stats.writes, stats.flushes, stats.fences)
    if events["sim"] != events["raw"]:
        raise RuntimeError(
            f"backend event streams diverged: sim {events['sim']} raw {events['raw']}"
        )
    speedup = seconds["sim"] / seconds["raw"] if seconds["raw"] else float("inf")

    fill_rows = [
        (
            backend,
            {
                "fill_s": seconds[backend],
                "ops_per_s": n_items / seconds[backend] if seconds[backend] else 0.0,
            },
        )
        for backend in ("sim", "raw")
    ]

    # -- sharded throughput sweep ---------------------------------------
    shard_rows = []
    sharded: dict[int, dict[str, float]] = {}
    for n_shards in SHARD_COUNTS:
        table = ShardedTable(fill_cells, spec, n_shards=n_shards, seed=seed)
        elapsed = _timed_fill(table, keys, value)
        row = {
            "fill_s": elapsed,
            "ops_per_s": n_items / elapsed if elapsed else 0.0,
            "balance": min(table.shard_counts()) / max(table.shard_counts()),
        }
        sharded[n_shards] = row
        shard_rows.append((f"{n_shards} shard(s)", row))

    text = "\n".join(
        [
            format_table(
                f"Backend wall-clock: group hashing fill, {fill_cells} cells "
                f"to load factor {FILL_LOAD_FACTOR}",
                ("fill_s", "ops_per_s"),
                fill_rows,
                unit="seconds / inserts per second",
                precision=2,
            ),
            format_ratio_note(
                f"raw-backend speedup: {speedup:.2f}x "
                "(identical event streams, zero simulated cost)"
            ),
            "",
            format_table(
                f"ShardedTable insert throughput, {fill_cells} total cells "
                "on raw-backed shards",
                ("fill_s", "ops_per_s", "balance"),
                shard_rows,
                unit="seconds / inserts per second / min-max shard balance",
                precision=2,
            ),
        ]
    )
    return ExperimentResult(
        name="backends",
        paper_ref="Backend comparison (infrastructure, not a paper figure)",
        data={
            "fill_cells": fill_cells,
            "load_factor": FILL_LOAD_FACTOR,
            "seconds": seconds,
            "speedup": speedup,
            "events": {k: list(v) for k, v in events.items()},
            "sharded": sharded,
        },
        text=text,
    )
