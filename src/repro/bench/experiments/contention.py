"""Contention experiment — throughput and tail latency vs client count.

The paper's protocol is a single sequential op stream; a serving system
is N clients hammering one table. For each client count this experiment
builds per-client YCSB-A op streams (update-heavy, Zipfian hot keys —
the worst case for group-level writer locks), runs them under the
deterministic interleaver of :mod:`repro.concurrency`, and reports
simulated throughput, p50/p99 tail latency, abort/retry/lock-wait
counts, and the per-client persist-event attribution.

Every cell is a frozen :class:`ConcurrentSpec` routed through the bench
engine, so the grid deduplicates, caches and fans out across ``--jobs``
workers byte-identically — the scheduler is a pure function of the spec,
and the cell payload carries a SHA-256 digest of the final table bytes
to prove it. A cell whose lost-update / linearizability shadow check
fails reports it structurally (``lost_updates`` / ``check_failures``),
which `scripts/ci_contention_gate.py` turns into a hard CI failure.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

from repro.bench.config import Scale, build_table, make_trace
from repro.bench.engine import default_engine, register_spec_kind
from repro.bench.experiments import ExperimentResult, attach_warnings
from repro.bench.report import format_ratio_note, format_table
from repro.bench.runner import fill_to_load_factor
from repro.bench.workload import PRESETS, generate_ops
from repro.concurrency import ClientOp, run_concurrent, table_digest
from repro.obs import FlightRecorder, MetricsRegistry

#: the client-count axis (the acceptance grid: 1, 4 and 16 clients)
CLIENT_COUNTS: tuple[int, ...] = (1, 4, 16)


@dataclass(frozen=True)
class ConcurrentSpec:
    """One contention cell: N clients over one table, frozen for the
    engine.

    ``n_ops`` is the *total* op budget, split evenly across the
    ``n_clients`` streams — so the client-count axis is a fixed-work
    (strong-scaling) comparison and throughput differences come from
    overlap and contention, not from doing more work."""

    scheme: str = "group"
    preset: str = "ycsb-a"
    trace: str = "randomnum"
    load_factor: float = 0.5
    total_cells: int = 1 << 14
    group_size: int = 128
    n_clients: int = 4
    n_ops: int = 500
    seed: int = 42
    tech: str = "paper-nvm"
    cache_ratio: float = 8.0
    backend: str = "sim"

    @classmethod
    def from_scale(
        cls, scheme: str, preset: str, n_clients: int, scale: Scale, **kw
    ) -> "ConcurrentSpec":
        """Build a spec sized to ``scale`` (cells, group size, op
        budget, cache ratio)."""
        return cls(
            scheme=scheme,
            preset=preset,
            n_clients=n_clients,
            total_cells=scale.total_cells,
            group_size=scale.group_size,
            n_ops=scale.measure_ops,
            cache_ratio=scale.cache_ratio,
            **kw,
        )

    def replace(self, **changes) -> "ConcurrentSpec":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-ready field dict (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ConcurrentSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(**data)

    @property
    def label(self) -> str:
        """Report row label, e.g. ``4 clients``."""
        return f"{self.n_clients} client{'s' if self.n_clients != 1 else ''}"


def build_client_streams(
    spec: ConcurrentSpec, resident, stream
) -> list[list[ClientOp]]:
    """Per-client op streams over the *shared* resident key universe.

    Each client draws its own seeded
    :func:`~repro.bench.workload.generate_ops` stream from the preset's
    mix; key ids below the resident count resolve to the shared
    fill-phase keys (so Zipfian hot keys collide *across* clients —
    that is the contention under test), while fresh insert ids mint
    per-client items off the shared trace stream (disjoint by
    construction, since the stream is consumed sequentially)."""
    mix = PRESETS[spec.preset]
    per_client = max(1, spec.n_ops // spec.n_clients)
    value_size = len(resident[0][1]) if resident else 8
    streams: list[list[ClientOp]] = []
    for client in range(spec.n_clients):
        mixed = generate_ops(
            mix, per_client, len(resident), seed=(spec.seed << 5) ^ (0xC0 + client)
        )
        vrng = random.Random((spec.seed << 8) ^ 0xA11CE ^ (client * 0x9E37))
        fresh: dict[int, tuple[bytes, bytes]] = {}
        ops: list[ClientOp] = []
        for op in mixed:
            if op.key_id < len(resident):
                key, value = resident[op.key_id]
            else:
                if op.key_id not in fresh:
                    fresh[op.key_id] = next(stream)
                key, value = fresh[op.key_id]
            if op.kind == "insert":
                ops.append(ClientOp("insert", key, value))
            elif op.kind == "update":
                new_value = vrng.getrandbits(8 * value_size).to_bytes(
                    value_size, "little"
                )
                ops.append(ClientOp("update", key, new_value))
            elif op.kind == "query":
                ops.append(ClientOp("query", key))
            else:
                ops.append(ClientOp("delete", key))
        streams.append(ops)
    return streams


def run_concurrent_spec(spec: ConcurrentSpec) -> dict:
    """Execute one contention cell; returns a JSON-ready summary dict.

    This is the engine executor for :class:`ConcurrentSpec` (runs in
    pool workers): fill the table, build the per-client streams, run
    the deterministic interleaver with a metrics registry attached, and
    flatten the result — including the shadow-check verdict and the
    final-table digest — into plain JSON."""
    trace = make_trace(spec.trace, seed=spec.seed)
    built = build_table(
        spec.scheme,
        spec.total_cells,
        trace.spec,
        group_size=spec.group_size,
        seed=spec.seed,
        cache_ratio=spec.cache_ratio,
        tech=spec.tech,
        backend=spec.backend,
    )
    table = built.table
    stream = trace.unique_items()
    resident, fill_failures = fill_to_load_factor(built, stream, spec.load_factor)
    streams = build_client_streams(spec, resident, stream)
    metrics = MetricsRegistry()
    recorder = FlightRecorder()
    result = run_concurrent(
        table, streams, seed=spec.seed, metrics=metrics, recorder=recorder
    )
    committed = len(result.committed)
    return {
        "spec": spec.to_dict(),
        "clients": spec.n_clients,
        "ops": result.ops,
        "committed": committed,
        "failed_ops": result.failed_ops,
        "span_ns": result.span_ns,
        "throughput_kops": result.throughput_kops(),
        "total": result.overall.summary(),
        "per_client": [rec.summary() for rec in result.per_client],
        "read_aborts": result.read_aborts,
        "read_retries": result.read_retries,
        "lock_waits": result.lock_waits,
        "lock_wait_ns": result.lock_wait_ns,
        "fp_skips": result.fp_skips,
        "concurrent_ops": sum(1 for r in result.committed if r.concurrent),
        "lost_updates": result.lost_updates,
        "check_failures": list(result.check_failures),
        "failure_context": result.failure_context,
        "client_events": result.client_events,
        "table_digest": table_digest(table),
        "fill_count": len(resident),
        "fill_failures": fill_failures,
        "metrics": metrics.as_dict(),
    }


register_spec_kind(ConcurrentSpec, run_concurrent_spec)


def contention_specs(scale: Scale, seed: int) -> list[ConcurrentSpec]:
    """The client-count grid for one scale (group scheme, YCSB-A)."""
    return [
        ConcurrentSpec.from_scale("group", "ycsb-a", n, scale, seed=seed)
        for n in CLIENT_COUNTS
    ]


def run(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Run the contention grid and render the scaling report."""
    engine = engine or default_engine()
    specs = contention_specs(scale, seed)
    cells = engine.run(specs)

    columns = [
        "ops", "span_us", "kops_s", "p50_ns", "p99_ns",
        "aborts", "retries", "waits", "lost",
    ]
    rows = []
    ok = True
    for spec, cell in zip(specs, cells):
        ok = ok and not cell["lost_updates"] and not cell["check_failures"]
        rows.append((
            spec.label,
            {
                "ops": cell["committed"],
                "span_us": cell["span_ns"] / 1e3,
                "kops_s": cell["throughput_kops"],
                "p50_ns": cell["total"]["p50"],
                "p99_ns": cell["total"]["p99"],
                "aborts": cell["read_aborts"],
                "retries": cell["read_retries"],
                "waits": cell["lock_waits"],
                "lost": cell["lost_updates"],
            },
        ))
    text = format_table(
        "Contention: N clients, one table (YCSB-A, Zipfian hot keys)",
        columns,
        rows,
        precision=1,
    )
    base, top = cells[0], cells[-1]
    if base["throughput_kops"] > 0:
        text += "\n" + format_ratio_note(
            f"{specs[-1].n_clients}-client speedup "
            f"{top['throughput_kops'] / base['throughput_kops']:.2f}x over "
            "1 client (fixed total work; simulated clock)"
        )
    text += "\n" + format_ratio_note(
        "lost-update / linearizability shadow check: "
        + ("PASS at every cell" if ok else "FAIL — see check_failures")
    )
    data = {
        "preset": "ycsb-a",
        "client_counts": list(CLIENT_COUNTS),
        "cells": cells,
        "ok": ok,
    }
    result = ExperimentResult(
        name="contention",
        paper_ref="Beyond the paper: multi-client contention (ROADMAP item 1)",
        data=data,
        text=text,
    )
    return attach_warnings(result, engine)
