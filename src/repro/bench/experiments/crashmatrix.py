"""Crash-matrix campaigns: the consistency claim as an enumerable test.

The paper argues (Sections 3.4 / 4.6) that group hashing needs no log
because its persist ordering makes every crash recoverable. This driver
turns that argument into a measured artifact: for each campaign cell —
a (scheme, backend, shard layout, workload, subset budget) tuple frozen
as a :class:`CrashMatrixSpec` — it records the persistence event log of
a deterministic workload and replays it once per crash boundary and
per word-survival schedule, recovering and checking the three oracles
of :mod:`repro.nvm.crashpoint` each time.

Cells run through the bench :class:`~repro.bench.engine.Engine`, so a
campaign deduplicates, fans out across ``--jobs`` workers, and caches:
a green matrix re-verifies from disk for free until the source tree
changes, at which point the code-version token forces a full re-run —
exactly the regression discipline CI wants.

The grid always includes the paper's scheme (group hashing), at least
one logged baseline (undo-log rollback exercises a *different* recovery
path), a :class:`~repro.core.sharded.ShardedTable` cell whose crash
domain is a single shard — proving shard independence, not just
single-table recoverability — and a *grow* cell: a
:class:`~repro.core.directory.DirectoryTable` under an insert-heavy
workload that forces several segment splits inside the recorded window,
so crash boundaries land mid-split and recovery must land on exactly
the old or the new directory state. A multi-client cell interleaves
several logical clients under the deterministic scheduler of
:mod:`repro.concurrency` and replays the serialized commit order, so
crash boundaries also land *between two different clients' in-flight
ops* — recovery is proven with concurrent work outstanding.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass

from repro.bench.config import build_table
from repro.bench.engine import default_engine, register_spec_kind
from repro.bench.experiments import ExperimentResult
from repro.bench.report import format_ratio_note, format_table
from repro.core import DirectoryTable, ShardedTable, recover_table
from repro.nvm.backend import MemoryBackend, RawBackend
from repro.nvm.crash import CrashSchedule
from repro.nvm.crashpoint import BatchOp, Op, run_campaign
from repro.obs import FlightRecorder
from repro.tables.cell import CellCodec, ItemSpec

#: schemes enumerated at the tiny (``--quick``) scale
QUICK_SCHEMES: tuple[str, ...] = ("group", "linear-L")

#: schemes enumerated at every larger scale (scheduled full runs)
FULL_SCHEMES: tuple[str, ...] = ("group", "linear-L", "pfht-L", "path-L")


@dataclass(frozen=True)
class CrashMatrixSpec:
    """One campaign cell, frozen so the engine can dedupe and cache it.

    ``n_shards=0`` campaigns a monolithic ``scheme`` table on
    ``backend``; ``n_shards>0`` campaigns a :class:`ShardedTable` (group
    scheme on raw shards — the sharded default) whose crash domain is
    shard 0 only.
    """

    scheme: str = "group"
    #: "raw" (fast, identical event semantics) or "sim" (full simulator)
    backend: str = "raw"
    total_cells: int = 256
    group_size: int = 32
    #: measured ops after pre-fill (the enumerated window)
    n_ops: int = 16
    #: pre-fill load factor (inserted before recording starts)
    prefill: float = 0.3
    #: strict word-survival subsets per boundary beyond the two extremes
    subset_budget: int = 2
    #: 0 = monolithic table; >0 = sharded with shard 0 as crash domain
    n_shards: int = 0
    #: True = directory-of-segments table (``DirectoryTable``) with an
    #: insert-heavy workload that forces splits inside the recorded
    #: window, so crash boundaries land mid-split
    grow: bool = False
    #: per-segment cells for ``grow`` cells (small, so splits are cheap
    #: to enumerate and frequent enough to cross ≥3 in the window)
    segment_cells: int = 8
    #: >0 = batched-insert workload: every insert op becomes a
    #: ``put_many`` of this many fresh items, so crash boundaries land
    #: inside the coalesced flush window and the per-key atomicity
    #: oracle checks subset survival
    batch: int = 0
    #: >0 = multi-client workload: ``n_ops`` total ops are split over
    #: this many logical clients and interleaved by the deterministic
    #: scheduler (:mod:`repro.concurrency`); the campaign replays the
    #: serialized commit order and counts boundaries that land between
    #: two different clients' in-flight ops
    clients: int = 0
    seed: int = 42

    def to_dict(self) -> dict:
        """JSON-ready field dict."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CrashMatrixSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(**payload)

    @property
    def label(self) -> str:
        """Report row label, e.g. ``group``, ``linear-L``, ``group x4``."""
        name = self.scheme
        if self.grow:
            name += "-dir"
        if self.n_shards:
            name += f" x{self.n_shards}"
        if self.batch:
            name += f" b{self.batch}"
        if self.clients:
            name += f" c{self.clients}"
        if self.backend != "raw":
            name += f" ({self.backend})"
        return name


def build_workload(
    spec: CrashMatrixSpec,
) -> tuple[dict[bytes, bytes], list[Op | BatchOp]]:
    """Deterministic (pre-fill items, measured op list) for one cell.

    Pure function of the spec: a seeded PRNG draws unique non-zero
    8-byte keys, pre-fills to ``spec.prefill`` load, then emits a
    repeating insert/delete/update/insert mix whose delete and update
    targets are drawn from the keys live at that point — so the
    workload crosses every commit discipline (fresh cell, tombstone,
    in-place overwrite) while staying replayable bit-for-bit. With
    ``spec.batch > 0`` every insert slot becomes a :class:`BatchOp` of
    that many fresh items, so the enumerated crash boundaries land
    inside the coalesced batch flush window (the deletes and updates in
    between keep scalar commits in the same trace)."""
    spec_fields = ItemSpec()
    rng = random.Random((spec.seed << 8) ^ 0xC4A5)
    used: set[bytes] = set()

    def fresh_key() -> bytes:
        while True:
            key = rng.getrandbits(64).to_bytes(spec_fields.key_size, "little")
            if any(key) and key not in used:
                used.add(key)
                return key

    def fresh_value() -> bytes:
        return rng.getrandbits(64).to_bytes(spec_fields.value_size, "little")

    n_prefill = max(2, int(spec.prefill * spec.total_cells))
    prefill = {fresh_key(): fresh_value() for _ in range(n_prefill)}
    shadow = dict(prefill)
    # grow cells skew heavily towards inserts so segments fill and split
    # *inside* the recorded window (the cell still crosses tombstone and
    # in-place-overwrite commits once each)
    kinds = (
        ("insert",) * 6 + ("update", "delete")
        if spec.grow
        else ("insert", "delete", "update", "insert")
    )
    ops: list[Op | BatchOp] = []
    for i in range(spec.n_ops):
        kind = kinds[i % len(kinds)]
        if kind == "insert" and spec.batch:
            batch = tuple(
                (fresh_key(), fresh_value()) for _ in range(spec.batch)
            )
            shadow.update(batch)
            ops.append(BatchOp("put_many", batch))
        elif kind == "insert":
            key, value = fresh_key(), fresh_value()
            shadow[key] = value
            ops.append(Op("insert", key, value))
        elif kind == "delete":
            key = sorted(shadow)[rng.randrange(len(shadow))]
            del shadow[key]
            ops.append(Op("delete", key))
        else:
            key = sorted(shadow)[rng.randrange(len(shadow))]
            value = fresh_value()
            shadow[key] = value
            ops.append(Op("update", key, value))
    return prefill, ops


def build_concurrent_workload(
    spec: CrashMatrixSpec,
) -> tuple[dict[bytes, bytes], list[Op], frozenset[int]]:
    """Deterministic multi-client workload for a ``clients > 0`` cell.

    Each client gets its own insert-heavy stream over a *disjoint* key
    slice (the low key byte is the client tag, so every op succeeds and
    the shadow oracle stays unambiguous), the streams run under the
    deterministic interleaver on a scratch harness, and the resulting
    physical commit order — plus the set of ops whose simulated-clock
    windows overlapped another client's in-flight op — becomes the
    campaign workload. Contention is still real: different clients'
    keys share lock stripes (groups) by hash collision, and every
    boundary inside an overlapped op's event window fires while another
    client's op is logically in flight."""
    from repro.concurrency import ClientOp, run_concurrent

    spec_fields = ItemSpec()
    rng = random.Random((spec.seed << 8) ^ 0xC4A5)
    prefill: dict[bytes, bytes] = {}
    n_prefill = max(2, int(spec.prefill * spec.total_cells))
    while len(prefill) < n_prefill:
        # low byte 0xEE tags pre-fill keys (client tags are 1..clients)
        key = ((rng.getrandbits(56) << 8) | 0xEE).to_bytes(
            spec_fields.key_size, "little"
        )
        prefill.setdefault(
            key, rng.getrandbits(64).to_bytes(spec_fields.value_size, "little")
        )

    per_client = max(1, spec.n_ops // spec.clients)
    kinds = ("insert", "insert", "update", "insert", "delete", "insert")
    streams: list[list[ClientOp]] = []
    for client in range(spec.clients):
        crng = random.Random((spec.seed << 8) ^ 0xCC ^ (client * 0x51))
        own: list[tuple[bytes, bytes]] = []
        ops: list[ClientOp] = []
        for i in range(per_client):
            kind = kinds[i % len(kinds)]
            if kind != "insert" and not own:
                kind = "insert"
            if kind == "insert":
                key = ((crng.getrandbits(56) << 8) | (client + 1)).to_bytes(
                    spec_fields.key_size, "little"
                )
                value = crng.getrandbits(64).to_bytes(
                    spec_fields.value_size, "little"
                )
                own.append((key, value))
                ops.append(ClientOp("insert", key, value))
            elif kind == "update":
                index = crng.randrange(len(own))
                value = crng.getrandbits(64).to_bytes(
                    spec_fields.value_size, "little"
                )
                own[index] = (own[index][0], value)
                ops.append(ClientOp("update", own[index][0], value))
            else:
                key, _ = own.pop(crng.randrange(len(own)))
                ops.append(ClientOp("delete", key))
        streams.append(ops)

    # the scratch run: same construction as every replay, so the
    # serialized commit order is exactly what the campaign re-executes
    scratch = make_harness(spec, prefill)
    result = run_concurrent(scratch.table, streams, seed=spec.seed)
    if not result.ok or not all(r.ok for r in result.committed):
        raise RuntimeError(
            f"concurrent workload for {spec.label} did not apply cleanly: "
            f"{result.check_failures[:3]}"
        )
    ops = [Op(r.op.kind, r.op.key, r.op.value) for r in result.committed]
    concurrent = frozenset(
        i for i, r in enumerate(result.committed) if r.concurrent
    )
    return prefill, ops, concurrent


class TableCampaignHarness:
    """:class:`~repro.nvm.crashpoint.CrashHarness` over one built table."""

    def __init__(self, built) -> None:
        self.built = built
        self.table = built.table

    @property
    def crash_backend(self) -> MemoryBackend:
        """The table's whole backend is the crash domain."""
        return self.built.region

    @property
    def split_count(self) -> int | None:
        """Segment splits so far (None for fixed-size schemes, which
        tells :func:`record_trace` not to track split windows)."""
        return getattr(self.table, "splits", None)

    def apply(self, op: Op | BatchOp) -> bool:
        """Route one workload op to the table."""
        if op.kind == "put_many":
            return all(self.table.put_many(list(op.items)))
        if op.kind == "insert":
            return self.table.insert(op.key, op.value)
        if op.kind == "delete":
            return self.table.delete(op.key)
        if op.kind == "update":
            return self.table.update(op.key, op.value)
        raise ValueError(f"unknown op kind {op.kind!r}")

    def crash(self, schedule: CrashSchedule) -> None:
        """Power-fail the backend under ``schedule``."""
        self.built.region.crash(schedule)

    def recover(self) -> None:
        """Reboot: reattach mirrors, run the scheme's recovery."""
        recover_table(self.table)

    def snapshot(self) -> dict[bytes, bytes]:
        """Recovered contents as a plain dict."""
        return dict(self.table.items())

    def integrity_violations(self) -> list[str]:
        """The table's structural self-checks."""
        return self.table.integrity_violations()


class ShardedCampaignHarness:
    """Harness whose crash domain is one shard of a sharded table.

    The workload routes over every shard, but only ``crash_shard``'s
    backend is recorded, armed, crashed and recovered — the campaign
    thereby checks both that the failed shard recovers and that the
    oracles hold over the *global* key space (untouched shards keep
    serving their committed items)."""

    def __init__(self, table: ShardedTable, crash_shard: int = 0) -> None:
        self.table = table
        self.crash_shard = crash_shard

    @property
    def crash_backend(self) -> MemoryBackend:
        """The crash shard's own backend."""
        return self.table.backend.shard(self.crash_shard)

    def apply(self, op: Op | BatchOp) -> bool:
        """Route one workload op through the shard router."""
        if op.kind == "put_many":
            return all(self.table.put_many(list(op.items)))
        if op.kind == "insert":
            return self.table.insert(op.key, op.value)
        if op.kind == "delete":
            return self.table.delete(op.key)
        if op.kind == "update":
            return self.table.update(op.key, op.value)
        raise ValueError(f"unknown op kind {op.kind!r}")

    def crash(self, schedule: CrashSchedule) -> None:
        """Power-fail only the crash shard."""
        self.table.crash(schedule, shard=self.crash_shard)

    def recover(self) -> None:
        """Reboot only the crash shard (others never went down)."""
        recover_table(self.table.tables[self.crash_shard])

    def snapshot(self) -> dict[bytes, bytes]:
        """Global contents across all shards."""
        return dict(self.table.items())

    def integrity_violations(self) -> list[str]:
        """Structural checks on every shard (the global invariant)."""
        problems: list[str] = []
        for i, shard_table in enumerate(self.table.tables):
            problems.extend(
                f"shard {i}: {p}" for p in shard_table.integrity_violations()
            )
        return problems


@dataclass
class _GrownBuilt:
    """Minimal ``build_table``-shaped carrier for the grow cell's
    directory table (what :class:`TableCampaignHarness` consumes)."""

    table: DirectoryTable
    region: MemoryBackend


def make_harness(
    spec: CrashMatrixSpec, prefill: dict[bytes, bytes]
) -> TableCampaignHarness | ShardedCampaignHarness:
    """Build one fresh, pre-filled harness for ``spec`` (the replay
    factory — every crash point reconstructs state through here)."""
    harness: TableCampaignHarness | ShardedCampaignHarness
    if spec.grow:
        if spec.scheme != "group" or spec.backend != "raw" or spec.n_shards:
            raise ValueError(
                "grow campaign cells use a monolithic DirectoryTable "
                "(group segments) on a raw backend"
            )
        # headroom: splits carve new segments (and doubled directory
        # arrays) out of the same never-reused bump allocator
        codec = CellCodec(ItemSpec())
        backend = RawBackend(
            codec.array_bytes(spec.total_cells * 8) + (1 << 16),
            name="growcell",
        )
        table = DirectoryTable(
            backend,
            spec.total_cells,
            ItemSpec(),
            segment_cells=spec.segment_cells,
            seed=spec.seed,
        )
        harness = TableCampaignHarness(_GrownBuilt(table, backend))
    elif spec.n_shards:
        if spec.scheme != "group" or spec.backend != "raw":
            raise ValueError(
                "sharded campaign cells use the sharded default "
                "(group scheme on raw shards)"
            )
        table = ShardedTable(
            spec.total_cells,
            ItemSpec(),
            n_shards=spec.n_shards,
            seed=spec.seed,
        )
        harness = ShardedCampaignHarness(table)
    else:
        built = build_table(
            spec.scheme,
            spec.total_cells,
            ItemSpec(),
            group_size=spec.group_size,
            seed=spec.seed,
            cache_ratio=4.0,
            backend=spec.backend,
        )
        harness = TableCampaignHarness(built)
    for key, value in prefill.items():
        if not harness.apply(Op("insert", key, value)):
            raise RuntimeError(
                f"pre-fill insert failed at load {spec.prefill} — lower "
                f"spec.prefill for {spec.label}"
            )
    return harness


def run_crash_matrix_spec(spec: CrashMatrixSpec) -> dict:
    """Execute one campaign cell; returns a JSON-ready summary dict.

    This is the engine executor for :class:`CrashMatrixSpec` (runs in
    pool workers), so the result must round-trip through JSON
    unchanged: counts, violation dicts, and the minimal failing event
    prefix as ``[kind, addr, size]`` triples."""
    concurrent: frozenset[int] = frozenset()
    if spec.clients:
        prefill, ops, concurrent = build_concurrent_workload(spec)
    else:
        prefill, ops = build_workload(spec)

    def factory():
        harness = make_harness(spec, prefill)
        harness.concurrent_ops = concurrent
        return harness

    result = run_campaign(
        factory,
        ops,
        subset_budget=spec.subset_budget,
        seed=spec.seed,
        prefill=prefill,
        recorder=FlightRecorder(),
    )
    prefix = result.minimal_failing_prefix()
    return {
        "scheme": spec.scheme,
        "backend": spec.backend,
        "n_shards": spec.n_shards,
        "batch": spec.batch,
        "clients": spec.clients,
        "ops": result.n_ops,
        "events": result.trace.n_events,
        "points": result.points,
        "splits": result.trace.n_splits,
        "split_points": result.split_points,
        "concurrent_points": result.concurrent_points,
        "replays": result.replays,
        "violations": [v.to_dict() for v in result.violations],
        "min_failing_prefix": (
            None if prefix is None else [e.to_list() for e in prefix]
        ),
        "failure_context": result.failure_context,
    }


register_spec_kind(CrashMatrixSpec, run_crash_matrix_spec)


def campaign_specs(
    scale,
    seed: int,
    *,
    schemes: tuple[str, ...] | None = None,
    backend: str = "raw",
    budget: int | None = None,
) -> list[CrashMatrixSpec]:
    """The campaign grid for one scale.

    Tiny scale is the CI smoke matrix (two schemes, small budget);
    anything larger widens to every logged baseline and a higher subset
    budget, and adds a simulator-backend cell so the costed region's
    event semantics stay covered too. A sharded cell (group scheme,
    shard-0 crash domain) and a batched-insert cell (coalesced
    ``put_many`` commits) are always present."""
    quick = scale.name == "tiny"
    chosen = tuple(schemes) if schemes else (
        QUICK_SCHEMES if quick else FULL_SCHEMES
    )
    subset_budget = budget if budget is not None else (2 if quick else 6)
    n_ops = 16 if quick else 24
    cells = 256 if quick else 512
    specs = [
        CrashMatrixSpec(
            scheme=scheme,
            backend=backend,
            total_cells=cells,
            group_size=32,
            n_ops=n_ops,
            subset_budget=subset_budget,
            seed=seed,
        )
        for scheme in chosen
    ]
    specs.append(
        CrashMatrixSpec(
            scheme="group",
            backend="raw",
            total_cells=cells,
            group_size=32,
            n_ops=n_ops + 8,
            subset_budget=subset_budget,
            n_shards=4,
            seed=seed,
        )
    )
    if not quick and backend == "raw":
        specs.append(
            CrashMatrixSpec(
                scheme="group",
                backend="sim",
                total_cells=cells,
                group_size=32,
                n_ops=n_ops,
                subset_budget=subset_budget,
                seed=seed,
            )
        )
    # the batched-insert cell: every insert is a coalesced put_many, so
    # crash boundaries land inside the shared flush window and the
    # per-key atomicity oracle proves subset survival is all coalescing
    # can cost (DESIGN.md decision 13)
    specs.append(
        CrashMatrixSpec(
            scheme="group",
            backend="raw",
            total_cells=cells,
            group_size=32,
            n_ops=8 if quick else 12,
            subset_budget=subset_budget,
            batch=4,
            seed=seed,
        )
    )
    # the mid-interleaving cell: three logical clients run under the
    # deterministic scheduler and the campaign replays the serialized
    # commit order — crash boundaries inside an overlapped op's window
    # fire while another client's op is logically in flight, proving
    # recovery with concurrent in-flight ops (DESIGN.md decision 14)
    specs.append(
        CrashMatrixSpec(
            scheme="group",
            backend="raw",
            total_cells=cells,
            group_size=32,
            n_ops=12 if quick else 18,
            subset_budget=subset_budget,
            clients=3,
            seed=seed,
        )
    )
    # the split-in-progress cell: tiny segments + insert-heavy mix so
    # several splits happen inside the recorded window and the campaign
    # enumerates crash boundaries landing mid-split
    specs.append(
        CrashMatrixSpec(
            scheme="group",
            backend="raw",
            total_cells=32,
            group_size=32,
            n_ops=24 if quick else 40,
            prefill=0.5,
            subset_budget=subset_budget,
            grow=True,
            segment_cells=8,
            seed=seed,
        )
    )
    return specs


def run(
    scale,
    seed: int = 42,
    engine=None,
    *,
    schemes: tuple[str, ...] | None = None,
    backend: str = "raw",
    budget: int | None = None,
) -> ExperimentResult:
    """Run the crash-matrix campaign grid and render the report."""
    engine = engine or default_engine()
    specs = campaign_specs(
        scale, seed, schemes=schemes, backend=backend, budget=budget
    )
    cells = engine.run(specs)

    columns = [
        "events", "points", "split_pts", "conc_pts", "replays", "violations"
    ]
    rows = []
    total_points = total_replays = total_violations = 0
    total_splits = total_split_points = total_batch_points = 0
    total_concurrent_points = 0
    first_prefix: list | None = None
    for spec, cell in zip(specs, cells):
        rows.append((
            spec.label,
            {
                "events": cell["events"],
                "points": cell["points"],
                "split_pts": cell["split_points"],
                "conc_pts": cell["concurrent_points"],
                "replays": cell["replays"],
                "violations": len(cell["violations"]),
            },
        ))
        total_points += cell["points"]
        total_replays += cell["replays"]
        total_violations += len(cell["violations"])
        total_splits += cell["splits"]
        total_split_points += cell["split_points"]
        total_concurrent_points += cell["concurrent_points"]
        if spec.batch:
            total_batch_points += cell["points"]
        if first_prefix is None and cell["min_failing_prefix"] is not None:
            first_prefix = cell["min_failing_prefix"]

    text = format_table(
        "Crash matrix: every persist boundary x word-survival schedules",
        columns,
        rows,
        precision=0,
    )
    text += "\n" + format_ratio_note(
        f"{total_points} crash points, {total_replays} replays, "
        f"{total_violations} oracle violation(s) "
        f"({'all schemes recover consistently' if not total_violations else 'FAIL'})"
    )
    text += "\n" + format_ratio_note(
        f"{total_splits} segment splits in-window, "
        f"{total_split_points} crash points landed mid-split "
        "(recovery must land on the old or the new directory state)"
    )
    text += "\n" + format_ratio_note(
        f"{total_batch_points} crash points in batched-insert cells "
        "(boundaries inside coalesced put_many flush windows; any "
        "surviving subset must be per-item intact)"
    )
    text += "\n" + format_ratio_note(
        f"{total_concurrent_points} crash points landed between two "
        "different clients' in-flight ops (recovery proven with "
        "concurrent work outstanding)"
    )
    if first_prefix is not None:
        text += "\n" + format_ratio_note(
            f"minimal failing prefix: {len(first_prefix)} event(s) "
            "(see the JSON dump for the event list)"
        )
    data = {
        "cells": [
            dict(cell, spec=spec.to_dict())
            for spec, cell in zip(specs, cells)
        ],
        "total_points": total_points,
        "total_replays": total_replays,
        "total_violations": total_violations,
        "total_splits": total_splits,
        "total_split_points": total_split_points,
        "total_batch_points": total_batch_points,
        "total_concurrent_points": total_concurrent_points,
        "ok": total_violations == 0,
    }
    return ExperimentResult(
        name="crashmatrix",
        paper_ref="Consistency claim (Sections 3.4 and 4.6)",
        data=data,
        text=text,
    )
