"""Engine characterisation — parallel speedup and cache effectiveness.

Not a paper figure: this experiment measures the benchmark execution
engine itself, on the Figure 5/6 spec grid.

- **Parallel scaling**: the full grid is executed cold (fresh cache
  directory) at ``jobs`` ∈ {1, 2, 4, 8} and the wall-clock speedup over
  the serial run is reported. Speedup is bounded by the machine's core
  count — the JSON payload records ``cpu_count`` so a 1-core CI runner's
  flat curve reads as expected, not broken.
- **Warm cache**: the grid is re-executed against the populated cache
  and the warm/cold wall-clock fraction reported (target: well under
  10 % — a warm run is pure JSON deserialisation).
- **Determinism**: the serial and widest-parallel result sets are
  serialised and compared byte-for-byte; ``identical`` must be true.

Wall-clock numbers are machine-dependent by nature — the JSON payload
records them for trend-watching, not for exact pinning.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from repro.bench.config import Scale
from repro.bench.experiments import ExperimentResult
from repro.bench.experiments.latency_matrix import grid_specs
from repro.bench.report import format_ratio_note, format_table

#: worker counts swept by the scaling measurement
JOBS_SWEEP = (1, 2, 4, 8)


def _encode_results(results) -> bytes:
    """Canonical byte serialisation of a result list (order-preserving)."""
    return json.dumps(
        [r.to_dict() for r in results], sort_keys=True, separators=(",", ":")
    ).encode()


def run(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Measure the engine's parallel scaling and cache hit path.

    The ``engine`` argument is accepted for CLI uniformity but unused:
    this experiment constructs its own engines (it measures them).
    """
    from repro.bench.cache import ResultCache
    from repro.bench.engine import Engine

    specs = list(grid_specs(scale, seed).values())
    cpu_count = os.cpu_count() or 1

    rows = []
    data: dict[str, object] = {
        "cpu_count": cpu_count,
        "grid_cells": len(specs),
        "jobs": {},
    }
    encodings: dict[int, bytes] = {}
    serial_cold = None
    with tempfile.TemporaryDirectory(prefix="bench-engine-") as tmp:
        for jobs in JOBS_SWEEP:
            root = os.path.join(tmp, f"jobs{jobs}")
            cold_engine = Engine(jobs=jobs, cache=ResultCache(root))
            start = time.perf_counter()
            results = cold_engine.run(specs)
            cold = time.perf_counter() - start
            encodings[jobs] = _encode_results(results)

            warm_engine = Engine(jobs=jobs, cache=ResultCache(root))
            start = time.perf_counter()
            warm_engine.run(specs)
            warm = time.perf_counter() - start
            if warm_engine.cache.misses:
                raise RuntimeError(
                    f"warm run missed the cache {warm_engine.cache.misses} times"
                )

            if serial_cold is None:
                serial_cold = cold
            row = {
                "cold_s": cold,
                "warm_s": warm,
                "speedup": serial_cold / cold if cold else float("inf"),
                "warm_fraction": warm / cold if cold else 0.0,
            }
            data["jobs"][jobs] = row  # type: ignore[index]
            rows.append((f"jobs={jobs}", row))

    identical = all(enc == encodings[1] for enc in encodings.values())
    data["identical"] = identical
    if not identical:
        raise RuntimeError("parallel execution changed the results")

    best = max(
        JOBS_SWEEP,
        key=lambda j: data["jobs"][j]["speedup"],  # type: ignore[index]
    )
    text = "\n".join(
        [
            format_table(
                f"Engine: cold/warm wall-clock over the {len(specs)}-cell "
                f"Figure 5/6 grid ({cpu_count} CPU core(s) available)",
                ("cold_s", "warm_s", "speedup", "warm_fraction"),
                rows,
                precision=3,
            ),
            format_ratio_note(
                f"best speedup "
        f"{data['jobs'][best]['speedup']:.2f}x at "  # type: ignore[index]
                f"jobs={best}; results byte-identical across worker counts; "
                "speedup is bounded by the core count above"
            ),
        ]
    )
    return ExperimentResult(
        name="engine",
        paper_ref="Engine characterisation (infrastructure, not a paper figure)",
        data=data,
        text=text,
    )
