"""Figure 2 — the consistency cost of duplicate-copy (logging) writes.

The paper's motivation experiment: linear probing, PFHT and path hashing
with and without an undo log, on RandomNum at load factor 0.5. Panel (a)
is average request latency, panel (b) average L3 misses. Headline
numbers from the paper: the ``-L`` variants are **1.95×** slower and
produce **2.16×** more L3 misses on insert+delete, while queries are
unaffected (logging touches only write paths).
"""

from __future__ import annotations

from repro.bench.config import Scale
from repro.bench.experiments import ExperimentResult, attach_warnings
from repro.bench.report import format_ratio_note, format_table
from repro.bench.runner import RunSpec

PAIRS = (("linear", "linear-L"), ("pfht", "pfht-L"), ("path", "path-L"))
OPS = ("insert", "query", "delete")


def run(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Run the Figure 2 consistency-cost experiment at ``scale``."""
    from repro.bench.engine import default_engine

    engine = engine or default_engine()
    schemes = [scheme for pair in PAIRS for scheme in pair]
    specs = [
        RunSpec.from_scale(scheme, "randomnum", 0.5, scale, seed=seed)
        for scheme in schemes
    ]
    results = dict(zip(schemes, engine.run(specs)))

    latency_rows = []
    miss_rows = []
    for plain, logged in PAIRS:
        for scheme in (plain, logged):
            r = results[scheme]
            latency_rows.append(
                (scheme, {op: r.phase(op).avg_latency_ns for op in OPS})
            )
            miss_rows.append((scheme, {op: r.phase(op).avg_misses for op in OPS}))

    # the paper's headline: average -L/plain ratio over insert+delete
    lat_ratios, miss_ratios = [], []
    for plain, logged in PAIRS:
        for op in ("insert", "delete"):
            lat_ratios.append(
                results[logged].phase(op).avg_latency_ns
                / results[plain].phase(op).avg_latency_ns
            )
            miss_ratios.append(
                results[logged].phase(op).avg_misses
                / results[plain].phase(op).avg_misses
            )
    lat_ratio = sum(lat_ratios) / len(lat_ratios)
    miss_ratio = sum(miss_ratios) / len(miss_ratios)

    text = "\n".join(
        [
            format_table(
                "Figure 2(a): request latency, RandomNum, load factor 0.5",
                OPS,
                latency_rows,
                unit="simulated ns/request",
            ),
            format_ratio_note(
                f"logging slowdown (insert+delete avg): {lat_ratio:.2f}x "
                "(paper: 1.95x)"
            ),
            "",
            format_table(
                "Figure 2(b): L3 cache misses, RandomNum, load factor 0.5",
                OPS,
                miss_rows,
                unit="misses/request",
                precision=2,
            ),
            format_ratio_note(
                f"logging miss inflation (insert+delete avg): {miss_ratio:.2f}x "
                "(paper: 2.16x)"
            ),
        ]
    )
    result = ExperimentResult(
        name="fig2",
        paper_ref="Figure 2",
        data={
            "latency": {
            s: {op: results[s].phase(op).avg_latency_ns for op in OPS}
            for s in results
        },
            "misses": {
            s: {op: results[s].phase(op).avg_misses for op in OPS}
            for s in results
        },
            "latency_ratio": lat_ratio,
            "miss_ratio": miss_ratio,
        },
        text=text,
    )
    return attach_warnings(result, engine)
