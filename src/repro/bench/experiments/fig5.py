"""Figure 5 — average request latency across the full evaluation grid.

Seven schemes (linear, linear-L, PFHT, PFHT-L, path, path-L, group) ×
three traces × two load factors × three operations, reported in
simulated nanoseconds per request. The paper's qualitative shape:

- group and linear lead; path (non-contiguous probe paths) trails;
- the ``-L`` variants sit ~2× above their plain versions on writes;
- linear's delete collapses at load factor 0.75 (backward shifting);
- PFHT beats path at 0.5 but loses at 0.75 (stash search);
- Fingerprint (32-byte items) is slower than the 16-byte traces.
"""

from __future__ import annotations

from repro.bench.config import SCHEMES, Scale
from repro.bench.experiments import ExperimentResult, attach_warnings
from repro.bench.experiments.latency_matrix import (
    LOAD_FACTORS,
    OPS,
    TRACES,
    collect_matrix,
)
from repro.bench.report import format_table


def run(
    scale: Scale,
    seed: int = 42,
    engine=None,
    *,
    with_trace: bool = False,
    with_metrics: bool = False,
) -> ExperimentResult:
    """Run the Figure 5 latency grid at ``scale``. ``with_trace`` /
    ``with_metrics`` opt every grid cell into span tracing / metrics
    collection (the results then carry the observability blocks)."""
    from repro.bench.engine import default_engine

    engine = engine or default_engine()
    matrix = collect_matrix(
        scale, seed, engine, with_trace=with_trace, with_metrics=with_metrics
    )
    sections = []
    data: dict[str, dict] = {}
    for trace in TRACES:
        for lf in LOAD_FACTORS:
            rows = []
            for scheme in SCHEMES:
                r = matrix[(trace, lf, scheme)]
                rows.append(
                    (scheme, {op: r.phase(op).avg_latency_ns for op in OPS})
                )
                data.setdefault(trace, {}).setdefault(lf, {})[scheme] = {
                    op: r.phase(op).avg_latency_ns for op in OPS
                }
            sections.append(
                format_table(
                    f"Figure 5: request latency — {trace}, load factor {lf}",
                    OPS,
                    rows,
                    unit="simulated ns/request",
                )
            )
    result = ExperimentResult(
        name="fig5",
        paper_ref="Figure 5",
        data=data,
        text="\n\n".join(sections),
    )
    return attach_warnings(result, engine)
