"""Figure 6 — average L3 cache misses across the evaluation grid.

The same runs as Figure 5, reported as demand cache misses per request
(prefetch-covered sequential fills excluded, as they are invisible to a
demand-miss counter). The paper's shape: group and linear produce the
fewest misses (contiguous collision cells), path the most (each probe
level is a separate array), and the ``-L`` variants inflate misses ~2×
through clflush-invalidated log and cell lines.
"""

from __future__ import annotations

from repro.bench.config import SCHEMES, Scale
from repro.bench.experiments import ExperimentResult, attach_warnings
from repro.bench.experiments.latency_matrix import (
    LOAD_FACTORS,
    OPS,
    TRACES,
    collect_matrix,
)
from repro.bench.report import format_table


def run(
    scale: Scale,
    seed: int = 42,
    engine=None,
    *,
    with_trace: bool = False,
    with_metrics: bool = False,
) -> ExperimentResult:
    """Run the Figure 6 miss grid at ``scale``. ``with_trace`` /
    ``with_metrics`` opt every grid cell into span tracing / metrics
    collection (shared with Figure 5 through the matrix memo)."""
    from repro.bench.engine import default_engine

    engine = engine or default_engine()
    matrix = collect_matrix(
        scale, seed, engine, with_trace=with_trace, with_metrics=with_metrics
    )
    sections = []
    data: dict[str, dict] = {}
    for trace in TRACES:
        for lf in LOAD_FACTORS:
            rows = []
            for scheme in SCHEMES:
                r = matrix[(trace, lf, scheme)]
                rows.append((scheme, {op: r.phase(op).avg_misses for op in OPS}))
                data.setdefault(trace, {}).setdefault(lf, {})[scheme] = {
                    op: r.phase(op).avg_misses for op in OPS
                }
            sections.append(
                format_table(
                    f"Figure 6: L3 cache misses — {trace}, load factor {lf}",
                    OPS,
                    rows,
                    unit="misses/request",
                    precision=2,
                )
            )
    result = ExperimentResult(
        name="fig6",
        paper_ref="Figure 6",
        data=data,
        text="\n\n".join(sections),
    )
    return attach_warnings(result, engine)
