"""Figure 7 — space utilization ratios.

Utilization is "the load factor when an item fails to insert into the
hash table" (paper Section 4.4). Measured for PFHT, path hashing and
group hashing on each trace; linear probing is omitted exactly as in the
paper (it has no fixed utilization — probing can always continue to
load factor 1).

Paper shape: path highest (position sharing + two full paths), PFHT
slightly below, group ≈ 0.82 — the price of keeping collision cells
contiguous with a single hash function.
"""

from __future__ import annotations

from repro.bench.config import Scale
from repro.bench.experiments import ExperimentResult
from repro.bench.report import format_ratio_note, format_table
from repro.bench.runner import UtilizationSpec

SCHEMES = ("pfht", "path", "group")
TRACES = ("randomnum", "bagofwords", "fingerprint")


def run(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Run the Figure 7 utilization experiment at ``scale``."""
    from repro.bench.engine import default_engine

    engine = engine or default_engine()
    cells = [(scheme, trace) for scheme in SCHEMES for trace in TRACES]
    specs = [
        UtilizationSpec(
            scheme=scheme,
            trace=trace,
            total_cells=scale.total_cells,
            group_size=scale.group_size,
            seed=seed,
        )
        for scheme, trace in cells
    ]
    utils = dict(zip(cells, engine.run(specs)))

    data: dict[str, dict[str, float]] = {}
    rows = []
    for scheme in SCHEMES:
        values = {trace: utils[(scheme, trace)] for trace in TRACES}
        data[scheme] = values
        rows.append((scheme, values))
    text = "\n".join(
        [
            format_table(
                "Figure 7: space utilization ratio (load factor at first "
                "insertion failure)",
                TRACES,
                rows,
                precision=3,
            ),
            format_ratio_note(
                "paper shape: path > pfht > group, group ≈ 0.82 on all traces"
            ),
        ]
    )
    return ExperimentResult(name="fig7", paper_ref="Figure 7", data=data, text=text)
