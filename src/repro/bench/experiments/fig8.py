"""Figure 8 — effect of the group size.

Sweep the group size (the paper sweeps 64–1024; scaled presets sweep a
range with the same 16× span) on RandomNum at load factor 0.5,
reporting (a) request latency per operation and (b) the space
utilization ratio.

Paper shape: both latency *and* utilization increase with group size —
larger groups mean longer collision scans but more sharing flexibility;
256 is chosen as the knee (>80 % utilization at acceptable latency).
"""

from __future__ import annotations

from repro.bench.config import Scale
from repro.bench.experiments import ExperimentResult, attach_warnings
from repro.bench.report import format_ratio_note, format_table
from repro.bench.runner import RunSpec, UtilizationSpec

OPS = ("insert", "query", "delete")


def run(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Run the Figure 8 group-size sweep at ``scale``."""
    from repro.bench.engine import default_engine

    engine = engine or default_engine()
    # one mixed batch: a workload run and a utilization run per size
    run_specs = [
        RunSpec.from_scale(
            "group", "randomnum", 0.5, scale, seed=seed
        ).replace(group_size=group_size)
        for group_size in scale.group_sizes
    ]
    util_specs = [
        UtilizationSpec(
            scheme="group",
            trace="randomnum",
            total_cells=scale.total_cells,
            group_size=group_size,
            seed=seed,
        )
        for group_size in scale.group_sizes
    ]
    outcomes = engine.run([*run_specs, *util_specs])
    n = len(scale.group_sizes)
    results, utils = outcomes[:n], outcomes[n:]

    latency_rows = []
    util_rows = []
    data: dict[int, dict] = {}
    for group_size, result, util in zip(scale.group_sizes, results, utils):
        latencies = {op: result.phase(op).avg_latency_ns for op in OPS}
        latency_rows.append((str(group_size), latencies))
        util_rows.append((str(group_size), {"utilization": util}))
        data[group_size] = {"latency": latencies, "utilization": util}
    text = "\n".join(
        [
            format_table(
                "Figure 8(a): group size vs request latency "
                "(RandomNum, load factor 0.5)",
                OPS,
                latency_rows,
                unit="simulated ns/request",
            ),
            "",
            format_table(
                "Figure 8(b): group size vs space utilization",
                ("utilization",),
                util_rows,
                precision=3,
            ),
            format_ratio_note(
                "paper shape: latency and utilization both grow with group "
                "size; >0.8 utilization at the default size"
            ),
        ]
    )
    result = ExperimentResult(name="fig8", paper_ref="Figure 8", data=data, text=text)
    return attach_warnings(result, engine)
