"""Growth experiment — online segment splits vs stop-the-world rebuilds.

The paper's table never grows: a full table rejects inserts (Figure 7
measures exactly where). Production stores grow online, and the question
that matters is *what growth costs the ops that are in flight*. Each
cell (:class:`~repro.bench.runner.GrowthSpec`) answers it twice on the
same deterministic op stream:

- **incremental** — a :class:`~repro.core.DirectoryTable` splits one
  full segment at a time, so growth cost lands on the few ops that
  trigger splits and ``during-split p99`` is the tail a client sees;
- **legacy** — :class:`~repro.core.GrowableTable` in ``rebuild`` mode
  re-inserts the whole table into a doubled one, so the triggering op
  absorbs the entire pause.

The headline claim (asserted by ``tests/test_growth.py`` and reported
here) is that the during-split p99 stays strictly below the legacy
rebuild pause for the same workload. Cells run through the engine, so
the grid deduplicates, caches, and is byte-identical across ``--jobs``.
"""

from __future__ import annotations

from repro.bench.config import Scale
from repro.bench.experiments import ExperimentResult, attach_warnings
from repro.bench.report import format_percentile_table, format_ratio_note
from repro.bench.runner import GrowthSpec


def growth_specs(scale: Scale, seed: int) -> list[GrowthSpec]:
    """The cell grid: the scale's default geometry plus a half-size
    segment variant (smaller segments = more, cheaper splits)."""
    base = GrowthSpec.from_scale(scale, seed=seed)
    return [base, base.replace(segment_cells=max(16, base.segment_cells // 2))]


def run(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Run the growth grid at ``scale`` and render the comparison."""
    from repro.bench.engine import default_engine

    engine = engine or default_engine()
    specs = growth_specs(scale, seed)
    cells = engine.run(specs)

    sections: list[str] = []
    data: dict[str, object] = {"cells": []}
    all_ok = True
    for spec, cell in zip(specs, cells):
        inc, leg = cell["incremental"], cell["legacy"]
        label = f"seg={spec.segment_cells}"
        rows = [
            ("steady", inc["steady"]),
            ("during-split", inc["during_split"]),
            ("overall", inc["overall"]),
            ("legacy steady", leg["steady"]),
            ("legacy overall", leg["overall"]),
        ]
        sections.append(
            format_percentile_table(
                f"Growth {label}: per-op latency while the table grows "
                f"({spec.initial_cells} -> {inc['final_capacity']} cells)",
                rows,
            )
        )
        ratio = cell["rebuild_pause_ns"] / max(1.0, cell["split_p99_ns"])
        verdict = "OK" if cell["split_p99_below_rebuild_pause"] else "FAIL"
        sections.append(
            format_ratio_note(
                f"{inc['splits']} splits ({inc['doublings']} directory "
                f"doubling(s)) vs {leg['expansions']} legacy rebuild(s): "
                f"during-split p99 {cell['split_p99_ns']:.0f} ns vs rebuild "
                f"pause {cell['rebuild_pause_ns']:.0f} ns "
                f"({ratio:.1f}x smaller — {verdict})"
            )
        )
        all_ok = all_ok and cell["split_p99_below_rebuild_pause"]
        data["cells"].append(dict(cell, spec=spec.to_dict()))
    data["ok"] = all_ok

    result = ExperimentResult(
        name="growth",
        paper_ref="Online growth (incremental splits, beyond the paper)",
        data=data,
        text="\n\n".join(sections),
    )
    return attach_warnings(result, engine)
