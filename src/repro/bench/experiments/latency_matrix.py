"""Shared measurement matrix for Figures 5 and 6.

Both figures come from the same runs — Figure 5 reports the simulated
request latency and Figure 6 the L3 miss counts — so the matrix of
(trace × load factor × scheme) workload runs is declared as one spec
grid, executed through the :class:`~repro.bench.engine.Engine` (which
parallelises and caches the cells), and memoised per (scale, seed)
within the process.
"""

from __future__ import annotations

from repro.bench.config import SCHEMES, Scale
from repro.bench.runner import RunResult, RunSpec

#: the paper's evaluation grid
TRACES = ("randomnum", "bagofwords", "fingerprint")
LOAD_FACTORS = (0.5, 0.75)
OPS = ("insert", "query", "delete")

_cache: dict[
    tuple[str, int, bool, bool], dict[tuple[str, float, str], RunResult]
] = {}


def grid_specs(
    scale: Scale,
    seed: int = 42,
    *,
    with_trace: bool = False,
    with_metrics: bool = False,
) -> dict[tuple[str, float, str], RunSpec]:
    """The full (trace, load factor, scheme) grid as ordered specs."""
    return {
        (trace, lf, scheme): RunSpec.from_scale(
            scheme,
            trace,
            lf,
            scale,
            seed=seed,
            with_trace=with_trace,
            with_metrics=with_metrics,
        )
        for trace in TRACES
        for lf in LOAD_FACTORS
        for scheme in SCHEMES
    }


def collect_matrix(
    scale: Scale,
    seed: int = 42,
    engine=None,
    *,
    with_trace: bool = False,
    with_metrics: bool = False,
) -> dict[tuple[str, float, str], RunResult]:
    """Run (or fetch memoised) workloads for every grid cell."""
    key = (scale.name, seed, with_trace, with_metrics)
    if key in _cache:
        return _cache[key]
    from repro.bench.engine import default_engine

    engine = engine or default_engine()
    specs = grid_specs(
        scale, seed, with_trace=with_trace, with_metrics=with_metrics
    )
    results = engine.run(list(specs.values()))
    matrix = dict(zip(specs.keys(), results))
    _cache[key] = matrix
    return matrix


def clear_cache() -> None:
    """Drop memoised runs (tests use this to force fresh measurements)."""
    _cache.clear()
