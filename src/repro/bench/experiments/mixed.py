"""Mixed-workload experiment — YCSB-style op mixes with tail latency.

The paper measures pure phases and reports averages; this experiment
measures what serving mixed traffic actually feels like: for every
(scheme, preset, load factor) cell it runs an interleaved op stream
(:mod:`repro.bench.workload`) and reports **per-op simulated-latency
percentiles** (p50/p95/p99/max) instead of a single mean.

Grid: all five scheme families of the paper's comparison — group,
linear±L, PFHT±L, path±L — plus level hashing, across the five YCSB
core presets (A update-heavy, B read-mostly, C read-only, D read-latest
with inserts, F read-modify-write) and the standard load factors. Cells
are frozen :class:`~repro.bench.runner.MixedSpec` instances routed
through the engine, so the grid deduplicates, caches and parallelises
exactly like the figure benches.

The report prints one percentile table per (preset, load factor) panel
and an update-tail drill-down for the update-heavy preset; the
structured payload carries every cell's full summary plus the
reconciliation numbers (Σ per-op ns vs the phase ``MemStats`` delta —
exactly equal, pinned by ``tests/test_mixed.py``).
"""

from __future__ import annotations

from repro.bench.config import Scale
from repro.bench.experiments import ExperimentResult, attach_warnings
from repro.bench.report import format_percentile_table, format_ratio_note
from repro.bench.runner import MixedResult, MixedSpec
from repro.bench.workload import PRESET_ORDER

#: the five scheme families compared (paper grid + level hashing)
MIXED_SCHEMES: tuple[str, ...] = (
    "group",
    "linear",
    "linear-L",
    "pfht",
    "pfht-L",
    "path",
    "path-L",
    "level",
)

#: load factors per scale: one panel at the tiny (CI smoke) scale,
#: the paper's two standard points everywhere else
QUICK_LOAD_FACTORS: tuple[float, ...] = (0.5,)
FULL_LOAD_FACTORS: tuple[float, ...] = (0.5, 0.75)


def load_factors(scale: Scale) -> tuple[float, ...]:
    """The load-factor axis for ``scale``."""
    return QUICK_LOAD_FACTORS if scale.name == "tiny" else FULL_LOAD_FACTORS


def mixed_specs(
    scale: Scale,
    seed: int,
    *,
    schemes: tuple[str, ...] = MIXED_SCHEMES,
    presets: tuple[str, ...] = PRESET_ORDER,
) -> list[MixedSpec]:
    """The full (scheme × preset × load factor) spec grid, frozen."""
    return [
        MixedSpec.from_scale(scheme, preset, lf, scale, seed=seed)
        for preset in presets
        for lf in load_factors(scale)
        for scheme in schemes
    ]


def _drift(result: MixedResult) -> float:
    """ns/op disagreement between Σ per-op deltas and the phase delta."""
    ops = max(1, result.total.get("count", 0))
    return (
        abs(
            result.extras.get("op_sim_ns", 0.0)
            - result.extras.get("phase_sim_ns", 0.0)
        )
        / ops
    )


def run(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Run the mixed-workload grid at ``scale`` and render the
    percentile tables."""
    from repro.bench.engine import default_engine

    engine = engine or default_engine()
    specs = mixed_specs(scale, seed)
    results = dict(zip(specs, engine.run(specs)))

    sections: list[str] = []
    data: dict[str, dict] = {}
    max_drift = 0.0
    for preset in PRESET_ORDER:
        for lf in load_factors(scale):
            rows = []
            for scheme in MIXED_SCHEMES:
                spec = MixedSpec.from_scale(scheme, preset, lf, scale, seed=seed)
                result = results[spec]
                rows.append((scheme, result.total))
                cell = data.setdefault(preset, {}).setdefault(lf, {})
                cell[scheme] = {
                    "total": result.total,
                    "per_kind": result.per_kind,
                    "histogram": result.histogram,
                    "failed_ops": result.failed_ops,
                    "fill_count": result.fill_count,
                    "capacity": result.capacity,
                    "reconciliation": {
                        "op_sim_ns": result.extras.get("op_sim_ns"),
                        "phase_sim_ns": result.extras.get("phase_sim_ns"),
                        "drift_ns_per_op": _drift(result),
                    },
                    "worst_op": result.extras.get("worst_op"),
                }
                max_drift = max(max_drift, _drift(result))
            sections.append(
                format_percentile_table(
                    f"Mixed workload {preset}: per-op tail latency — "
                    f"load factor {lf}",
                    rows,
                )
            )

    # drill-down: where the update tail lives on the update-heavy preset
    drill_lf = load_factors(scale)[0]
    rows = []
    for scheme in MIXED_SCHEMES:
        spec = MixedSpec.from_scale(scheme, "ycsb-a", drill_lf, scale, seed=seed)
        summary = results[spec].per_kind.get("update")
        if summary:
            rows.append((scheme, summary))
    if rows:
        sections.append(
            format_percentile_table(
                f"ycsb-a update ops only — load factor {drill_lf}", rows
            )
        )
    sections.append(
        format_ratio_note(
            "per-op deltas telescope over each phase: max reconciliation "
            f"drift {max_drift:.3f} ns/op across {len(specs)} cells"
        )
    )

    result = ExperimentResult(
        name="mixed",
        paper_ref="Mixed workloads (YCSB-style extension, not in the paper)",
        data=data,
        text="\n\n".join(sections),
    )
    return attach_warnings(result, engine)
