"""Negative queries — the case the paper's protocol never measures.

The paper's query phase looks up items that exist. Cache workloads are
dominated by *misses* (that is why they are caches), and absent-key
lookups stress exactly the structures the paper's schemes differ on:

- linear probing stops at the first empty cell (short at lf 0.5);
- group hashing must scan the colliding key's **entire level-2 group**
  before declaring absence;
- PFHT must scan both buckets **and the whole stash**;
- path hashing visits every reserved level.

This experiment fills to a load factor and then queries keys drawn from
the same distribution but never inserted, reporting simulated latency
and misses per negative lookup — an honest cost the paper's evaluation
design hides, and a caveat EXPERIMENTS.md states explicitly.
"""

from __future__ import annotations

from repro.bench.config import Scale
from repro.bench.experiments import ExperimentResult
from repro.bench.report import format_ratio_note, format_table
from repro.bench.runner import NegativeQuerySpec

SCHEMES = ("linear", "pfht", "path", "group", "level")
LOAD_FACTORS = (0.5, 0.75)


def run(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Run the negative-query extension experiment at ``scale``."""
    from repro.bench.engine import default_engine

    engine = engine or default_engine()
    cells = [(scheme, lf) for scheme in SCHEMES for lf in LOAD_FACTORS]
    specs = [
        NegativeQuerySpec(
            scheme=scheme,
            load_factor=lf,
            total_cells=scale.total_cells,
            group_size=scale.group_size,
            measure_ops=scale.measure_ops,
            cache_ratio=scale.cache_ratio,
            seed=seed,
        )
        for scheme, lf in cells
    ]
    outcomes = dict(zip(cells, engine.run(specs)))

    data: dict[str, dict[float, dict[str, float]]] = {}
    rows_by_lf: dict[float, list] = {lf: [] for lf in LOAD_FACTORS}
    for scheme in SCHEMES:
        data[scheme] = {}
        for lf in LOAD_FACTORS:
            values = outcomes[(scheme, lf)]
            data[scheme][lf] = values
            rows_by_lf[lf].append((scheme, values))
    sections = [
        format_table(
            f"Negative (absent-key) queries — RandomNum, load factor {lf}",
            ("latency_ns", "misses"),
            rows_by_lf[lf],
            precision=2,
        )
        for lf in LOAD_FACTORS
    ]
    sections.append(
        format_ratio_note(
            "extension: the paper only queries present keys; absence "
            "proofs cost each scheme its full probe structure"
        )
    )
    return ExperimentResult(
        name="negative",
        paper_ref="extension (negative queries)",
        data=data,
        text="\n\n".join(sections),
    )
