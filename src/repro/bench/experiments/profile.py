"""Profile experiment — where every simulated nanosecond goes.

Runs the paper's measurement protocol for a handful of schemes with the
observability layer enabled (``with_trace`` + ``with_metrics``) and
reports, per scheme:

- an **attribution table**: simulated ns, self time and persist events
  by span path (``insert/kv_write``, ``delete/backward_shift``, ...),
  heaviest first — the per-operation breakdown Figures 5/6 aggregate
  away;
- **probe-length histograms** (log2 buckets) for every probe metric the
  scheme records;
- the **top-k hottest level-2 groups** for group hashing (overflow
  pressure heat map).

The structured payload additionally carries a merged Chrome
``trace_event`` stream (one pid per scheme) that the CLI writes next to
the ``--json`` report for ``chrome://tracing`` / Perfetto, plus the
span-vs-MemStats reconciliation numbers the acceptance tests check.
"""

from __future__ import annotations

from repro.bench.config import Scale
from repro.bench.experiments import ExperimentResult, attach_warnings
from repro.bench.report import format_histogram
from repro.bench.runner import RunResult, RunSpec
from repro.obs import Heat

#: schemes profiled by default: the paper's contribution, the two probe
#: styles that bracket it, and one logged variant for WAL attribution
PROFILE_SCHEMES = ("group", "linear", "linear-L", "pfht", "path")

#: attribution-table rows shown per scheme (heaviest span paths first)
TOP_SPANS = 14

#: hottest level-2 groups listed for group hashing
TOP_GROUPS = 8


def _attribution_table(scheme: str, spans: dict) -> str:
    """Render one scheme's span summary as an aligned attribution table."""
    lines = [
        f"Attribution — {scheme}  [simulated ns by span path]",
        f"  {'span path':<34}{'count':>8}{'sim ns':>14}{'ns/op':>10}"
        f"{'self ns':>14}{'flush':>7}{'fence':>7}{'write':>7}",
    ]
    for path, agg in list(spans.items())[:TOP_SPANS]:
        count = agg["count"] or 1
        lines.append(
            f"  {path:<34}{agg['count']:>8}{agg['sim_ns']:>14.0f}"
            f"{agg['sim_ns'] / count:>10.1f}{agg['self_ns']:>14.0f}"
            f"{agg['ev_flush']:>7}{agg['ev_fence']:>7}{agg['ev_write']:>7}"
        )
    if len(spans) > TOP_SPANS:
        lines.append(f"  ... {len(spans) - TOP_SPANS} more span path(s)")
    return "\n".join(lines)


def _heat_section(metrics: dict) -> str | None:
    """Render the hottest overflow groups, when the scheme records them."""
    payload = metrics.get("heats", {}).get("group.overflow_heat")
    if not payload:
        return None
    heat = Heat.from_dict(payload)
    lines = [f"Hottest level-2 groups  [overflow probes, total={heat.total}]"]
    for group, hits in heat.top(TOP_GROUPS):
        lines.append(f"  group {group:>6}  {hits:>8}")
    return "\n".join(lines)


def _wear_section(metrics: dict) -> str | None:
    """Render the ``wear.*`` summary gauges the runner exports when the
    region tracks per-line medium writes."""
    gauges = metrics.get("gauges", {})
    if "wear.max_line_writes" not in gauges:
        return None
    return (
        "Wear  [medium line writes]\n"
        f"  lines touched {gauges.get('wear.lines_touched', 0):>8.0f}"
        f"   max/line {gauges.get('wear.max_line_writes', 0):>6.0f}"
        f"   mean/line {gauges.get('wear.mean_line_writes', 0):>8.2f}\n"
        f"  imbalance {gauges.get('wear.imbalance', 0):>12.2f}"
        f"   gini {gauges.get('wear.gini', 0):>9.3f}"
        f"   hot-1% share {gauges.get('wear.hot1pct_share', 0):>5.3f}"
    )


def _chrome_events(scheme: str, pid: int, result: RunResult) -> list[dict]:
    """Re-pid one cell's trace events and prepend the process metadata."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 1,
            "args": {"name": scheme},
        }
    ]
    for ev in result.trace_events or []:
        events.append({**ev, "pid": pid})
    return events


def run(
    scale: Scale,
    seed: int = 42,
    engine=None,
    *,
    schemes: tuple[str, ...] | None = None,
    trace: str = "randomnum",
    load_factor: float = 0.5,
) -> ExperimentResult:
    """Profile ``schemes`` (default :data:`PROFILE_SCHEMES`) at
    ``scale``: per-scheme span attribution, probe histograms, group heat
    and a merged Chrome trace."""
    from repro.bench.engine import default_engine

    engine = engine or default_engine()
    schemes = tuple(schemes or PROFILE_SCHEMES)
    specs = {
        scheme: RunSpec.from_scale(
            scheme,
            trace,
            load_factor,
            scale,
            seed=seed,
            with_trace=True,
            with_metrics=True,
        )
        for scheme in schemes
    }
    results = dict(zip(specs.keys(), engine.run(list(specs.values()))))

    sections: list[str] = []
    data: dict[str, object] = {"schemes": {}, "chrome_trace": None}
    trace_events: list[dict] = []
    for pid, (scheme, result) in enumerate(results.items(), start=1):
        spans = (result.spans or {}).get("spans", {})
        metrics = result.metrics or {}
        block = [_attribution_table(scheme, spans)]
        for name, payload in sorted(metrics.get("histograms", {}).items()):
            if name.endswith("_probe_cells") or name.endswith("_shifts"):
                block.append(format_histogram(f"{name}", payload))
        heat = _heat_section(metrics)
        if heat is not None:
            block.append(heat)
        wear = _wear_section(metrics)
        if wear is not None:
            block.append(wear)
        span_ns = result.extras.get("span_sim_ns", 0.0)
        phase_ns = result.extras.get("phase_sim_ns", 0.0)
        ops = result.insert.ops + result.query.ops + result.delete.ops
        block.append(
            f"reconciliation: span ns {span_ns:.0f} vs phase ns "
            f"{phase_ns:.0f} over {ops} ops "
            f"(drift {abs(span_ns - phase_ns) / max(1, ops):.3f} ns/op)"
        )
        sections.append("\n\n".join(block))
        data["schemes"][scheme] = {  # type: ignore[index]
            "spans": result.spans,
            "metrics": result.metrics,
            "reconciliation": {
                "span_sim_ns": span_ns,
                "phase_sim_ns": phase_ns,
                "ops": ops,
            },
        }
        trace_events.extend(_chrome_events(scheme, pid, result))

    data["chrome_trace"] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"clock": "simulated"},
    }
    result = ExperimentResult(
        name="profile",
        paper_ref="Attribution profile (observability extension)",
        data=data,
        text="\n\n".join(sections),
    )
    return attach_warnings(result, engine)
