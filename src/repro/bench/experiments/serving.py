"""Serving experiment — networked clients over the sharded table.

The paper benchmarks the scheme as a local structure; this experiment
puts the full serving stack in front of it (ROADMAP item 3): M
simulated remote clients drive the doorbell-batching router of
:mod:`repro.serving` over a growable :class:`~repro.core.ShardedTable`
on per-shard simulated-NVM regions, with the network priced by a frozen
:class:`~repro.serving.netmodel.NetworkModel` on the same simulated
clock as the memory hierarchy.

The grid is {4, 16, 64} clients × batch size {1, 8} × location cache
{off, on} under a YCSB-D stream (read-latest with fresh inserts — the
inserts split segments mid-run, which is exactly what makes client-side
location hints go stale and exercises the miss-and-retry repair). Two
effects must fall out of the numbers at 64 clients:

- **batching** (b8 vs b1, cache off) lifts simulated ops/sec — the
  router's same-kind runs go through the coalesced batch APIs, so a
  flushed batch costs less NVM time than its ops served one by one;
- **location caching** (on vs off at b8) lifts it further — hinted
  queries bypass the shard queues entirely, taking load off the
  serialized servers.

Every cell is a frozen :class:`ServingSpec` routed through the bench
engine (dedup, cache, ``--jobs`` fan-out, byte-identical results), and
carries the shadow-check verdict, the stale-hint repair counters (with
``wrong_answers`` required to be 0) and a final-table digest, which
``scripts/ci_perf_gate.py --section serving`` turns into a hard CI
gate.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from types import SimpleNamespace

from repro.bench.config import Scale, make_trace
from repro.bench.engine import default_engine, register_spec_kind
from repro.bench.experiments import ExperimentResult, attach_warnings
from repro.bench.experiments.contention import build_client_streams
from repro.bench.report import format_ratio_note, format_table
from repro.bench.runner import fill_to_load_factor
from repro.concurrency import table_digest
from repro.core import ShardedTable
from repro.nvm import CacheConfig, NVMRegion, SimConfig, TECHNOLOGY_PRESETS
from repro.obs import MetricsRegistry, WindowSeries
from repro.serving import NETWORK_PRESETS, run_serving
from repro.tables.cell import CellCodec

#: the client-count axis (the acceptance grid: 4, 16 and 64 clients)
CLIENT_COUNTS: tuple[int, ...] = (4, 16, 64)

#: doorbell sizes: 1 = flush every op (no batching), 8 = coalesce
BATCH_SIZES: tuple[int, ...] = (1, 8)

#: timeline windows are rebucketed down to at most this many
MAX_TIMELINE_WINDOWS = 64


@dataclass(frozen=True)
class ServingSpec:
    """One serving cell: M clients through the router, frozen for the
    engine.

    ``n_ops`` is the *total* op budget split evenly across clients
    (strong scaling, like the contention grid), so throughput moves
    come from batching, caching and queueing — not from work volume.
    ``load_factor`` targets the table's *initial* capacity; YCSB-D's
    inserts push segments past it mid-run, forcing the splits that make
    location hints go stale."""

    preset: str = "ycsb-d"
    trace: str = "randomnum"
    load_factor: float = 0.95
    total_cells: int = 1 << 12
    segment_cells: int = 64
    n_shards: int = 4
    n_clients: int = 16
    n_ops: int = 800
    batch_max: int = 8
    batch_wait_ns: float = 4000.0
    #: server CPU per doorbell flush / per request (amortized vs not)
    wakeup_ns: float = 1500.0
    dispatch_ns: float = 250.0
    location_cache: bool = True
    net: str = "rdma-dc"
    seed: int = 42
    tech: str = "paper-nvm"
    cache_ratio: float = 8.0
    window_ns: float = 50_000.0

    @classmethod
    def from_scale(
        cls,
        n_clients: int,
        batch_max: int,
        location_cache: bool,
        scale: Scale,
        **kw,
    ) -> "ServingSpec":
        """Build a spec sized to ``scale`` (cells, op budget = 8× the
        scale's measured ops so even 64-way splits leave each client
        enough ops to warm its location cache and hit stale hints)."""
        return cls(
            n_clients=n_clients,
            batch_max=batch_max,
            location_cache=location_cache,
            total_cells=scale.total_cells,
            n_ops=scale.measure_ops * 8,
            cache_ratio=scale.cache_ratio,
            **kw,
        )

    def replace(self, **changes) -> "ServingSpec":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-ready field dict (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ServingSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(**data)

    @property
    def label(self) -> str:
        """Report row label, e.g. ``64c b8 +loc``."""
        suffix = " +loc" if self.location_cache else ""
        return f"{self.n_clients}c b{self.batch_max}{suffix}"


def build_serving_table(spec: ServingSpec) -> ShardedTable:
    """Growable sharded table on per-shard simulated-NVM regions.

    Each shard's cache is sized from its *initial* table bytes (the
    same ``cache_ratio`` story as the monolithic benches) while the
    region itself carries 8× headroom for split segments — sizing the
    cache from the headroom would quietly weaken the miss pressure the
    cost model turns on."""
    trace = make_trace(spec.trace, seed=spec.seed)
    item_spec = trace.spec
    codec = CellCodec(item_spec)
    per_shard = -(-spec.total_cells // spec.n_shards)
    table_bytes = codec.array_bytes(per_shard)
    cache_bytes = max(4096, int(table_bytes / spec.cache_ratio))
    config = SimConfig(
        latency=TECHNOLOGY_PRESETS[spec.tech],
        cache=CacheConfig(size_bytes=cache_bytes, line_size=64, associativity=8),
        flush_invalidates=True,
        track_wear=True,
    )
    size = int(table_bytes * 1.25) * 8 + (1 << 16)

    def factory(shard: int) -> NVMRegion:
        return NVMRegion(size, config, name=f"serve-shard{shard}")

    return ShardedTable(
        spec.total_cells,
        item_spec,
        n_shards=spec.n_shards,
        seed=spec.seed,
        backend_factory=factory,
        growable=True,
        segment_cells=spec.segment_cells,
    )


def run_serving_spec(spec: ServingSpec) -> dict:
    """Execute one serving cell; returns a JSON-ready summary dict.

    This is the engine executor for :class:`ServingSpec` (runs in pool
    workers): build the sharded table, fill it, build the per-client
    YCSB streams, run the serving driver with metrics + timeline
    attached, and flatten the result — shadow verdict, stale-hint
    counters, final-table digest and the rebucketed queue-depth/latency
    timeline — into plain JSON."""
    trace = make_trace(spec.trace, seed=spec.seed)
    table = build_serving_table(spec)
    stream = trace.unique_items()
    resident, fill_failures = fill_to_load_factor(
        SimpleNamespace(table=table, scheme="sharded"), stream, spec.load_factor
    )
    streams = build_client_streams(spec, resident, stream)
    metrics = MetricsRegistry()
    timeline = WindowSeries(spec.window_ns)
    splits_before = table.splits
    result = run_serving(
        table,
        streams,
        net=NETWORK_PRESETS[spec.net],
        batch_max=spec.batch_max,
        batch_wait_ns=spec.batch_wait_ns,
        wakeup_ns=spec.wakeup_ns,
        dispatch_ns=spec.dispatch_ns,
        location_cache=spec.location_cache,
        seed=spec.seed,
        metrics=metrics,
        timeline=timeline,
    )
    windows = timeline.windows()
    if len(windows) > MAX_TIMELINE_WINDOWS:
        timeline = timeline.rebucketed(
            math.ceil(len(windows) / MAX_TIMELINE_WINDOWS)
        )
    return {
        "spec": spec.to_dict(),
        "clients": spec.n_clients,
        "ops": result.ops,
        "committed": len(result.committed),
        "failed_ops": result.failed_ops,
        "span_ns": result.span_ns,
        "throughput_kops": result.throughput_kops(),
        "total": result.overall.summary(),
        "per_client": [rec.summary() for rec in result.per_client],
        "one_sided_reads": result.one_sided_reads,
        "routed_ops": result.routed_ops,
        "hint_misses": result.hint_misses,
        "wrong_answers": result.wrong_answers,
        "flushes": result.flushes,
        "mean_batch": result.mean_batch(),
        "max_queue_depth": result.max_queue_depth,
        "splits_during_run": table.splits - splits_before,
        "shadow_failures": len(result.check_failures),
        "check_failures": list(result.check_failures),
        "table_digest": table_digest(table),
        "fill_count": len(resident),
        "fill_failures": fill_failures,
        "metrics": metrics.as_dict(),
        "timeline": timeline.as_dict(),
    }


register_spec_kind(ServingSpec, run_serving_spec)


def serving_specs(scale: Scale, seed: int) -> list[ServingSpec]:
    """The clients × batch × location-cache grid for one scale."""
    return [
        ServingSpec.from_scale(n, batch, cache, scale, seed=seed)
        for n in CLIENT_COUNTS
        for batch in BATCH_SIZES
        for cache in (False, True)
    ]


def _cell(cells, specs, *, n_clients, batch_max, location_cache) -> dict | None:
    """The grid cell matching the given axes, or ``None``."""
    for spec, cell in zip(specs, cells):
        if (
            spec.n_clients == n_clients
            and spec.batch_max == batch_max
            and spec.location_cache == location_cache
        ):
            return cell
    return None


def run(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Run the serving grid and render the scaling report."""
    engine = engine or default_engine()
    specs = serving_specs(scale, seed)
    cells = engine.run(specs)

    columns = [
        "ops", "kops_s", "p50_us", "p95_us", "p99_us",
        "1sided", "stale", "wrong", "qmax", "splits",
    ]
    rows = []
    ok = True
    for spec, cell in zip(specs, cells):
        ok = ok and not cell["wrong_answers"] and not cell["check_failures"]
        rows.append((
            spec.label,
            {
                "ops": cell["committed"],
                "kops_s": cell["throughput_kops"],
                "p50_us": cell["total"]["p50"] / 1e3,
                "p95_us": cell["total"]["p95"] / 1e3,
                "p99_us": cell["total"]["p99"] / 1e3,
                "1sided": cell["one_sided_reads"],
                "stale": cell["hint_misses"],
                "wrong": cell["wrong_answers"],
                "qmax": cell["max_queue_depth"],
                "splits": cell["splits_during_run"],
            },
        ))
    text = format_table(
        "Serving: M remote clients through the batching router "
        f"(YCSB-D, net={specs[0].net})",
        columns,
        rows,
        precision=1,
    )
    top = CLIENT_COUNTS[-1]
    unbatched = _cell(cells, specs, n_clients=top, batch_max=1, location_cache=False)
    batched = _cell(
        cells, specs, n_clients=top, batch_max=BATCH_SIZES[-1], location_cache=False
    )
    cached = _cell(
        cells, specs, n_clients=top, batch_max=BATCH_SIZES[-1], location_cache=True
    )
    if unbatched and batched and unbatched["throughput_kops"] > 0:
        text += "\n" + format_ratio_note(
            f"batching at {top} clients: "
            f"{batched['throughput_kops'] / unbatched['throughput_kops']:.2f}x "
            f"ops/s over per-op flushes (b{BATCH_SIZES[-1]} vs b1, no "
            "location cache; simulated clock)"
        )
    if batched and cached and batched["throughput_kops"] > 0:
        text += "\n" + format_ratio_note(
            f"location caching at {top} clients: "
            f"{cached['throughput_kops'] / batched['throughput_kops']:.2f}x "
            f"ops/s over routed-only (both b{BATCH_SIZES[-1]}; "
            f"{cached['one_sided_reads']} one-sided reads, "
            f"{cached['hint_misses']} stale-hint repairs)"
        )
    text += "\n" + format_ratio_note(
        "stale-hint safety: "
        + (
            "0 wrong answers at every cell (shadow-checked)"
            if ok
            else "FAIL — see check_failures"
        )
    )
    data = {
        "client_counts": list(CLIENT_COUNTS),
        "batch_sizes": list(BATCH_SIZES),
        "net": specs[0].net,
        "cells": cells,
        "ok": ok,
    }
    result = ExperimentResult(
        name="serving",
        paper_ref="Beyond the paper: networked serving tier (ROADMAP item 3)",
        data=data,
        text=text,
    )
    return attach_warnings(result, engine)
