"""Load-factor sweep — the curve behind the paper's two sample points.

The paper evaluates at load factors 0.5 and 0.75 only; this extension
sweeps 0.1 → 0.85 for the four unlogged schemes and reports per-op
latency for each operation. It makes the crossovers *curves* instead of
bar pairs: where linear probing's delete takes off, where PFHT's stash
pressure starts, and how group hashing's collision scans grow with the
level-2 fill.
"""

from __future__ import annotations

from repro.bench.config import Scale
from repro.bench.experiments import ExperimentResult, attach_warnings
from repro.bench.report import format_ratio_note, format_table
from repro.bench.runner import RunSpec

SCHEMES = ("linear", "pfht", "path", "group")
LOAD_FACTORS = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85)
OPS = ("insert", "query", "delete")


def run(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Run the load-factor sweep extension at ``scale``."""
    from repro.bench.engine import default_engine

    engine = engine or default_engine()
    cells = [(scheme, lf) for scheme in SCHEMES for lf in LOAD_FACTORS]
    specs = [
        RunSpec.from_scale(scheme, "randomnum", lf, scale, seed=seed)
        for scheme, lf in cells
    ]
    results = dict(zip(cells, engine.run(specs)))

    data: dict[str, dict[float, dict[str, float]]] = {s: {} for s in SCHEMES}
    for (scheme, lf), result in results.items():
        data[scheme][lf] = {
            op: result.phase(op).avg_latency_ns for op in OPS
        } | {f"{op}_misses": result.phase(op).avg_misses for op in OPS}

    sections = []
    for op in OPS:
        rows = [
            (
                scheme,
                {f"{lf:.2f}": data[scheme][lf][op] for lf in LOAD_FACTORS},
            )
            for scheme in SCHEMES
        ]
        sections.append(
            format_table(
                f"Load-factor sweep: {op} latency (RandomNum)",
                tuple(f"{lf:.2f}" for lf in LOAD_FACTORS),
                rows,
                unit="simulated ns/request",
            )
        )
    sections.append(
        format_ratio_note(
            "extension beyond the paper: its 0.5/0.75 sample points are "
            "two columns of these curves"
        )
    )
    result = ExperimentResult(
        name="sweep",
        paper_ref="extension (load-factor curves)",
        data=data,
        text="\n\n".join(sections),
    )
    return attach_warnings(result, engine)
