"""Table 3 — recovery time after a system failure.

Fill a group hash table to load factor 0.5, pull the plug, and time the
Algorithm 4 recovery scan (simulated clock), comparing it to the fill
("execution") time — the paper varies the table from 128 MB to 1 GB and
finds recovery below 1 % of execution time at every size.

The scaled presets sweep a 16× size range, like the paper's 8×; the two
shape properties asserted by the benchmark are (1) recovery time grows
linearly with table size and (2) the recovery/execution percentage is
small and roughly constant.
"""

from __future__ import annotations

from repro.bench.config import Scale
from repro.bench.experiments import ExperimentResult
from repro.bench.report import format_ratio_note, format_table
from repro.bench.runner import RecoverySpec

COLUMNS = ("table_mb", "recovery_ms", "execution_ms", "percentage")


def run(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Run the Table 3 recovery experiment at ``scale``."""
    from repro.bench.engine import default_engine

    engine = engine or default_engine()
    specs = [
        RecoverySpec(total_cells=cells, group_size=scale.group_size, seed=seed)
        for cells in scale.recovery_cells
    ]
    results = engine.run(specs)

    rows = []
    data: dict[int, dict[str, float]] = {}
    for cells, result in zip(scale.recovery_cells, results):
        result["table_mb"] = result["table_bytes"] / (1 << 20)
        data[cells] = result
        rows.append((f"{cells} cells", {c: result[c] for c in COLUMNS}))
    text = "\n".join(
        [
            format_table(
                "Table 3: recovery vs execution time (group hashing, "
                "RandomNum, load factor 0.5)",
                COLUMNS,
                rows,
                precision=3,
            ),
            format_ratio_note(
                "paper shape: recovery linear in table size, <1% of "
                "execution time (paper: 0.92-0.93%)"
            ),
        ]
    )
    return ExperimentResult(name="table3", paper_ref="Table 3", data=data, text=text)
