"""Wall-clock throughput trajectory — real ops/sec, tracked per PR.

Every other experiment reports *simulated* nanoseconds; this one is the
ROADMAP's "as fast as the hardware allows" axis made measurable. Each
cell (:class:`ThroughputSpec`) builds a table, fills it to a target
load factor, queries every inserted key, then deletes half — timing
each phase with ``perf_counter`` and reporting **both** trajectories:

- ``wall_ops_per_s`` — real operations per second of the Python
  process, the number the vectorized probe primitives and batch APIs
  exist to move;
- ``sim_ns_per_op`` — the simulated-NVM cost per op (0 on the raw
  backend, which has no latency model), so fidelity and speed stay
  separately visible;
- ``flushes`` / ``fences`` per phase, which is where batch coalescing
  shows up as a *count*, not a timing.

The grid spans {scheme × backend × batch size}: ``batch=0`` drives the
scalar ``insert``/``query``/``delete`` loop, ``batch>0`` submits
``put_many``/``get_many``/``delete_many`` chunks of that size. Cells
run through the bench engine, so the grid deduplicates, fans out
across ``--jobs`` and round-trips through the result cache; wall-clock
numbers are only *re-measured* under ``REPRO_BENCH_NO_CACHE=1`` (or
``--no-cache``) — a cached report replays byte-identically, which is
what lets CI diff reports across runs. The committed
``bench_throughput.json`` seed is the trajectory's origin point;
``scripts/ci_perf_gate.py`` compares fresh runs against it.
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass

from repro.bench.config import Scale, build_table
from repro.bench.engine import default_engine, register_spec_kind
from repro.bench.experiments import ExperimentResult, attach_warnings
from repro.bench.report import format_ratio_note, format_table
from repro.tables.cell import ItemSpec

#: batch sizes enumerated for schemes with a batch API (0 = scalar loop)
BATCH_SIZES: tuple[int, ...] = (0, 64, 512)


@dataclass(frozen=True)
class ThroughputSpec:
    """One throughput cell, frozen so the engine can dedupe and cache it."""

    scheme: str = "group"
    #: "raw" (wall-clock oriented) or "sim" (costed simulator)
    backend: str = "raw"
    #: 0 = scalar op loop; >0 = *_many chunks of this size
    batch: int = 0
    total_cells: int = 1 << 14
    group_size: int = 128
    #: fill target (fraction of ``total_cells`` inserted)
    load_factor: float = 0.6
    seed: int = 42

    def to_dict(self) -> dict:
        """JSON-ready field dict."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ThroughputSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(**payload)

    @property
    def label(self) -> str:
        """Report row label, e.g. ``group/raw``, ``group/raw b512``."""
        name = f"{self.scheme}/{self.backend}"
        if self.batch:
            name += f" b{self.batch}"
        return name


def _phase(
    n_ops: int, wall_s: float, sim_ns: float, flushes: int, fences: int
) -> dict:
    """One phase's JSON-ready measurement record."""
    return {
        "ops": n_ops,
        "wall_s": wall_s,
        "wall_ops_per_s": n_ops / wall_s if wall_s > 0 else 0.0,
        "sim_ns_per_op": sim_ns / n_ops if n_ops else 0.0,
        "flushes": flushes,
        "fences": fences,
    }


def run_throughput_spec(spec: ThroughputSpec) -> dict:
    """Execute one throughput cell; returns a JSON-ready summary dict.

    Deterministic workload (keys from a seeded PRNG), measured
    wall-clock — so every field except the ``wall_*`` timings is a pure
    function of the spec, and the timings are only re-measured when the
    engine cache is bypassed."""
    built = build_table(
        spec.scheme,
        spec.total_cells,
        ItemSpec(),
        group_size=spec.group_size,
        seed=spec.seed,
        backend=spec.backend,
    )
    table, region = built.table, built.region
    spec_fields = ItemSpec()
    rng = random.Random((spec.seed << 8) ^ 0x7B)
    n_items = int(spec.total_cells * spec.load_factor)
    used: set[bytes] = set()
    items: list[tuple[bytes, bytes]] = []
    while len(items) < n_items:
        key = rng.getrandbits(64).to_bytes(spec_fields.key_size, "little")
        if any(key) and key not in used:
            used.add(key)
            items.append((key, rng.getrandbits(64).to_bytes(8, "little")))

    def snapshot() -> tuple[float, int, int]:
        stats = region.stats
        return stats.sim_time_ns, stats.flushes, stats.fences

    phases: dict[str, dict] = {}

    def timed(name: str, n_ops: int, work) -> None:
        sim0, flush0, fence0 = snapshot()
        t0 = time.perf_counter()
        work()
        wall = time.perf_counter() - t0
        sim1, flush1, fence1 = snapshot()
        phases[name] = _phase(
            n_ops, wall, sim1 - sim0, flush1 - flush0, fence1 - fence0
        )

    batch = spec.batch
    inserted = 0

    def fill() -> None:
        nonlocal inserted
        if batch and hasattr(table, "put_many"):
            for i in range(0, n_items, batch):
                inserted += sum(table.put_many(items[i : i + batch]))
        else:
            for key, value in items:
                inserted += bool(table.insert(key, value))

    timed("fill", n_items, fill)

    query_keys = [key for key, _ in items]
    rng.shuffle(query_keys)
    hits = 0

    def query() -> None:
        nonlocal hits
        if batch and hasattr(table, "get_many"):
            for i in range(0, len(query_keys), batch):
                hits += sum(
                    v is not None
                    for v in table.get_many(query_keys[i : i + batch])
                )
        else:
            for key in query_keys:
                hits += table.query(key) is not None

    timed("query", len(query_keys), query)

    delete_keys = query_keys[: n_items // 2]
    deleted = 0

    def delete() -> None:
        nonlocal deleted
        if batch and hasattr(table, "delete_many"):
            for i in range(0, len(delete_keys), batch):
                deleted += sum(table.delete_many(delete_keys[i : i + batch]))
        else:
            for key in delete_keys:
                deleted += table.delete(key)

    timed("delete", len(delete_keys), delete)

    return {
        "scheme": spec.scheme,
        "backend": spec.backend,
        "batch": spec.batch,
        "n_items": n_items,
        "inserted": inserted,
        "hits": hits,
        "deleted": deleted,
        "fill": phases["fill"],
        "query": phases["query"],
        "delete": phases["delete"],
    }


register_spec_kind(ThroughputSpec, run_throughput_spec)


def throughput_specs(scale: Scale, seed: int) -> list[ThroughputSpec]:
    """The {scheme × backend × batch} grid for one scale.

    Group hashing (the paper's scheme) is enumerated on both backends
    and at every batch size; the linear baseline runs scalar-only (it
    has no batch API) so the trajectory keeps one scalar reference
    point per backend that is *not* the paper's scheme."""
    specs = [
        ThroughputSpec(
            scheme="group",
            backend=backend,
            batch=batch,
            total_cells=scale.total_cells,
            group_size=scale.group_size,
            seed=seed,
        )
        for backend in ("raw", "sim")
        for batch in BATCH_SIZES
    ]
    specs += [
        ThroughputSpec(
            scheme="linear",
            backend=backend,
            batch=0,
            total_cells=scale.total_cells,
            group_size=scale.group_size,
            seed=seed,
        )
        for backend in ("raw", "sim")
    ]
    return specs


def run(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Run the throughput grid at ``scale`` and render the trajectory."""
    engine = engine or default_engine()
    specs = throughput_specs(scale, seed)
    cells = engine.run(specs)

    columns = [
        "fill_ops_s",
        "query_ops_s",
        "del_ops_s",
        "fill_sim_ns",
        "query_sim_ns",
        "fill_flushes",
    ]
    rows = []
    for spec, cell in zip(specs, cells):
        rows.append((
            spec.label,
            {
                "fill_ops_s": cell["fill"]["wall_ops_per_s"],
                "query_ops_s": cell["query"]["wall_ops_per_s"],
                "del_ops_s": cell["delete"]["wall_ops_per_s"],
                "fill_sim_ns": cell["fill"]["sim_ns_per_op"],
                "query_sim_ns": cell["query"]["sim_ns_per_op"],
                "fill_flushes": cell["fill"]["flushes"],
            },
        ))
    text = format_table(
        "Throughput: wall-clock ops/sec and simulated ns/op per phase",
        columns,
        rows,
        precision=0,
    )

    def cell_for(scheme: str, backend: str, batch: int) -> dict | None:
        for spec, cell in zip(specs, cells):
            if (spec.scheme, spec.backend, spec.batch) == (scheme, backend, batch):
                return cell
        return None

    scalar = cell_for("group", "raw", 0)
    best_batch = max(
        (
            cell
            for spec, cell in zip(specs, cells)
            if spec.scheme == "group" and spec.backend == "raw" and spec.batch
        ),
        key=lambda c: c["fill"]["wall_ops_per_s"],
        default=None,
    )
    if scalar and best_batch:
        fill_gain = best_batch["fill"]["wall_ops_per_s"] / max(
            1.0, scalar["fill"]["wall_ops_per_s"]
        )
        flush_save = scalar["fill"]["flushes"] / max(
            1, best_batch["fill"]["flushes"]
        )
        text += "\n" + format_ratio_note(
            f"group/raw batching: {fill_gain:.2f}x fill ops/sec over the "
            f"scalar loop at batch={best_batch['batch']}, "
            f"{flush_save:.1f}x fewer flushes"
        )

    data = {
        "cells": [
            dict(cell, spec=spec.to_dict()) for spec, cell in zip(specs, cells)
        ],
    }
    result = ExperimentResult(
        name="throughput",
        paper_ref="Wall-clock trajectory (beyond the paper; ROADMAP item 4)",
        data=data,
        text=text,
    )
    return attach_warnings(result, engine)
