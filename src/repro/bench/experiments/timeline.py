"""Timeline experiment — behavior over simulated time, judged by SLOs.

Aggregate benches answer "how much in total"; this experiment answers
*when*: per-window throughput, persist-event rates, latency quantiles,
abort counts, occupancy and wear heat over the simulated clock, for the
two transient behaviors the repo cares most about:

- **growth** — a :class:`~repro.core.DirectoryTable` pushed past its
  initial capacity, so segment splits fire inside the measured window
  and the during-split p99 spike is visible as a timeline, not just a
  percentile table;
- **contention** — the YCSB-A client grid (1/4/16 clients) under the
  deterministic interleaver, so the abort ramp with client count is
  visible window by window.

Every cell is a frozen :class:`TimelineSpec` routed through the bench
engine (dedupe, cache, ``--jobs`` fan-out, byte-identical results). A
cell records a fine-grained :class:`~repro.obs.WindowSeries` and
rebuckets it deterministically to at most ``max_windows`` windows, so
reports and committed baselines stay compact while spikes survive
(counters/histograms/heats rebucket by exact addition).

The report renders ASCII sparklines (:func:`~repro.bench.report.
format_sparkline`), evaluates the declarative :data:`SLO_RULES` into a
pass/warn/fail health report (gated by ``scripts/ci_perf_gate.py``),
and assembles one Chrome trace combining the growth cell's span
flamegraph with every cell's per-window counter events — the CLI writes
it next to the JSON dump like the ``profile`` experiment does.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.bench.config import Scale, build_table, make_trace
from repro.bench.engine import default_engine, register_spec_kind
from repro.bench.experiments import ExperimentResult, attach_warnings
from repro.bench.experiments.contention import (
    CLIENT_COUNTS,
    ConcurrentSpec,
    build_client_streams,
)
from repro.bench.report import format_ratio_note, format_sparkline
from repro.bench.runner import (
    GrowthSpec,
    _growth_fill,
    _growth_region,
    fill_to_load_factor,
)
from repro.bench.workload import GROWTH_MIX, generate_ops
from repro.concurrency import run_concurrent
from repro.core import DirectoryTable
from repro.nvm.wear import export_wear_metrics
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    SloRule,
    Tracer,
    WindowSampler,
    WindowSeries,
    evaluate,
)

#: declarative health thresholds over the derived timeline scalars.
#: Values measured at the tiny and small scales sit well inside the
#: warn levels; the fail levels are the point where the transient
#: behavior stops matching the paper's story (splits amortized, aborts
#: bounded, wear spread) rather than a tight regression bound — the
#: per-metric regression tolerances live in ``scripts/ci_perf_gate.py``.
SLO_RULES: tuple[SloRule, ...] = (
    SloRule(
        "growth.split_spike_ratio",
        warn=2000.0,
        fail=20000.0,
        description="during-split window p99 over steady window p99 — "
        "bounded spike, not a stop-the-world cliff",
    ),
    SloRule(
        "growth.steady_p99_ns",
        warn=50_000.0,
        fail=500_000.0,
        description="steady-state per-window p99 latency between splits",
    ),
    SloRule(
        "contention.p99_ns",
        warn=100_000.0,
        fail=1_000_000.0,
        description="16-client overall p99 latency",
    ),
    SloRule(
        "contention.abort_rate",
        warn=3.0,
        fail=10.0,
        description="16-client read aborts per committed op — ~1 is the "
        "expected optimistic-read cost on Zipfian hot keys; 10 means "
        "the retry loop is livelocking",
    ),
    SloRule(
        "contention.client_op_skew",
        warn=1.5,
        fail=3.0,
        description="max/mean committed ops across clients — the "
        "interleaver must not starve a client",
    ),
    SloRule(
        "wear.gini",
        warn=0.9,
        fail=0.99,
        description="Gini of medium writes over touched lines in the "
        "growth cell",
    ),
    SloRule(
        "wear.imbalance",
        warn=500.0,
        fail=5000.0,
        description="max/mean line writes in the growth cell (undo-log "
        "style hot lines push this up)",
    ),
)


@dataclass(frozen=True)
class TimelineSpec:
    """One timeline cell, frozen so the engine can dedupe and cache it.

    ``kind`` selects the scenario: ``"growth"`` uses the directory-table
    geometry fields (``initial_cells`` / ``segment_cells`` /
    ``fill_factor``), ``"contention"`` the client-grid fields
    (``n_clients`` / ``load_factor`` / ``total_cells`` /
    ``group_size``). ``window_ns`` is the *fine* sampling window; the
    exported series is rebucketed to at most ``max_windows`` windows.
    """

    kind: str = "growth"
    n_clients: int = 1
    trace: str = "randomnum"
    #: growth geometry (mirrors :class:`~repro.bench.runner.GrowthSpec`)
    initial_cells: int = 256
    segment_cells: int = 32
    fill_factor: float = 0.6
    #: contention geometry (mirrors :class:`ConcurrentSpec`)
    load_factor: float = 0.5
    total_cells: int = 1 << 12
    group_size: int = 64
    n_ops: int = 200
    #: fine sampling window on the simulated clock
    window_ns: float = 5_000.0
    #: exported series width cap (rebucketed exactly, spikes preserved)
    max_windows: int = 32
    seed: int = 42
    tech: str = "paper-nvm"
    cache_ratio: float = 8.0

    def to_dict(self) -> dict:
        """JSON-ready field dict (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TimelineSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(**data)

    @property
    def label(self) -> str:
        """Report section label, e.g. ``growth seg=32``, ``16 clients``."""
        if self.kind == "growth":
            return f"growth seg={self.segment_cells}"
        return f"{self.n_clients} client{'s' if self.n_clients != 1 else ''}"


def _rebucket(spec: TimelineSpec, series: WindowSeries) -> tuple[WindowSeries, int]:
    """Coarsen ``series`` so its window span fits ``spec.max_windows``
    (factor 1 when it already does). Exact: counters/histograms/heats
    fold by addition, gauges by ``max``."""
    fine = series.windows()
    span = (fine[-1] - fine[0] + 1) if fine else 1
    factor = max(1, -(-span // spec.max_windows))
    return series.rebucketed(factor), factor


def _wear_summary(report) -> dict | None:
    """Flatten a :class:`~repro.nvm.wear.WearReport` for the payload."""
    if report is None:
        return None
    return {
        "total_line_writes": report.total_line_writes,
        "lines_touched": report.lines_touched,
        "max_line_writes": report.max_line_writes,
        "gini": report.gini,
        "imbalance": report.imbalance,
        "hot1pct_share": report.hot1pct_share,
    }


def _run_growth_timeline(spec: TimelineSpec) -> dict:
    """The growth cell: fill a directory table, then meter an
    insert-heavy stream per window while splits fire, with the sampler
    on the region's event stream and wear map and the tracer recording
    the span flamegraph."""
    trace = make_trace(spec.trace, seed=spec.seed)
    gspec = GrowthSpec(
        trace=spec.trace,
        initial_cells=spec.initial_cells,
        segment_cells=spec.segment_cells,
        fill_factor=spec.fill_factor,
        n_ops=spec.n_ops,
        seed=spec.seed,
        tech=spec.tech,
        cache_ratio=spec.cache_ratio,
    )
    region = _growth_region(trace.spec, gspec, track_wear=True)
    table = DirectoryTable(
        region,
        spec.initial_cells,
        trace.spec,
        segment_cells=spec.segment_cells,
        seed=spec.seed,
    )
    stream = trace.unique_items()
    target = int(spec.fill_factor * spec.initial_cells)
    resident = _growth_fill(table, stream, target)

    # instrument *after* the fill so the windows cover the measured
    # stream only; everything attached here purely observes
    series = WindowSeries(spec.window_ns)
    sampler = WindowSampler(series)
    metrics = MetricsRegistry()
    tracer = Tracer(region, max_events=20_000)
    table.instrument(tracer, metrics)
    sampler.attach(region)
    stats = region.stats
    table.on_growth = lambda what: series.inc(
        "splits" if what == "split" else "doublings", stats.sim_time_ns
    )

    ops = generate_ops(GROWTH_MIX, spec.n_ops, target, seed=spec.seed)
    items: list[tuple[bytes, bytes]] = list(resident)
    live_value: dict[int, bytes] = {
        i: value for i, (_, value) in enumerate(resident)
    }
    splits_before = table.splits
    last_ns = stats.sim_time_ns
    for op in ops:
        while op.key_id >= len(items):
            items.append(next(stream))
        key = items[op.key_id][0]
        tracer.push(op.kind)
        if op.kind == "insert":
            value = items[op.key_id][1]
            if not table.insert(key, value):
                raise RuntimeError("timeline growth insert failed")
            live_value[op.key_id] = value
        elif op.kind == "query":
            found = table.query(key)
            expected = live_value.get(op.key_id)
            assert found == expected, "timeline growth query mismatch"
        else:  # GROWTH_MIX is insert/query only
            raise ValueError(f"unexpected op kind {op.kind!r} in growth mix")
        tracer.pop()
        now = stats.sim_time_ns
        op_ns = now - last_ns
        last_ns = now
        series.observe("latency", now, op_ns)
        series.inc("ops", now)
        series.set_gauge("occupancy", now, table.load_factor)
    splits = table.splits - splits_before

    table.on_growth = None
    sampler.detach()
    tracer.detach()
    wear_report = export_wear_metrics(region, metrics)
    table.instrument(None, None)

    coarse, factor = _rebucket(spec, series)
    windows = coarse.windows()
    p99 = coarse.quantile_values("latency", 0.99, windows)
    op_counts = coarse.counter_values("ops", windows)
    split_counts = coarse.counter_values("splits", windows)
    split_p99 = [p for p, s in zip(p99, split_counts) if s]
    steady_p99 = sorted(
        p for p, s, o in zip(p99, split_counts, op_counts) if not s and o
    )
    steady = steady_p99[len(steady_p99) // 2] if steady_p99 else 0.0
    spike = max(split_p99, default=0.0)
    return {
        "spec": spec.to_dict(),
        "kind": "growth",
        "clients": 1,
        "series": coarse.as_dict(),
        "rebucket_factor": factor,
        "ops": len(ops),
        "splits": splits,
        "doublings": table.doublings,
        "final_capacity": table.capacity,
        "split_windows": sum(1 for s in split_counts if s),
        "split_window_p99_ns": spike,
        "steady_window_p99_ns": steady,
        "split_spike_ratio": spike / steady if steady else 0.0,
        "wear": _wear_summary(wear_report),
        "metrics": metrics.as_dict(),
        "trace_events": tracer.chrome_events(),
        "counter_events": coarse.chrome_counter_events(),
    }


def _run_contention_timeline(spec: TimelineSpec) -> dict:
    """A contention cell: the interleaver runs with the series and a
    flight recorder attached (persist events, per-window latency and
    abort channels, per-client op counts come from the scheduler; wear
    heat rides the region's wear observer)."""
    cspec = ConcurrentSpec(
        scheme="group",
        preset="ycsb-a",
        trace=spec.trace,
        load_factor=spec.load_factor,
        total_cells=spec.total_cells,
        group_size=spec.group_size,
        n_clients=spec.n_clients,
        n_ops=spec.n_ops,
        seed=spec.seed,
        tech=spec.tech,
        cache_ratio=spec.cache_ratio,
        backend="sim",
    )
    trace = make_trace(spec.trace, seed=spec.seed)
    built = build_table(
        cspec.scheme,
        cspec.total_cells,
        trace.spec,
        group_size=cspec.group_size,
        seed=cspec.seed,
        cache_ratio=cspec.cache_ratio,
        tech=cspec.tech,
        backend=cspec.backend,
    )
    table = built.table
    stream = trace.unique_items()
    resident, _unused = fill_to_load_factor(built, stream, cspec.load_factor)
    streams = build_client_streams(cspec, resident, stream)

    series = WindowSeries(spec.window_ns)
    recorder = FlightRecorder()
    metrics = MetricsRegistry()
    # the scheduler owns the event hook (per-client attribution feeds the
    # series through its timeline parameter); wear heat rides the wear
    # map's own observer so lines are not double counted
    wear = getattr(built.region, "wear", None)
    stats = built.region.stats
    prev_obs = wear.on_record if wear is not None else None

    def observe_wear(line: int) -> None:
        """Chain the previous wear observer, then heat the series."""
        if prev_obs is not None:
            prev_obs(line)
        series.touch("wear_heat", stats.sim_time_ns, line)

    if wear is not None:
        wear.on_record = observe_wear
    try:
        result = run_concurrent(
            table,
            streams,
            seed=spec.seed,
            metrics=metrics,
            timeline=series,
            recorder=recorder,
        )
    finally:
        if wear is not None:
            wear.on_record = prev_obs
    wear_report = export_wear_metrics(built.region, metrics)

    coarse, factor = _rebucket(spec, series)
    client_ops = [rec.summary()["count"] for rec in result.per_client]
    mean_ops = sum(client_ops) / max(1, len(client_ops))
    return {
        "spec": spec.to_dict(),
        "kind": "contention",
        "clients": spec.n_clients,
        "series": coarse.as_dict(),
        "rebucket_factor": factor,
        "ops": result.ops,
        "committed": len(result.committed),
        "throughput_kops": result.throughput_kops(),
        "total": result.overall.summary(),
        "read_aborts": result.read_aborts,
        "read_retries": result.read_retries,
        "lock_waits": result.lock_waits,
        "abort_rate": result.read_aborts / max(1, len(result.committed)),
        "client_op_skew": (
            max(client_ops) / mean_ops if mean_ops else 0.0
        ),
        "lost_updates": result.lost_updates,
        "check_failures": list(result.check_failures),
        "failure_context": result.failure_context,
        "wear": _wear_summary(wear_report),
        "metrics": metrics.as_dict(),
        "trace_events": [],
        "counter_events": coarse.chrome_counter_events(),
    }


def run_timeline_spec(spec: TimelineSpec) -> dict:
    """Execute one timeline cell (the engine executor for
    :class:`TimelineSpec`; runs in pool workers, returns plain JSON)."""
    if spec.kind == "growth":
        return _run_growth_timeline(spec)
    if spec.kind == "contention":
        return _run_contention_timeline(spec)
    raise ValueError(f"unknown timeline kind {spec.kind!r}")


register_spec_kind(TimelineSpec, run_timeline_spec)


def timeline_specs(scale: Scale, seed: int) -> list[TimelineSpec]:
    """The cell grid for one scale: one growth cell (geometry mirrors
    :meth:`GrowthSpec.from_scale`) plus the contention client grid."""
    initial = max(256, 1 << (scale.measure_ops - 1).bit_length())
    cells = [
        TimelineSpec(
            kind="growth",
            initial_cells=initial,
            segment_cells=max(16, initial // 8),
            n_ops=scale.measure_ops,
            cache_ratio=scale.cache_ratio,
            seed=seed,
        )
    ]
    cells.extend(
        TimelineSpec(
            kind="contention",
            n_clients=n,
            total_cells=scale.total_cells,
            group_size=scale.group_size,
            n_ops=scale.measure_ops,
            cache_ratio=scale.cache_ratio,
            seed=seed,
        )
        for n in CLIENT_COUNTS
    )
    return cells


def _sparkline_block(cell: dict) -> list[str]:
    """Sparkline lines for one cell's coarse series."""
    series = WindowSeries.from_dict(cell["series"])
    windows = series.windows()
    lines = [
        format_sparkline("ops", series.counter_values("ops", windows)),
        format_sparkline(
            "p99 latency",
            series.quantile_values("latency", 0.99, windows),
            unit="ns",
        ),
        format_sparkline("writes", series.counter_values("writes", windows)),
        format_sparkline("flushes", series.counter_values("flushes", windows)),
    ]
    if cell["kind"] == "growth":
        lines.append(
            format_sparkline("splits", series.counter_values("splits", windows))
        )
        lines.append(
            format_sparkline(
                "occupancy",
                [v * 100 for v in series.gauge_values("occupancy", windows)],
                unit="%",
            )
        )
    else:
        lines.append(
            format_sparkline(
                "read aborts", series.counter_values("read_aborts", windows)
            )
        )
    if "wear_heat" in series.channels():
        lines.append(
            format_sparkline(
                "wear heat", series.heat_totals("wear_heat", windows)
            )
        )
    return lines


def health_values(cells: list[dict]) -> dict:
    """The ``{metric: scalar}`` dict :data:`SLO_RULES` judges, derived
    from the cell payloads (growth spike/steady/wear; the largest client
    cell's p99, abort rate and per-client skew)."""
    values: dict[str, float] = {}
    contention = [c for c in cells if c["kind"] == "contention"]
    top = max(contention, key=lambda c: c["clients"], default=None)
    for cell in cells:
        if cell["kind"] == "growth":
            values["growth.split_spike_ratio"] = cell["split_spike_ratio"]
            values["growth.steady_p99_ns"] = cell["steady_window_p99_ns"]
            if cell["wear"]:
                values["wear.gini"] = cell["wear"]["gini"]
                values["wear.imbalance"] = cell["wear"]["imbalance"]
    if top is not None:
        values["contention.p99_ns"] = top["total"]["p99"]
        values["contention.abort_rate"] = top["abort_rate"]
        values["contention.client_op_skew"] = top["client_op_skew"]
    return values


def _chrome_trace(specs: list[TimelineSpec], cells: list[dict]) -> dict:
    """One merged Chrome trace: each cell is a process (growth spans +
    every cell's per-window counter events, all on the simulated
    clock)."""
    events: list[dict] = []
    for i, (spec, cell) in enumerate(zip(specs, cells)):
        pid = i + 1
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": f"timeline: {spec.label}"},
            }
        )
        events.extend(dict(ev, pid=pid) for ev in cell["trace_events"])
        events.extend(dict(ev, pid=pid) for ev in cell["counter_events"])
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"clock": "simulated"},
    }


def run(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Run the timeline grid, render sparklines, and evaluate health."""
    engine = engine or default_engine()
    specs = timeline_specs(scale, seed)
    cells = engine.run(specs)

    sections: list[str] = []
    for spec, cell in zip(specs, cells):
        n_windows = len(WindowSeries.from_dict(cell["series"]).windows())
        width_us = cell["series"]["window_ns"] / 1e3
        sections.append(
            f"Timeline {spec.label}: {n_windows} windows x "
            f"{width_us:.0f} us (simulated)"
        )
        sections.extend(_sparkline_block(cell))
        if cell["kind"] == "growth":
            sections.append(
                format_ratio_note(
                    f"{cell['splits']} splits in {cell['split_windows']} "
                    f"window(s): during-split window p99 "
                    f"{cell['split_window_p99_ns']:.0f} ns vs steady "
                    f"{cell['steady_window_p99_ns']:.0f} ns "
                    f"({cell['split_spike_ratio']:.1f}x spike)"
                )
            )
        else:
            sections.append(
                format_ratio_note(
                    f"{cell['read_aborts']} read aborts over "
                    f"{cell['committed']} committed ops "
                    f"(rate {cell['abort_rate']:.3f}), p99 "
                    f"{cell['total']['p99']:.0f} ns"
                )
            )
        sections.append("")

    report = evaluate(SLO_RULES, health_values(cells))
    sections.append(f"Health: {report.status.upper()}")
    for check in report.checks:
        if check.status != "pass":
            shown = "missing" if check.value is None else f"{check.value:.3f}"
            sections.append(
                format_ratio_note(
                    f"{check.status.upper()} {check.metric} = {shown} "
                    f"(warn {check.warn:g} / fail {check.fail:g}) — "
                    f"{check.description}"
                )
            )

    abort_ramp = {
        str(c["clients"]): c["read_aborts"]
        for c in cells
        if c["kind"] == "contention"
    }
    chrome = _chrome_trace(specs, cells)
    # the per-viewer event lists live in the trace artifact only; the
    # structured cells stay lean for committed baselines
    lean_cells = [
        {
            k: v
            for k, v in cell.items()
            if k not in ("trace_events", "counter_events")
        }
        for cell in cells
    ]
    data = {
        "cells": lean_cells,
        "abort_ramp": abort_ramp,
        "health": report.as_dict(),
        "ok": report.status != "fail",
        "chrome_trace": chrome,
    }
    result = ExperimentResult(
        name="timeline",
        paper_ref="Behavior over simulated time (windowed telemetry)",
        data=data,
        text="\n".join(sections).rstrip(),
    )
    return attach_warnings(result, engine)
