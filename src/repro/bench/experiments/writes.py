"""Write traffic — the "write-efficient" in the paper's title, measured.

The paper motivates everything with NVM's asymmetric write cost and
bounded endurance (Section 2.1) but reports latency and misses only;
this extension reports the write-path quantities directly:

- NVM bytes written per insert/delete (medium traffic, the endurance
  currency);
- cacheline flushes per operation (the latency currency);
- write amplification: NVM bytes written per byte of user payload.

Expected shape: group hashing writes its cell + count line and nothing
else (amplification ≈ a small constant); the ``-L`` variants roughly
double everything (log entry + tail per cell write); linear's deletes
amplify with cluster length.
"""

from __future__ import annotations

from repro.bench.config import SCHEMES, Scale
from repro.bench.experiments import ExperimentResult
from repro.bench.experiments.latency_matrix import collect_matrix
from repro.bench.report import format_ratio_note, format_table

COLUMNS = ("ins_bytes", "ins_flushes", "del_bytes", "del_flushes", "amplification")


def run(scale: Scale, seed: int = 42, engine=None) -> ExperimentResult:
    """Run the write-traffic extension experiment at ``scale``."""
    matrix = collect_matrix(scale, seed, engine)
    rows = []
    data = {}
    for scheme in SCHEMES:
        result = matrix[("randomnum", 0.5, scheme)]
        item_bytes = 16  # RandomNum payload
        values = {
            "ins_bytes": result.insert.nvm_bytes_written / result.insert.ops,
            "ins_flushes": result.insert.avg_flushes,
            "del_bytes": result.delete.nvm_bytes_written / result.delete.ops,
            "del_flushes": result.delete.avg_flushes,
            "amplification": (
                result.insert.nvm_bytes_written / result.insert.ops / item_bytes
            ),
        }
        rows.append((scheme, values))
        data[scheme] = values
    text = "\n".join(
        [
            format_table(
                "Write traffic per operation — RandomNum, load factor 0.5 "
                "(NVM bytes / clflush counts)",
                COLUMNS,
                rows,
                precision=1,
            ),
            format_ratio_note(
                "the title claim: group hashing's writes are the cell + the "
                "count line; logging roughly doubles bytes AND flushes"
            ),
        ]
    )
    return ExperimentResult(
        name="writes",
        paper_ref="Sections 1/2.1 (write efficiency)",
        data=data,
        text=text,
    )
