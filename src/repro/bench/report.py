"""Plain-text report formatting for the experiment drivers.

Every experiment returns rows of (label, {column: value}); these helpers
render them as aligned tables that mirror the paper's figures — one
table per figure panel, one row per scheme/series point.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[tuple[str, Mapping[str, float]]],
    *,
    unit: str = "",
    precision: int = 1,
) -> str:
    """Render one aligned table with a title line."""
    label_width = max([len(label) for label, _ in rows] + [len("scheme")])
    col_width = max([len(c) for c in columns] + [10])
    lines = [title + (f"  [{unit}]" if unit else "")]
    header = " " * (label_width + 2) + "".join(f"{c:>{col_width + 2}}" for c in columns)
    lines.append(header)
    for label, values in rows:
        cells = "".join(
            f"{values.get(c, float('nan')):>{col_width + 2}.{precision}f}"
            for c in columns
        )
        lines.append(f"{label:<{label_width + 2}}" + cells)
    return "\n".join(lines)


def format_histogram(
    title: str,
    payload: Mapping,
    *,
    width: int = 40,
) -> str:
    """Render one exported :class:`~repro.obs.Histogram` block (the
    ``as_dict`` form) as an aligned bar chart, one line per non-empty
    log2 bucket."""
    from repro.obs import bucket_label

    buckets = payload.get("buckets", [])
    count = payload.get("count", 0)
    lines = [f"{title}  [n={count}, mean={payload.get('sum', 0) / max(1, count):.2f}]"]
    peak = max(buckets, default=0)
    for i, c in enumerate(buckets):
        if not c:
            continue
        bar = "#" * max(1, int(width * c / peak)) if peak else ""
        lines.append(f"  {bucket_label(i):>12}  {c:>8}  {bar}")
    return "\n".join(lines)


#: column order for tail-latency tables (matches
#: :meth:`~repro.bench.workload.LatencyRecorder.summary` keys)
PERCENTILE_COLUMNS: tuple[str, ...] = ("p50", "p95", "p99", "max")


def format_percentile_table(
    title: str,
    rows: Sequence[tuple[str, Mapping[str, float]]],
    *,
    unit: str = "simulated ns/op",
) -> str:
    """Render one tail-latency table: a row per scheme, the
    :data:`PERCENTILE_COLUMNS` as columns. Rows are ``(label,
    summary)`` where ``summary`` is a
    :meth:`~repro.bench.workload.LatencyRecorder.summary` block."""
    return format_table(
        title, list(PERCENTILE_COLUMNS), rows, unit=unit, precision=0
    )


#: eight-level block ramp used by :func:`format_sparkline`
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def format_sparkline(
    label: str,
    values: Sequence[float],
    *,
    width: int = 32,
    unit: str = "",
) -> str:
    """Render one series as a labelled unicode sparkline.

    Values are scaled to the series' own min..max (a flat series renders
    as all-low blocks); longer series are downsampled by taking the max
    of each bucket, so spikes survive the compression. The line ends
    with the numeric min/max so the sparkline's scale is readable."""
    vals = [float(v) for v in values]
    if not vals:
        return f"  {label}  (no samples)"
    if len(vals) > width:
        # bucket-max downsampling: a p99 spike must not average away
        step = len(vals) / width
        vals = [
            max(vals[int(i * step): max(int(i * step) + 1, int((i + 1) * step))])
            for i in range(width)
        ]
    lo, hi = min(vals), max(vals)
    span = hi - lo
    chars = "".join(
        SPARK_BLOCKS[
            0 if span == 0 else int((v - lo) / span * (len(SPARK_BLOCKS) - 1))
        ]
        for v in vals
    )
    suffix = f"  [{lo:.0f}..{hi:.0f}{' ' + unit if unit else ''}]"
    return f"  {label:<18} {chars}{suffix}"


def format_ratio_note(note: str) -> str:
    """Footnote line under a table (e.g. the paper's headline ratios)."""
    return f"  -> {note}"


def format_warnings(warnings: Sequence[str]) -> str:
    """Measurement-quality warnings block (e.g. insert shortfalls)."""
    return "\n".join(f"  !! warning: {w}" for w in warnings)


def hrule(title: str) -> str:
    """Section separator used between experiments in `bench all`."""
    bar = "=" * max(8, 72 - len(title) - 2)
    return f"\n== {title} {bar}"
