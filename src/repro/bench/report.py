"""Plain-text report formatting for the experiment drivers.

Every experiment returns rows of (label, {column: value}); these helpers
render them as aligned tables that mirror the paper's figures — one
table per figure panel, one row per scheme/series point.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[tuple[str, Mapping[str, float]]],
    *,
    unit: str = "",
    precision: int = 1,
) -> str:
    """Render one aligned table with a title line."""
    label_width = max([len(label) for label, _ in rows] + [len("scheme")])
    col_width = max([len(c) for c in columns] + [10])
    lines = [title + (f"  [{unit}]" if unit else "")]
    header = " " * (label_width + 2) + "".join(f"{c:>{col_width + 2}}" for c in columns)
    lines.append(header)
    for label, values in rows:
        cells = "".join(
            f"{values.get(c, float('nan')):>{col_width + 2}.{precision}f}"
            for c in columns
        )
        lines.append(f"{label:<{label_width + 2}}" + cells)
    return "\n".join(lines)


def format_ratio_note(note: str) -> str:
    """Footnote line under a table (e.g. the paper's headline ratios)."""
    return f"  -> {note}"


def format_warnings(warnings: Sequence[str]) -> str:
    """Measurement-quality warnings block (e.g. insert shortfalls)."""
    return "\n".join(f"  !! warning: {w}" for w in warnings)


def hrule(title: str) -> str:
    """Section separator used between experiments in `bench all`."""
    bar = "=" * max(8, 72 - len(title) - 2)
    return f"\n== {title} {bar}"
