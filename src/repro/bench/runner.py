"""Workload runner: the paper's measurement protocol (Section 4.2).

"In all the experiments, we first insert items into the hash table until
the load factor reaches the predefined value. After that, we insert 1000
items into the hash table, then query and delete 1000 items from the
hash table. At last, we calculate the average latency of requesting an
item."

:func:`run_workload` reproduces exactly that: fill → measured inserts →
measured queries (of the items just inserted) → measured deletes (same
items), each phase metered by snapshotting the region's
:class:`~repro.nvm.stats.MemStats`.

:func:`measure_space_utilization` (Figure 7) inserts until the first
failure; :func:`measure_recovery` (Table 3) fills, crashes, and times
Algorithm 4 on the simulator clock.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.bench.config import BuiltTable, Scale, build_table, make_trace
from repro.bench.workload import (
    GROWTH_MIX,
    OP_KINDS,
    PRESETS,
    LatencyRecorder,
    OpMix,
    generate_ops,
)
from repro.core import DirectoryTable, GroupHashTable, GrowableTable
from repro.nvm import (
    TECHNOLOGY_PRESETS,
    CacheConfig,
    MemStats,
    NVMRegion,
    RawBackend,
    SimConfig,
)
from repro.nvm.wear import export_wear_metrics
from repro.obs import MetricsRegistry, Tracer
from repro.tables.cell import CellCodec


@dataclass(frozen=True)
class RunSpec:
    """One (scheme, trace, load factor) measurement cell of Figures 5/6."""

    scheme: str
    trace: str = "randomnum"
    load_factor: float = 0.5
    total_cells: int = 1 << 14
    group_size: int = 128
    measure_ops: int = 500
    seed: int = 42
    tech: str = "paper-nvm"
    cache_ratio: float = 8.0
    flush_invalidates: bool = True
    #: memory substrate: "sim" (costed simulator; the only valid choice
    #: for figure benches) or "raw" (wall-clock fast path)
    backend: str = "sim"
    #: populate a metrics registry (probe histograms, WAL counters,
    #: group heat) during the measured phases; the result then carries a
    #: ``metrics`` block
    with_metrics: bool = False
    #: record a span tree of the measured phases (per-op spans plus the
    #: tables' stage spans); the result then carries ``spans`` and
    #: Chrome ``trace_events`` blocks
    with_trace: bool = False

    @classmethod
    def from_scale(
        cls, scheme: str, trace: str, load_factor: float, scale: Scale, **kw
    ) -> "RunSpec":
        return cls(
            scheme=scheme,
            trace=trace,
            load_factor=load_factor,
            total_cells=scale.total_cells,
            group_size=scale.group_size,
            measure_ops=scale.measure_ops,
            cache_ratio=scale.cache_ratio,
            **kw,
        )

    def replace(self, **changes) -> "RunSpec":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-ready field dict (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class UtilizationSpec:
    """One Figure 7 / Figure 8(b) cell: insert-to-first-failure.

    Executing it yields the load factor at the first rejected insert
    (see :func:`measure_space_utilization`)."""

    scheme: str
    trace: str = "randomnum"
    total_cells: int = 1 << 14
    group_size: int = 256
    seed: int = 42

    def to_dict(self) -> dict:
        """JSON-ready field dict (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "UtilizationSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class RecoverySpec:
    """One Table 3 row: fill, crash, time the Algorithm 4 scan.

    Executing it yields :func:`measure_recovery`'s column dict."""

    total_cells: int
    group_size: int = 256
    load_factor: float = 0.5
    trace: str = "randomnum"
    seed: int = 42

    def to_dict(self) -> dict:
        """JSON-ready field dict (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RecoverySpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class NegativeQuerySpec:
    """One absent-key-query cell (the ``negative`` experiment).

    Executing it yields ``{"latency_ns": ..., "misses": ...}`` per
    negative lookup (see :func:`measure_negative_queries`)."""

    scheme: str
    trace: str = "randomnum"
    load_factor: float = 0.5
    total_cells: int = 1 << 14
    group_size: int = 256
    measure_ops: int = 500
    cache_ratio: float = 8.0
    seed: int = 42

    def to_dict(self) -> dict:
        """JSON-ready field dict (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "NegativeQuerySpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class MixedSpec:
    """One mixed-workload (YCSB-style) measurement cell.

    Executing it (:func:`run_mixed_workload`) fills the table to
    ``load_factor``, then runs ``n_ops`` *interleaved* operations drawn
    from the op mix — a named :data:`~repro.bench.workload.PRESETS`
    entry, or an explicit :class:`~repro.bench.workload.OpMix` via
    ``mix`` — recording each op's simulated-latency delta. Frozen and
    JSON-round-trippable so the engine can dedupe, cache and fan it out
    exactly like :class:`RunSpec`.
    """

    scheme: str
    preset: str = "ycsb-a"
    #: explicit mix; ``None`` resolves ``preset`` from the registry
    mix: OpMix | None = None
    trace: str = "randomnum"
    load_factor: float = 0.5
    total_cells: int = 1 << 14
    group_size: int = 128
    n_ops: int = 500
    seed: int = 42
    tech: str = "paper-nvm"
    cache_ratio: float = 8.0
    flush_invalidates: bool = True
    backend: str = "sim"
    #: record a span tree of the mixed phase (the result then carries
    #: ``spans`` and Chrome ``trace_events`` blocks)
    with_trace: bool = False

    @classmethod
    def from_scale(
        cls, scheme: str, preset: str, load_factor: float, scale: Scale, **kw
    ) -> "MixedSpec":
        return cls(
            scheme=scheme,
            preset=preset,
            load_factor=load_factor,
            total_cells=scale.total_cells,
            group_size=scale.group_size,
            n_ops=scale.measure_ops,
            cache_ratio=scale.cache_ratio,
            **kw,
        )

    def resolved_mix(self) -> OpMix:
        """The effective op mix (explicit ``mix`` wins over ``preset``)."""
        if self.mix is not None:
            return self.mix
        try:
            return PRESETS[self.preset]
        except KeyError:
            raise ValueError(
                f"unknown preset {self.preset!r}; choose from "
                f"{sorted(PRESETS)} or pass an explicit mix"
            ) from None

    def replace(self, **changes) -> "MixedSpec":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-ready field dict (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MixedSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        data = dict(data)
        if data.get("mix") is not None:
            data["mix"] = OpMix.from_dict(data["mix"])
        return cls(**data)


@dataclass
class OpMetrics:
    """Per-phase counters reduced to the paper's reported quantities.

    ``ops`` is the denominator used for the per-request averages — the
    operations that actually *executed and succeeded* (clamped to ≥ 1 so
    averages stay defined). ``attempted`` records how many operations
    the protocol tried; near capacity, measured inserts can fail, and a
    silent ``attempted > ops`` shortfall would make the averaged
    latencies look better than the workload experienced. Reports warn
    when the two differ (:attr:`shortfall`).
    """

    ops: int = 0
    sim_ns: float = 0.0
    cache_misses: int = 0
    flushes: int = 0
    fences: int = 0
    nvm_bytes_written: int = 0
    #: operations attempted by the protocol (0 = not recorded)
    attempted: int = 0

    @classmethod
    def from_delta(
        cls, ops: int, delta: MemStats, *, attempted: int = 0
    ) -> "OpMetrics":
        return cls(
            ops=ops,
            sim_ns=delta.sim_time_ns,
            cache_misses=delta.cache_misses,
            flushes=delta.flushes,
            fences=delta.fences,
            nvm_bytes_written=delta.nvm_bytes_written,
            attempted=attempted,
        )

    @property
    def shortfall(self) -> int:
        """Attempted-but-unexecuted operations (0 when fully measured
        or when ``attempted`` was not recorded)."""
        return max(0, self.attempted - self.ops)

    def to_dict(self) -> dict:
        """JSON-ready field dict (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "OpMetrics":
        """Rebuild metrics from :meth:`to_dict` output."""
        return cls(**data)

    @property
    def avg_latency_ns(self) -> float:
        """Average request latency — the y-axis of Figures 2a, 5, 8a."""
        return self.sim_ns / self.ops if self.ops else 0.0

    @property
    def avg_misses(self) -> float:
        """Average L3 misses per request — the y-axis of Figures 2b, 6."""
        return self.cache_misses / self.ops if self.ops else 0.0

    @property
    def avg_flushes(self) -> float:
        """Average clflush per request (diagnostic)."""
        return self.flushes / self.ops if self.ops else 0.0


@dataclass
class RunResult:
    """All measured phases of one workload run."""

    spec: RunSpec
    insert: OpMetrics
    query: OpMetrics
    delete: OpMetrics
    fill_count: int = 0
    capacity: int = 0
    fill_failures: int = 0
    extras: dict[str, float] = field(default_factory=dict)
    #: exported :class:`~repro.obs.MetricsRegistry` block (``None``
    #: unless the spec set ``with_metrics``)
    metrics: dict | None = None
    #: aggregated span attribution (``Tracer.as_dict()``; ``None``
    #: unless the spec set ``with_trace``)
    spans: dict | None = None
    #: Chrome ``trace_event`` records for this cell (``None`` unless the
    #: spec set ``with_trace``)
    trace_events: list | None = None

    def phase(self, name: str) -> OpMetrics:
        """Metrics for one measured phase ("insert"/"query"/"delete")."""
        return {"insert": self.insert, "query": self.query, "delete": self.delete}[name]

    def shortfalls(self) -> dict[str, int]:
        """Phases whose measured-op count fell short of the attempts."""
        out = {}
        for name in ("insert", "query", "delete"):
            if self.phase(name).shortfall:
                out[name] = self.phase(name).shortfall
        return out

    def to_dict(self) -> dict:
        """JSON-ready nested dict (inverse of :meth:`from_dict`)."""
        return {
            "spec": self.spec.to_dict(),
            "insert": self.insert.to_dict(),
            "query": self.query.to_dict(),
            "delete": self.delete.to_dict(),
            "fill_count": self.fill_count,
            "capacity": self.capacity,
            "fill_failures": self.fill_failures,
            "extras": dict(self.extras),
            "metrics": self.metrics,
            "spans": self.spans,
            "trace_events": self.trace_events,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        return cls(
            spec=RunSpec.from_dict(data["spec"]),
            insert=OpMetrics.from_dict(data["insert"]),
            query=OpMetrics.from_dict(data["query"]),
            delete=OpMetrics.from_dict(data["delete"]),
            fill_count=data["fill_count"],
            capacity=data["capacity"],
            fill_failures=data["fill_failures"],
            extras=dict(data.get("extras", {})),
            metrics=data.get("metrics"),
            spans=data.get("spans"),
            trace_events=data.get("trace_events"),
        )


def fill_to_load_factor(
    built: BuiltTable,
    stream: "Iterator[tuple[bytes, bytes]]",
    load_factor: float,
) -> tuple[list[tuple[bytes, bytes]], int]:
    """Insert items from ``stream`` until ``count/capacity`` reaches the
    target.

    Returns the items actually resident and the number of failed insert
    attempts (schemes can reject items well below capacity — that is the
    Figure 7 story — so the fill keeps drawing fresh items)."""
    table = built.table
    target = int(load_factor * table.capacity)
    resident: list[tuple[bytes, bytes]] = []
    failures = 0
    max_failures = 64 * max(target, 1)
    while table.count < target:
        key, value = next(stream)
        if table.insert(key, value):
            resident.append((key, value))
        else:
            failures += 1
            if failures > max_failures:
                raise RuntimeError(
                    f"cannot fill {built.scheme} to load factor {load_factor}: "
                    f"stuck at {table.load_factor:.3f} after {failures} failures"
                )
    return resident, failures


def run_workload(spec: RunSpec) -> RunResult:
    """Execute the paper's measurement protocol for one spec."""
    trace = make_trace(spec.trace, seed=spec.seed)
    built = build_table(
        spec.scheme,
        spec.total_cells,
        trace.spec,
        group_size=spec.group_size,
        seed=spec.seed,
        cache_ratio=spec.cache_ratio,
        tech=spec.tech,
        flush_invalidates=spec.flush_invalidates,
        backend=spec.backend,
    )
    table, region = built.table, built.region

    stream = trace.unique_items()
    resident, failures = fill_to_load_factor(built, stream, spec.load_factor)

    # Observability opt-in. Instrumented *after* the fill so only the
    # measured phases are attributed; both sinks purely observe (stats
    # snapshots + chained event hooks), so the simulated event stream and
    # clock are identical with or without them.
    tracer: Tracer | None = None
    metrics: MetricsRegistry | None = None
    if spec.with_metrics:
        metrics = MetricsRegistry()
    if spec.with_trace:
        tracer = Tracer(region, max_events=20_000)
    if tracer is not None or metrics is not None:
        table.instrument(tracer, metrics)

    # fresh keys for the measured inserts: continue the same unique stream
    fresh = [next(stream) for _ in range(spec.measure_ops)]

    before = region.stats.snapshot()
    inserted = []
    for key, value in fresh:
        if tracer is not None:
            tracer.push("insert")
        ok = table.insert(key, value)
        if tracer is not None:
            tracer.pop()
        if ok:
            inserted.append((key, value))
    insert_metrics = OpMetrics.from_delta(
        max(1, len(inserted)), region.stats.delta(before), attempted=len(fresh)
    )

    # "query and delete 1000 items from the hash table": sample resident
    # items uniformly — a fixed-choice sample (e.g. only the items just
    # inserted) would bias toward the deepest cells of every scheme's
    # collision structure
    rng = random.Random(spec.seed ^ 0xC0FFEE)
    pool = resident + inserted
    targets = rng.sample(pool, min(spec.measure_ops, len(pool)))

    before = region.stats.snapshot()
    for key, value in targets:
        if tracer is not None:
            tracer.push("query")
        found = table.query(key)
        if tracer is not None:
            tracer.pop()
        assert found == value, f"{spec.scheme}: query returned wrong value"
    query_metrics = OpMetrics.from_delta(
        max(1, len(targets)), region.stats.delta(before),
        attempted=spec.measure_ops,
    )

    before = region.stats.snapshot()
    for key, _ in targets:
        if tracer is not None:
            tracer.push("delete")
        deleted = table.delete(key)
        if tracer is not None:
            tracer.pop()
        assert deleted, f"{spec.scheme}: delete lost an item"
    delete_metrics = OpMetrics.from_delta(
        max(1, len(targets)), region.stats.delta(before),
        attempted=spec.measure_ops,
    )

    result = RunResult(
        spec=spec,
        insert=insert_metrics,
        query=query_metrics,
        delete=delete_metrics,
        fill_count=len(resident),
        capacity=table.capacity,
        fill_failures=failures,
    )
    if metrics is not None:
        observe = getattr(table, "observe_occupancy", None)
        if observe is not None:
            observe(metrics)
        export_wear_metrics(region, metrics)
        result.metrics = metrics.as_dict()
    if tracer is not None:
        tracer.detach()
        summary = tracer.span_summary()
        # Reconciliation: the per-op spans telescope over each measured
        # phase (no simulated activity happens between ops), so their
        # inclusive sums must equal the phases' MemStats deltas.
        span_ns = sum(v["sim_ns"] for p, v in summary.items() if "/" not in p)
        phase_ns = (
            insert_metrics.sim_ns + query_metrics.sim_ns + delete_metrics.sim_ns
        )
        result.extras["span_sim_ns"] = span_ns
        result.extras["phase_sim_ns"] = phase_ns
        result.spans = tracer.as_dict()
        result.trace_events = tracer.chrome_events()
    if tracer is not None or metrics is not None:
        table.instrument(None, None)
    return result


@dataclass
class MixedResult:
    """One executed :class:`MixedSpec`: phase metrics plus latency
    distributions.

    ``total`` and ``per_kind`` are
    :meth:`~repro.bench.workload.LatencyRecorder.summary` blocks
    (count/sum/mean/p50/p95/p99/max, exact while the op count fits the
    reservoir); ``histogram`` is the overall log2-bucket export.
    ``extras['op_sim_ns']`` (the Σ of per-op deltas) reconciles with
    ``extras['phase_sim_ns']`` (the phase ``MemStats`` delta) at 0 ns
    drift — the per-op snapshots telescope over the phase."""

    spec: MixedSpec
    phase: OpMetrics
    total: dict
    per_kind: dict[str, dict]
    histogram: dict
    fill_count: int = 0
    capacity: int = 0
    fill_failures: int = 0
    #: ops the table rejected (insert at capacity) or that targeted a
    #: key a rejected insert never made live
    failed_ops: int = 0
    extras: dict = field(default_factory=dict)
    #: aggregated span attribution (``None`` unless ``with_trace``)
    spans: dict | None = None
    #: Chrome ``trace_event`` records (``None`` unless ``with_trace``)
    trace_events: list | None = None

    def to_dict(self) -> dict:
        """JSON-ready nested dict (inverse of :meth:`from_dict`)."""
        return {
            "spec": self.spec.to_dict(),
            "phase": self.phase.to_dict(),
            "total": dict(self.total),
            "per_kind": {k: dict(v) for k, v in self.per_kind.items()},
            "histogram": dict(self.histogram),
            "fill_count": self.fill_count,
            "capacity": self.capacity,
            "fill_failures": self.fill_failures,
            "failed_ops": self.failed_ops,
            "extras": dict(self.extras),
            "spans": self.spans,
            "trace_events": self.trace_events,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MixedResult":
        return cls(
            spec=MixedSpec.from_dict(data["spec"]),
            phase=OpMetrics.from_dict(data["phase"]),
            total=dict(data["total"]),
            per_kind={k: dict(v) for k, v in data["per_kind"].items()},
            histogram=dict(data["histogram"]),
            fill_count=data["fill_count"],
            capacity=data["capacity"],
            fill_failures=data["fill_failures"],
            failed_ops=data["failed_ops"],
            extras=dict(data.get("extras", {})),
            spans=data.get("spans"),
            trace_events=data.get("trace_events"),
        )


def run_mixed_workload(spec: MixedSpec) -> MixedResult:
    """Execute one mixed-workload cell.

    Fill to the load factor, generate the interleaved op stream
    (:func:`~repro.bench.workload.generate_ops`), then execute it while
    metering **every op individually**: the per-op cost is the
    ``MemStats.sim_time_ns`` delta across the op, fed to an overall and
    a per-kind :class:`~repro.bench.workload.LatencyRecorder`. The
    driver self-verifies against a shadow model — queries must return
    the value the stream last wrote, deletes must hit exactly the live
    keys — so a scheme that corrupts state under interleaving fails the
    cell rather than producing plausible numbers."""
    mix = spec.resolved_mix()
    trace = make_trace(spec.trace, seed=spec.seed)
    built = build_table(
        spec.scheme,
        spec.total_cells,
        trace.spec,
        group_size=spec.group_size,
        seed=spec.seed,
        cache_ratio=spec.cache_ratio,
        tech=spec.tech,
        flush_invalidates=spec.flush_invalidates,
        backend=spec.backend,
    )
    table, region = built.table, built.region
    stream = trace.unique_items()
    resident, fill_failures = fill_to_load_factor(built, stream, spec.load_factor)

    tracer: Tracer | None = None
    if spec.with_trace:
        tracer = Tracer(region, max_events=20_000)
        table.instrument(tracer, None)

    ops = generate_ops(mix, spec.n_ops, len(resident), seed=spec.seed)

    # Key universe: fill items first (ids 0..fill-1, insertion order),
    # then fresh stream items in the order the stream's inserts mint
    # their ids. ``live_value`` is the shadow model of what each live
    # key currently maps to.
    items: list[tuple[bytes, bytes]] = list(resident)
    live_value: dict[int, bytes] = {
        i: value for i, (_, value) in enumerate(resident)
    }
    value_size = table.spec.value_size
    vrng = random.Random((spec.seed << 8) ^ 0xA11CE)

    overall = LatencyRecorder()
    per_kind = {kind: LatencyRecorder() for kind in OP_KINDS}
    worst_kind = ""
    failed_ops = 0
    stats = region.stats
    before = stats.snapshot()
    last_ns = stats.sim_time_ns
    op_sim_ns = 0.0
    for index, op in enumerate(ops):
        while op.key_id >= len(items):
            items.append(next(stream))
        key = items[op.key_id][0]
        if tracer is not None:
            tracer.push(op.kind)
        if op.kind == "insert":
            value = items[op.key_id][1]
            if table.insert(key, value):
                live_value[op.key_id] = value
            else:
                failed_ops += 1
        elif op.kind == "query":
            found = table.query(key)
            expected = live_value.get(op.key_id)
            assert found == expected, f"{spec.scheme}: mixed query mismatch"
        elif op.kind == "update":
            new_value = vrng.getrandbits(8 * value_size).to_bytes(
                value_size, "little"
            )
            updated = table.update(key, new_value)
            if op.key_id in live_value:
                assert updated, f"{spec.scheme}: mixed update lost a live key"
                live_value[op.key_id] = new_value
            else:
                assert not updated, f"{spec.scheme}: updated a dead key"
                failed_ops += 1
        else:
            deleted = table.delete(key)
            assert deleted == (op.key_id in live_value), (
                f"{spec.scheme}: mixed delete disagrees with the model"
            )
            if deleted:
                live_value.pop(op.key_id)
            else:
                failed_ops += 1
        if tracer is not None:
            tracer.pop()
        now = stats.sim_time_ns
        op_ns = now - last_ns
        last_ns = now
        op_sim_ns += op_ns
        overall.record(op_ns, index)
        per_kind[op.kind].record(op_ns, index)
        if overall.worst[1] == index:
            worst_kind = op.kind
    delta = stats.delta(before)

    succeeded = len(ops) - failed_ops
    result = MixedResult(
        spec=spec,
        phase=OpMetrics.from_delta(
            max(1, succeeded), delta, attempted=len(ops)
        ),
        total=overall.summary(),
        per_kind={
            kind: rec.summary()
            for kind, rec in per_kind.items()
            if rec.count
        },
        histogram=overall.hist.as_dict(),
        fill_count=len(resident),
        capacity=table.capacity,
        fill_failures=fill_failures,
        failed_ops=failed_ops,
    )
    result.extras["op_sim_ns"] = op_sim_ns
    result.extras["phase_sim_ns"] = delta.sim_time_ns
    result.extras["worst_op"] = {
        "index": overall.worst[1],
        "kind": worst_kind,
        "sim_ns": overall.worst[0],
    }
    if tracer is not None:
        tracer.detach()
        summary = tracer.span_summary()
        result.extras["span_sim_ns"] = sum(
            v["sim_ns"] for p, v in summary.items() if "/" not in p
        )
        result.spans = tracer.as_dict()
        result.trace_events = tracer.chrome_events()
        table.instrument(None, None)
    return result


def measure_space_utilization(
    scheme: str,
    trace_name: str,
    *,
    total_cells: int,
    group_size: int = 256,
    seed: int = 42,
) -> float:
    """Figure 7: the load factor at which an insert first fails."""
    trace = make_trace(trace_name, seed=seed)
    built = build_table(
        scheme, total_cells, trace.spec, group_size=group_size, seed=seed
    )
    table = built.table
    for key, value in trace.unique_items():
        if not table.insert(key, value):
            return table.load_factor
    raise RuntimeError("trace exhausted before the table filled")


def measure_recovery(
    *,
    total_cells: int,
    group_size: int = 256,
    load_factor: float = 0.5,
    trace_name: str = "randomnum",
    seed: int = 42,
) -> dict[str, float]:
    """Table 3: fill to ``load_factor``, crash, time Algorithm 4.

    Returns simulated milliseconds for execution (fill) and recovery,
    plus the table's data footprint in bytes, mirroring the paper's
    columns."""
    trace = make_trace(trace_name, seed=seed)
    built = build_table(
        "group", total_cells, trace.spec, group_size=group_size, seed=seed
    )
    table, region = built.table, built.region

    before = region.stats.snapshot()
    fill_to_load_factor(built, trace.unique_items(), load_factor)
    execution_ns = region.stats.delta(before).sim_time_ns

    region.crash()
    table.reattach()

    before = region.stats.snapshot()
    table.recover()
    recovery_ns = region.stats.delta(before).sim_time_ns

    table_bytes = table.codec.array_bytes(table.capacity)
    return {
        "table_bytes": float(table_bytes),
        "recovery_ms": recovery_ns / 1e6,
        "execution_ms": execution_ns / 1e6,
        "percentage": 100.0 * recovery_ns / execution_ns if execution_ns else 0.0,
    }


def measure_negative_queries(spec: NegativeQuerySpec) -> dict[str, float]:
    """Absent-key lookups: fill to the load factor, then query keys from
    the same distribution that were never inserted (the ``negative``
    experiment — a case the paper's protocol never measures)."""
    trace = make_trace(spec.trace, seed=spec.seed)
    built = build_table(
        spec.scheme,
        spec.total_cells,
        trace.spec,
        group_size=spec.group_size,
        seed=spec.seed,
        cache_ratio=spec.cache_ratio,
    )
    stream = trace.unique_items()
    fill_to_load_factor(built, stream, spec.load_factor)
    # absent keys: same distribution, never inserted
    absent = [key for key, _ in (next(stream) for _ in range(spec.measure_ops))]
    region, table = built.region, built.table
    before = region.stats.snapshot()
    for key in absent:
        assert table.query(key) is None
    delta = region.stats.delta(before)
    return {
        "latency_ns": delta.sim_time_ns / len(absent),
        "misses": delta.cache_misses / len(absent),
    }


def run_utilization_spec(spec: UtilizationSpec) -> float:
    """Execute one :class:`UtilizationSpec`."""
    return measure_space_utilization(
        spec.scheme,
        spec.trace,
        total_cells=spec.total_cells,
        group_size=spec.group_size,
        seed=spec.seed,
    )


def run_recovery_spec(spec: RecoverySpec) -> dict[str, float]:
    """Execute one :class:`RecoverySpec`."""
    return measure_recovery(
        total_cells=spec.total_cells,
        group_size=spec.group_size,
        load_factor=spec.load_factor,
        trace_name=spec.trace,
        seed=spec.seed,
    )


@dataclass(frozen=True)
class GrowthSpec:
    """One incremental-growth cell (the ``growth`` experiment).

    Executing it (:func:`run_growth_workload`) fills a
    :class:`~repro.core.DirectoryTable` to ``fill_factor`` of its
    initial capacity, then runs an insert-heavy stream
    (:data:`~repro.bench.workload.GROWTH_MIX`) sized to push the table
    past that capacity — so segment splits happen *inside* the measured
    window and during-split latency is a first-class percentile. The
    same op stream then runs against the legacy stop-the-world path
    (:class:`~repro.core.GrowableTable` in ``rebuild`` mode) on an
    identically sized/configured region, yielding the whole-table
    rebuild pause the split path is judged against.
    """

    trace: str = "randomnum"
    #: initial directory capacity in cells (segments × segment_cells)
    initial_cells: int = 256
    segment_cells: int = 32
    #: group size of the legacy monolithic table (small enough to
    #: divide every level the rebuilds produce)
    group_size: int = 32
    #: pre-fill fraction of ``initial_cells`` (inserted before measuring)
    fill_factor: float = 0.6
    n_ops: int = 200
    seed: int = 42
    tech: str = "paper-nvm"
    cache_ratio: float = 8.0
    backend: str = "sim"

    @classmethod
    def from_scale(cls, scale: Scale, **kw) -> "GrowthSpec":
        # capacity ≈ the measured-op count: fill + the mix's inserts then
        # overrun the initial table at any scale, guaranteeing splits
        # (and at least one legacy rebuild) inside the window
        initial = max(256, 1 << (scale.measure_ops - 1).bit_length())
        kw.setdefault("initial_cells", initial)
        kw.setdefault("segment_cells", max(16, initial // 8))
        kw.setdefault("n_ops", scale.measure_ops)
        kw.setdefault("cache_ratio", scale.cache_ratio)
        return cls(**kw)

    def replace(self, **changes) -> "GrowthSpec":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-ready field dict (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "GrowthSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(**data)


def _growth_region(item_spec, spec: GrowthSpec, *, track_wear: bool = False):
    """A region for one growth run — sized with headroom for several
    capacity doublings (splits and rebuilds both carve new tables out of
    the same never-reused bump allocator), with the cache sized from the
    *initial* table bytes so both runs see identical memory systems.
    ``track_wear`` turns on the (volatile, zero-simulated-cost) per-line
    wear counters — the timeline experiment's wear-heat source."""
    codec = CellCodec(item_spec)
    size = codec.array_bytes(spec.initial_cells * 16) + (1 << 17)
    if spec.backend == "raw":
        return RawBackend(size, name="growth")
    if spec.backend != "sim":
        raise ValueError(f"unknown backend {spec.backend!r}")
    table_bytes = codec.array_bytes(spec.initial_cells)
    config = SimConfig(
        latency=TECHNOLOGY_PRESETS[spec.tech],
        cache=CacheConfig(
            size_bytes=max(4096, int(table_bytes / spec.cache_ratio)),
            line_size=64,
            associativity=8,
        ),
        track_wear=track_wear,
    )
    return NVMRegion(size, config, name="growth")


def _growth_fill(table, stream, target: int) -> list[tuple[bytes, bytes]]:
    """Insert exactly the first ``target`` stream items (both growth
    paths absorb a full table by growing, so no insert may fail — which
    keeps the resident list, and therefore the generated op stream,
    identical across the incremental and legacy runs)."""
    resident = []
    for _ in range(target):
        key, value = next(stream)
        if not table.insert(key, value):
            raise RuntimeError("growth fill insert failed on a growing table")
        resident.append((key, value))
    return resident


def _run_growth_stream(
    table, region, ops, stream, resident, growth_count
) -> tuple[LatencyRecorder, LatencyRecorder, LatencyRecorder, list[dict]]:
    """Execute ``ops``, metering every op and classifying it by whether
    ``growth_count()`` (splits, or legacy expansions) advanced during
    it. Returns (overall, during-growth, steady) recorders plus the
    growth ops' ``{"index", "kind", "sim_ns"}`` records."""
    items: list[tuple[bytes, bytes]] = list(resident)
    live_value: dict[int, bytes] = {
        i: value for i, (_, value) in enumerate(resident)
    }
    overall = LatencyRecorder()
    during = LatencyRecorder()
    steady = LatencyRecorder()
    growth_ops: list[dict] = []
    stats = region.stats
    last_ns = stats.sim_time_ns
    for index, op in enumerate(ops):
        while op.key_id >= len(items):
            items.append(next(stream))
        key = items[op.key_id][0]
        before_growth = growth_count()
        if op.kind == "insert":
            value = items[op.key_id][1]
            if not table.insert(key, value):
                raise RuntimeError("growth-stream insert failed")
            live_value[op.key_id] = value
        elif op.kind == "query":
            found = table.query(key)
            expected = live_value.get(op.key_id)
            assert found == expected, "growth-stream query mismatch"
        else:  # GROWTH_MIX is insert/query only
            raise ValueError(f"unexpected op kind {op.kind!r} in growth mix")
        now = stats.sim_time_ns
        op_ns = now - last_ns
        last_ns = now
        overall.record(op_ns, index)
        if growth_count() > before_growth:
            during.record(op_ns, index)
            growth_ops.append({"index": index, "kind": op.kind, "sim_ns": op_ns})
        else:
            steady.record(op_ns, index)
    return overall, during, steady, growth_ops


def run_growth_workload(spec: GrowthSpec) -> dict:
    """Execute one growth cell; returns a JSON-ready summary dict.

    Two runs over the *same* deterministic op stream:

    1. **incremental** — a :class:`~repro.core.DirectoryTable`: a full
       segment splits alone, so growth cost is spread across the ops
       that trigger splits;
    2. **legacy** — :class:`~repro.core.GrowableTable` in ``rebuild``
       mode: a full table is rebuilt wholesale, and the triggering op
       absorbs the entire stop-the-world pause.

    The headline comparison is the incremental path's during-split p99
    against the legacy path's worst rebuild pause."""
    trace = make_trace(spec.trace, seed=spec.seed)
    target = int(spec.fill_factor * spec.initial_cells)
    ops = generate_ops(GROWTH_MIX, spec.n_ops, target, seed=spec.seed)

    # incremental: directory of segments, splits inside the window
    region = _growth_region(trace.spec, spec)
    table = DirectoryTable(
        region,
        spec.initial_cells,
        trace.spec,
        segment_cells=spec.segment_cells,
        seed=spec.seed,
    )
    stream = trace.unique_items()
    resident = _growth_fill(table, stream, target)
    splits_before = table.splits
    overall, during_split, steady, split_ops = _run_growth_stream(
        table, region, ops, stream, resident, lambda: table.splits
    )
    splits = table.splits - splits_before

    # legacy: same stream, same region sizing, stop-the-world rebuilds
    legacy_region = _growth_region(trace.spec, spec)
    legacy = GrowableTable(
        GroupHashTable(
            legacy_region,
            spec.initial_cells,
            trace.spec,
            group_size=spec.group_size,
            seed=spec.seed,
        ),
        mode="rebuild",
    )
    legacy_stream = trace.unique_items()
    legacy_resident = _growth_fill(legacy, legacy_stream, target)
    expansions_before = legacy.expansions
    legacy_overall, legacy_during, legacy_steady, rebuild_ops = (
        _run_growth_stream(
            legacy,
            legacy_region,
            ops,
            legacy_stream,
            legacy_resident,
            lambda: legacy.expansions,
        )
    )
    expansions = legacy.expansions - expansions_before

    if splits < 3:
        raise RuntimeError(
            f"growth cell too small: only {splits} in-window splits "
            "(need >= 3; raise n_ops or shrink segment_cells)"
        )
    if not rebuild_ops:
        raise RuntimeError(
            "growth cell too small: the legacy run never rebuilt "
            "(raise n_ops or shrink initial_cells)"
        )
    rebuild_pause_ns = max(op["sim_ns"] for op in rebuild_ops)
    split_p99_ns = during_split.percentile(0.99)
    return {
        "initial_capacity": spec.initial_cells,
        "fill_count": target,
        "ops": len(ops),
        "incremental": {
            "final_capacity": table.capacity,
            "splits": splits,
            "doublings": table.doublings,
            "segments": table.n_segments,
            "overall": overall.summary(),
            "during_split": during_split.summary(),
            "steady": steady.summary(),
            "split_ops": split_ops,
            "abandoned_bytes": region.abandoned_bytes,
        },
        "legacy": {
            "final_capacity": legacy.capacity,
            "expansions": expansions,
            "overall": legacy_overall.summary(),
            "during_rebuild": legacy_during.summary(),
            "steady": legacy_steady.summary(),
            "rebuild_ops": rebuild_ops,
            "abandoned_bytes": legacy_region.abandoned_bytes,
        },
        "split_p99_ns": split_p99_ns,
        "rebuild_pause_ns": rebuild_pause_ns,
        "split_p99_below_rebuild_pause": split_p99_ns < rebuild_pause_ns,
    }
