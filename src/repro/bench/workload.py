"""Mixed-workload model: YCSB-style op mixes with tail-latency recording.

The paper's protocol (Section 4.2) measures pure phases — fill, then
1000 inserts, then 1000 queries, then 1000 deletes — and reports only
averages. Production traffic is neither pure nor average-shaped: ops of
different kinds interleave, keys are skewed, and what matters is the
tail. This module supplies the three ingredients the mixed-workload
experiment needs:

- :class:`OpMix` — a frozen ratio model over the four table operations
  (insert / query / update / delete) plus a key-selection distribution
  (uniform, Zipfian, or latest) over the resident keys, with the
  standard YCSB core-workload presets (:data:`PRESETS`);
- :func:`generate_ops` — a deterministic, seed-driven interleaved op
  stream. The generator maintains a model of the live key set (inserts
  append, deletes remove), so every query/update/delete targets a key
  that is actually resident at that point in the stream;
- :class:`LatencyRecorder` — a per-op simulated-latency sink combining
  the observability layer's log2-bucket
  :class:`~repro.obs.Histogram` (mergeable, bounded) with an exact
  sample list for small runs, so p50/p95/p99/max are *exact* whenever
  the op count fits the reservoir (every standard scale does) and
  power-of-two bounds otherwise.

Everything here is pure Python over plain data — no region access, no
wall-clock — so op streams and percentiles are byte-identical across
processes, worker counts and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass

from repro.obs import Histogram

#: the four table operations a mix can ratio over, in stream order
OP_KINDS: tuple[str, ...] = ("insert", "query", "update", "delete")

#: key-selection distributions over the resident key list
KEY_DISTS: tuple[str, ...] = ("uniform", "zipfian", "latest")

#: percentiles every latency summary reports
PERCENTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


@dataclass(frozen=True)
class OpMix:
    """Operation ratios plus a key-selection distribution.

    Ratios must be non-negative and sum to 1 (within float tolerance).
    ``key_dist`` picks how query/update/delete targets are drawn from
    the keys resident at that point of the stream:

    - ``uniform`` — every resident key equally likely;
    - ``zipfian`` — rank-Zipfian with parameter ``zipf_theta`` over
      insertion order, oldest keys hottest (the classic YCSB skew,
      minus the scrambling — determinism over dispersion);
    - ``latest`` — the same Zipfian ranks over *reverse* insertion
      order, newest keys hottest (YCSB-D's read-latest pattern).
    """

    insert: float = 0.0
    query: float = 0.0
    update: float = 0.0
    delete: float = 0.0
    key_dist: str = "uniform"
    zipf_theta: float = 0.99

    def __post_init__(self) -> None:
        ratios = self.ratios
        if any(r < 0 for r in ratios):
            raise ValueError(f"op ratios must be non-negative: {ratios}")
        if abs(sum(ratios) - 1.0) > 1e-9:
            raise ValueError(f"op ratios must sum to 1: {ratios}")
        if self.key_dist not in KEY_DISTS:
            raise ValueError(
                f"unknown key_dist {self.key_dist!r}; choose from {KEY_DISTS}"
            )
        if not 0.0 < self.zipf_theta < 1.0:
            raise ValueError("zipf_theta must be in (0, 1)")

    @property
    def ratios(self) -> tuple[float, float, float, float]:
        """(insert, query, update, delete) in :data:`OP_KINDS` order."""
        return (self.insert, self.query, self.update, self.delete)

    def to_dict(self) -> dict:
        """JSON-ready field dict (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "OpMix":
        """Rebuild a mix from :meth:`to_dict` output."""
        return cls(**data)


#: YCSB core-workload presets, expressed as ratios over *physical* table
#: ops. F's read-modify-writes are decomposed (one RMW = one query plus
#: one update of the same skew), hence the 2:1 physical ratio.
PRESETS: dict[str, OpMix] = {
    "ycsb-a": OpMix(query=0.5, update=0.5, key_dist="zipfian"),
    "ycsb-b": OpMix(query=0.95, update=0.05, key_dist="zipfian"),
    "ycsb-c": OpMix(query=1.0, key_dist="zipfian"),
    "ycsb-d": OpMix(query=0.95, insert=0.05, key_dist="latest"),
    "ycsb-f": OpMix(query=2 / 3, update=1 / 3, key_dist="zipfian"),
}

#: preset display order used by the mixed experiment's reports
PRESET_ORDER: tuple[str, ...] = tuple(sorted(PRESETS))

#: the growth experiment's insert-heavy mix: enough inserts to push a
#: table past its initial capacity inside the measured window, with
#: queries interleaved so lookup tail latency during a split is
#: observed too. Deliberately *not* in :data:`PRESETS` — the preset
#: registry feeds the mixed grid and its cache keys, and this mix is a
#: different experiment's axis.
GROWTH_MIX = OpMix(insert=0.7, query=0.3)


@dataclass(frozen=True)
class MixedOp:
    """One op of a generated stream: a kind plus a key id.

    Key ids index an append-only key universe: ids below the resident
    count name fill-phase items; higher ids name fresh keys in the
    order the stream's inserts mint them."""

    kind: str
    key_id: int


class ZipfianRanks:
    """Rank sampler: ``P(rank r of n) ∝ 1/(r+1)^theta``.

    Uses the Gray et al. quantile approximation ("Quickly generating
    billion-record synthetic databases") with a monotone table of zeta
    prefix sums, so the live-set size may grow and shrink between draws
    at amortised O(1) cost. The table is only ever *appended* to —
    ``zeta(n)`` for any previously visited ``n`` is the exact same
    float, summed in the same low-to-high term order a fresh
    ``sum(i**-theta)`` would use — so shrink/grow oscillations (delete-
    heavy streams) cannot accumulate the add-then-subtract rounding
    drift the old incremental +=/-= maintenance suffered from. Fully
    deterministic: the same ``u`` sequence yields the same ranks."""

    def __init__(self, theta: float) -> None:
        self.theta = theta
        self._n = 0
        self._zeta = 0.0
        #: ``_prefix[n]`` = zeta(n) = sum of i**-theta for i in 1..n
        self._prefix: list[float] = [0.0]

    def _resize(self, n: int) -> None:
        prefix = self._prefix
        while len(prefix) <= n:
            prefix.append(prefix[-1] + len(prefix) ** -self.theta)
        self._n = n
        self._zeta = prefix[n]

    def rank(self, n: int, u: float) -> int:
        """Rank in ``[0, n)`` for a uniform draw ``u`` in ``[0, 1)``."""
        if n <= 0:
            raise ValueError("n must be positive")
        if n == 1:
            return 0
        self._resize(n)
        theta, zetan = self.theta, self._zeta
        uz = u * zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**theta:
            return 1
        zeta2 = 1.0 + 0.5**theta
        eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - zeta2 / zetan)
        rank = int(n * (eta * u - eta + 1.0) ** (1.0 / (1.0 - theta)))
        return min(max(rank, 0), n - 1)


def generate_ops(
    mix: OpMix, n_ops: int, n_resident: int, seed: int
) -> list[MixedOp]:
    """Deterministically generate an interleaved op stream.

    The stream starts from ``n_resident`` live keys (ids ``0 ..
    n_resident-1``, the fill phase's items in insertion order); inserts
    mint fresh ids sequentially from ``n_resident`` upward, deletes
    retire ids, and every query/update/delete draws its target from the
    keys live *at that point* via the mix's key distribution. A
    key-consuming op drawn against an empty live set degrades to an
    insert, so the stream never references a key it already deleted."""
    rng = random.Random((seed << 4) ^ 0x3D1F)
    cumulative: list[tuple[float, str]] = []
    acc = 0.0
    for kind, ratio in zip(OP_KINDS, mix.ratios):
        if ratio <= 0.0:
            continue
        acc += ratio
        cumulative.append((acc, kind))
    zipf = ZipfianRanks(mix.zipf_theta)
    live = list(range(n_resident))
    next_id = n_resident
    ops: list[MixedOp] = []
    for _ in range(n_ops):
        u = rng.random()
        # the last bound is the ratio sum (1 up to float rounding), so a
        # draw past it falls into the final non-zero kind
        kind = cumulative[-1][1]
        for bound, k in cumulative:
            if u < bound:
                kind = k
                break
        if kind != "insert" and not live:
            kind = "insert"
        if kind == "insert":
            ops.append(MixedOp("insert", next_id))
            live.append(next_id)
            next_id += 1
            continue
        if mix.key_dist == "uniform":
            index = rng.randrange(len(live))
        else:
            rank = zipf.rank(len(live), rng.random())
            index = rank if mix.key_dist == "zipfian" else len(live) - 1 - rank
        ops.append(MixedOp(kind, live[index]))
        if kind == "delete":
            live.pop(index)
    return ops


class LatencyRecorder:
    """Per-op simulated-latency sink: log2 histogram + exact reservoir.

    Every observation lands in a mergeable log2-bucket
    :class:`~repro.obs.Histogram`; additionally, up to ``exact_cap``
    raw values are kept so small runs (every standard scale) report
    *exact* percentiles. Past the cap the raw list is dropped —
    deterministically, never sampled — and percentiles fall back to the
    histogram's power-of-two bucket bounds."""

    def __init__(self, exact_cap: int = 1 << 14) -> None:
        self.hist = Histogram()
        self.exact_cap = exact_cap
        self._samples: list[float] | None = []
        #: (simulated ns, op index) of the worst observation
        self.worst: tuple[float, int] = (0.0, -1)

    @property
    def count(self) -> int:
        """Number of observations."""
        return self.hist.count

    @property
    def exact(self) -> bool:
        """Whether percentiles are exact (reservoir still intact)."""
        return self._samples is not None

    def record(self, ns: float, index: int) -> None:
        """Add one per-op observation (``index`` = stream position)."""
        self.hist.record(ns)
        if self._samples is not None:
            self._samples.append(ns)
            if len(self._samples) > self.exact_cap:
                self._samples = None
        if ns > self.worst[0] or self.worst[1] < 0:
            self.worst = (ns, index)

    def percentile(self, q: float) -> float:
        """The ``q``-quantile observation — exact while the reservoir
        holds, else the histogram's bucket upper bound."""
        if self._samples is None:
            return self.hist.quantile(q)
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = max(0, math.ceil(q * len(ordered)) - 1)
        return ordered[min(index, len(ordered) - 1)]

    def summary(self) -> dict:
        """JSON-ready percentile block: count, sum, mean, p50/p95/p99,
        max, worst-op stream index, exactness flag."""
        out: dict = {
            "count": self.hist.count,
            "sum": self.hist.total,
            "mean": self.hist.mean,
        }
        for name, q in PERCENTILES:
            out[name] = self.percentile(q)
        out["max"] = self.hist.max or 0.0
        out["worst_op_index"] = self.worst[1]
        out["exact"] = self.exact
        return out
