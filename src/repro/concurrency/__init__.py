"""Deterministic multi-client concurrency over the simulated clock.

The paper's consistency argument (and every driver up to PR 7) assumes
one writer at a time; a serving system has N interleaved clients. This
package adds that layer without giving up determinism:

- :mod:`repro.concurrency.locks` — volatile group/bucket-level
  *versioned locks* (seqlock discipline: odd = writer in the group)
  plus per-stripe one-byte *fingerprint* multisets, the Dash recipe for
  lock-free optimistic reads that validate a version+fingerprint
  snapshot and retry on conflict;
- :mod:`repro.concurrency.scheduler` — N logical clients, each a step
  generator over its op stream, interleaved by a seeded scheduler that
  context-switches at simulated-clock boundaries. Every run is a pure
  function of (table, streams, seed): byte-replayable across processes
  and worker counts, which is what lets the bench engine cache
  contention cells and the crash matrix replay mid-interleaving
  boundaries bit-for-bit.

Tables advertise their lock granularity via
:meth:`~repro.tables.base.PersistentHashTable.lock_stripes` (the group
hash table maps a key to its candidate *groups* — the paper's natural
locking unit); the scheduler owns the lock table, the per-client cost
attribution (via ``MemoryBackend`` event hooks) and the lost-update /
linearizability shadow check.
"""

from repro.concurrency.locks import VersionedLockTable, fingerprint_of
from repro.concurrency.scheduler import (
    ClientOp,
    CommitRecord,
    ConcurrentRunResult,
    run_concurrent,
    table_digest,
)

__all__ = [
    "ClientOp",
    "CommitRecord",
    "ConcurrentRunResult",
    "VersionedLockTable",
    "fingerprint_of",
    "run_concurrent",
    "table_digest",
]
