"""Versioned stripe locks and fingerprint tags (the Dash recipe).

One *stripe* is one lockable unit of a table — for the group hash table
a stripe is a level-1/level-2 *group*, for other schemes a hash stripe
(see :meth:`~repro.tables.base.PersistentHashTable.lock_stripes`). Each
stripe carries:

- a **version counter** with seqlock parity: even = free, odd = a
  writer holds the stripe. Writers bump it on acquire and again on
  release, so any completed write changes the version by 2 and an
  in-progress write is visible as an odd snapshot;
- a **fingerprint multiset**: one-byte tags of the keys resident in the
  stripe. A reader whose key's tag is absent can declare a definite
  miss without probing NVM at all; the surrounding version validation
  makes the shortcut safe under concurrent writers.

Everything here is *volatile by design* (Dash §3.1 makes the same
argument): lock words never need to survive a crash — recovery simply
reinitialises them — so none of this state lives in the simulated
region and none of it perturbs persist-event traces or simulated
costs.
"""

from __future__ import annotations

import zlib
from typing import Sequence


def fingerprint_of(key: bytes) -> int:
    """One-byte fingerprint tag of ``key`` (a CRC-32 fold).

    Deterministic across processes and ``PYTHONHASHSEED`` values, which
    the replayable scheduler requires."""
    return zlib.crc32(key) & 0xFF


class VersionedLockTable:
    """Per-stripe versioned locks plus fingerprint multisets.

    The volatile half of the concurrency layer: writers
    :meth:`try_acquire` / :meth:`release` (bumping the seqlock
    version), optimistic readers :meth:`snapshot` and re-validate, and
    both sides maintain/consult the per-stripe fingerprint tags."""

    def __init__(self, n_stripes: int) -> None:
        if n_stripes <= 0:
            raise ValueError("n_stripes must be positive")
        self.n_stripes = n_stripes
        self._versions = [0] * n_stripes
        self._owners = [-1] * n_stripes
        self._fps: list[dict[int, int]] = [{} for _ in range(n_stripes)]
        #: successful lock acquisitions
        self.acquires = 0
        #: acquisition attempts that found the stripe already held
        self.contended = 0

    def version(self, stripe: int) -> int:
        """Current version of ``stripe`` (odd = writer in progress)."""
        return self._versions[stripe]

    def snapshot(self, stripes: Sequence[int]) -> tuple[int, ...]:
        """Versions of ``stripes`` as one tuple — the optimistic
        reader's begin/validate snapshot."""
        versions = self._versions
        return tuple(versions[s] for s in stripes)

    def locked(self, stripe: int) -> bool:
        """Whether a writer currently holds ``stripe``."""
        return bool(self._versions[stripe] & 1)

    def owner(self, stripe: int) -> int:
        """Client id holding ``stripe`` (-1 when free)."""
        return self._owners[stripe]

    def try_acquire(self, stripe: int, owner: int) -> bool:
        """Try to take ``stripe`` for writer ``owner``.

        Returns False (and counts the contention) when another writer
        holds it; on success the version turns odd."""
        if self._versions[stripe] & 1:
            self.contended += 1
            return False
        self._versions[stripe] += 1
        self._owners[stripe] = owner
        self.acquires += 1
        return True

    def release(self, stripe: int) -> None:
        """Release a held stripe; the version turns even again."""
        if not self._versions[stripe] & 1:
            raise RuntimeError(f"release of unheld stripe {stripe}")
        self._versions[stripe] += 1
        self._owners[stripe] = -1

    # ------------------------------------------------------------------
    # fingerprint maintenance (writers) and probing (readers)

    def fp_add(self, stripe: int, fp: int) -> None:
        """Record one resident key with tag ``fp`` in ``stripe``."""
        tags = self._fps[stripe]
        tags[fp] = tags.get(fp, 0) + 1

    def fp_remove(self, stripe: int, fp: int) -> None:
        """Drop one resident key with tag ``fp`` from ``stripe``."""
        tags = self._fps[stripe]
        count = tags.get(fp, 0)
        if count <= 0:
            raise RuntimeError(
                f"fingerprint multiset underflow (stripe {stripe}, tag {fp})"
            )
        if count == 1:
            del tags[fp]
        else:
            tags[fp] = count - 1

    def fp_may_contain(self, stripe: int, fp: int) -> bool:
        """Whether ``stripe`` may hold a key tagged ``fp``.

        False is definitive (no resident key carries the tag), so the
        reader can skip the NVM probe entirely; True may be a
        collision, in which case the probe settles it."""
        return fp in self._fps[stripe]
