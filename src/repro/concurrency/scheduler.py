"""The deterministic N-client interleaver over the simulated clock.

Real threads would make every run a different run (and under the GIL
they would not even overlap simulated work); instead each logical
client is a *step generator* over its op stream, yielding the simulated
nanoseconds each step consumed, and the scheduler always resumes the
client with the smallest simulated clock (ties broken by a seeded
permutation). Context switches therefore happen exactly at
simulated-clock boundaries and the whole run — interleaving, op
results, final table bytes — is a pure function of (table, streams,
seed). DESIGN.md decision 14 spells out the argument.

Steps are chosen so the interesting races are observable:

- a **writer** spins (with simulated backoff) until it holds every
  candidate stripe of its key, yields *while holding* (so readers can
  observe the odd version), applies the table op — metered via the
  region's simulated clock — and releases only after the op's cost has
  elapsed on its own clock;
- an optimistic **reader** snapshots the stripe versions, yields,
  aborts on an odd version, consults the fingerprint tags (a definite
  miss skips the NVM probe), probes, yields, and re-validates the
  snapshot — a changed version means a writer committed inside the
  read window and the read retries from scratch.

The scheduler owns per-client cost attribution (a chained
``MemoryBackend`` event hook tags every write/flush/fence with the
running client), per-client latency recorders, abort/retry counters
(mirrored into an optional :class:`~repro.obs.MetricsRegistry`), and a
shadow model applied in physical commit order: every query is checked
against it at its linearization point and the final table contents
must equal it exactly — a lost update fails the run rather than
producing plausible throughput numbers.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.bench.workload import LatencyRecorder
from repro.concurrency.locks import VersionedLockTable, fingerprint_of
from repro.nvm.memory import NVMRegion

#: simulated ns one failed lock acquisition spin costs (a cacheline ping)
SPIN_NS = 60.0
#: simulated ns an aborted optimistic read backs off before retrying
BACKOFF_NS = 120.0
#: nominal simulated ns per persist event on backends without a costed
#: clock (RawBackend) — keeps the interleaver deterministic there too
RAW_EVENT_NS = 100.0
#: hard cap on lock spins / read retries per op (a deterministic
#: scheduler bug would otherwise livelock silently)
MAX_ATTEMPTS = 100_000

#: op kinds that take a stripe lock (everything but "query")
WRITE_KINDS = frozenset({"insert", "update", "delete"})


@dataclass(frozen=True)
class ClientOp:
    """One logical operation a client submits.

    ``kind`` is "insert" | "query" | "update" | "delete"; ``value`` is
    required for inserts and updates."""

    kind: str
    key: bytes
    value: bytes | None = None


@dataclass
class CommitRecord:
    """One op as it committed, in physical (serialization) order.

    ``issue_ns`` is the client's clock when it submitted the op,
    ``start_ns`` when the table work began (after lock waits and read
    retries), ``end_ns`` when the op's simulated cost had elapsed.
    ``concurrent`` marks ops whose ``[issue_ns, end_ns]`` window
    overlapped another client's in-flight op — the crash matrix uses
    exactly this flag to aim boundaries between two clients' ops."""

    client: int
    op_index: int
    op: ClientOp
    issue_ns: float
    start_ns: float
    end_ns: float
    ok: bool
    found: bytes | None = None
    concurrent: bool = False


@dataclass
class ConcurrentRunResult:
    """Everything one scheduler run produced.

    ``check_failures`` non-empty (or ``lost_updates`` non-zero) means
    the concurrency control itself is broken — callers should treat the
    run as failed, not as a slow run."""

    n_clients: int
    #: ops submitted across all clients
    ops: int
    #: committed ops in physical order (queries linearize at validation)
    committed: list[CommitRecord]
    #: per-client end-to-end latency (includes waits/retries)
    per_client: list[LatencyRecorder]
    overall: LatencyRecorder
    #: simulated wall-clock span of the whole run (max client clock)
    span_ns: float
    #: optimistic reads that began while a writer held a stripe
    read_aborts: int = 0
    #: optimistic reads whose version snapshot changed across the probe
    read_retries: int = 0
    #: failed writer lock acquisitions (spins)
    lock_waits: int = 0
    #: simulated ns writers spent spinning/backing off
    lock_wait_ns: float = 0.0
    #: reads answered by the fingerprint tags without touching NVM
    fp_skips: int = 0
    #: ops that legitimately failed (e.g. insert into a full table)
    failed_ops: int = 0
    #: committed updates whose effect the table lost (must be 0)
    lost_updates: int = 0
    #: shadow-model violations (must be empty)
    check_failures: list[str] = field(default_factory=list)
    #: per-client persist-event attribution from the backend hook
    client_events: list[dict] = field(default_factory=list)
    #: flight-recorder dump (last-N ops per client + recent persist
    #: events) captured when a shadow check failed; ``None`` on clean
    #: runs or when no recorder was attached
    failure_context: dict | None = None

    @property
    def ok(self) -> bool:
        """Whether the shadow checks all passed."""
        return not self.check_failures and self.lost_updates == 0

    def throughput_kops(self) -> float:
        """Committed ops per simulated millisecond (kops/s simulated)."""
        if self.span_ns <= 0:
            return 0.0
        return len(self.committed) / self.span_ns * 1e6


def table_digest(table) -> str:
    """SHA-256 over the table's sorted contents — the "final table
    bytes" witness the determinism tests and gates compare."""
    digest = hashlib.sha256()
    for key, value in sorted(table.items()):
        digest.update(key)
        digest.update(value)
    return digest.hexdigest()


class _Scheduler:
    """One run's mutable state; :func:`run_concurrent` drives it."""

    def __init__(
        self,
        table,
        streams,
        *,
        seed,
        shadow,
        metrics,
        spin_ns,
        backoff_ns,
        timeline=None,
        recorder=None,
    ) -> None:
        self.table = table
        self.region = table.region
        self.streams = streams
        self.seed = seed
        self.metrics = metrics
        self.timeline = timeline
        self.recorder = recorder
        self.spin_ns = spin_ns
        self.backoff_ns = backoff_ns
        self.locks = VersionedLockTable(table.n_lock_stripes)
        self.shadow = dict(shadow) if shadow is not None else dict(table.items())
        # seed the fingerprint tags from what is actually resident
        for key in self.shadow:
            self.locks.fp_add(table.lock_stripes(key)[0], fingerprint_of(key))
        n = len(streams)
        self.clock = [0.0] * n
        self.per_client = [LatencyRecorder() for _ in range(n)]
        self.overall = LatencyRecorder()
        self.client_events = [
            {"write": 0, "flush": 0, "fence": 0, "bytes": 0} for _ in range(n)
        ]
        self.committed: list[CommitRecord] = []
        self.read_aborts = 0
        self.read_retries = 0
        self.lock_waits = 0
        self.lock_wait_ns = 0.0
        self.fp_skips = 0
        self.failed_ops = 0
        self.lost_updates = 0
        self.check_failures: list[str] = []
        self._running: int | None = None
        # only the costed simulator advances sim_time_ns; every other
        # backend gets the deterministic per-event surrogate clock
        stats = getattr(self.region, "stats", None)
        self._stats = stats if isinstance(self.region, NVMRegion) else None
        self._raw_ns = 0.0

    # ------------------------------------------------------------------
    # clock + event attribution

    def _now(self) -> float:
        """The region's simulated clock (event-count surrogate on
        backends without one)."""
        if self._stats is not None:
            return float(self._stats.sim_time_ns)
        return self._raw_ns

    def _hook(self, prev):
        """Build the chained event hook attributing events to the
        running client (and, on un-costed backends, charging
        :data:`RAW_EVENT_NS` per event)."""

        def hook(kind: str, addr: int, size: int) -> None:
            if prev is not None:
                prev(kind, addr, size)
            client = self._running
            if client is not None:
                events = self.client_events[client]
                events[kind] = events.get(kind, 0) + 1
                if kind == "write":
                    events["bytes"] += size
            if self.timeline is not None:
                self.timeline.record_event(kind, self._now(), addr, size)
            if self.recorder is not None:
                self.recorder.record_event(
                    kind=kind, addr=addr, client=client, t_ns=self._now()
                )
            if self._stats is None:
                self._raw_ns += RAW_EVENT_NS

        return hook

    def _count(self, name: str, n: int = 1) -> None:
        """Bump a ``ccl.*`` counter in the attached registry (and the
        matching per-window timeline channel), if attached."""
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)
        if self.timeline is not None:
            # "ccl.read_aborts" -> per-window "read_aborts" channel
            self.timeline.inc(name.rsplit(".", 1)[-1], self._now(), n)

    # ------------------------------------------------------------------
    # client op generators (each yields simulated-ns step costs)

    def _client_gen(self, client: int, stream):
        """The whole life of one client: its ops, in order."""
        for op_index, op in enumerate(stream):
            if op.kind == "query":
                yield from self._read(client, op_index, op)
            elif op.kind in WRITE_KINDS:
                yield from self._write(client, op_index, op)
            else:
                raise ValueError(f"unknown op kind {op.kind!r}")

    def _write(self, client: int, op_index: int, op: ClientOp):
        """Writer protocol: acquire every candidate stripe (sorted, so
        two writers can never deadlock), apply under the lock, release
        once the op's cost has elapsed."""
        issue = self.clock[client]
        stripes = self.table.lock_stripes(op.key)
        held: list[int] = []
        for stripe in stripes:
            attempts = 0
            while not self.locks.try_acquire(stripe, client):
                self.lock_waits += 1
                self._count("ccl.lock_waits")
                attempts += 1
                if attempts > MAX_ATTEMPTS:
                    raise RuntimeError(
                        f"client {client} livelocked on stripe {stripe}"
                    )
                yield self.spin_ns
            held.append(stripe)
            # boundary: the stripe is now visibly held (readers that run
            # here observe the odd version and abort)
            yield 0.0
        start = self.clock[client]
        self.lock_wait_ns += start - issue
        mark = self._now()
        ok = self._apply_write(op)
        cost = self._now() - mark
        record = CommitRecord(
            client=client,
            op_index=op_index,
            op=op,
            issue_ns=issue,
            start_ns=start,
            end_ns=start + cost,
            ok=ok,
        )
        self.committed.append(record)
        yield cost
        # the lock is held for the op's full duration: release only
        # after the cost elapsed on this client's clock
        for stripe in reversed(held):
            self.locks.release(stripe)
        self._record_latency(client, record)

    def _read(self, client: int, op_index: int, op: ClientOp):
        """Optimistic reader: snapshot versions, probe (or fingerprint
        short-circuit), validate the snapshot, retry on conflict."""
        issue = self.clock[client]
        stripes = self.table.lock_stripes(op.key)
        fp = fingerprint_of(op.key)
        attempts = 0
        while True:
            attempts += 1
            if attempts > MAX_ATTEMPTS:
                raise RuntimeError(f"client {client} read livelocked")
            snap = self.locks.snapshot(stripes)
            yield 0.0
            if any(version & 1 for version in snap):
                self.read_aborts += 1
                self._count("ccl.read_aborts")
                yield self.backoff_ns
                continue
            if not self.locks.fp_may_contain(stripes[0], fp):
                # definite miss: no resident key carries this tag
                self.fp_skips += 1
                self._count("ccl.fp_skips")
                found = None
                cost = 0.0
            else:
                mark = self._now()
                found = self.table.query(op.key)
                cost = self._now() - mark
            yield cost
            if self.locks.snapshot(stripes) != snap:
                self.read_retries += 1
                self._count("ccl.read_retries")
                yield self.backoff_ns
                continue
            # validated: the read linearizes here, against the shadow
            expected = self.shadow.get(op.key)
            if found != expected:
                self.check_failures.append(
                    f"client {client} query {op.key.hex()}: got "
                    f"{found.hex() if found else None}, shadow says "
                    f"{expected.hex() if expected else None}"
                )
            end = self.clock[client]
            record = CommitRecord(
                client=client,
                op_index=op_index,
                op=op,
                issue_ns=issue,
                start_ns=end - cost,
                end_ns=end,
                ok=True,
                found=found,
            )
            self.committed.append(record)
            self._record_latency(client, record)
            return

    def _apply_write(self, op: ClientOp) -> bool:
        """Apply one write to the table and the shadow, checking the
        two models agree (a disagreement on an update is a lost
        update)."""
        table, key = self.table, op.key
        live = key in self.shadow
        if op.kind == "insert":
            ok = table.insert(key, op.value)
            if ok:
                if live:
                    self.check_failures.append(
                        f"insert of live key {key.hex()} succeeded"
                    )
                else:
                    self.locks.fp_add(
                        table.lock_stripes(key)[0], fingerprint_of(key)
                    )
                self.shadow[key] = op.value
            else:
                self.failed_ops += 1
        elif op.kind == "update":
            ok = table.update(key, op.value)
            if live:
                if not ok:
                    self.lost_updates += 1
                    self.check_failures.append(
                        f"update lost live key {key.hex()}"
                    )
                else:
                    self.shadow[key] = op.value
            else:
                if ok:
                    self.check_failures.append(
                        f"update of dead key {key.hex()} succeeded"
                    )
                self.failed_ops += 1
        else:  # delete
            ok = table.delete(key)
            if ok != live:
                self.check_failures.append(
                    f"delete of key {key.hex()} disagrees with the shadow "
                    f"(deleted={ok}, live={live})"
                )
            if ok and live:
                del self.shadow[key]
                self.locks.fp_remove(
                    table.lock_stripes(key)[0], fingerprint_of(key)
                )
            if not ok:
                self.failed_ops += 1
        return ok

    def _record_latency(self, client: int, record: CommitRecord) -> None:
        """Feed one op's end-to-end latency to the recorders/registry
        and, when attached, the per-window timeline and flight
        recorder."""
        latency = self.clock[client] - record.issue_ns
        index = len(self.committed) - 1
        self.per_client[client].record(latency, index)
        self.overall.record(latency, index)
        if self.metrics is not None:
            self.metrics.histogram(f"ccl.latency.client{client}").record(latency)
        if self.timeline is not None:
            now = self._now()
            self.timeline.observe("latency", now, latency)
            self.timeline.inc("ops", now)
            self.timeline.inc(f"client{client}.ops", now)
            load = getattr(self.table, "load_factor", None)
            if load is not None:
                self.timeline.set_gauge("occupancy", now, load)
        if self.recorder is not None:
            self.recorder.record_op(
                client,
                index=record.op_index,
                kind=record.op.kind,
                key=record.op.key.hex(),
                ok=record.ok,
                latency_ns=latency,
                commit=index,
            )

    # ------------------------------------------------------------------
    # the interleaver

    def run(self) -> ConcurrentRunResult:
        """Drive every client to completion and run the final checks."""
        n = len(self.streams)
        order = list(range(n))
        random.Random((self.seed << 6) ^ 0xC10C).shuffle(order)
        priority = {client: rank for rank, client in enumerate(order)}
        generators = [
            self._client_gen(client, stream)
            for client, stream in enumerate(self.streams)
        ]
        alive = set(range(n))
        previous_hook = self.region.event_hook
        self.region.event_hook = self._hook(previous_hook)
        try:
            while alive:
                client = min(
                    alive, key=lambda c: (self.clock[c], priority[c])
                )
                self._running = client
                try:
                    cost = next(generators[client])
                except StopIteration:
                    alive.discard(client)
                    continue
                finally:
                    self._running = None
                self.clock[client] += cost
        finally:
            self.region.event_hook = previous_hook
        self._mark_concurrent()
        self._final_check()
        failure_context = None
        if self.recorder is not None and (
            self.check_failures or self.lost_updates
        ):
            # the shadow oracle tripped: ship the black box with the
            # verdict so the report carries its last-N-ops context
            failure_context = self.recorder.dump()
        return ConcurrentRunResult(
            n_clients=n,
            ops=sum(len(s) for s in self.streams),
            committed=self.committed,
            per_client=self.per_client,
            overall=self.overall,
            span_ns=max(self.clock) if self.clock else 0.0,
            read_aborts=self.read_aborts,
            read_retries=self.read_retries,
            lock_waits=self.lock_waits,
            lock_wait_ns=self.lock_wait_ns,
            fp_skips=self.fp_skips,
            failed_ops=self.failed_ops,
            lost_updates=self.lost_updates,
            check_failures=self.check_failures,
            client_events=self.client_events,
            failure_context=failure_context,
        )

    def _mark_concurrent(self) -> None:
        """Flag every committed op whose window overlapped another
        client's in-flight op (open-interval overlap on the simulated
        clock)."""
        active: list[CommitRecord] = []
        for record in sorted(self.committed, key=lambda r: (r.issue_ns, r.end_ns)):
            active = [a for a in active if a.end_ns > record.issue_ns]
            for other in active:
                if other.client != record.client:
                    other.concurrent = True
                    record.concurrent = True
            active.append(record)

    def _final_check(self) -> None:
        """Final-state oracle: the table's contents must equal the
        shadow applied in commit order — anything else is a lost update
        or a phantom."""
        final = dict(self.table.items())
        for key, value in self.shadow.items():
            got = final.get(key)
            if got != value:
                self.lost_updates += 1
                self.check_failures.append(
                    f"final state lost key {key.hex()}: expected "
                    f"{value.hex()}, found {got.hex() if got else None}"
                )
        for key in final:
            if key not in self.shadow:
                self.check_failures.append(
                    f"final state has phantom key {key.hex()}"
                )


def run_concurrent(
    table,
    streams: list[list[ClientOp]],
    *,
    seed: int = 42,
    shadow: dict[bytes, bytes] | None = None,
    metrics=None,
    timeline=None,
    recorder=None,
    spin_ns: float = SPIN_NS,
    backoff_ns: float = BACKOFF_NS,
) -> ConcurrentRunResult:
    """Run ``streams`` (one op list per logical client) against
    ``table`` under the deterministic interleaver.

    ``shadow`` seeds the lost-update oracle with the table's current
    contents (defaults to a cost-free ``items()`` peek). ``metrics``
    optionally receives ``ccl.*`` abort/retry counters and per-client
    latency histograms. ``timeline`` (a
    :class:`~repro.obs.WindowSeries`) receives per-window ops/latency/
    abort/retry/lock-wait channels, per-client op counts, persist-event
    rates and the occupancy gauge; ``recorder`` (a
    :class:`~repro.obs.FlightRecorder`) keeps the last-N ops per client
    and is dumped into the result's ``failure_context`` when a shadow
    check fails. All sinks purely observe — attaching them leaves the
    interleaving and the simulated event stream byte-identical. The
    result is a pure function of the arguments: same table state +
    streams + seed ⇒ identical interleaving, op results and final
    table bytes."""
    if not streams:
        raise ValueError("need at least one client stream")
    scheduler = _Scheduler(
        table,
        streams,
        seed=seed,
        shadow=shadow,
        metrics=metrics,
        timeline=timeline,
        recorder=recorder,
        spin_ns=spin_ns,
        backoff_ns=backoff_ns,
    )
    return scheduler.run()
