"""Group hashing — the paper's contribution.

- :class:`~repro.core.group_hash.GroupHashTable` implements Algorithms
  1–3 with the exact persist ordering of the paper (8-byte failure-atomic
  bitmap commit, no logging, no copy-on-write);
- :mod:`~repro.core.recovery` implements Algorithm 4 (full-table scan,
  reset of unoccupied cells, count rebuild);
- :class:`~repro.core.layout.GroupLayout` is the physical storage layout
  of Figure 4 (global info block, two equal levels, group-aligned
  contiguous cell runs);
- :class:`~repro.core.sharded.ShardedTable` hash-partitions keys across
  N independent per-shard backend+table pairs (scale-out beyond the
  paper, with per-shard crash/recovery);
- :class:`~repro.core.directory.DirectoryTable` grows incrementally: a
  directory of fixed-size group-hash segments where a full segment
  splits alone and publishes with one 8-byte atomic pointer swing —
  the online replacement for the stop-the-world rebuild that
  :class:`~repro.core.resize.GrowableTable` keeps as a shim/baseline.
"""

from repro.core.bulk import bulk_load
from repro.core.directory import DirectoryTable, SplitError
from repro.core.group_hash import GroupHashTable
from repro.core.layout import GroupLayout
from repro.core.recovery import recover_group_table, recover_table
from repro.core.resize import (
    ExpansionError,
    GrowableTable,
    expand_group_table,
    insert_with_expansion,
)
from repro.core.sharded import ShardedTable

__all__ = [
    "DirectoryTable",
    "ExpansionError",
    "GroupHashTable",
    "GroupLayout",
    "GrowableTable",
    "ShardedTable",
    "SplitError",
    "bulk_load",
    "expand_group_table",
    "insert_with_expansion",
    "recover_group_table",
    "recover_table",
]
