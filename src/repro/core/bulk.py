"""Bulk loading for group hashing.

Filling a table one ``insert`` at a time pays three flushes per item
(Algorithm 1's kv / bitmap / count persists) and visits cells in hash
order — random cacheline traffic. For initial loads (restoring a backup
of a dedup index, warming a cache from a snapshot) none of that is
necessary, and this module provides the standard optimisation:

1. *plan* all placements in memory (home cell, else first free slot of
   the matched level-2 group — identical placement policy to
   Algorithm 1, so the resulting table is indistinguishable from one
   built by single inserts in the same order);
2. *write* cells in **address order**, setting the kv and header of
   each cell with no per-cell persist;
3. *flush* each touched cacheline exactly once, sequentially (stream-
   prefetch friendly), fence, and persist the count last.

Trade-off, stated loudly: a crash **during** a bulk load is not
item-atomic — a torn line can persist a set bitmap without its
key-value bytes (Algorithm 4 trusts set bitmaps). Callers must treat an
interrupted bulk load as "reload from source", exactly like any bulk
loader. Once :func:`bulk_load` returns, the table is fully persistent
and back under Algorithm 1's per-operation guarantees.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.group_hash import GroupHashTable
from repro.tables.cell import OCCUPIED_BIT


def bulk_load(
    table: GroupHashTable, items: Iterable[tuple[bytes, bytes]]
) -> list[tuple[bytes, bytes]]:
    """Load ``items`` into ``table``; returns the rejected overflow
    (items whose home cell and matched group were full).

    The table may already contain data; existing cells are respected.
    """
    codec, region, layout = table.codec, table.region, table.layout
    group_size = table.group_size
    hash0 = table._hashes[0]

    # ---- plan placements in memory -----------------------------------
    # current occupancy, read once (cost-free peeks: planning is CPU
    # work, not memory traffic). One range peek per level array — not
    # one peek per cell — decoded in memory; the peek count is pinned
    # by tests/test_bulk_load.py.
    cell_size = codec.cell_size
    n_level = layout.n_cells_level
    raw1 = region.peek_volatile(layout.tab1_addr(codec, 0), cell_size * n_level)
    raw2 = region.peek_volatile(layout.tab2_addr(codec, 0), cell_size * n_level)
    level1_used = [bool(raw1[i * cell_size] & OCCUPIED_BIT) for i in range(n_level)]
    level2_used = [bool(raw2[i * cell_size] & OCCUPIED_BIT) for i in range(n_level)]

    placements: list[tuple[int, bytes, bytes]] = []  # (cell addr, key, value)
    rejected: list[tuple[bytes, bytes]] = []
    for key, value in items:
        k = layout.slot(hash0(key))
        if not level1_used[k]:
            level1_used[k] = True
            placements.append((layout.tab1_addr(codec, k), key, value))
            continue
        start = layout.group_start(k)
        for j in range(start, start + group_size):
            if not level2_used[j]:
                level2_used[j] = True
                placements.append((layout.tab2_addr(codec, j), key, value))
                break
        else:
            rejected.append((key, value))

    if not placements:
        return rejected

    # ---- write in address order, flush each line once ----------------
    placements.sort(key=lambda p: p[0])
    line = region.line_size
    touched_lines: list[int] = []
    for addr, key, value in placements:
        codec.write_kv(region, addr, key, value)
        codec.set_occupied(region, addr, True)
        first = addr // line
        last = (addr + codec.cell_size - 1) // line
        for ln in range(first, last + 1):
            if not touched_lines or touched_lines[-1] != ln:
                touched_lines.append(ln)
    for ln in touched_lines:
        region.clflush(ln * line)
    region.mfence()

    table._set_count(table.count + len(placements))
    return rejected
