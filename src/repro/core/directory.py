"""Incremental growth: a directory of group-hash segments.

The paper stops at "the capacity of the hash table needs to be
expanded"; ``core/resize.py`` originally filled that gap with a
stop-the-world rebuild — every item re-inserted into a fresh table, a
pause proportional to the whole table. This module retires that design
the way Dash (Lu et al., VLDB 2020) does for persistent-memory
extendible hashing: the table becomes a **directory** of fixed-size
**segments**, where each segment is a complete, unmodified
:class:`~repro.core.group_hash.GroupHashTable` with the paper's commit
discipline. Growth is then local:

1. a full segment is **split alone** — a sibling segment of the same
   size is built, the items whose directory hash selects the new half
   are copied in (each copy is a normal Algorithm 1 commit, so the
   sibling is consistent at every point and invisible until published);
2. the split is **published by 8-byte atomic directory-pointer swings**
   — each redirected directory entry is one naturally-aligned
   ``write_atomic_u64`` + persist, so any crash point leaves that entry
   pointing at either the old or the new segment, never a torn mix;
3. stale copies (items left in the old segment, or copied but never
   published) are cleaned up with ordinary crash-consistent deletes;
   recovery's *tenant sweep* performs the same cleanup after a crash.

When every directory entry of the splitting segment is unique the
directory itself **doubles**: a 2× pointer array is built and persisted
off to the side (new index ``i`` inherits old entry ``i mod old_size``
— least-significant-bit indexing), then committed by a single atomic
root-word swing. The root word packs ``(array_base << 8) | depth`` into
one 8-byte word precisely so that doubling, too, commits atomically.

The payoff is the **stability invariant** documented in DESIGN.md
decision 12: items never move once placed — group hashing never
relocates within a segment, and the only cross-segment movement is a
split, which is bounded by one segment's size. Pauses shrink from
O(table) to O(segment), which the ``growth`` benchmark measures as p99
during-split latency versus the legacy rebuild pause.

Like the rest of the repository, nothing here logs: every transition is
either an idempotent copy into unreachable space or one 8-byte atomic
word, which is exactly the paper's consistency toolkit applied to the
metadata layer.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.group_hash import GroupHashTable
from repro.core.recovery import recover_group_table
from repro.hashes import HashFamily
from repro.nvm.backend import MemoryBackend
from repro.nvm.memory import ATOMIC_UNIT, CACHELINE, SimulatedPowerFailure
from repro.tables.cell import CellCodec, ItemSpec

#: directory-hash seed perturbation: routing between segments must stay
#: independent of placement inside a segment (same pattern as the shard
#: router), or full level-1 cells and full segments would correlate
_DIR_SALT = 0xD12EC7

#: low bits of the root word reserved for the global depth; the array
#: base address occupies the remaining 56 bits
_ROOT_DEPTH_BITS = 8

#: root-block magic ("GDIR"): greppable marker in region dumps
_DIR_MAGIC = int.from_bytes(b"GDIR\0\0\0\0", "little")


class SplitError(RuntimeError):
    """A segment split could not complete (e.g. region out of space)."""


def _auto_group_size(segment_cells: int) -> int:
    """Largest power of two ≤ 128 dividing the segment's level size —
    the same policy as the sharded layer's per-shard default."""
    level = max(2, segment_cells // 2)
    size = 1
    while size < 128 and level % (size * 2) == 0:
        size *= 2
    return size


class DirectoryTable:
    """Extendible directory of :class:`GroupHashTable` segments.

    Presents the single-table surface (insert/query/delete/update,
    ``count``, ``items``, ``reattach``/``recover``, integrity checks) so
    existing callers — the KV store, the crash harnesses, the bench
    drivers — can swap it in for one monolithic table, but ``insert``
    never reports the table full: a full segment splits in place and the
    insert retries. All segments share one backend region and one hash
    seed, so placement is deterministic and crash replays are exact.
    """

    scheme_name = "group-dir"

    def __init__(
        self,
        region: MemoryBackend,
        n_cells: int = 1024,
        spec: ItemSpec | None = None,
        *,
        segment_cells: int = 512,
        group_size: int | None = None,
        n_hash_functions: int = 1,
        seed: int = 0x5EED,
        max_split_attempts: int = 8,
        _adopt: GroupHashTable | None = None,
    ) -> None:
        if max_split_attempts < 1:
            raise ValueError("max_split_attempts must be positive")
        self.max_split_attempts = max_split_attempts
        self.log = None  # never logs; kept for the uniform reboot entry
        self.tracer = None
        self.metrics = None
        self.splits = 0
        self.doublings = 0
        #: optional growth observer called with "split" / "doubling"
        #: right after the structural change commits — how the timeline
        #: experiment stamps growth events onto the simulated clock;
        #: purely observational, never touches the region
        self.on_growth = None
        #: (base, size) of a directory array whose root swing is in
        #: flight — reconciled (kept or abandoned) on reattach
        self._pending_dir: tuple[int, int] | None = None

        if _adopt is not None:
            # wrap one existing table as a depth-0 directory
            region = _adopt.region
            spec = _adopt.spec
            seed = _adopt.family.seed
            segments = [_adopt]
        else:
            if n_cells <= 0:
                raise ValueError("n_cells must be positive")
            if segment_cells < 2:
                raise ValueError("segment_cells must be at least 2")
            segment_cells = min(segment_cells, n_cells + (n_cells & 1))
            segment_cells += segment_cells & 1
            n_segments = 1
            while n_segments * segment_cells < n_cells:
                n_segments *= 2
            group_size = group_size or _auto_group_size(segment_cells)
            segments = None  # built after the root block, below

        self.region = region
        self.spec = spec or ItemSpec()
        self.seed = seed
        self.family = HashFamily(seed)
        self._dir_hash = HashFamily(seed ^ _DIR_SALT).function(0)

        # Root block: magic | root word. The root word is the only
        # mutable directory metadata and is always committed with a
        # single 8-byte atomic write.
        self._root_addr = region.alloc(CACHELINE, align=CACHELINE, label="dir.root")
        self._root_word_addr = self._root_addr + 8
        region.write_u64(self._root_addr, _DIR_MAGIC)

        if segments is None:
            segments = [
                GroupHashTable(
                    region,
                    segment_cells,
                    self.spec,
                    group_size=group_size,
                    n_hash_functions=n_hash_functions,
                    seed=seed,
                )
                for _ in range(n_segments)
            ]

        #: volatile object map: segment info-block address -> table.
        #: The address *is* the identity — it is what directory entries
        #: store — so the map survives simulated crashes and reattach
        #: simply prunes entries the directory no longer reaches.
        self._segments: dict[int, GroupHashTable] = {}
        self._footprint: dict[int, int] = {}
        for seg in segments:
            self._segments[seg._info_addr] = seg
            self._footprint[seg._info_addr] = self._segment_footprint(seg)

        depth = (len(segments) - 1).bit_length()
        self._depth = depth
        self._dir_base = region.alloc(
            8 << depth, align=ATOMIC_UNIT, label="dir.entries"
        )
        addrs = [seg._info_addr for seg in segments]
        for i in range(1 << depth):
            # LSB indexing: when fewer segments than slots (never the
            # case initially — segments is a power of two — but kept for
            # symmetry with doubling), entry i maps to segment i mod n
            region.write_u64(self._dir_base + 8 * i, addrs[i % len(addrs)])
        region.persist(self._dir_base, 8 << depth)
        self._write_root(self._dir_base, depth)

    @classmethod
    def adopt(
        cls, table: GroupHashTable, *, max_split_attempts: int = 8
    ) -> "DirectoryTable":
        """Wrap an existing single table as a depth-0 directory, in the
        same region, without touching its items. The table becomes the
        sole segment; the first overflow splits it instead of rebuilding."""
        return cls(
            table.region, _adopt=table, max_split_attempts=max_split_attempts
        )

    def _segment_footprint(self, seg: GroupHashTable) -> int:
        """Bytes one segment pins in the region (info block + levels)."""
        codec = CellCodec(seg.spec)
        return CACHELINE + 2 * codec.array_bytes(seg.n_cells // 2)

    # ------------------------------------------------------------------
    # routing

    def _write_root(self, base: int, depth: int) -> None:
        """Commit (array base, global depth) with one atomic 8-byte
        persist — the directory's only metadata commit point."""
        if depth >= 1 << _ROOT_DEPTH_BITS:
            raise SplitError(f"global depth {depth} exceeds root encoding")
        self.region.write_atomic_u64(
            self._root_word_addr, (base << _ROOT_DEPTH_BITS) | depth
        )
        self.region.persist(self._root_word_addr, 8)

    def _dir_index(self, key: bytes) -> int:
        return self._dir_hash(key) & ((1 << self._depth) - 1)

    def _entry_addr(self, index: int) -> int:
        return self._dir_base + 8 * index

    def segment_for(self, key: bytes) -> GroupHashTable:
        """The segment currently serving ``key`` (one directory read)."""
        addr = self.region.read_u64(self._entry_addr(self._dir_index(key)))
        return self._segments[addr]

    def segment_addr(self, key: bytes) -> int:
        """Segment info-block address currently serving ``key``
        (cost-free control-plane lookup: reads the volatile directory
        image and charges nothing — the serving tier's location hints
        come from here)."""
        region = self.region
        return int.from_bytes(
            region.peek_volatile(self._entry_addr(self._dir_index(key)), 8),
            "little",
        )

    def segment_at(self, addr: int) -> GroupHashTable | None:
        """The live segment registered at info address ``addr``, or
        ``None`` — the target of a one-sided (hinted) read. Split
        victims stay registered (their moved tenants are swept), so a
        stale hint resolves to a live segment that simply *misses* on
        moved keys; it can never return a wrong value."""
        return self._segments.get(addr)

    def directory_entries(self) -> list[int]:
        """Segment address per directory slot (cost-free diagnostic)."""
        region = self.region
        return [
            int.from_bytes(region.peek_volatile(self._entry_addr(i), 8), "little")
            for i in range(1 << self._depth)
        ]

    def segment_depths(self) -> dict[int, int]:
        """Local depth per segment address, derived from directory
        sharing (cost-free diagnostic): a segment referenced by ``2^k``
        slots has local depth ``global_depth - k``."""
        entries = self.directory_entries()
        depths: dict[int, int] = {}
        for addr in set(entries):
            shared = entries.count(addr)
            depths[addr] = self._depth - (shared.bit_length() - 1)
        return depths

    # ------------------------------------------------------------------
    # the single-table surface

    def insert(self, key: bytes, value: bytes) -> bool:
        """Insert; a full segment splits (bounded work) and the insert
        retries. False only if ``max_split_attempts`` splits still leave
        the key's home group full — pathological skew, not capacity."""
        seg = self.segment_for(key)
        if seg.insert(key, value):
            return True
        for _ in range(self.max_split_attempts):
            victim = self.region.read_u64(self._entry_addr(self._dir_index(key)))
            self._split(victim)
            seg = self.segment_for(key)
            if seg.insert(key, value):
                return True
        return False

    def query(self, key: bytes) -> bytes | None:
        """Return the value stored for ``key``, or ``None``."""
        return self.segment_for(key).query(key)

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it was present."""
        return self.segment_for(key).delete(key)

    def update(self, key: bytes, value: bytes) -> bool:
        """In-place value update in the key's segment."""
        return self.segment_for(key).update(key, value)

    # ------------------------------------------------------------------
    # batch operations (DESIGN.md decision 13)

    def put_many(self, items: list[tuple[bytes, bytes]]) -> list[bool]:
        """Batched insert; one bool per item, in order.

        Consecutive items routed to the same segment form a *run*
        committed with one coalesced
        :meth:`GroupHashTable._put_many_prefix` call. A run that stops
        short means its next item needs a split, so exactly that item
        takes the scalar :meth:`insert` path (split + retry — the same
        point a scalar loop would have split at), and the remainder is
        re-routed through the post-split directory. Final persistent
        state is byte-identical to the scalar loop."""
        results: list[bool] = []
        i, n = 0, len(items)
        while i < n:
            seg = self.segment_for(items[i][0])
            j = i + 1
            while j < n and self.segment_for(items[j][0]) is seg:
                j += 1
            run = items[i:j]
            consumed = seg._put_many_prefix(run)
            results.extend([True] * consumed)
            i += consumed
            if consumed < len(run):
                key, value = items[i]
                results.append(self.insert(key, value))
                i += 1
        return results

    def get_many(self, keys: list[bytes]) -> list[bytes | None]:
        """Batched lookup: keys grouped per segment, each group resolved
        with that segment's vectorized :meth:`GroupHashTable.get_many`;
        results in input order."""
        out: list[bytes | None] = [None] * len(keys)
        groups: dict[int, list[int]] = {}
        for i, key in enumerate(keys):
            groups.setdefault(self.segment_for(key)._info_addr, []).append(i)
        for addr, idxs in groups.items():
            values = self._segments[addr].get_many([keys[i] for i in idxs])
            for i, value in zip(idxs, values):
                out[i] = value
        return out

    def delete_many(self, keys: list[bytes]) -> list[bool]:
        """Batched delete: keys grouped per segment, each group committed
        with that segment's coalesced :meth:`GroupHashTable.delete_many`.
        Same key twice in one batch: routing is deterministic, so the
        duplicates land in one segment whose batch delete resolves them
        scalar-identically (later occurrences re-probe post-commit)."""
        out: list[bool] = [False] * len(keys)
        groups: dict[int, list[int]] = {}
        for i, key in enumerate(keys):
            groups.setdefault(self.segment_for(key)._info_addr, []).append(i)
        for addr, idxs in groups.items():
            hits = self._segments[addr].delete_many([keys[i] for i in idxs])
            for i, hit in zip(idxs, hits):
                out[i] = hit
        return out

    # ------------------------------------------------------------------
    # growth

    def _entries_of(self, addr: int) -> list[int]:
        """Directory slots currently pointing at segment ``addr``
        (costed scan — the split pays for its own metadata reads)."""
        region = self.region
        base = self._dir_base
        return [
            i
            for i in range(1 << self._depth)
            if region.read_u64(base + 8 * i) == addr
        ]

    @staticmethod
    def _partition_bit(entries: list[int]) -> int:
        """Lowest index bit that splits ``entries`` into two non-empty
        halves. For the usual power-of-two-aligned run this is the
        segment's local depth; after a crash left a partial swing it is
        still a valid (consistent) partition."""
        for bit in range(max(entries).bit_length()):
            mask = 1 << bit
            ones = sum(1 for i in entries if i & mask)
            if 0 < ones < len(entries):
                return bit
        raise SplitError("directory entries cannot be partitioned")

    def _double_directory(self) -> None:
        """Double the pointer array and commit via one atomic root swing.

        The 2× array is fully built and persisted off to the side (LSB
        indexing: new entry ``i`` inherits old entry ``i mod old_size``)
        before the root word moves, so a crash at any point leaves the
        old or the new directory fully visible — never a partial one."""
        region = self.region
        old_base, old_n = self._dir_base, 1 << self._depth
        try:
            new_base = region.alloc(
                16 * old_n, align=ATOMIC_UNIT, label="dir.entries"
            )
        except MemoryError as exc:
            raise SplitError(f"region cannot hold a doubled directory: {exc}") from exc
        # from here until the root swing commits, the new array is the
        # in-flight allocation reattach must reconcile after a crash
        self._pending_dir = (new_base, 16 * old_n)
        for i in range(old_n):
            entry = region.read_u64(old_base + 8 * i)
            region.write_u64(new_base + 8 * i, entry)
            region.write_u64(new_base + 8 * (i + old_n), entry)
        region.persist(new_base, 16 * old_n)
        self._write_root(new_base, self._depth + 1)
        self._pending_dir = None
        region.mark_abandoned(8 * old_n)  # the retired old array
        self._dir_base = new_base
        self._depth += 1
        self.doublings += 1
        if self.metrics is not None:
            self.metrics.counter("directory.doublings").inc()
            self.metrics.gauge("directory.depth").set(self._depth)
        if self.on_growth is not None:
            self.on_growth("doubling")

    def _split(self, victim_addr: int) -> None:
        """Split the segment at ``victim_addr``: copy → swing → delete.

        Crash safety by phase: during the copy the sibling is
        unreachable (pure garbage on crash, accounted by reattach);
        each swing is one 8-byte atomic persist (old or new pointer,
        never torn); the trailing deletes are ordinary crash-consistent
        removals whose loss recovery's tenant sweep repairs."""
        region = self.region
        victim = self._segments[victim_addr]
        tr, mx = self.tracer, self.metrics
        if tr is not None:
            tr.push("split")
        try:
            entries = self._entries_of(victim_addr)
            if len(entries) == 1:
                self._double_directory()
                entries = self._entries_of(victim_addr)
            bit = self._partition_bit(entries)
            mask = 1 << bit
            alloc_before = region.bytes_allocated
            try:
                sibling = GroupHashTable(
                    region,
                    victim.n_cells,
                    victim.spec,
                    group_size=victim.group_size,
                    n_hash_functions=victim.n_hash_functions,
                    seed=victim.family.seed,
                )
            except MemoryError as exc:
                region.mark_abandoned(region.bytes_allocated - alloc_before)
                raise SplitError(
                    f"region cannot hold a {victim.n_cells}-cell sibling "
                    f"segment: {exc}"
                ) from exc
            except SimulatedPowerFailure:
                # crash during construction: nothing references the
                # partial allocation and no object tracks it — account
                # for it here, once
                region.mark_abandoned(region.bytes_allocated - alloc_before)
                raise
            sibling.instrument(self.tracer, self.metrics)
            new_addr = sibling._info_addr
            # registered before any of it becomes reachable: from here
            # on, reattach's prune owns the abandoned-bytes accounting
            self._segments[new_addr] = sibling
            self._footprint[new_addr] = region.bytes_allocated - alloc_before
            # phase 1 — copy: rehash only this segment's items; every
            # copy is a normal Algorithm 1 commit into unreachable space
            moved: list[bytes] = []
            for key, value in victim.scan_items():
                if self._dir_hash(key) & mask:
                    if not sibling.insert(key, value):
                        del self._segments[new_addr]
                        region.mark_abandoned(self._footprint.pop(new_addr))
                        raise SplitError(
                            "sibling segment rejected a rehashed item "
                            "(same keys, half the load — should not happen)"
                        )
                    moved.append(key)
            # phase 2 — publish: swing each redirected entry with one
            # 8-byte atomic persist
            for i in entries:
                if i & mask:
                    entry_addr = self._entry_addr(i)
                    region.write_atomic_u64(entry_addr, new_addr)
                    region.persist(entry_addr, 8)
            # phase 3 — cleanup: drop the moved items from the old
            # segment (each delete crash-consistent on its own)
            for key in moved:
                victim.delete(key)
            self.splits += 1
            if mx is not None:
                mx.counter("directory.splits").inc()
                mx.histogram("directory.split_moved").record(len(moved))
            if self.on_growth is not None:
                self.on_growth("split")
        finally:
            if tr is not None:
                tr.pop()

    # ------------------------------------------------------------------
    # aggregated state

    def _distinct_segments(self) -> list[GroupHashTable]:
        return list(self._segments.values())

    @property
    def global_depth(self) -> int:
        """log2 of the directory slot count."""
        return self._depth

    @property
    def n_segments(self) -> int:
        """Number of live segments."""
        return len(self._segments)

    @property
    def capacity(self) -> int:
        """Total cells across all live segments."""
        return sum(seg.capacity for seg in self._segments.values())

    @property
    def count(self) -> int:
        """Total occupied cells (volatile mirrors)."""
        return sum(seg.count for seg in self._segments.values())

    @property
    def load_factor(self) -> float:
        """Global count / capacity."""
        return self.count / self.capacity

    @property
    def persisted_count(self) -> int:
        """Sum of every segment's persistent ``count`` field."""
        return sum(seg.persisted_count for seg in self._segments.values())

    def instrument(self, tracer=None, metrics=None) -> None:
        """Attach observability sinks to the directory and every segment
        (future split siblings inherit them)."""
        self.tracer = tracer
        self.metrics = metrics
        for seg in self._segments.values():
            seg.instrument(tracer, metrics)

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Yield all stored pairs, segment by segment (cost-free
        inventory; call at operation boundaries — mid-split both copies
        of a moving item are briefly present)."""
        for seg in self._segments.values():
            yield from seg.items()

    def check_count(self) -> bool:
        """Whether every segment's persistent count matches its
        occupancy."""
        return all(seg.check_count() for seg in self._segments.values())

    # ------------------------------------------------------------------
    # crash / recovery

    def reattach(self) -> None:
        """Reload the directory from NVM after a simulated crash.

        The root word is atomic, so it names either the old or the new
        pointer array; entries are atomic, so each names either the old
        or the new segment. Segments the surviving directory no longer
        references (mid-split orphans) are pruned and their bytes
        recorded as abandoned."""
        region = self.region
        root = region.read_u64(self._root_word_addr)
        depth = root & ((1 << _ROOT_DEPTH_BITS) - 1)
        base = root >> _ROOT_DEPTH_BITS
        if self._pending_dir is not None:
            pend_base, pend_size = self._pending_dir
            if base == pend_base:
                # the doubling's root swing survived: the old array is
                # now the garbage one
                region.mark_abandoned(8 << self._depth)
            else:
                region.mark_abandoned(pend_size)
            self._pending_dir = None
        self._depth = depth
        self._dir_base = base
        reachable = {
            region.read_u64(base + 8 * i) for i in range(1 << depth)
        }
        unknown = reachable - set(self._segments)
        if unknown:
            raise RuntimeError(
                f"directory references unknown segment(s) at {sorted(unknown)}"
            )
        for addr in list(self._segments):
            if addr not in reachable:
                del self._segments[addr]
                region.mark_abandoned(self._footprint.pop(addr, 0))
        for seg in self._segments.values():
            seg.reattach()

    def recover(self) -> None:
        """Post-crash recovery: Algorithm 4 per segment, then the
        **tenant sweep** — delete any item whose directory routing no
        longer points at the segment holding it. The sweep is what makes
        every crash point land on exactly the old or the new mapping: a
        lost swing leaves stale copies in the (unpublished) sibling, a
        survived swing leaves stale originals in the old segment, and in
        both cases the stale side is precisely the set of non-tenants."""
        tr, mx = self.tracer, self.metrics
        if tr is not None:
            tr.push("recover")
        for seg in self._segments.values():
            recover_group_table(seg)
        region = self.region
        mask = (1 << self._depth) - 1
        swept = 0
        for addr, seg in self._segments.items():
            for key, _ in list(seg.items()):
                slot = self._dir_hash(key) & mask
                if region.read_u64(self._dir_base + 8 * slot) != addr:
                    seg.delete(key)
                    swept += 1
        if mx is not None:
            mx.counter("recovery.tenants_swept").inc(swept)
        if tr is not None:
            tr.pop()

    # ------------------------------------------------------------------
    # diagnostics

    def integrity_violations(self) -> list[str]:
        """Per-segment structural checks plus the directory's own
        invariants: every slot resolves to a live segment, no key is
        stored twice across segments, and every item is a *tenant* of
        the segment its directory routing selects (the stability
        invariant's observable form). Peek-based — no costs charged."""
        problems: list[str] = []
        entries = self.directory_entries()
        known = set(self._segments)
        for i, addr in enumerate(entries):
            if addr not in known:
                problems.append(f"directory slot {i} points at unknown {addr}")
        mask = (1 << self._depth) - 1
        seen: dict[bytes, int] = {}
        for addr, seg in self._segments.items():
            for p in seg.integrity_violations():
                problems.append(f"segment@{addr}: {p}")
            for key, _ in seg.items():
                if key in seen:
                    problems.append(
                        f"key {key.hex()} stored in segments "
                        f"{seen[key]} and {addr}"
                    )
                seen[key] = addr
                slot = self._dir_hash(key) & mask
                if entries[slot] != addr:
                    problems.append(
                        f"non-tenant: key {key.hex()} in segment {addr} "
                        f"but slot {slot} routes to {entries[slot]}"
                    )
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DirectoryTable(depth={self._depth}, "
            f"segments={self.n_segments}, count={self.count}, "
            f"splits={self.splits})"
        )
