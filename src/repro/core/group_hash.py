"""Group hashing (paper Section 3): write-efficient, consistent hashing
for NVM.

Faithfulness notes, keyed to the paper:

- **Insert** follows Algorithm 1 exactly: write key+value → persist →
  atomically set the cell's bitmap (8-byte store) → persist → increment
  ``count`` → persist. No logging, no copy-on-write — a crash before the
  bitmap flip simply loses the (uncommitted) item, and recovery clears
  the partial write.
- **Delete** follows Algorithm 3: the bitmap is cleared *before* the
  key-value wipe so a crash mid-wipe leaves a cell that recovery knows
  to reset (bitmap 0 ⇒ contents are garbage).
- **Query** follows Algorithm 2, with one hardening noted in the paper
  reproduction: the level-2 scan checks the bitmap in addition to the
  key (the paper checks only the key, relying on recovery having zeroed
  unoccupied cells; checking the bit costs nothing — it travels in the
  same header word as the probe read — and makes the structure safe even
  before a post-crash recovery pass).
- **Group sharing**: collisions in level-1 cell ``k`` spill exclusively
  into the contiguous level-2 group ``k // group_size``, so the fallback
  scan walks consecutive cachelines (hardware-prefetch friendly; in the
  simulator, consecutive cells share lines, which is what produces the
  low miss counts of Figures 2b and 6).

An optional ``n_hash_functions > 1`` mode implements the ablation the
paper discusses in Section 4.4 (a second hash raises space utilization
but breaks probe contiguity); the default of 1 is the paper's design.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.layout import GroupLayout
from repro.core.recovery import recover_group_table
from repro.nvm.backend import MemoryBackend
from repro.nvm.memory import CACHELINE
from repro.tables.base import PersistentHashTable
from repro.tables.cell import HEADER_SIZE, OCCUPIED_BIT, ItemSpec
from repro.tables.wal import UndoLog


class GroupHashTable(PersistentHashTable):
    """The paper's group hashing scheme."""

    scheme_name = "group"

    def __init__(
        self,
        region: MemoryBackend,
        n_cells: int,
        spec: ItemSpec | None = None,
        *,
        group_size: int = 256,
        n_hash_functions: int = 1,
        log: UndoLog | None = None,
        seed: int = 0x5EED,
    ) -> None:
        if log is not None:
            raise ValueError(
                "group hashing guarantees consistency with 8-byte atomic "
                "writes; it never uses a log (that's the point of the paper)"
            )
        if n_cells % 2:
            raise ValueError("n_cells must be even (two equal levels)")
        n_level = n_cells // 2
        if n_level % group_size:
            raise ValueError(
                f"group_size {group_size} must divide the per-level cell "
                f"count {n_level}"
            )
        if n_hash_functions < 1:
            raise ValueError("need at least one hash function")
        super().__init__(region, n_cells, spec, log=None, seed=seed)
        self.group_size = group_size
        self.n_hash_functions = n_hash_functions
        self._hashes = [self.family.function(i) for i in range(n_hash_functions)]
        tab1 = region.alloc(
            self.codec.array_bytes(n_level), align=CACHELINE, label="group.tab1"
        )
        tab2 = region.alloc(
            self.codec.array_bytes(n_level), align=CACHELINE, label="group.tab2"
        )
        self.layout = GroupLayout(
            n_cells_level=n_level,
            group_size=group_size,
            tab1_base=tab1,
            tab2_base=tab2,
        )
        # Extended global info (Figure 4): group_size and table_size next
        # to the base block's count field.
        region.write_u64(self._info_addr + 24, group_size)
        region.write_u64(self._info_addr + 32, n_level)
        self._finish_layout()

    @property
    def capacity(self) -> int:
        return 2 * (self.n_cells // 2)

    def _iter_cell_addrs(self) -> Iterator[int]:
        codec, layout = self.codec, self.layout
        for i in range(layout.n_cells_level):
            yield layout.tab1_addr(codec, i)
        for i in range(layout.n_cells_level):
            yield layout.tab2_addr(codec, i)

    # ------------------------------------------------------------------
    # Algorithm 1

    def insert(self, key: bytes, value: bytes) -> bool:
        # Hot path: layout arithmetic is inlined into locals and the
        # group walk is the backend's bulk probe, whose event semantics
        # are defined as the per-cell loop — so the simulator's event
        # counts (pinned by tests) are those of the readable form.
        layout = self.layout
        region = self.region
        cell_size = self.codec.cell_size
        group_size = self.group_size
        tr, mx = self.tracer, self.metrics
        for h in self._hashes:
            if tr is not None:
                tr.push("hash")
            k = h(key) % layout.n_cells_level
            if tr is not None:
                tr.pop()
                tr.push("l1_probe")
            addr1 = layout.tab1_base + k * cell_size
            l1_free = not region.read_u64(addr1) & OCCUPIED_BIT
            if tr is not None:
                tr.pop()
            if l1_free:
                if mx is not None:
                    mx.histogram("group.insert_probe_cells").record(1)
                    mx.counter("group.l1_inserts").inc()
                self._install(addr1, key, value)
                return True
            # Level-1 collision: scan the matched level-2 group — a
            # contiguous run of group_size cells.
            if tr is not None:
                tr.push("l2_probe")
            group_base = layout.tab2_base + (k - k % group_size) * cell_size
            i = region.scan_clear_u64(group_base, cell_size, group_size, OCCUPIED_BIT)
            if tr is not None:
                tr.pop()
            if i is not None:
                if mx is not None:
                    mx.histogram("group.insert_probe_cells").record(2 + i)
                    mx.counter("group.overflow_inserts").inc()
                    mx.heat("group.overflow_heat").touch(k // group_size)
                self._install(group_base + i * cell_size, key, value)
                return True
        # Both the home cell and its whole shared group are full: the
        # paper's signal that the table needs expansion.
        if mx is not None:
            mx.counter("group.insert_failures").inc()
        return False

    # ------------------------------------------------------------------
    # Algorithm 2

    def query(self, key: bytes) -> bytes | None:
        addr = self._find(key)
        if addr is None:
            return None
        return self.codec.read_value(self.region, addr)

    def _find(self, key: bytes) -> int | None:
        # Same discipline as insert: the home cell is one header+key
        # read (the codec.probe access), the group walk is the backend's
        # bulk match with identical per-cell read semantics.
        layout = self.layout
        region = self.region
        cell_size = self.codec.cell_size
        group_size = self.group_size
        probe_size = HEADER_SIZE + self.spec.key_size
        tr, mx = self.tracer, self.metrics
        for h in self._hashes:
            if tr is not None:
                tr.push("hash")
            k = h(key) % layout.n_cells_level
            if tr is not None:
                tr.pop()
                tr.push("l1_probe")
            addr1 = layout.tab1_base + k * cell_size
            raw = region.read(addr1, probe_size)
            if tr is not None:
                tr.pop()
            if raw[0] & OCCUPIED_BIT and raw[HEADER_SIZE:] == key:
                if mx is not None:
                    mx.histogram("group.find_probe_cells").record(1)
                return addr1
            if tr is not None:
                tr.push("l2_probe")
            group_base = layout.tab2_base + (k - k % group_size) * cell_size
            i = region.scan_match(
                group_base, cell_size, group_size, key,
                mask=OCCUPIED_BIT, key_offset=HEADER_SIZE,
            )
            if tr is not None:
                tr.pop()
            if i is not None:
                if mx is not None:
                    mx.histogram("group.find_probe_cells").record(2 + i)
                    mx.heat("group.overflow_heat").touch(k // group_size)
                return group_base + i * cell_size
        if mx is not None:
            mx.histogram("group.find_probe_cells").record(
                (1 + group_size) * self.n_hash_functions
            )
        return None

    # ------------------------------------------------------------------
    # item enumeration (split support)

    def scan_items(self) -> Iterator[tuple[bytes, bytes]]:
        """Yield every committed ``(key, value)`` pair through the costed
        read path.

        This is the enumeration hook a segment split needs: unlike
        :meth:`items` (a cost-free peek for assertions), this walk
        charges one header+kv read per cell, in address order — the same
        sequential, prefetch-friendly pattern as the recovery scan — so
        the price of rehashing a segment shows up in simulated time."""
        spec, region = self.spec, self.region
        probe_size = HEADER_SIZE + spec.item_size
        for addr in self._iter_cell_addrs():
            raw = region.read(addr, probe_size)
            if raw[0] & OCCUPIED_BIT:
                kv = raw[HEADER_SIZE:]
                yield kv[: spec.key_size], kv[spec.key_size :]

    # ------------------------------------------------------------------
    # Algorithm 3

    def delete(self, key: bytes) -> bool:
        addr = self._find(key)
        if addr is None:
            return False
        self._remove(addr)
        return True

    # ------------------------------------------------------------------
    # Algorithm 4

    def recover(self) -> None:
        """Post-crash recovery: delegate to the standalone scan so tests
        can also run it against a bare region."""
        recover_group_table(self)

    # ------------------------------------------------------------------
    # diagnostics

    def integrity_violations(self) -> list[str]:
        """Base structural checks plus Algorithm 4's postcondition: after
        recovery every unoccupied cell's key-value field is zero in the
        persistent image (a non-zero one is a torn write recovery should
        have reset)."""
        problems = super().integrity_violations()
        spec = self.spec
        zero_kv = bytes(spec.item_size)
        region = self.region
        for addr in self._iter_cell_addrs():
            raw = region.peek_persistent(addr, HEADER_SIZE + spec.item_size)
            if not raw[0] & OCCUPIED_BIT and raw[HEADER_SIZE:] != zero_kv:
                problems.append(
                    f"unoccupied cell at {addr} holds non-zero key-value bytes"
                )
        return problems

    def level_occupancy(self) -> tuple[int, int]:
        """(level-1 occupied, level-2 occupied) — used by the group-size
        analysis and the examples."""
        codec, region, layout = self.codec, self.region, self.layout
        l1 = sum(
            1
            for i in range(layout.n_cells_level)
            if codec.is_occupied(region, layout.tab1_addr(codec, i))
        )
        l2 = sum(
            1
            for i in range(layout.n_cells_level)
            if codec.is_occupied(region, layout.tab2_addr(codec, i))
        )
        return l1, l2

    def observe_occupancy(self, metrics) -> None:
        """Record the current occupancy picture into ``metrics`` without
        touching simulated state: level gauges (``group.l1_occupied`` /
        ``group.l2_occupied``) and a per-group level-2 fill heat map
        (``group.occupancy_heat``). Reads use the cost-free peek API so
        this can run mid-benchmark."""
        codec, region, layout = self.codec, self.region, self.layout
        l1 = 0
        for i in range(layout.n_cells_level):
            raw = region.peek_volatile(layout.tab1_addr(codec, i), 1)
            if raw[0] & OCCUPIED_BIT:
                l1 += 1
        heat = metrics.heat("group.occupancy_heat")
        group_size = self.group_size
        l2 = 0
        for g in range(layout.n_cells_level // group_size):
            fill = 0
            for i in range(g * group_size, (g + 1) * group_size):
                raw = region.peek_volatile(layout.tab2_addr(codec, i), 1)
                if raw[0] & OCCUPIED_BIT:
                    fill += 1
            if fill:
                heat.touch(g, fill)
            l2 += fill
        metrics.gauge("group.l1_occupied").set(l1)
        metrics.gauge("group.l2_occupied").set(l2)

    def group_fill(self, group: int) -> int:
        """Occupied cells in level-2 group ``group`` (diagnostic)."""
        codec, region, layout = self.codec, self.region, self.layout
        start = group * self.group_size
        return sum(
            1
            for i in range(start, start + self.group_size)
            if codec.is_occupied(region, layout.tab2_addr(codec, i))
        )
