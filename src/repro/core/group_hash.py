"""Group hashing (paper Section 3): write-efficient, consistent hashing
for NVM.

Faithfulness notes, keyed to the paper:

- **Insert** follows Algorithm 1 exactly: write key+value → persist →
  atomically set the cell's bitmap (8-byte store) → persist → increment
  ``count`` → persist. No logging, no copy-on-write — a crash before the
  bitmap flip simply loses the (uncommitted) item, and recovery clears
  the partial write.
- **Delete** follows Algorithm 3: the bitmap is cleared *before* the
  key-value wipe so a crash mid-wipe leaves a cell that recovery knows
  to reset (bitmap 0 ⇒ contents are garbage).
- **Query** follows Algorithm 2, with one hardening noted in the paper
  reproduction: the level-2 scan checks the bitmap in addition to the
  key (the paper checks only the key, relying on recovery having zeroed
  unoccupied cells; checking the bit costs nothing — it travels in the
  same header word as the probe read — and makes the structure safe even
  before a post-crash recovery pass).
- **Group sharing**: collisions in level-1 cell ``k`` spill exclusively
  into the contiguous level-2 group ``k // group_size``, so the fallback
  scan walks consecutive cachelines (hardware-prefetch friendly; in the
  simulator, consecutive cells share lines, which is what produces the
  low miss counts of Figures 2b and 6).

An optional ``n_hash_functions > 1`` mode implements the ablation the
paper discusses in Section 4.4 (a second hash raises space utilization
but breaks probe contiguity); the default of 1 is the paper's design.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.layout import GroupLayout
from repro.core.recovery import recover_group_table
from repro.nvm.backend import MemoryBackend
from repro.nvm.memory import CACHELINE
from repro.tables.base import PersistentHashTable
from repro.tables.cell import HEADER_SIZE, OCCUPIED_BIT, ItemSpec
from repro.tables.wal import UndoLog


class GroupHashTable(PersistentHashTable):
    """The paper's group hashing scheme."""

    scheme_name = "group"

    def __init__(
        self,
        region: MemoryBackend,
        n_cells: int,
        spec: ItemSpec | None = None,
        *,
        group_size: int = 256,
        n_hash_functions: int = 1,
        log: UndoLog | None = None,
        seed: int = 0x5EED,
    ) -> None:
        if log is not None:
            raise ValueError(
                "group hashing guarantees consistency with 8-byte atomic "
                "writes; it never uses a log (that's the point of the paper)"
            )
        if n_cells % 2:
            raise ValueError("n_cells must be even (two equal levels)")
        n_level = n_cells // 2
        if n_level % group_size:
            raise ValueError(
                f"group_size {group_size} must divide the per-level cell "
                f"count {n_level}"
            )
        if n_hash_functions < 1:
            raise ValueError("need at least one hash function")
        super().__init__(region, n_cells, spec, log=None, seed=seed)
        self.group_size = group_size
        self.n_hash_functions = n_hash_functions
        self._hashes = [self.family.function(i) for i in range(n_hash_functions)]
        tab1 = region.alloc(
            self.codec.array_bytes(n_level), align=CACHELINE, label="group.tab1"
        )
        tab2 = region.alloc(
            self.codec.array_bytes(n_level), align=CACHELINE, label="group.tab2"
        )
        self.layout = GroupLayout(
            n_cells_level=n_level,
            group_size=group_size,
            tab1_base=tab1,
            tab2_base=tab2,
        )
        # Extended global info (Figure 4): group_size and table_size next
        # to the base block's count field.
        region.write_u64(self._info_addr + 24, group_size)
        region.write_u64(self._info_addr + 32, n_level)
        self._finish_layout()

    @property
    def capacity(self) -> int:
        return 2 * (self.n_cells // 2)

    def _iter_cell_addrs(self) -> Iterator[int]:
        codec, layout = self.codec, self.layout
        for i in range(layout.n_cells_level):
            yield layout.tab1_addr(codec, i)
        for i in range(layout.n_cells_level):
            yield layout.tab2_addr(codec, i)

    @property
    def n_lock_stripes(self) -> int:
        """One lock stripe per *group* — the paper's natural locking
        unit: stripe ``g`` covers level-1 cells ``[g*group_size,
        (g+1)*group_size)`` and the level-2 group they spill into."""
        return self.layout.n_cells_level // self.group_size

    def lock_stripes(self, key: bytes) -> tuple[int, ...]:
        """Every group ``key`` can land in (one per hash function),
        sorted — a writer locks them all, an optimistic reader
        validates them all."""
        n_level, group_size = self.layout.n_cells_level, self.group_size
        return tuple(sorted({h(key) % n_level // group_size for h in self._hashes}))

    # ------------------------------------------------------------------
    # Algorithm 1

    def insert(self, key: bytes, value: bytes) -> bool:
        # Hot path: layout arithmetic is inlined into locals and the
        # group walk is the backend's bulk probe, whose event semantics
        # are defined as the per-cell loop — so the simulator's event
        # counts (pinned by tests) are those of the readable form.
        layout = self.layout
        region = self.region
        cell_size = self.codec.cell_size
        group_size = self.group_size
        tr, mx = self.tracer, self.metrics
        for h in self._hashes:
            if tr is not None:
                tr.push("hash")
            k = h(key) % layout.n_cells_level
            if tr is not None:
                tr.pop()
                tr.push("l1_probe")
            addr1 = layout.tab1_base + k * cell_size
            l1_free = not region.read_u64(addr1) & OCCUPIED_BIT
            if tr is not None:
                tr.pop()
            if l1_free:
                if mx is not None:
                    mx.histogram("group.insert_probe_cells").record(1)
                    mx.counter("group.l1_inserts").inc()
                self._install(addr1, key, value)
                return True
            # Level-1 collision: scan the matched level-2 group — a
            # contiguous run of group_size cells.
            if tr is not None:
                tr.push("l2_probe")
            group_base = layout.tab2_base + (k - k % group_size) * cell_size
            i = region.scan_clear_u64(group_base, cell_size, group_size, OCCUPIED_BIT)
            if tr is not None:
                tr.pop()
            if i is not None:
                if mx is not None:
                    mx.histogram("group.insert_probe_cells").record(2 + i)
                    mx.counter("group.overflow_inserts").inc()
                    mx.heat("group.overflow_heat").touch(k // group_size)
                self._install(group_base + i * cell_size, key, value)
                return True
        # Both the home cell and its whole shared group are full: the
        # paper's signal that the table needs expansion.
        if mx is not None:
            mx.counter("group.insert_failures").inc()
        return False

    # ------------------------------------------------------------------
    # Algorithm 2

    def query(self, key: bytes) -> bytes | None:
        addr = self._find(key)
        if addr is None:
            return None
        return self.codec.read_value(self.region, addr)

    def _find(self, key: bytes) -> int | None:
        # Same discipline as insert: the home cell is one header+key
        # read (the codec.probe access), the group walk is the backend's
        # bulk match with identical per-cell read semantics.
        layout = self.layout
        region = self.region
        cell_size = self.codec.cell_size
        group_size = self.group_size
        probe_size = HEADER_SIZE + self.spec.key_size
        tr, mx = self.tracer, self.metrics
        for h in self._hashes:
            if tr is not None:
                tr.push("hash")
            k = h(key) % layout.n_cells_level
            if tr is not None:
                tr.pop()
                tr.push("l1_probe")
            addr1 = layout.tab1_base + k * cell_size
            raw = region.read(addr1, probe_size)
            if tr is not None:
                tr.pop()
            if raw[0] & OCCUPIED_BIT and raw[HEADER_SIZE:] == key:
                if mx is not None:
                    mx.histogram("group.find_probe_cells").record(1)
                return addr1
            if tr is not None:
                tr.push("l2_probe")
            group_base = layout.tab2_base + (k - k % group_size) * cell_size
            i = region.scan_match(
                group_base, cell_size, group_size, key,
                mask=OCCUPIED_BIT, key_offset=HEADER_SIZE,
            )
            if tr is not None:
                tr.pop()
            if i is not None:
                if mx is not None:
                    mx.histogram("group.find_probe_cells").record(2 + i)
                    mx.heat("group.overflow_heat").touch(k // group_size)
                return group_base + i * cell_size
        if mx is not None:
            mx.histogram("group.find_probe_cells").record(
                (1 + group_size) * self.n_hash_functions
            )
        return None

    # ------------------------------------------------------------------
    # item enumeration (split support)

    def scan_items(self) -> Iterator[tuple[bytes, bytes]]:
        """Yield every committed ``(key, value)`` pair through the costed
        read path.

        This is the enumeration hook a segment split needs: unlike
        :meth:`items` (a cost-free peek for assertions), this walk
        charges one header+kv read per cell, in address order — the same
        sequential, prefetch-friendly pattern as the recovery scan — so
        the price of rehashing a segment shows up in simulated time."""
        spec, region = self.spec, self.region
        probe_size = HEADER_SIZE + spec.item_size
        for addr in self._iter_cell_addrs():
            raw = region.read(addr, probe_size)
            if raw[0] & OCCUPIED_BIT:
                kv = raw[HEADER_SIZE:]
                yield kv[: spec.key_size], kv[spec.key_size :]

    # ------------------------------------------------------------------
    # Algorithm 3

    def delete(self, key: bytes) -> bool:
        addr = self._find(key)
        if addr is None:
            return False
        self._remove(addr)
        return True

    # ------------------------------------------------------------------
    # batch operations (beyond the paper; DESIGN.md decision 13)

    def put_many(self, items: list[tuple[bytes, bytes]]) -> list[bool]:
        """Insert a batch of ``(key, value)`` pairs; one bool per item.

        Placement policy is Algorithm 1's, applied to the items in
        order (later items see earlier, still-uncommitted placements),
        so the final persistent state is byte-identical to a loop of
        :meth:`insert` calls. Persistence is coalesced per batch: all
        key-value stores, one flush per touched line, one fence, then
        all bitmap commits, one flush per header line, one fence, then
        a single count persist. Every persisted bitmap still implies
        its key-value bytes persisted first, so recovery (Algorithm 4)
        holds at any crash boundary inside the batch — a mid-batch
        crash durably keeps some *subset* of the batch's items, each
        individually intact (proven by the crash-matrix batch cell)."""
        results, placements, _ = self._plan_puts(items, stop_on_failure=False)
        self._commit_puts(placements)
        return results

    def _put_many_prefix(self, items: list[tuple[bytes, bytes]]) -> int:
        """Place and commit the longest placeable prefix of ``items``;
        returns how many were consumed. Directory segments use this so
        a full segment stops the batch exactly where a scalar loop
        would have triggered the split."""
        _, placements, consumed = self._plan_puts(items, stop_on_failure=True)
        self._commit_puts(placements)
        return consumed

    def _plan_puts(
        self, items: list[tuple[bytes, bytes]], *, stop_on_failure: bool
    ) -> tuple[list[bool], list[tuple[int, bytes, bytes]], int]:
        """Plan Algorithm 1 placements for a batch without committing.

        Occupancy is read through the costed scan primitives — one
        gather over the batch's home cells, one group-filter bitmap per
        touched level-2 group — and mirrored in volatile caches so
        later items observe earlier claims. Returns ``(results,
        placements, consumed)``; with ``stop_on_failure`` the plan ends
        at the first unplaceable item (``consumed`` < ``len(items)``)."""
        layout, region, codec = self.layout, self.region, self.codec
        spec = codec.spec
        cell_size = codec.cell_size
        group_size = self.group_size
        n_level = layout.n_cells_level
        full_mask = (1 << group_size) - 1
        tab1, tab2 = layout.tab1_base, layout.tab2_base
        for key, value in items:
            if len(key) != spec.key_size or len(value) != spec.value_size:
                raise ValueError(
                    f"item must be {spec.key_size}+{spec.value_size} bytes, "
                    f"got {len(key)}+{len(value)}"
                )
        hashes = self._hashes
        homes = [hashes[0](key) % n_level for key, _ in items]
        unique = sorted(set(homes))
        seed_bitmap = region.scan_occupied_at(
            [tab1 + k * cell_size for k in unique], OCCUPIED_BIT
        )
        l1_state = {k: bool(seed_bitmap >> i & 1) for i, k in enumerate(unique)}
        group_state: dict[int, int] = {}
        results = [False] * len(items)
        placements: list[tuple[int, bytes, bytes]] = []
        for idx, (key, value) in enumerate(items):
            placed = False
            for hi, h in enumerate(hashes):
                k = homes[idx] if hi == 0 else h(key) % n_level
                occupied = l1_state.get(k)
                if occupied is None:
                    occupied = bool(
                        region.read_u64(tab1 + k * cell_size) & OCCUPIED_BIT
                    )
                if not occupied:
                    l1_state[k] = True
                    placements.append((tab1 + k * cell_size, key, value))
                    placed = True
                    break
                l1_state[k] = True
                group = k // group_size
                bitmap = group_state.get(group)
                if bitmap is None:
                    bitmap = region.scan_occupied_bitmap(
                        tab2 + group * group_size * cell_size,
                        cell_size,
                        group_size,
                        OCCUPIED_BIT,
                    )
                free = ~bitmap & full_mask
                if free:
                    slot = (free & -free).bit_length() - 1
                    group_state[group] = bitmap | (1 << slot)
                    placements.append(
                        (
                            tab2 + (group * group_size + slot) * cell_size,
                            key,
                            value,
                        )
                    )
                    placed = True
                    break
                group_state[group] = bitmap
            results[idx] = placed
            if not placed and stop_on_failure:
                return results[:idx], placements, idx
        return results, placements, len(items)

    def _commit_puts(self, placements: list[tuple[int, bytes, bytes]]) -> None:
        """Coalesced Algorithm 1 commit of planned placements.

        Phase order carries the consistency argument: every key-value
        store is flushed and fenced *before any* bitmap store issues,
        so no schedule can persist a set bitmap whose key-value bytes
        were lost — the exact invariant Algorithm 4 relies on. The
        count is persisted once; recovery rebuilds it anyway."""
        if not placements:
            return
        region = self.region
        item_size = self.codec.spec.item_size
        line = region.line_size
        placements.sort(key=lambda p: p[0])
        kv_lines: list[int] = []
        for addr, key, value in placements:
            kv_addr = addr + HEADER_SIZE
            region.write(kv_addr, key + value)
            first = kv_addr // line
            last = (kv_addr + item_size - 1) // line
            for ln in range(first, last + 1):
                if not kv_lines or kv_lines[-1] != ln:
                    kv_lines.append(ln)
        for ln in kv_lines:
            region.clflush(ln * line)
        region.mfence()
        header_lines: list[int] = []
        for addr, _, _ in placements:
            region.write_atomic_u64(addr, region.read_u64(addr) | OCCUPIED_BIT)
            ln = addr // line
            if not header_lines or header_lines[-1] != ln:
                header_lines.append(ln)
        for ln in header_lines:
            region.clflush(ln * line)
        region.mfence()
        self._set_count(self._count + len(placements))
        if self.metrics is not None:
            self.metrics.counter("group.batch_put_items").inc(len(placements))

    def _find_many(self, keys: list[bytes]) -> list[int | None]:
        """Batched Algorithm 2: cell address per key (or None).

        One vectorized home-cell probe covers the whole batch in
        address order; keys that miss level 1 are grouped by their
        level-2 group and resolved with one multi-key group filter per
        group, groups visited in address order for locality."""
        layout, region, codec = self.layout, self.region, self.codec
        cell_size = codec.cell_size
        group_size = self.group_size
        n_level = layout.n_cells_level
        tab1, tab2 = layout.tab1_base, layout.tab2_base
        h0 = self._hashes[0]
        n = len(keys)
        out: list[int | None] = [None] * n
        homes = [h0(key) % n_level for key in keys]
        order = sorted(range(n), key=lambda i: homes[i])
        l1_hits = region.scan_match_pairs(
            [(tab1 + homes[i] * cell_size, keys[i]) for i in order],
            mask=OCCUPIED_BIT,
            key_offset=HEADER_SIZE,
        )
        groups: dict[int, list[int]] = {}
        for pos, i in enumerate(order):
            if l1_hits[pos]:
                out[i] = tab1 + homes[i] * cell_size
            else:
                groups.setdefault(homes[i] // group_size, []).append(i)
        for group in sorted(groups):
            idxs = groups[group]
            base = tab2 + group * group_size * cell_size
            found = region.scan_match_many(
                base,
                cell_size,
                group_size,
                [keys[i] for i in idxs],
                mask=OCCUPIED_BIT,
                key_offset=HEADER_SIZE,
            )
            for i, slot in zip(idxs, found):
                if slot is not None:
                    out[i] = base + slot * cell_size
        return out

    def get_many(self, keys: list[bytes]) -> list[bytes | None]:
        """Batched Algorithm 2 lookups; one value (or None) per key.

        Probes are vectorized and address-sorted (see :meth:`_find_many`);
        results come back in input order. Read-only, so there is no
        consistency argument to make — only reordered read traffic."""
        if self.n_hash_functions != 1:
            return [self.query(key) for key in keys]
        region = self.region
        value_offset = self.codec.value_offset
        value_size = self.spec.value_size
        return [
            None if addr is None else region.read(addr + value_offset, value_size)
            for addr in self._find_many(keys)
        ]

    def delete_many(self, keys: list[bytes]) -> list[bool]:
        """Batched Algorithm 3; one bool per key.

        Lookups are batched like :meth:`get_many`; commits are coalesced
        in two fenced phases mirroring Algorithm 3's order (all bitmap
        clears flushed before any key-value wipe issues), so a persisted
        bitmap-clear can only expose a cell recovery knows to reset.
        Duplicate keys within one batch claim distinct cells exactly
        like the scalar loop: the first occurrence takes the first match
        and later occurrences re-probe *after* the coalesced commit, so
        a second resident copy of the key (inserts never check presence)
        is found and deleted just as a loop of :meth:`delete` calls
        would find it."""
        if self.n_hash_functions != 1:
            return [self.delete(key) for key in keys]
        addrs = self._find_many(keys)
        claimed: set[int] = set()
        victims: list[int] = []
        results: list[bool] = []
        retries: list[int] = []
        for i, addr in enumerate(addrs):
            if addr is None:
                results.append(False)
            elif addr in claimed:
                # a duplicate occurrence resolved to an already-claimed
                # cell; another copy of the key may live elsewhere, and
                # only a post-commit probe can see past the claimed cell
                retries.append(i)
                results.append(False)
            else:
                claimed.add(addr)
                victims.append(addr)
                results.append(True)
        self._commit_deletes(victims)
        for i in retries:
            results[i] = self.delete(keys[i])
        return results

    def _commit_deletes(self, victims: list[int]) -> None:
        """Coalesced Algorithm 3 commit: bitmap-clear phase (flush +
        fence) strictly before the key-value wipe phase (flush + fence),
        then one count persist."""
        if not victims:
            return
        region = self.region
        item_size = self.codec.spec.item_size
        line = region.line_size
        victims.sort()
        header_lines: list[int] = []
        for addr in victims:
            region.write_atomic_u64(
                addr, region.read_u64(addr) & ~OCCUPIED_BIT & 0xFFFFFFFFFFFFFFFF
            )
            ln = addr // line
            if not header_lines or header_lines[-1] != ln:
                header_lines.append(ln)
        for ln in header_lines:
            region.clflush(ln * line)
        region.mfence()
        empty_kv = bytes(item_size)
        kv_lines: list[int] = []
        for addr in victims:
            kv_addr = addr + HEADER_SIZE
            region.write(kv_addr, empty_kv)
            first = kv_addr // line
            last = (kv_addr + item_size - 1) // line
            for ln in range(first, last + 1):
                if not kv_lines or kv_lines[-1] != ln:
                    kv_lines.append(ln)
        for ln in kv_lines:
            region.clflush(ln * line)
        region.mfence()
        self._set_count(self._count - len(victims))
        if self.metrics is not None:
            self.metrics.counter("group.batch_delete_items").inc(len(victims))

    # ------------------------------------------------------------------
    # Algorithm 4

    def recover(self) -> None:
        """Post-crash recovery: delegate to the standalone scan so tests
        can also run it against a bare region."""
        recover_group_table(self)

    # ------------------------------------------------------------------
    # diagnostics

    def integrity_violations(self) -> list[str]:
        """Base structural checks plus Algorithm 4's postcondition: after
        recovery every unoccupied cell's key-value field is zero in the
        persistent image (a non-zero one is a torn write recovery should
        have reset)."""
        problems = super().integrity_violations()
        spec = self.spec
        zero_kv = bytes(spec.item_size)
        region = self.region
        for addr in self._iter_cell_addrs():
            raw = region.peek_persistent(addr, HEADER_SIZE + spec.item_size)
            if not raw[0] & OCCUPIED_BIT and raw[HEADER_SIZE:] != zero_kv:
                problems.append(
                    f"unoccupied cell at {addr} holds non-zero key-value bytes"
                )
        return problems

    def level_occupancy(self) -> tuple[int, int]:
        """(level-1 occupied, level-2 occupied) — used by the group-size
        analysis and the examples."""
        codec, region, layout = self.codec, self.region, self.layout
        l1 = sum(
            1
            for i in range(layout.n_cells_level)
            if codec.is_occupied(region, layout.tab1_addr(codec, i))
        )
        l2 = sum(
            1
            for i in range(layout.n_cells_level)
            if codec.is_occupied(region, layout.tab2_addr(codec, i))
        )
        return l1, l2

    def observe_occupancy(self, metrics) -> None:
        """Record the current occupancy picture into ``metrics`` without
        touching simulated state: level gauges (``group.l1_occupied`` /
        ``group.l2_occupied``) and a per-group level-2 fill heat map
        (``group.occupancy_heat``). Reads use the cost-free peek API so
        this can run mid-benchmark."""
        codec, region, layout = self.codec, self.region, self.layout
        l1 = 0
        for i in range(layout.n_cells_level):
            raw = region.peek_volatile(layout.tab1_addr(codec, i), 1)
            if raw[0] & OCCUPIED_BIT:
                l1 += 1
        heat = metrics.heat("group.occupancy_heat")
        group_size = self.group_size
        l2 = 0
        for g in range(layout.n_cells_level // group_size):
            fill = 0
            for i in range(g * group_size, (g + 1) * group_size):
                raw = region.peek_volatile(layout.tab2_addr(codec, i), 1)
                if raw[0] & OCCUPIED_BIT:
                    fill += 1
            if fill:
                heat.touch(g, fill)
            l2 += fill
        metrics.gauge("group.l1_occupied").set(l1)
        metrics.gauge("group.l2_occupied").set(l2)

    def group_fill(self, group: int) -> int:
        """Occupied cells in level-2 group ``group`` (diagnostic)."""
        codec, region, layout = self.codec, self.region, self.layout
        start = group * self.group_size
        return sum(
            1
            for i in range(start, start + self.group_size)
            if codec.is_occupied(region, layout.tab2_addr(codec, i))
        )
