"""Physical storage layout of group hashing (paper Figures 3 and 4).

Two equal levels of ``n_cells_level`` cells each:

- **level 1** (``tab1``) — hash-addressable cells; a key's home cell is
  ``h(key) mod n_cells_level``;
- **level 2** (``tab2``) — collision-resolution cells, *not* addressable
  by the hash function.

Both levels are divided into groups of ``group_size`` cells stored
contiguously; group ``g`` of level 1 overflows exclusively into group
``g`` of level 2. The layout object owns all the address arithmetic so
the table, the recovery scan, and the tests agree on where every cell
lives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tables.cell import CellCodec


@dataclass(frozen=True)
class GroupLayout:
    """Address map for one group hash table."""

    #: cells per level (level 1 and level 2 are the same size)
    n_cells_level: int
    #: cells per group — the paper's tuning knob (Figure 8), default 256
    group_size: int
    #: byte address of level 1's first cell
    tab1_base: int
    #: byte address of level 2's first cell
    tab2_base: int

    def __post_init__(self) -> None:
        if self.n_cells_level <= 0:
            raise ValueError("n_cells_level must be positive")
        if self.group_size <= 0:
            raise ValueError("group_size must be positive")
        if self.n_cells_level % self.group_size:
            raise ValueError(
                f"group_size {self.group_size} must divide the level size "
                f"{self.n_cells_level}"
            )

    @property
    def n_groups(self) -> int:
        """Number of groups in each level (equal by construction)."""
        return self.n_cells_level // self.group_size

    @property
    def total_cells(self) -> int:
        """All cells across both levels — the load-factor denominator."""
        return 2 * self.n_cells_level

    def slot(self, hash_value: int) -> int:
        """Level-1 index for a key's hash value."""
        return hash_value % self.n_cells_level

    def group_of(self, index: int) -> int:
        """Group number of a level index."""
        return index // self.group_size

    def group_start(self, index: int) -> int:
        """First index of the group containing ``index`` — the paper's
        ``j = k - k % group_size``."""
        return index - index % self.group_size

    def tab1_addr(self, codec: CellCodec, index: int) -> int:
        """Byte address of level-1 cell ``index``."""
        return codec.addr(self.tab1_base, index)

    def tab2_addr(self, codec: CellCodec, index: int) -> int:
        """Byte address of level-2 cell ``index``."""
        return codec.addr(self.tab2_base, index)
