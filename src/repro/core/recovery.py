"""Algorithm 4: group hashing's post-crash recovery.

The whole table is scanned once. Every cell whose bitmap is 0 may hold a
partial (torn) key-value write from an interrupted insert, or the stale
payload of an interrupted delete — its key-value field is reset and the
reset persisted. Occupied cells are counted, and the ``count`` field in
the global info block is rewritten with the true value.

Two deviations from the literal pseudocode, both noted in DESIGN.md:

- the pseudocode persists a reset for *every* unoccupied cell; we only
  write (and persist) cells whose key-value field is actually non-zero.
  Resetting already-zero cells would write the entire empty table on
  every recovery, contradicting the paper's measured sub-1 % recovery
  times (Table 3) — their implementation must skip clean cells too.
- the scan is driven through the same costed region API as normal
  operations, so Table 3's recovery-time measurements come out of the
  simulator's clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.tables.cell import HEADER_SIZE, OCCUPIED_BIT

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.group_hash import GroupHashTable
    from repro.tables.base import PersistentHashTable


def recover_table(table: "PersistentHashTable") -> int:
    """Uniform reboot entry point for any scheme: reattach the volatile
    mirrors to the (post-crash) persistent state, then run the scheme's
    own recovery — Algorithm 4 for group hashing, undo-log rollback plus
    count rebuild for the logged baselines. Returns the recovered item
    count.

    The crash-matrix campaigns (:mod:`repro.nvm.crashpoint`) funnel every
    scheme through this one function so the replay harness cannot drift
    from what a real restart would do."""
    table.reattach()
    if table.log is not None:
        table.log.reattach()
    table.recover()
    return table.count


def recover_group_table(table: "GroupHashTable") -> int:
    """Run Algorithm 4 on ``table``; returns the recovered item count."""
    codec, region, layout = table.codec, table.region, table.layout
    spec = table.spec
    zero_kv = bytes(spec.item_size)
    tr, mx = table.tracer, table.metrics
    if tr is not None:
        tr.push("recover")
    count = 0
    scanned = 0
    reset = 0
    for level_base_addr in (layout.tab1_base, layout.tab2_base):
        for i in range(layout.n_cells_level):
            addr = codec.addr(level_base_addr, i)
            # One load covers header + key + value: the scan is
            # sequential, so consecutive cells share cachelines and the
            # scan runs at ~one miss per line — the linearity Table 3
            # shows.
            raw = region.read(addr, HEADER_SIZE + spec.item_size)
            scanned += 1
            if raw[0] & OCCUPIED_BIT:
                count += 1
            elif raw[HEADER_SIZE:] != zero_kv:
                codec.clear_kv(region, addr)
                region.persist(*codec.kv_span(addr))
                reset += 1
    table._set_count(count)
    if mx is not None:
        mx.counter("recovery.cells_scanned").inc(scanned)
        mx.counter("recovery.cells_reset").inc(reset)
        mx.counter("recovery.runs").inc()
    if tr is not None:
        tr.pop()
    return count
