"""Growth compatibility layer — rebuild-style expansion as a shim.

Algorithm 1 returns FALSE when a key's home cell and its entire matched
level-2 group are full; the paper says this "means that the capacity of
the hash table needs to be expanded" but gives no expansion procedure.
The repository's answer is the incremental segment/directory layer
(:mod:`repro.core.directory`): a full segment splits alone and the
change publishes with one 8-byte atomic pointer swing, so growth costs
O(segment), not O(table).

This module keeps the two *whole-table rebuild* entry points the repo
grew up with — :func:`expand_group_table` and
:func:`insert_with_expansion` — as thin shims over one audited wrapper,
:class:`GrowableTable`. The rebuild path survives for two reasons:

- it is the only way to *migrate* (new region, new growth factor, new
  group size), which a split never does;
- it is the baseline the ``growth`` benchmark compares against — the
  stop-the-world pause the directory layer exists to retire.

Rebuild consistency is unchanged: the old table is never mutated, every
re-insert into the new table uses the normal Algorithm 1 commit, and
only after the last item commits does the wrapper flip its reference. A
crash mid-expansion resumes from the old table; the half-built new one
is garbage, now *accounted* garbage — the bump allocator cannot reclaim
it, so its bytes are recorded in ``region.abandoned_bytes`` (bounded by
one failed expansion, which ``tests/test_resize.py`` asserts).
"""

from __future__ import annotations

from repro.core.directory import DirectoryTable
from repro.core.group_hash import GroupHashTable
from repro.nvm.backend import MemoryBackend


class ExpansionError(RuntimeError):
    """Expansion could not complete (e.g. the region is out of space)."""


def expand_group_table(
    table: GroupHashTable,
    *,
    region: MemoryBackend | None = None,
    growth_factor: int = 2,
    group_size: int | None = None,
) -> GroupHashTable:
    """Return a new table ``growth_factor``× larger holding every item
    of ``table`` (the stop-the-world rebuild).

    The new table lives in ``region`` (default: the same region, after
    the old table's allocations). The old table remains valid and
    untouched — the caller owns the switch-over. On failure the
    half-built table's bytes are recorded in the target region's
    ``abandoned_bytes`` before :class:`ExpansionError` is raised.
    """
    if growth_factor < 2:
        raise ValueError("growth_factor must be at least 2")
    target_region = region or table.region
    new_cells = table.capacity * growth_factor
    group_size = group_size or table.group_size
    alloc_before = target_region.bytes_allocated
    try:
        new_table = GroupHashTable(
            target_region,
            new_cells,
            table.spec,
            group_size=group_size,
            n_hash_functions=table.n_hash_functions,
            seed=table.family.seed,
        )
    except MemoryError as exc:
        # a partial allocation (e.g. info block without level arrays) is
        # already unreachable garbage — account for it
        target_region.mark_abandoned(target_region.bytes_allocated - alloc_before)
        raise ExpansionError(
            f"region cannot hold a {new_cells}-cell table: {exc}"
        ) from exc
    for key, value in table.items():
        if not new_table.insert(key, value):
            # astronomically unlikely (same keys, double the space), but
            # never leave a half-populated table as the apparent result
            target_region.mark_abandoned(
                target_region.bytes_allocated - alloc_before
            )
            raise ExpansionError(
                f"re-insert failed at load factor {new_table.load_factor:.3f}"
            )
    return new_table


class GrowableTable:
    """The single audited flip point for table growth.

    Callers that outlive a resize (the KV store's index, the bench
    runner's handle) used to rebind ``table = expand_group_table(table)``
    by convention at each site; this wrapper owns the reference instead,
    so the flip happens in exactly one reviewed place — :meth:`insert`.

    Two modes:

    - ``"incremental"`` (default): the table is adopted into a
      :class:`~repro.core.directory.DirectoryTable` and growth happens
      by segment splits — bounded pauses, items never move except the
      split's own rehash. ``insert`` can only return False under
      pathological skew, never for capacity.
    - ``"rebuild"``: the legacy stop-the-world expansion, kept for
      migration and as the benchmark baseline. Each failed insert
      triggers up to ``max_expansions`` full rebuilds (each one counted
      in :attr:`expansions`), flipping :attr:`table` after each.
    """

    def __init__(
        self,
        table: GroupHashTable | DirectoryTable,
        *,
        mode: str = "incremental",
        region_factory=None,
        growth_factor: int = 2,
        max_expansions: int = 4,
        max_split_attempts: int = 8,
    ) -> None:
        if mode not in ("incremental", "rebuild"):
            raise ValueError(f"unknown growth mode {mode!r}")
        self.mode = mode
        self.region_factory = region_factory
        self.growth_factor = growth_factor
        self.max_expansions = max_expansions
        #: rebuild-mode flip count (incremental growth counts splits on
        #: the directory instead)
        self.expansions = 0
        if mode == "incremental" and isinstance(table, GroupHashTable):
            table = DirectoryTable.adopt(
                table, max_split_attempts=max_split_attempts
            )
        self.table = table

    def insert(self, key: bytes, value: bytes) -> bool:
        """Insert, growing as needed; the only place :attr:`table` flips."""
        if self.table.insert(key, value):
            return True
        if self.mode == "incremental":
            # the directory already split and retried internally
            return False
        for _ in range(self.max_expansions):
            region = (
                self.region_factory(
                    self.table.capacity * self.growth_factor, self.table.spec
                )
                if self.region_factory is not None
                else None
            )
            self.table = expand_group_table(
                self.table, region=region, growth_factor=self.growth_factor
            )
            self.expansions += 1
            if self.table.insert(key, value):
                return True
        return False

    # ------------------------------------------------------------------
    # delegated single-table surface

    @property
    def region(self) -> MemoryBackend:
        """The current table's backend (changes on a rebuild flip)."""
        return self.table.region

    def query(self, key: bytes) -> bytes | None:
        """Return the value stored for ``key``, or ``None``."""
        return self.table.query(key)

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it was present."""
        return self.table.delete(key)

    def update(self, key: bytes, value: bytes) -> bool:
        """In-place value update."""
        return self.table.update(key, value)

    @property
    def count(self) -> int:
        """Occupied cells."""
        return self.table.count

    @property
    def capacity(self) -> int:
        """Total cells."""
        return self.table.capacity

    @property
    def load_factor(self) -> float:
        """count / capacity."""
        return self.table.load_factor

    def items(self):
        """Yield all stored pairs (cost-free inventory)."""
        return self.table.items()

    def check_count(self) -> bool:
        """Whether the persistent count matches occupancy."""
        return self.table.check_count()

    def instrument(self, tracer=None, metrics=None) -> None:
        """Attach observability sinks to the wrapped table."""
        self.table.instrument(tracer, metrics)

    def reattach(self) -> None:
        """Reload volatile mirrors after a simulated crash."""
        self.table.reattach()

    def recover(self) -> None:
        """Run the wrapped table's post-crash recovery."""
        self.table.recover()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GrowableTable(mode={self.mode!r}, table={self.table!r})"


def insert_with_expansion(
    table: GroupHashTable,
    key: bytes,
    value: bytes,
    *,
    region_factory=None,
    growth_factor: int = 2,
    max_expansions: int = 4,
) -> tuple[GroupHashTable, bool]:
    """Insert, rebuilding on failure; returns ``(table, inserted)``.

    Compatibility shim over :class:`GrowableTable` in ``"rebuild"`` mode
    — the caller still rebinds the returned table, which is exactly the
    convention the wrapper exists to retire. New code should hold a
    ``GrowableTable`` (or a :class:`~repro.core.directory.DirectoryTable`
    directly) instead.

    ``region_factory(n_cells, spec) -> MemoryBackend`` supplies a region
    for each expansion; by default the current region is reused (fine
    when it was sized with headroom).

    Every expansion is followed by an insert attempt, so at most
    ``max_expansions`` tables are built and the last one built is always
    offered the insert before ``(table, False)`` is returned."""
    growable = GrowableTable(
        table,
        mode="rebuild",
        region_factory=region_factory,
        growth_factor=growth_factor,
        max_expansions=max_expansions,
    )
    ok = growable.insert(key, value)
    return growable.table, ok
