"""Table expansion — the paper's "capacity needs to be expanded" signal.

Algorithm 1 returns FALSE when a key's home cell and its entire matched
level-2 group are full; the paper says this "means that the capacity of
the hash table needs to be expanded" but gives no expansion procedure.
This extension supplies the obvious consistent one:

1. build a fresh, larger group hash table (new level arrays, same
   region or a new one);
2. re-insert every committed item — each re-insert uses the normal
   Algorithm 1 commit, so the new table is consistent at every point;
3. only after the last item is committed in the new table, flip the
   caller's reference.

A crash mid-expansion is safe by construction: the old table is never
mutated, so recovery simply resumes from it and the half-built new
table is garbage (a production allocator would reclaim it; the bump
allocator here leaks it, which tests assert is bounded by one failed
expansion).

``insert_with_expansion`` packages the retry loop the paper implies:
insert, and on a FALSE return expand by ``growth_factor`` and retry.
"""

from __future__ import annotations

from repro.core.group_hash import GroupHashTable
from repro.nvm.backend import MemoryBackend


class ExpansionError(RuntimeError):
    """Expansion could not complete (e.g. the region is out of space)."""


def expand_group_table(
    table: GroupHashTable,
    *,
    region: MemoryBackend | None = None,
    growth_factor: int = 2,
    group_size: int | None = None,
) -> GroupHashTable:
    """Return a new table ``growth_factor``× larger holding every item
    of ``table``.

    The new table lives in ``region`` (default: the same region, after
    the old table's allocations). The old table remains valid and
    untouched — the caller owns the switch-over.
    """
    if growth_factor < 2:
        raise ValueError("growth_factor must be at least 2")
    target_region = region or table.region
    new_cells = table.capacity * growth_factor
    group_size = group_size or table.group_size
    try:
        new_table = GroupHashTable(
            target_region,
            new_cells,
            table.spec,
            group_size=group_size,
            n_hash_functions=table.n_hash_functions,
            seed=table.family.seed,
        )
    except MemoryError as exc:
        raise ExpansionError(
            f"region cannot hold a {new_cells}-cell table: {exc}"
        ) from exc
    for key, value in table.items():
        if not new_table.insert(key, value):
            # astronomically unlikely (same keys, double the space), but
            # never leave a half-populated table as the apparent result
            raise ExpansionError(
                f"re-insert failed at load factor {new_table.load_factor:.3f}"
            )
    return new_table


def insert_with_expansion(
    table: GroupHashTable,
    key: bytes,
    value: bytes,
    *,
    region_factory=None,
    growth_factor: int = 2,
    max_expansions: int = 4,
) -> tuple[GroupHashTable, bool]:
    """Insert, expanding on failure; returns ``(table, inserted)``.

    ``region_factory(n_cells, spec) -> MemoryBackend`` supplies a region for
    each expansion; by default the current region is reused (fine when
    it was sized with headroom).

    Every expansion is followed by an insert attempt, so at most
    ``max_expansions`` tables are built and the last one built is always
    offered the insert before ``(table, False)`` is returned."""
    if table.insert(key, value):
        return table, True
    for _ in range(max_expansions):
        region = (
            region_factory(table.capacity * growth_factor, table.spec)
            if region_factory is not None
            else None
        )
        table = expand_group_table(
            table, region=region, growth_factor=growth_factor
        )
        if table.insert(key, value):
            return table, True
    return table, False
