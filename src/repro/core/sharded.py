"""Sharded tables: hash-partitioned scale-out over pluggable backends.

The paper's table is one monolithic structure on one region. Scaling it
to production traffic means what Dash (Lu et al., VLDB 2020) and
IcebergHT (Pandey et al., 2023) demonstrate for persistent-memory
hashing: decompose the table into independently managed partitions with
a stable layout. :class:`ShardedTable` supplies that decomposition as a
routing layer *above* the unchanged per-shard schemes:

- every shard is a complete (backend, table) pair — its own metadata
  block, its own allocator, its own crash domain;
- a dedicated router hash (seeded independently of the tables' hash
  family, so shard choice and in-table placement stay uncorrelated)
  partitions the key space;
- shards crash and recover **independently**: a power failure in one
  shard leaves the others serving, and recovery scans only the failed
  shard's cells — 1/N of the monolithic Algorithm 4 scan;
- statistics aggregate across shards via
  :class:`~repro.nvm.backend.ShardedBackend`.

The default shard substrate is :class:`~repro.nvm.backend.RawBackend`
(sharding is a throughput construct, not a figure-reproduction one),
but any factory works — including per-shard simulators for costed
experiments.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.directory import DirectoryTable
from repro.core.group_hash import GroupHashTable
from repro.hashes import HashFamily
from repro.nvm.backend import MemoryBackend, RawBackend, ShardedBackend
from repro.nvm.crash import CrashSchedule
from repro.nvm.memory import CrashReport
from repro.nvm.stats import MemStats
from repro.tables.base import PersistentHashTable
from repro.tables.cell import CellCodec, ItemSpec

#: router seed perturbation: keeps the shard-choice hash independent of
#: the in-table hash family even though both derive from one user seed
_ROUTER_SALT = 0x51A2DED


def _default_group_size(n_cells_per_shard: int) -> int:
    """Largest power of two ≤ 128 dividing the per-shard level size —
    keeps the paper's contiguous-group property at any shard size."""
    level = max(2, n_cells_per_shard // 2)
    size = 1
    while size < 128 and level % (size * 2) == 0:
        size *= 2
    return size


def _default_backend_factory(
    n_cells_per_shard: int, spec: ItemSpec, *, growth_headroom: int = 1
) -> Callable[[int], MemoryBackend]:
    """Per-shard :class:`RawBackend` sized like the bench regions;
    ``growth_headroom`` multiplies the table-array budget so growable
    shards have room for split segments and directory doublings."""
    codec = CellCodec(spec)
    size = int(codec.array_bytes(n_cells_per_shard) * 1.25) * growth_headroom + (
        1 << 16
    )

    def factory(shard: int) -> MemoryBackend:
        return RawBackend(size, name=f"shard{shard}")

    return factory


class ShardedTable:
    """Hash-partitioned persistent table across N backend shards.

    Routes every operation to ``shard = router(key) % n_shards`` and
    delegates to that shard's own :class:`PersistentHashTable`. The
    public surface mirrors the single table (insert/query/delete/update,
    count, load factor, ``items``, ``check_count``) plus the sharded
    extras: per-shard crash injection and independent recovery.
    """

    def __init__(
        self,
        n_cells: int,
        spec: ItemSpec | None = None,
        *,
        n_shards: int = 4,
        seed: int = 0x5EED,
        backend_factory: Callable[[int], MemoryBackend] | None = None,
        table_factory: Callable[
            [MemoryBackend, int, ItemSpec, int], PersistentHashTable
        ]
        | None = None,
        growable: bool = False,
        segment_cells: int | None = None,
    ) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if n_cells < n_shards:
            raise ValueError("need at least one cell per shard")
        self.spec = spec or ItemSpec()
        self.n_shards = n_shards
        self.seed = seed
        self.growable = growable
        # equal shards, rounded up to even so two-level schemes fit
        per_shard = -(-n_cells // n_shards)
        per_shard += per_shard % 2
        self.n_cells_per_shard = per_shard
        if backend_factory is None:
            backend_factory = _default_backend_factory(
                per_shard,
                self.spec,
                # growable shards split segments out of the same backend:
                # leave room for several capacity doublings plus the
                # retired directory arrays they strand
                growth_headroom=8 if growable else 1,
            )
        if table_factory is None and growable:
            seg_cells = segment_cells or min(512, per_shard)

            def table_factory(
                backend: MemoryBackend, cells: int, spec: ItemSpec, table_seed: int
            ) -> DirectoryTable:
                return DirectoryTable(
                    backend,
                    cells,
                    spec,
                    segment_cells=seg_cells,
                    seed=table_seed,
                )

        elif table_factory is None:
            group_size = _default_group_size(per_shard)

            def table_factory(
                backend: MemoryBackend, cells: int, spec: ItemSpec, table_seed: int
            ) -> PersistentHashTable:
                return GroupHashTable(
                    backend, cells, spec, group_size=group_size, seed=table_seed
                )

        self.backend = ShardedBackend(n_shards, backend_factory)
        # distinct per-shard table seeds: identical seeds would give every
        # shard the same placement function, which is fine for correctness
        # but correlates overflow behaviour across shards
        self.tables: list[PersistentHashTable] = [
            table_factory(self.backend.shard(i), per_shard, self.spec, seed ^ i)
            for i in range(n_shards)
        ]
        self._router = HashFamily(seed ^ _ROUTER_SALT).function(0)

    # ------------------------------------------------------------------
    # routing

    def shard_of(self, key: bytes) -> int:
        """Shard index serving ``key``."""
        return self._router(key) % self.n_shards

    def table_for(self, key: bytes) -> PersistentHashTable:
        """The per-shard table serving ``key``."""
        return self.tables[self.shard_of(key)]

    # ------------------------------------------------------------------
    # the single-table surface, routed

    def insert(self, key: bytes, value: bytes) -> bool:
        """Insert into the key's shard; False when that shard is full.
        Growable shards (``growable=True``) split a full segment and
        retry instead, so False means pathological skew, not capacity."""
        return self.table_for(key).insert(key, value)

    def query(self, key: bytes) -> bytes | None:
        """Return the value stored for ``key``, or ``None``."""
        return self.table_for(key).query(key)

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it was present."""
        return self.table_for(key).delete(key)

    def update(self, key: bytes, value: bytes) -> bool:
        """In-place value update in the key's shard."""
        return self.table_for(key).update(key, value)

    # ------------------------------------------------------------------
    # batch operations (DESIGN.md decision 13)

    def _shard_indices(self, keys: list[bytes]) -> dict[int, list[int]]:
        """Input indices grouped per shard, preserving relative order
        within each shard (the order the sub-batch is submitted in)."""
        per_shard: dict[int, list[int]] = {}
        for i, key in enumerate(keys):
            per_shard.setdefault(self.shard_of(key), []).append(i)
        return per_shard

    def put_many(self, items: list[tuple[bytes, bytes]]) -> list[bool]:
        """Batched insert: items are routed into per-shard sub-batches
        (relative order preserved) and each shard commits its sub-batch
        with its own coalesced ``put_many``; results in input order.
        Shards whose table type lacks a batch API fall back to a scalar
        loop — routing semantics are identical either way."""
        out = [False] * len(items)
        for shard, idxs in sorted(self._shard_indices([k for k, _ in items]).items()):
            table = self.tables[shard]
            sub = [items[i] for i in idxs]
            if hasattr(table, "put_many"):
                res = table.put_many(sub)
            else:
                res = [table.insert(k, v) for k, v in sub]
            for i, r in zip(idxs, res):
                out[i] = r
        return out

    def get_many(self, keys: list[bytes]) -> list[bytes | None]:
        """Batched lookup via per-shard sub-batches; input order."""
        out: list[bytes | None] = [None] * len(keys)
        for shard, idxs in sorted(self._shard_indices(keys).items()):
            table = self.tables[shard]
            sub = [keys[i] for i in idxs]
            if hasattr(table, "get_many"):
                res = table.get_many(sub)
            else:
                res = [table.query(k) for k in sub]
            for i, r in zip(idxs, res):
                out[i] = r
        return out

    def delete_many(self, keys: list[bytes]) -> list[bool]:
        """Batched delete via per-shard sub-batches; input order.
        Duplicate keys route to one shard, so the per-table rule (later
        occurrences re-probe after the coalesced commit, matching the
        scalar loop) applies globally."""
        out = [False] * len(keys)
        for shard, idxs in sorted(self._shard_indices(keys).items()):
            table = self.tables[shard]
            sub = [keys[i] for i in idxs]
            if hasattr(table, "delete_many"):
                res = table.delete_many(sub)
            else:
                res = [table.delete(k) for k in sub]
            for i, r in zip(idxs, res):
                out[i] = r
        return out

    # ------------------------------------------------------------------
    # aggregated state

    @property
    def capacity(self) -> int:
        """Total cells across all shards."""
        return sum(t.capacity for t in self.tables)

    @property
    def count(self) -> int:
        """Total occupied cells across all shards (volatile mirrors)."""
        return sum(t.count for t in self.tables)

    @property
    def persisted_count(self) -> int:
        """Sum of every shard's persistent ``count`` field."""
        return sum(t.persisted_count for t in self.tables)

    @property
    def load_factor(self) -> float:
        """Global count / capacity."""
        return self.count / self.capacity

    @property
    def stats(self) -> MemStats:
        """Aggregated event counters across every shard's backend."""
        return self.merged_stats()

    def shard_stats(self) -> list[MemStats]:
        """Each shard backend's counters, in shard order (snapshots —
        mutating them does not affect the shards)."""
        return [self.backend.shard(i).stats.snapshot() for i in range(self.n_shards)]

    def merged_stats(self) -> MemStats:
        """Element-wise sum of every shard's counters via
        :meth:`MemStats.merged_all` — the convenience benchmarks use
        instead of hand-rolling per-shard merge loops."""
        return MemStats.merged_all(self.shard_stats())

    def instrument(self, tracer=None, metrics=None) -> None:
        """Attach observability sinks to every shard's table (see
        :meth:`PersistentHashTable.instrument`); all shards share the
        one tracer and registry, so spans and counters aggregate across
        the whole partitioned table."""
        for table in self.tables:
            table.instrument(tracer, metrics)

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Yield all stored pairs, shard by shard (cost-free inventory)."""
        for table in self.tables:
            yield from table.items()

    def check_count(self) -> bool:
        """Whether every shard's persistent count matches its occupancy
        (the global consistency invariant)."""
        return all(t.check_count() for t in self.tables)

    def shard_counts(self) -> list[int]:
        """Per-shard item counts (balance diagnostic)."""
        return [t.count for t in self.tables]

    @property
    def splits(self) -> int:
        """Total segment splits across growable shards (0 when the
        shards are fixed-size tables)."""
        return sum(getattr(t, "splits", 0) for t in self.tables)

    # ------------------------------------------------------------------
    # independent crash / recovery

    def crash(
        self,
        schedule: CrashSchedule | None = None,
        *,
        shard: int | None = None,
    ) -> list[CrashReport]:
        """Power-fail one shard (``shard=i``) or all shards.

        Other shards keep serving; their unflushed data is untouched."""
        return self.backend.crash(schedule, shard=shard)

    def _shard_tables(self, shard: int | None) -> list[PersistentHashTable]:
        if shard is None:
            return self.tables
        if not 0 <= shard < self.n_shards:
            raise IndexError(f"shard {shard} out of range [0, {self.n_shards})")
        return [self.tables[shard]]

    def reattach(self, shard: int | None = None) -> None:
        """Reload volatile mirrors from NVM after a crash, for one shard
        or all of them."""
        for table in self._shard_tables(shard):
            table.reattach()

    def recover(self, shard: int | None = None) -> None:
        """Run the per-scheme recovery (Algorithm 4 for group hashing)
        on one shard or all shards. Recovering a single shard scans only
        its cells — 1/n_shards of the monolithic scan."""
        for table in self._shard_tables(shard):
            table.recover()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedTable(n_shards={self.n_shards}, "
            f"cells/shard={self.n_cells_per_shard}, count={self.count})"
        )
