"""Hash function families for the hashing schemes.

All schemes in the paper hash fixed-width byte-string keys to table
indices. This package provides several independent 64-bit mixers plus a
:class:`~repro.hashes.functions.HashFamily` abstraction that hands out
seeded, pairwise-independent functions — two-function schemes (PFHT,
path hashing) draw ``h1``/``h2`` from the same family with different
seeds.
"""

from repro.hashes.functions import (
    HashFamily,
    fibonacci_hash,
    fnv1a64,
    multiply_shift,
    splitmix64,
    tabulation_hash,
    TabulationHasher,
)

__all__ = [
    "HashFamily",
    "TabulationHasher",
    "fibonacci_hash",
    "fnv1a64",
    "multiply_shift",
    "splitmix64",
    "tabulation_hash",
]
