"""64-bit hash mixers over byte-string keys.

Speed matters here — every simulated table operation starts with one or
two of these — so the hot functions work on a single Python integer
(``int.from_bytes`` of the key) and use only shifts/multiplies masked to
64 bits. ``TabulationHasher`` is the theoretical heavyweight (3-wise
independence) backed by a numpy table.
"""

from __future__ import annotations

import random
from typing import Callable

import numpy as np

_MASK64 = (1 << 64) - 1

#: 2^64 / golden ratio, the classic Fibonacci-hashing multiplier.
_FIB_MULT = 0x9E3779B97F4A7C15

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def splitmix64(x: int) -> int:
    """One round of the splitmix64 finalizer — a fast, well-distributed
    64-bit mixer (used by xxHash/wyhash finalizers)."""
    x = (x + _FIB_MULT) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def fibonacci_hash(x: int) -> int:
    """Multiplicative hashing with the golden-ratio constant."""
    return ((x ^ (x >> 32)) * _FIB_MULT) & _MASK64


def multiply_shift(x: int, a: int, b: int = 0) -> int:
    """Dietzfelbinger multiply-shift: ``(a*x + b) mod 2^64``.

    With odd random ``a`` this is universal for 64-bit keys; combined
    with taking high bits for the table index it is the cheapest sound
    scheme and the default inside :class:`HashFamily`.
    """
    return (a * x + b) & _MASK64


def fnv1a64(data: bytes) -> int:
    """FNV-1a over raw bytes. Byte-at-a-time, so only used for wide keys
    (e.g. 16-byte fingerprints) where an int conversion would lose
    distribution quality is not a concern but API symmetry is."""
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


class TabulationHasher:
    """Simple tabulation hashing: XOR of per-byte random tables.

    3-wise independent and strongly concentrated for linear probing
    (Pătraşcu–Thorup), which makes it the right choice for the linear
    probing baseline's worst-case tests.
    """

    def __init__(self, seed: int, key_bytes: int = 8) -> None:
        rng = np.random.default_rng(seed)
        self.key_bytes = key_bytes
        self._table = rng.integers(
            0, 1 << 63, size=(key_bytes, 256), dtype=np.uint64
        ) ^ (
            rng.integers(0, 1 << 63, size=(key_bytes, 256), dtype=np.uint64)
            << np.uint64(1)
        )

    def __call__(self, x: int) -> int:
        h = 0
        table = self._table
        for i in range(self.key_bytes):
            h ^= int(table[i, (x >> (8 * i)) & 0xFF])
        return h


def tabulation_hash(seed: int, key_bytes: int = 8) -> TabulationHasher:
    """Build a seeded :class:`TabulationHasher`."""
    return TabulationHasher(seed, key_bytes)


class HashFamily:
    """Seeded family of 64-bit hash functions over byte-string keys.

    ``family.function(i)`` returns an ``(bytes) -> int`` callable; distinct
    indices give (with overwhelming probability) independent functions.
    Keys wider than 8 bytes are folded 8 bytes at a time through
    splitmix64 before the per-function multiply-shift, so all key widths
    used by the traces (8, 16 bytes) share one code path.
    """

    def __init__(self, seed: int = 0x5EED) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._params: dict[int, tuple[int, int]] = {}

    def _param(self, index: int) -> tuple[int, int]:
        params = self._params.get(index)
        if params is None:
            rng = random.Random((self.seed << 16) ^ splitmix64(index))
            a = rng.getrandbits(64) | 1  # odd multiplier for universality
            b = rng.getrandbits(64)
            params = (a, b)
            self._params[index] = params
        return params

    def function(self, index: int) -> Callable[[bytes], int]:
        """Return the ``index``-th member of the family."""
        a, b = self._param(index)

        def _hash(key: bytes) -> int:
            x = 0
            for off in range(0, len(key), 8):
                x = splitmix64(x ^ int.from_bytes(key[off : off + 8], "little"))
            # finalize with a full-avalanche mixer: tables reduce with
            # `% n` for power-of-two n, and a bare multiply-shift keeps
            # its low bits congruent across family members (odd `a`
            # preserves x ≡ x' mod 2^k), which would make h1-collisions
            # imply h2-collisions and silently strip two-hash schemes of
            # their independence
            return splitmix64(multiply_shift(x, a, b))

        return _hash

    def pair(self) -> tuple[Callable[[bytes], int], Callable[[bytes], int]]:
        """Convenience: ``(h1, h2)`` for two-function schemes."""
        return self.function(0), self.function(1)
