"""A crash-consistent key-value store on top of group hashing.

The paper motivates NVM hashing with in-memory key-value stores
(memcached, MemC3), but a hash table with fixed-size cells only indexes
fixed-size items. This layer supplies the missing substrate:

- :class:`~repro.kv.slab.SlabAllocator` — a persistent slab allocator
  with power-of-two size classes and crash-consistent free lists, for
  variable-length values;
- :class:`~repro.kv.store.KVStore` — put/get/delete with arbitrary-size
  values: the value is written and persisted out-of-place in a slab,
  then published by a single group-hashing insert whose fixed-size cell
  value is the (address, length) locator — so the store inherits group
  hashing's 8-byte-atomic commit and needs no log;
- recovery: after a crash, the index recovers via Algorithm 4 and the
  allocator rebuilds its free lists from the index's live locators
  (:meth:`~repro.kv.store.KVStore.recover`).
"""

from repro.kv.slab import SlabAllocator, SlabFullError
from repro.kv.store import KVStore

__all__ = ["KVStore", "SlabAllocator", "SlabFullError"]
