"""Persistent slab allocator for variable-length values.

Power-of-two size classes, each a contiguous chunk array in the NVM
region. The allocator's *bookkeeping* (bump cursors, free lists) is
deliberately volatile: every live chunk is reachable from the KV index's
locators, so after a crash :meth:`SlabAllocator.rebuild` reconstructs
the exact allocation state from the index — the same derive-from-index
design memcached-style stores use on restart. The payoff is the paper's
theme: *allocation and free cost zero NVM writes and zero flushes*;
only the value payload itself is persisted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.nvm.backend import MemoryBackend
from repro.nvm.memory import CACHELINE


class SlabFullError(MemoryError):
    """No chunk available in the required size class."""


@dataclass
class _SizeClass:
    chunk_size: int
    base: int
    n_chunks: int
    bump: int
    free: list[int]

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.chunk_size * self.n_chunks

    @property
    def allocated(self) -> int:
        return self.bump - len(self.free)


class SlabAllocator:
    """Slab allocation over any :class:`~repro.nvm.backend.MemoryBackend`."""

    def __init__(
        self,
        region: MemoryBackend,
        *,
        min_chunk: int = 32,
        max_chunk: int = 4096,
        bytes_per_class: int = 256 * 1024,
    ) -> None:
        if min_chunk & (min_chunk - 1) or max_chunk & (max_chunk - 1):
            raise ValueError("chunk bounds must be powers of two")
        if min_chunk > max_chunk:
            raise ValueError("min_chunk must not exceed max_chunk")
        self.region = region
        self._classes: list[_SizeClass] = []
        size = min_chunk
        while size <= max_chunk:
            n_chunks = max(1, bytes_per_class // size)
            base = region.alloc(
                n_chunks * size, align=CACHELINE, label=f"slab.{size}"
            )
            self._classes.append(
                _SizeClass(
                    chunk_size=size, base=base, n_chunks=n_chunks, bump=0, free=[]
                )
            )
            size *= 2
        self.min_chunk = min_chunk
        self.max_chunk = max_chunk

    # ------------------------------------------------------------------

    def class_for(self, size: int) -> int:
        """Chunk size (class) used for a payload of ``size`` bytes."""
        if size <= 0:
            raise ValueError("size must be positive")
        if size > self.max_chunk:
            raise SlabFullError(
                f"payload of {size} bytes exceeds the largest class "
                f"({self.max_chunk}); raise max_chunk"
            )
        chunk = self.min_chunk
        while chunk < size:
            chunk *= 2
        return chunk

    def _class(self, chunk_size: int) -> _SizeClass:
        index = (chunk_size // self.min_chunk).bit_length() - 1
        cls = self._classes[index]
        assert cls.chunk_size == chunk_size
        return cls

    def alloc(self, size: int) -> int:
        """Reserve a chunk able to hold ``size`` bytes; returns its
        address. Costs no NVM traffic (volatile bookkeeping only)."""
        cls = self._class(self.class_for(size))
        if cls.free:
            return cls.free.pop()
        if cls.bump >= cls.n_chunks:
            raise SlabFullError(
                f"size class {cls.chunk_size} exhausted ({cls.n_chunks} chunks)"
            )
        addr = cls.base + cls.bump * cls.chunk_size
        cls.bump += 1
        return addr

    def free(self, addr: int, size: int) -> None:
        """Return the chunk at ``addr`` (allocated for ``size`` bytes)."""
        cls = self._class(self.class_for(size))
        if not cls.contains(addr) or (addr - cls.base) % cls.chunk_size:
            raise ValueError(f"address {addr} is not a chunk of class {cls.chunk_size}")
        cls.free.append(addr)

    # ------------------------------------------------------------------

    def rebuild(self, live: Iterable[tuple[int, int]]) -> None:
        """Reconstruct bookkeeping from the index's live ``(addr, size)``
        locators (post-crash recovery). Leaked chunks — allocated by an
        interrupted put but never published — become free again."""
        for cls in self._classes:
            cls.bump = 0
            cls.free = []
        per_class: dict[int, set[int]] = {
            cls.chunk_size: set() for cls in self._classes
        }
        for addr, size in live:
            cls = self._class(self.class_for(size))
            index = (addr - cls.base) // cls.chunk_size
            per_class[cls.chunk_size].add(index)
        for cls in self._classes:
            used = per_class[cls.chunk_size]
            cls.bump = max(used) + 1 if used else 0
            cls.free = [
                cls.base + i * cls.chunk_size
                for i in range(cls.bump)
                if i not in used
            ]

    # ------------------------------------------------------------------

    def utilization(self) -> dict[int, float]:
        """allocated/total per size class."""
        return {
            cls.chunk_size: cls.allocated / cls.n_chunks for cls in self._classes
        }

    def allocated_chunks(self) -> int:
        """Total live chunks across all classes."""
        return sum(cls.allocated for cls in self._classes)
