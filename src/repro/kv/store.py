"""KVStore: arbitrary keys and variable-length values, committed by
group hashing's 8-byte-atomic bitmap.

Layout of one stored record in a slab chunk::

    +-----------+-------------------+---------------------------+
    | key_len u16 |     key bytes     |        value bytes        |
    +-----------+-------------------+---------------------------+

The index is a :class:`~repro.core.GroupHashTable` whose cell key is the
16-byte MD5 digest of the user key (so user keys can be any length) and
whose cell value is an 8-byte *locator* packing (chunk address, record
length). A ``put`` is therefore:

1. allocate a chunk (volatile bookkeeping, no NVM cost);
2. write the record, ``persist`` it;
3. publish with one index insert — group hashing's commit makes the
   record reachable atomically.

A crash before step 3 leaks an unreachable chunk, which
:meth:`KVStore.recover` reclaims by rebuilding the allocator from the
recovered index. Overwrites are delete-then-insert: a crash inside the
window can lose the key entirely (documented non-atomic overwrite — the
paper's scheme has no value update either) but can never expose a torn
value, because records are immutable once published.
"""

from __future__ import annotations

import hashlib

from repro.core import DirectoryTable, GroupHashTable, SplitError
from repro.kv.slab import SlabAllocator
from repro.nvm.backend import MemoryBackend
from repro.tables.cell import ItemSpec

_DIGEST_SIZE = 16
#: locator packing: 40-bit chunk address | 24-bit record length
_ADDR_BITS = 40
_LEN_MASK = (1 << (64 - _ADDR_BITS)) - 1


def _pack_locator(addr: int, length: int) -> bytes:
    if addr >= 1 << _ADDR_BITS:
        raise ValueError("region too large for 40-bit locators")
    if length > _LEN_MASK:
        raise ValueError("record too long for 24-bit locator length")
    return ((addr << (64 - _ADDR_BITS)) | length).to_bytes(8, "little")


def _unpack_locator(raw: bytes) -> tuple[int, int]:
    word = int.from_bytes(raw, "little")
    return word >> (64 - _ADDR_BITS), word & _LEN_MASK


class KVStore:
    """Crash-consistent variable-size KV store on simulated NVM."""

    def __init__(
        self,
        region: MemoryBackend,
        *,
        n_index_cells: int = 1 << 12,
        group_size: int = 128,
        max_key: int = 512,
        max_value: int = 4096,
        slab_bytes_per_class: int = 256 * 1024,
        seed: int = 0x5EED,
        growable: bool = False,
        segment_cells: int = 512,
    ) -> None:
        self.region = region
        spec = ItemSpec(key_size=_DIGEST_SIZE, value_size=8)
        if growable:
            # directory of group-hash segments: a full index splits one
            # segment instead of failing the put — size the region with
            # headroom, since splits allocate new segments from it. The
            # per-segment group size is auto-derived (the monolithic
            # default need not divide a segment's level).
            self.index = DirectoryTable(
                region,
                n_index_cells,
                spec,
                segment_cells=segment_cells,
                seed=seed,
            )
        else:
            self.index = GroupHashTable(
                region,
                n_index_cells,
                spec,
                group_size=group_size,
                seed=seed,
            )
        # The largest slab class must hold a full record (length prefix +
        # max key + max value), so the key bound is part of the sizing —
        # not an afterthought of whatever headroom the value bound left.
        max_record = 2 + max_key + max_value
        self.slab = SlabAllocator(
            region,
            max_chunk=max(64, 1 << (max_record - 1).bit_length()),
            bytes_per_class=slab_bytes_per_class,
        )
        self.max_key = max_key
        self.max_value = max_value

    @staticmethod
    def _digest(key: bytes) -> bytes:
        return hashlib.md5(key).digest()

    # ------------------------------------------------------------------

    def _read_record(self, addr: int, length: int) -> tuple[bytes, bytes]:
        raw = self.region.read(addr, length)
        key_len = int.from_bytes(raw[:2], "little")
        return raw[2 : 2 + key_len], raw[2 + key_len :]

    def _locate(self, key: bytes) -> tuple[bytes, int, int] | None:
        """(digest, addr, length) for a present key, else None."""
        digest = self._digest(key)
        raw = self.index.query(digest)
        if raw is None:
            return None
        addr, length = _unpack_locator(raw)
        stored_key, _ = self._read_record(addr, length)
        if stored_key != key:  # 2^-128 digest collision: treat as absent
            return None
        return digest, addr, length

    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> bool:
        """Insert or overwrite; returns False when the index is full."""
        if not key:
            raise ValueError("key must be non-empty")
        if len(key) > self.max_key:
            raise ValueError(
                f"key of {len(key)} bytes exceeds max_key={self.max_key}"
            )
        if len(value) > self.max_value:
            raise ValueError(f"value exceeds max_value={self.max_value}")
        digest = self._digest(key)
        record = len(key).to_bytes(2, "little") + key + value
        addr = self.slab.alloc(len(record))
        self.region.write(addr, record)
        self.region.persist(addr, len(record))

        old = self._locate(key)
        if old is not None:
            _, old_addr, old_length = old
            self.index.delete(digest)
        try:
            published = self.index.insert(digest, _pack_locator(addr, len(record)))
        except SplitError:
            # a growable index that cannot split any further is full —
            # same observable outcome as a False insert, so the same undo
            published = False
        if not published:
            # Undo so a failed put leaves the store observably unchanged:
            # release the new chunk and, on an overwrite, restore the old
            # locator — that re-insert succeeds by construction because
            # the delete above just vacated a cell this digest hashes to.
            self.slab.free(addr, len(record))
            if old is not None:
                restored = self.index.insert(
                    digest, _pack_locator(old_addr, old_length)
                )
                if not restored:
                    raise RuntimeError(
                        "re-insert into the vacated index cell failed; "
                        f"key {key!r} dropped from the index"
                    )
            return False
        if old is not None:
            # free the superseded record only after the new one is
            # published; a crash earlier merely leaks it until recover()
            self.slab.free(old_addr, old_length)
        return True

    def get(self, key: bytes) -> bytes | None:
        """Return the value for ``key``, or None."""
        found = self._locate(key)
        if found is None:
            return None
        _, addr, length = found
        _, value = self._read_record(addr, length)
        return value

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it was present."""
        found = self._locate(key)
        if found is None:
            return False
        digest, addr, length = found
        self.index.delete(digest)
        self.slab.free(addr, length)
        return True

    # ------------------------------------------------------------------
    # batch operations (DESIGN.md decision 13)

    def _validate(self, key: bytes, value: bytes) -> None:
        """The same bounds checks :meth:`put` applies, factored out so a
        batch rejects bad items before it allocates anything."""
        if not key:
            raise ValueError("key must be non-empty")
        if len(key) > self.max_key:
            raise ValueError(
                f"key of {len(key)} bytes exceeds max_key={self.max_key}"
            )
        if len(value) > self.max_value:
            raise ValueError(f"value exceeds max_value={self.max_value}")

    def put_many(self, items: list[tuple[bytes, bytes]]) -> list[bool]:
        """Batched put; one bool per item.

        The fast path applies when every key is fresh (no overwrite, no
        duplicate digest within the batch): all records are written,
        each touched cacheline flushed once, one fence, then the index
        publishes all locators with one coalesced
        ``put_many`` — record persistence is fenced *before* any
        locator publishes, the same order the scalar path guarantees
        per item. Overwrites or intra-batch duplicates fall back to a
        scalar :meth:`put` loop (the delete-then-insert overwrite
        window does not coalesce). When every put succeeds the final
        persistent state is byte-identical to the scalar loop; a failed
        index insert frees its chunk, after which the volatile slab may
        hand later allocations different (equally valid) addresses than
        the loop would."""
        for key, value in items:
            self._validate(key, value)
        digests = [self._digest(key) for key, _ in items]
        if hasattr(self.index, "get_many"):
            present = self.index.get_many(digests)
        else:
            present = [self.index.query(d) for d in digests]
        if len(set(digests)) != len(digests) or any(
            raw is not None for raw in present
        ):
            return [self.put(key, value) for key, value in items]
        region = self.region
        line = region.line_size
        chunks: list[tuple[int, int]] = []
        lines: set[int] = set()
        for key, value in items:
            record = len(key).to_bytes(2, "little") + key + value
            addr = self.slab.alloc(len(record))
            region.write(addr, record)
            chunks.append((addr, len(record)))
            lines.update(range(addr // line, (addr + len(record) - 1) // line + 1))
        for ln in sorted(lines):
            region.clflush(ln * line)
        region.mfence()
        pairs = [
            (digest, _pack_locator(addr, length))
            for digest, (addr, length) in zip(digests, chunks)
        ]
        try:
            results = self.index.put_many(pairs)
        except SplitError:
            # A growable index ran out of region mid-batch. Locators the
            # index published before the failed split stay published
            # (their records were persisted before the fence above); the
            # remaining items report False and return their chunks, so
            # the failure is confined to the unpublished suffix instead
            # of poisoning the whole batch. Digests are fresh and unique
            # on this path, so presence in the index is exactly
            # "published by this batch".
            if hasattr(self.index, "get_many"):
                landed = self.index.get_many(digests)
            else:
                landed = [self.index.query(d) for d in digests]
            results = [raw is not None for raw in landed]
        for (addr, length), ok in zip(chunks, results):
            if not ok:
                self.slab.free(addr, length)
        return results

    def get_many(self, keys: list[bytes]) -> list[bytes | None]:
        """Batched get: one coalesced index lookup for the whole batch,
        then one record read per hit; results in input order."""
        digests = [self._digest(key) for key in keys]
        if hasattr(self.index, "get_many"):
            locators = self.index.get_many(digests)
        else:
            locators = [self.index.query(d) for d in digests]
        out: list[bytes | None] = []
        for key, raw in zip(keys, locators):
            if raw is None:
                out.append(None)
                continue
            addr, length = _unpack_locator(raw)
            stored_key, value = self._read_record(addr, length)
            out.append(value if stored_key == key else None)
        return out

    def delete_many(self, keys: list[bytes]) -> list[bool]:
        """Batched delete: batch index lookup, per-record key check
        (digest collisions treated as absent, as in :meth:`delete`),
        then one coalesced index ``delete_many`` before the freed
        chunks return to the slab. Duplicate keys in one batch: first
        occurrence wins, exactly like the scalar loop."""
        digests = [self._digest(key) for key in keys]
        if hasattr(self.index, "get_many"):
            locators = self.index.get_many(digests)
        else:
            locators = [self.index.query(d) for d in digests]
        candidates: list[tuple[int, bytes, int, int]] = []
        for i, (key, raw) in enumerate(zip(keys, locators)):
            if raw is None:
                continue
            addr, length = _unpack_locator(raw)
            stored_key, _ = self._read_record(addr, length)
            if stored_key == key:
                candidates.append((i, digests[i], addr, length))
        if hasattr(self.index, "delete_many"):
            deleted = self.index.delete_many([c[1] for c in candidates])
        else:
            deleted = [self.index.delete(c[1]) for c in candidates]
        results = [False] * len(keys)
        for (i, _, addr, length), ok in zip(candidates, deleted):
            results[i] = ok
            if ok:
                self.slab.free(addr, length)
        return results

    def __contains__(self, key: bytes) -> bool:
        return self._locate(key) is not None

    def __len__(self) -> int:
        return self.index.count

    # ------------------------------------------------------------------

    def items(self):
        """Yield all (key, value) pairs (cost-free inventory)."""
        for _, raw in self.index.items():
            addr, length = _unpack_locator(raw)
            data = self.region.peek_volatile(addr, length)
            key_len = int.from_bytes(data[:2], "little")
            yield data[2 : 2 + key_len], data[2 + key_len :]

    def recover(self) -> None:
        """Post-crash recovery: repair the index (Algorithm 4), then
        rebuild the slab allocator from the surviving locators."""
        self.index.reattach()
        self.index.recover()
        live = []
        for _, raw in self.index.items():
            addr, length = _unpack_locator(raw)
            live.append((addr, length))
        self.slab.rebuild(live)
