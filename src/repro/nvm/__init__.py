"""Simulated non-volatile memory substrate.

This package is the reproduction's answer to the hardware gate: Python
cannot issue ``clflush``/``mfence`` or observe cacheline residency, so we
simulate the part of the machine the paper's evaluation depends on:

- :class:`~repro.nvm.memory.NVMRegion` — a byte-addressable region with a
  *persistent image* (what survives a crash) and a *volatile view* (what
  the program reads), mediated by a CPU cache simulator.
- :class:`~repro.nvm.cache.CacheSim` — a set-associative, LRU, 64-byte-line
  cache with x86 ``clflush`` invalidation semantics and full hit/miss
  accounting (the paper's PAPI L3-miss counters).
- :class:`~repro.nvm.latency.LatencyModel` — a discrete event-cost model
  (Table 1 technology presets; the paper's +300 ns post-flush NVM write
  penalty). All latencies reported by this package are **simulated
  nanoseconds**, never wall-clock.
- :mod:`~repro.nvm.crash` — crash schedules that persist an arbitrary
  subset of unflushed 8-byte words, strictly more adversarial than real
  store reordering.
- :mod:`~repro.nvm.backend` — the :class:`~repro.nvm.backend.MemoryBackend`
  protocol every table is written against, with three implementations:
  :class:`~repro.nvm.backend.SimBackend` (this simulator),
  :class:`~repro.nvm.backend.RawBackend` (simulation-free fast path) and
  :class:`~repro.nvm.backend.ShardedBackend` (N independent shards).
"""

from repro.nvm.backend import (
    MemoryBackend,
    RawBackend,
    ShardedBackend,
    SimBackend,
)
from repro.nvm.cache import CacheConfig, CacheSim
from repro.nvm.crash import (
    CrashSchedule,
    drop_all_schedule,
    persist_all_schedule,
    random_schedule,
)
from repro.nvm.crashpoint import (
    CampaignResult,
    CrashHarness,
    Op,
    PersistEvent,
    Violation,
    WordSubsetSchedule,
    run_campaign,
)
from repro.nvm.latency import (
    DRAM,
    PCM,
    RERAM,
    STT_MRAM,
    LatencyModel,
    PAPER_NVM,
    TECHNOLOGY_PRESETS,
)
from repro.nvm.memory import (
    CACHELINE,
    CrashReport,
    NVMRegion,
    SimConfig,
    SimulatedPowerFailure,
)
from repro.nvm.stats import MemStats
from repro.nvm.wear import WearMap, WearReport
from repro.nvm.wearlevel import StartGapMapper, WearLevelledRegion

__all__ = [
    "CACHELINE",
    "CacheConfig",
    "CacheSim",
    "CampaignResult",
    "CrashHarness",
    "CrashReport",
    "CrashSchedule",
    "Op",
    "PersistEvent",
    "Violation",
    "WordSubsetSchedule",
    "run_campaign",
    "SimulatedPowerFailure",
    "DRAM",
    "LatencyModel",
    "MemStats",
    "MemoryBackend",
    "NVMRegion",
    "RawBackend",
    "ShardedBackend",
    "SimBackend",
    "PAPER_NVM",
    "PCM",
    "RERAM",
    "STT_MRAM",
    "SimConfig",
    "StartGapMapper",
    "TECHNOLOGY_PRESETS",
    "WearLevelledRegion",
    "WearMap",
    "WearReport",
    "drop_all_schedule",
    "persist_all_schedule",
    "random_schedule",
]
