"""Pluggable memory backends behind one protocol.

Every hash table in this repository is written against
:class:`MemoryBackend` — the read/write/persist/fence/alloc/crash/stats
surface that :class:`~repro.nvm.memory.NVMRegion` pioneered — rather
than against the concrete simulator class. Three implementations ship:

- :class:`SimBackend` — the full cacheline/latency simulator
  (:class:`~repro.nvm.memory.NVMRegion` itself, re-exported unchanged).
  Every figure benchmark runs on it; simulated-ns latencies and miss
  counts are bit-for-bit those of the pre-protocol code.
- :class:`RawBackend` — a plain dual-image bytearray store with **no
  cache simulation and no latency model**. Same data semantics (volatile
  view vs persistent image, 8-byte-word crash granularity, dirty-line
  tracking at flush granularity), but each access is a couple of slice
  operations, which makes correctness suites and production-style KV
  workloads several times faster. Latency/miss counters stay zero.
- :class:`ShardedBackend` — a container of N independent per-shard
  backends with aggregated statistics and per-shard crash injection.
  It is deliberately *not* one flat address space: shard independence
  (crash one, keep serving the rest) is the property the routing layer
  :class:`~repro.core.sharded.ShardedTable` builds on.

Because both concrete single-region backends follow the same program-
order event semantics (stores dirty data, ``clflush`` persists it,
crash schedules decide the fate of unflushed 8-byte words), a table
driven identically on a :class:`SimBackend` and a :class:`RawBackend`
reaches identical persistent states — the parity property pinned by
``tests/test_backends.py``.
"""

from __future__ import annotations

import os
from typing import Callable, Protocol, runtime_checkable

try:  # optional acceleration; REPRO_NO_NUMPY=1 disables it explicitly
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

from repro.nvm.crash import CrashSchedule, drop_all_schedule
from repro.nvm.memory import (
    ATOMIC_UNIT,
    CACHELINE,
    Allocation,
    CrashReport,
    NVMRegion,
    SimulatedPowerFailure,
    _U64,
)
from repro.nvm.stats import MemStats


@runtime_checkable
class MemoryBackend(Protocol):
    """Structural type of a persistent-memory substrate.

    Anything that provides this surface can host every table, the undo
    log, the KV store, and the benchmark runner. The contract mirrors
    x86 + NVDIMM semantics: stores land in a volatile view, ``clflush``
    moves whole lines to the persistent image, ``mfence`` orders, and a
    :meth:`crash` consults a :class:`~repro.nvm.crash.CrashSchedule` at
    8-byte-word granularity for everything still unflushed.
    """

    # -- identity ------------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable region name (used in error messages)."""
        ...

    @property
    def size(self) -> int:
        """Backend capacity in bytes."""
        ...

    @property
    def line_size(self) -> int:
        """Flush granularity in bytes (the cacheline)."""
        ...

    @property
    def stats(self) -> MemStats:
        """Event counters; simulation-free backends keep latency and
        cache counters at zero but still count program-issued events."""
        ...

    # -- allocation ----------------------------------------------------

    def alloc(self, nbytes: int, *, align: int = ATOMIC_UNIT, label: str = "") -> int:
        """Bump-allocate ``nbytes`` with the given alignment; returns the
        byte address of the extent."""
        ...

    @property
    def bytes_allocated(self) -> int:
        """High-water mark of the bump allocator."""
        ...

    @property
    def abandoned_bytes(self) -> int:
        """Bytes allocated but no longer reachable from any live
        structure (the bump allocator never reuses space, so growth
        machinery reports its garbage here instead of leaking silently)."""
        ...

    def mark_abandoned(self, nbytes: int) -> None:
        """Record ``nbytes`` of allocated space as permanently
        unreachable."""
        ...

    # -- data path -----------------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        """Load ``size`` bytes from the volatile view."""
        ...

    def write(self, addr: int, data: bytes) -> None:
        """Store ``data``; durable only after a flush (or crash luck)."""
        ...

    def read_u64(self, addr: int) -> int:
        """Load an 8-byte little-endian unsigned integer."""
        ...

    def write_u64(self, addr: int, value: int) -> None:
        """Store an 8-byte little-endian unsigned integer."""
        ...

    def write_atomic_u64(self, addr: int, value: int) -> None:
        """The paper's failure-atomic 8-byte store (asserts alignment)."""
        ...

    # -- bulk probes ---------------------------------------------------

    def scan_clear_u64(
        self, addr: int, stride: int, count: int, mask: int = 1
    ) -> int | None:
        """Index of the first of ``count`` header words (at ``addr``,
        ``addr+stride``, ...) with ``(word & mask) == 0``, or None.

        Event semantics are *defined* as one :meth:`read_u64` per probed
        word, stopping at the first clear one — backends may accelerate
        the loop but must report the identical access sequence."""
        ...

    def scan_match(
        self,
        addr: int,
        stride: int,
        count: int,
        key: bytes,
        *,
        mask: int = 1,
        key_offset: int = 8,
    ) -> int | None:
        """Index of the first of ``count`` cells whose header *byte 0*
        has a ``mask`` bit set and whose bytes at ``key_offset`` equal
        ``key``, or None.

        Event semantics are one ``read(cell, key_offset + len(key))``
        per probed cell (header and key travel in one load), stopping at
        the match — the contiguous-probe read pattern of the paper's
        level-2 scan. ``mask`` must fit in the header's low byte."""
        ...

    def scan_occupied_bitmap(
        self, addr: int, stride: int, count: int, mask: int = 1
    ) -> int:
        """Bitmap of the ``mask`` bit over ``count`` strided header
        words (bit ``i`` set iff ``word(addr + i*stride) & mask``).

        Event semantics: one :meth:`read_u64` per word, full scan (no
        early exit) — the group-filter batch planners use to learn a
        whole level-2 group's occupancy in one call."""
        ...

    def scan_occupied_at(self, addrs, mask: int = 1) -> int:
        """Gather variant of :meth:`scan_occupied_bitmap` over explicit
        addresses; one :meth:`read_u64` per address, full scan."""
        ...

    def scan_match_many(
        self,
        addr: int,
        stride: int,
        count: int,
        keys,
        *,
        mask: int = 1,
        key_offset: int = 8,
    ) -> list[int | None]:
        """Multi-key :meth:`scan_match` over one strided window.

        Event semantics: the concatenation of the per-key
        :meth:`scan_match` sequences, in key order."""
        ...

    def scan_probe(
        self,
        addr: int,
        stride: int,
        count: int,
        key: bytes,
        *,
        mask: int = 1,
        key_offset: int = 8,
    ) -> tuple[int, bool] | None:
        """First strided cell that is empty or stores ``key``:
        ``(index, matched)``, or None — the linear-probing lookup.

        Event semantics: one ``read`` of header+key per probed cell,
        stopping at the empty-or-match cell."""
        ...

    def scan_clear_at(self, addrs, mask: int = 1) -> int | None:
        """Gather variant of :meth:`scan_clear_u64`; one
        :meth:`read_u64` per probed address, stopping at the first
        clear word."""
        ...

    def scan_match_at(
        self, addrs, key: bytes, *, mask: int = 1, key_offset: int = 8
    ) -> int | None:
        """Gather variant of :meth:`scan_match`; one ``read`` of
        header+key per probed address, stopping at the match."""
        ...

    def scan_match_pairs(
        self, pairs, *, mask: int = 1, key_offset: int = 8
    ) -> list[bool]:
        """Independent occupied-and-stores-key tests over ``(addr,
        key)`` pairs; one ``read`` of header+key per pair, full scan —
        the batched level-1 home-cell probe."""
        ...

    # -- persistence primitives ----------------------------------------

    def clflush(self, addr: int) -> None:
        """Flush the line containing ``addr`` to the persistent image."""
        ...

    def flush_range(self, addr: int, size: int) -> None:
        """``clflush`` every line overlapping ``[addr, addr+size)``."""
        ...

    def mfence(self) -> None:
        """Order stores (and charge the fence cost, where modelled)."""
        ...

    def persist(self, addr: int, size: int = 8) -> None:
        """The paper's ``Persist``: flush the range, then fence."""
        ...

    # -- crash/recovery ------------------------------------------------

    def arm_crash(self, after_events: int) -> None:
        """Arm a power failure ``after_events`` persistence-relevant
        events (store/flush/fence) from now."""
        ...

    def disarm_crash(self) -> None:
        """Cancel a pending armed crash."""
        ...

    def crash(self, schedule: CrashSchedule | None = None) -> CrashReport:
        """Simulate a power failure; the schedule picks which unflushed
        8-byte words survive. Afterwards the volatile view equals the
        persistent image."""
        ...

    # -- introspection (cost-free) -------------------------------------

    def peek_persistent(self, addr: int, size: int) -> bytes:
        """Read the persistent image directly (no cost charged)."""
        ...

    def peek_volatile(self, addr: int, size: int) -> bytes:
        """Read the volatile view directly (no cost charged)."""
        ...

    def unpersisted_ranges(self) -> list[tuple[int, int]]:
        """``(addr, size)`` extents where volatile and persistent images
        differ — data at risk in a crash right now."""
        ...


#: The simulator backend: the existing :class:`NVMRegion`, unchanged.
#: An alias (not a subclass) so event counts, latencies and isinstance
#: relationships are bit-for-bit those of the pre-protocol code.
SimBackend = NVMRegion

#: below this many probed cells the scalar loop beats the numpy setup
#: cost, so vectorized scans fall back to the byte-loop path
_NP_MIN_SCAN = 16


class RawBackend:
    """Simulation-free :class:`MemoryBackend`: the fast path.

    Keeps the same two images as the simulator — volatile view and
    persistent image — and tracks *dirty lines* (stores not yet flushed)
    in a set, but runs no cache model and charges no latency. Program-
    order event semantics are identical to :class:`SimBackend`: the same
    operation sequence leaves the same dirty words at any crash point,
    which is what makes backend parity testable.

    Intended for correctness suites (crash semantics intact, ~an order
    of magnitude faster) and throughput-oriented KV serving where
    simulated nanoseconds are irrelevant.
    """

    def __init__(
        self, size: int, *, name: str = "raw", line_size: int = CACHELINE
    ) -> None:
        if size <= 0:
            raise ValueError("region size must be positive")
        if line_size <= 0 or line_size % ATOMIC_UNIT:
            raise ValueError("line_size must be a positive multiple of 8")
        self.name = name
        self.size = size
        self.line_size = line_size
        self._line = line_size
        self._persistent = bytearray(size)
        self._volatile = bytearray(size)
        #: line numbers holding stores not yet written back
        self._dirty: set[int] = set()
        self.stats = MemStats()
        self._alloc_cursor = 0
        self.allocations: list[Allocation] = []
        #: bytes allocated but no longer reachable (see
        #: :meth:`mark_abandoned`); volatile bookkeeping
        self.abandoned_bytes = 0
        self._crash_countdown: int | None = None
        self._hook: Callable[[str, int, int], None] | None = None
        # Hot-path gate: True only while an armed crash or an event hook
        # needs per-event bookkeeping. Keeping this a single attribute
        # lets read/write/persist skip two attribute tests per event.
        self._slow = False
        # Vectorized-scan views over the volatile image. numpy views
        # share memory with the bytearray (crash()'s in-place reset
        # keeps them valid); REPRO_NO_NUMPY=1 forces the pure-Python
        # scan paths, which produce identical results and event counts
        # (REPRO_NO_NUMPY=0 or empty keeps the accelerated paths, so CI
        # can matrix over both halves with explicit values).
        no_numpy = os.environ.get("REPRO_NO_NUMPY", "0") not in ("", "0")
        self._np = None if no_numpy else _np
        if self._np is not None:
            self._np_u8 = self._np.frombuffer(self._volatile, dtype=self._np.uint8)
            self._np_u64 = (
                self._np.frombuffer(self._volatile, dtype="<u8", count=size // 8)
                if size >= 8
                else None
            )
        else:
            self._np_u8 = self._np_u64 = None

    @property
    def event_hook(self) -> Callable[[str, int, int], None] | None:
        """Optional observer ``hook(kind, addr, size)`` — same contract
        as :attr:`NVMRegion.event_hook`."""
        return self._hook

    @event_hook.setter
    def event_hook(self, hook: Callable[[str, int, int], None] | None) -> None:
        self._hook = hook
        self._slow = hook is not None or self._crash_countdown is not None

    def _pre_event(self, kind: str, addr: int, size: int) -> None:
        """Armed-crash tick + observer call, in the simulator's order."""
        if self._crash_countdown is not None:
            self._crash_tick()
        hook = self._hook
        if hook is not None:
            hook(kind, addr, size)

    # ------------------------------------------------------------------
    # allocation

    def alloc(self, nbytes: int, *, align: int = ATOMIC_UNIT, label: str = "") -> int:
        """Bump-allocate ``nbytes`` (same policy as the simulator)."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if align <= 0 or align & (align - 1):
            raise ValueError(f"alignment must be a power of two, got {align}")
        addr = (self._alloc_cursor + align - 1) & ~(align - 1)
        if addr + nbytes > self.size:
            raise MemoryError(
                f"region '{self.name}' exhausted: need {nbytes} bytes at "
                f"{addr}, size {self.size}"
            )
        self._alloc_cursor = addr + nbytes
        self.allocations.append(
            Allocation(label or f"alloc{len(self.allocations)}", addr, nbytes)
        )
        return addr

    @property
    def bytes_allocated(self) -> int:
        """High-water mark of the bump allocator."""
        return self._alloc_cursor

    def mark_abandoned(self, nbytes: int) -> None:
        """Record ``nbytes`` of allocated space as permanently
        unreachable (same accounting as the simulator)."""
        if nbytes < 0:
            raise ValueError("abandoned byte count must be non-negative")
        self.abandoned_bytes += nbytes

    # ------------------------------------------------------------------
    # crash arming (same countdown semantics as the simulator)

    def arm_crash(self, after_events: int) -> None:
        """Arm a power failure ``after_events`` store/flush/fence events
        from now (identical countdown semantics to the simulator)."""
        if after_events <= 0:
            raise ValueError("after_events must be positive")
        self._crash_countdown = after_events
        self._slow = True

    def disarm_crash(self) -> None:
        """Cancel a pending armed crash."""
        self._crash_countdown = None
        self._slow = self._hook is not None

    def _crash_tick(self) -> None:
        countdown = self._crash_countdown
        if countdown is None:
            return
        countdown -= 1
        if countdown <= 0:
            self._crash_countdown = None
            self._slow = self._hook is not None
            raise SimulatedPowerFailure("armed crash point reached")
        self._crash_countdown = countdown

    def _check_range(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.size:
            raise IndexError(
                f"access [{addr}, {addr + size}) outside region of size {self.size}"
            )

    # ------------------------------------------------------------------
    # data path

    def read(self, addr: int, size: int) -> bytes:
        """Load ``size`` bytes from the volatile view."""
        if addr < 0 or size < 0 or addr + size > self.size:
            self._check_range(addr, size)
        stats = self.stats
        stats.reads += 1
        stats.bytes_read += size
        return bytes(self._volatile[addr : addr + size])

    def write(self, addr: int, data: bytes) -> None:
        """Store ``data`` (dirty until flushed)."""
        size = len(data)
        if addr < 0 or addr + size > self.size:
            self._check_range(addr, size)
        if self._slow:
            self._pre_event("write", addr, size)
        line = self._line
        first = addr // line
        last = (addr + size - 1) // line
        if first == last:
            self._dirty.add(first)
        else:
            self._dirty.update(range(first, last + 1))
        stats = self.stats
        stats.writes += 1
        stats.bytes_written += size
        self._volatile[addr : addr + size] = data

    def read_u64(self, addr: int) -> int:
        """Load an 8-byte little-endian unsigned integer."""
        if addr < 0 or addr + 8 > self.size:
            self._check_range(addr, 8)
        stats = self.stats
        stats.reads += 1
        stats.bytes_read += 8
        return _U64.unpack_from(self._volatile, addr)[0]

    def write_u64(self, addr: int, value: int) -> None:
        """Store an 8-byte little-endian unsigned integer."""
        if addr < 0 or addr + 8 > self.size:
            self._check_range(addr, 8)
        if self._slow:
            self._pre_event("write", addr, 8)
        line = self._line
        first = addr // line
        dirty = self._dirty
        dirty.add(first)
        if (addr + 7) // line != first:
            dirty.add(first + 1)
        stats = self.stats
        stats.writes += 1
        stats.bytes_written += 8
        _U64.pack_into(self._volatile, addr, value)

    def write_atomic_u64(self, addr: int, value: int) -> None:
        """Failure-atomic 8-byte store; asserts natural alignment."""
        if addr % ATOMIC_UNIT:
            raise ValueError(
                f"atomic write requires {ATOMIC_UNIT}-byte alignment, got addr {addr}"
            )
        self.write_u64(addr, value)

    # ------------------------------------------------------------------
    # bulk probes

    def _np_strided_headers(self, addr: int, stride: int, count: int):
        """Strided u64 view of ``count`` header words, or None when the
        geometry does not allow a u64 view (misaligned or odd stride)."""
        if self._np_u64 is None or addr % 8 or stride % 8:
            return None
        step = stride // 8
        word = addr // 8
        return self._np_u64[word : word + (count - 1) * step + 1 : step]

    def scan_clear_u64(
        self, addr: int, stride: int, count: int, mask: int = 1
    ) -> int | None:
        """First of ``count`` strided header words with no ``mask`` bit.

        Accelerated over the volatile image — one vectorized filter when
        numpy is available and the scan is long enough to amortize the
        setup, a local byte loop otherwise; either way it reports the
        identical per-word read events the reference loop would."""
        if count <= 0:
            return None
        if addr < 0 or stride < 8 or addr + (count - 1) * stride + 8 > self.size:
            raise IndexError(
                f"scan [{addr}, +{stride}*{count}] outside region of size {self.size}"
            )
        found = None
        probed = count
        if self._np is not None and count >= _NP_MIN_SCAN:
            headers = self._np_strided_headers(addr, stride, count)
            if headers is not None:
                hits = self._np.flatnonzero((headers & mask) == 0)
                if hits.size:
                    found = int(hits[0])
                    probed = found + 1
                stats = self.stats
                stats.reads += probed
                stats.bytes_read += 8 * probed
                return found
        volatile = self._volatile
        unpack = _U64.unpack_from
        for i in range(count):
            if not unpack(volatile, addr)[0] & mask:
                found, probed = i, i + 1
                break
            addr += stride
        stats = self.stats
        stats.reads += probed
        stats.bytes_read += 8 * probed
        return found

    def scan_match(
        self,
        addr: int,
        stride: int,
        count: int,
        key: bytes,
        *,
        mask: int = 1,
        key_offset: int = 8,
    ) -> int | None:
        """First of ``count`` strided cells that is occupied (header byte
        0 & ``mask``) and stores ``key`` at ``key_offset``.

        Accelerated: the header byte is tested as a plain ``bytearray``
        index and the key sliced only for occupied cells; read events
        are counted exactly as the reference per-cell loop would."""
        if count <= 0:
            return None
        size = key_offset + len(key)
        if addr < 0 or stride < 8 or addr + (count - 1) * stride + size > self.size:
            raise IndexError(
                f"scan [{addr}, +{stride}*{count}] outside region of size {self.size}"
            )
        found = None
        probed = count
        if self._np is not None and count >= _NP_MIN_SCAN:
            match = self._np_match_vector(
                addr, stride, count, key, mask=mask, key_offset=key_offset
            )
            if match is not None:
                hits = self._np.flatnonzero(match)
                if hits.size:
                    found = int(hits[0])
                    probed = found + 1
                stats = self.stats
                stats.reads += probed
                stats.bytes_read += size * probed
                return found
        volatile = self._volatile
        for i in range(count):
            if volatile[addr] & mask and (
                volatile[addr + key_offset : addr + size] == key
            ):
                found, probed = i, i + 1
                break
            addr += stride
        stats = self.stats
        stats.reads += probed
        stats.bytes_read += size * probed
        return found

    def _np_match_vector(
        self,
        addr: int,
        stride: int,
        count: int,
        key: bytes,
        *,
        mask: int,
        key_offset: int,
    ):
        """Vectorized occupied-and-stores-key boolean vector over a
        strided window, or None when the geometry defeats both the u64
        fast path and the generic 2D view (``mask`` beyond the low
        byte). The common cell layout (8-byte header, 8-byte key,
        8-aligned stride) compares whole key words in one pass."""
        np = self._np
        if mask >= 256:
            return None
        if len(key) == 8 and key_offset == 8 and not (addr % 8 or stride % 8):
            step = stride // 8
            word = addr // 8
            stop = word + (count - 1) * step + 1
            u64 = self._np_u64
            headers = u64[word:stop:step]
            keys = u64[word + 1 : stop + 1 : step]
            return ((headers & mask) != 0) & (keys == int.from_bytes(key, "little"))
        size = key_offset + len(key)
        window = self._np_u8[addr : addr + (count - 1) * stride + size]
        rows = np.lib.stride_tricks.as_strided(
            window, shape=(count, size), strides=(stride, 1)
        )
        occupied = (rows[:, 0] & mask) != 0
        wanted = np.frombuffer(key, dtype=np.uint8)
        return occupied & (rows[:, key_offset:] == wanted).all(axis=1)

    def scan_occupied_bitmap(
        self, addr: int, stride: int, count: int, mask: int = 1
    ) -> int:
        """Bitmap of the ``mask`` bit over ``count`` strided header
        words; full scan, one read event per word (see the reference
        implementation on :class:`SimBackend`)."""
        if count <= 0:
            return 0
        if addr < 0 or stride < 8 or addr + (count - 1) * stride + 8 > self.size:
            raise IndexError(
                f"scan [{addr}, +{stride}*{count}] outside region of size {self.size}"
            )
        stats = self.stats
        stats.reads += count
        stats.bytes_read += 8 * count
        np = self._np
        if np is not None and count >= _NP_MIN_SCAN and mask < 256:
            bits = (
                self._np_u8[addr : addr + (count - 1) * stride + 1 : stride] & mask
            ) != 0
            return int.from_bytes(
                np.packbits(bits, bitorder="little").tobytes(), "little"
            )
        volatile = self._volatile
        bitmap = 0
        if mask < 256:
            for i in range(count):
                if volatile[addr] & mask:
                    bitmap |= 1 << i
                addr += stride
            return bitmap
        unpack = _U64.unpack_from
        for i in range(count):
            if unpack(volatile, addr)[0] & mask:
                bitmap |= 1 << i
            addr += stride
        return bitmap

    def scan_occupied_at(self, addrs, mask: int = 1) -> int:
        """Gather occupancy bitmap over explicit header addresses; full
        scan, one read event per address."""
        n = len(addrs)
        if n == 0:
            return 0
        stats = self.stats
        stats.reads += n
        stats.bytes_read += 8 * n
        np = self._np
        if np is not None and n >= _NP_MIN_SCAN and mask < 256:
            index = np.asarray(addrs, dtype=np.intp)
            bits = (self._np_u8[index] & mask) != 0
            return int.from_bytes(
                np.packbits(bits, bitorder="little").tobytes(), "little"
            )
        volatile = self._volatile
        bitmap = 0
        if mask < 256:
            for i, addr in enumerate(addrs):
                if volatile[addr] & mask:
                    bitmap |= 1 << i
            return bitmap
        unpack = _U64.unpack_from
        for i, addr in enumerate(addrs):
            if unpack(volatile, addr)[0] & mask:
                bitmap |= 1 << i
        return bitmap

    def scan_match_many(
        self,
        addr: int,
        stride: int,
        count: int,
        keys,
        *,
        mask: int = 1,
        key_offset: int = 8,
    ) -> list[int | None]:
        """Multi-key :meth:`scan_match` over one strided window; each
        key's scan is individually accelerated and events concatenate
        in key order exactly as the reference does."""
        return [
            self.scan_match(
                addr, stride, count, key, mask=mask, key_offset=key_offset
            )
            for key in keys
        ]

    def scan_probe(
        self,
        addr: int,
        stride: int,
        count: int,
        key: bytes,
        *,
        mask: int = 1,
        key_offset: int = 8,
    ) -> tuple[int, bool] | None:
        """First strided cell that is empty or stores ``key`` (the
        linear-probing lookup), with reference read accounting."""
        if count <= 0:
            return None
        size = key_offset + len(key)
        if addr < 0 or stride < 8 or addr + (count - 1) * stride + size > self.size:
            raise IndexError(
                f"scan [{addr}, +{stride}*{count}] outside region of size {self.size}"
            )
        result = None
        probed = count
        if self._np is not None and count >= _NP_MIN_SCAN and mask < 256:
            np = self._np
            empty = (
                self._np_u8[addr : addr + (count - 1) * stride + 1 : stride] & mask
            ) == 0
            match = self._np_match_vector(
                addr, stride, count, key, mask=mask, key_offset=key_offset
            )
            hits = np.flatnonzero(empty | match)
            if hits.size:
                first = int(hits[0])
                result = (first, bool(match[first]))
                probed = first + 1
            stats = self.stats
            stats.reads += probed
            stats.bytes_read += size * probed
            return result
        volatile = self._volatile
        for i in range(count):
            if not volatile[addr] & mask:
                result, probed = (i, False), i + 1
                break
            if volatile[addr + key_offset : addr + size] == key:
                result, probed = (i, True), i + 1
                break
            addr += stride
        stats = self.stats
        stats.reads += probed
        stats.bytes_read += size * probed
        return result

    def scan_clear_at(self, addrs, mask: int = 1) -> int | None:
        """First explicit header address with no ``mask`` bit (the
        path-hashing insert probe), with reference read accounting."""
        n = len(addrs)
        if n == 0:
            return None
        found = None
        probed = n
        np = self._np
        if np is not None and n >= _NP_MIN_SCAN and mask < 256:
            index = np.asarray(addrs, dtype=np.intp)
            hits = np.flatnonzero((self._np_u8[index] & mask) == 0)
            if hits.size:
                found = int(hits[0])
                probed = found + 1
        else:
            volatile = self._volatile
            unpack = _U64.unpack_from
            for i, addr in enumerate(addrs):
                if not unpack(volatile, addr)[0] & mask:
                    found, probed = i, i + 1
                    break
        stats = self.stats
        stats.reads += probed
        stats.bytes_read += 8 * probed
        return found

    def scan_match_at(
        self, addrs, key: bytes, *, mask: int = 1, key_offset: int = 8
    ) -> int | None:
        """First explicit address holding an occupied cell that stores
        ``key`` (the path-hashing lookup probe)."""
        n = len(addrs)
        if n == 0:
            return None
        size = key_offset + len(key)
        found = None
        probed = n
        np = self._np
        if (
            np is not None
            and n >= _NP_MIN_SCAN
            and mask < 256
            and len(key) == 8
            and key_offset == 8
        ):
            index = np.asarray(addrs, dtype=np.intp)
            if not (index % 8).any():
                occupied = (self._np_u8[index] & mask) != 0
                keys = self._np_u64[(index + 8) >> 3]
                hits = np.flatnonzero(
                    occupied & (keys == int.from_bytes(key, "little"))
                )
                if hits.size:
                    found = int(hits[0])
                    probed = found + 1
                stats = self.stats
                stats.reads += probed
                stats.bytes_read += size * probed
                return found
        volatile = self._volatile
        for i, addr in enumerate(addrs):
            if volatile[addr] & mask and (
                volatile[addr + key_offset : addr + size] == key
            ):
                found, probed = i, i + 1
                break
        stats = self.stats
        stats.reads += probed
        stats.bytes_read += size * probed
        return found

    def scan_match_pairs(
        self, pairs, *, mask: int = 1, key_offset: int = 8
    ) -> list[bool]:
        """Batched independent home-cell probes over ``(addr, key)``
        pairs; full scan, one read event per pair."""
        n = len(pairs)
        if n == 0:
            return []
        np = self._np
        if np is not None and n >= _NP_MIN_SCAN and mask < 256 and key_offset == 8:
            keys = [key for _, key in pairs]
            if all(len(key) == 8 for key in keys):
                index = np.asarray([addr for addr, _ in pairs], dtype=np.intp)
                if not (index % 8).any():
                    occupied = (self._np_u8[index] & mask) != 0
                    stored = self._np_u64[(index + 8) >> 3]
                    wanted = np.frombuffer(b"".join(keys), dtype="<u8")
                    out = (occupied & (stored == wanted)).tolist()
                    stats = self.stats
                    stats.reads += n
                    stats.bytes_read += sum(8 + len(k) for k in keys)
                    return out
        volatile = self._volatile
        out: list[bool] = []
        total_bytes = 0
        for addr, key in pairs:
            size = key_offset + len(key)
            total_bytes += size
            out.append(
                bool(volatile[addr] & mask)
                and volatile[addr + key_offset : addr + size] == key
            )
        stats = self.stats
        stats.reads += n
        stats.bytes_read += total_bytes
        return out

    # ------------------------------------------------------------------
    # persistence primitives

    def clflush(self, addr: int) -> None:
        """Write the line containing ``addr`` back to the persistent
        image (idempotent for clean lines)."""
        if addr < 0 or addr + 1 > self.size:
            self._check_range(addr, 1)
        if self._slow:
            self._pre_event("flush", addr, self._line)
        stats = self.stats
        stats.flushes += 1
        line_size = self._line
        line = addr // line_size
        dirty = self._dirty
        if line in dirty:
            dirty.remove(line)
            start = line * line_size
            end = start + line_size
            if end > self.size:
                end = self.size
            self._persistent[start:end] = self._volatile[start:end]
            stats.writebacks += 1
            stats.nvm_line_writes += 1
            stats.nvm_bytes_written += end - start
            stats.dirty_flushes += 1

    def flush_range(self, addr: int, size: int) -> None:
        """``clflush`` every line overlapping ``[addr, addr+size)``."""
        if size <= 0:
            return
        self._check_range(addr, size)
        line = self._line
        first = addr // line
        last = (addr + size - 1) // line
        for ln in range(first, last + 1):
            self.clflush(ln * line)

    def mfence(self) -> None:
        """Order stores (a no-op for correctness here; counts the event
        so crash countdowns stay aligned with the simulator)."""
        if self._slow:
            self._pre_event("fence", 0, 0)
        self.stats.fences += 1

    sfence = mfence

    def persist(self, addr: int, size: int = 8) -> None:
        """Flush the range, then fence — the paper's ``Persist``.

        Fused re-implementation of ``flush_range`` + ``mfence`` (the
        hottest call in the commit discipline: three per insert). Event
        order — per-line flush ticks, then the fence tick — is exactly
        the simulator's, so armed crashes fire at the same point."""
        if size > 0:
            if addr < 0 or addr + size > self.size:
                self._check_range(addr, size)
            line_size = self._line
            first = addr // line_size
            last = (addr + size - 1) // line_size
            slow = self._slow
            stats = self.stats
            dirty = self._dirty
            volatile = self._volatile
            persistent = self._persistent
            for ln in range(first, last + 1):
                if slow:
                    self._pre_event("flush", ln * line_size, line_size)
                stats.flushes += 1
                if ln in dirty:
                    dirty.remove(ln)
                    start = ln * line_size
                    end = start + line_size
                    if end > self.size:
                        end = self.size
                    persistent[start:end] = volatile[start:end]
                    stats.writebacks += 1
                    stats.nvm_line_writes += 1
                    stats.nvm_bytes_written += end - start
                    stats.dirty_flushes += 1
        if self._slow:
            self._pre_event("fence", 0, 0)
        self.stats.fences += 1

    # ------------------------------------------------------------------
    # crash/recovery

    def crash(self, schedule: CrashSchedule | None = None) -> CrashReport:
        """Simulate a power failure with the same word-granular semantics
        as the simulator: for every dirty line the schedule picks which
        modified 8-byte words reach the persistent image."""
        schedule = schedule or drop_all_schedule()
        self._crash_countdown = None
        report = CrashReport()
        line_size = self.line_size
        for line in sorted(self._dirty):
            start = line * line_size
            end = min(start + line_size, self.size)
            dirty_words = [
                off
                for off in range(start, end, ATOMIC_UNIT)
                if self._volatile[off : off + ATOMIC_UNIT]
                != self._persistent[off : off + ATOMIC_UNIT]
            ]
            if not dirty_words:
                continue
            report.dirty_lines += 1
            persisted = set(schedule.words_persisted(start, dirty_words))
            for off in dirty_words:
                if off in persisted:
                    self._persistent[off : off + ATOMIC_UNIT] = self._volatile[
                        off : off + ATOMIC_UNIT
                    ]
                    report.words_persisted += 1
                else:
                    report.words_dropped += 1
        self._dirty.clear()
        self._volatile[:] = self._persistent
        return report

    # ------------------------------------------------------------------
    # introspection

    def peek_persistent(self, addr: int, size: int) -> bytes:
        """Read the persistent image directly (no cost)."""
        self._check_range(addr, size)
        return bytes(self._persistent[addr : addr + size])

    def peek_volatile(self, addr: int, size: int) -> bytes:
        """Read the volatile view directly (no cost)."""
        self._check_range(addr, size)
        return bytes(self._volatile[addr : addr + size])

    def unpersisted_ranges(self) -> list[tuple[int, int]]:
        """``(addr, size)`` extents where the two images differ.

        Only dirty lines can differ, so the scan is bounded by the dirty
        set rather than the region size."""
        diffs: list[tuple[int, int]] = []
        run_start: int | None = None
        line_size = self.line_size
        prev_line = None
        for line in sorted(self._dirty):
            contiguous = prev_line is not None and line == prev_line + 1
            if not contiguous and prev_line is not None and run_start is not None:
                # a gap between dirty lines always ends a run
                end = (prev_line + 1) * line_size
                diffs.append((run_start, end - run_start))
                run_start = None
            start = line * line_size
            end = min(start + line_size, self.size)
            for off in range(start, end, ATOMIC_UNIT):
                same = (
                    self._volatile[off : off + ATOMIC_UNIT]
                    == self._persistent[off : off + ATOMIC_UNIT]
                )
                if same and run_start is not None:
                    diffs.append((run_start, off - run_start))
                    run_start = None
                elif not same and run_start is None:
                    run_start = off
            prev_line = line
        if run_start is not None:
            end = min((prev_line + 1) * line_size, self.size)
            diffs.append((run_start, end - run_start))
        return diffs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RawBackend(name={self.name!r}, size={self.size}, "
            f"allocated={self._alloc_cursor})"
        )


class ShardedBackend:
    """N independent per-shard backends with aggregated accounting.

    Each shard is a full :class:`MemoryBackend` (any implementation)
    created by ``factory(shard_index)``. The container adds what a
    sharded system needs on top: a merged statistics view, per-shard or
    global crash injection, and stable iteration for recovery sweeps.
    Shards fail independently — crashing one leaves the others' caches
    and dirty data untouched, which :class:`~repro.core.sharded.ShardedTable`
    exploits for partial-failure recovery.
    """

    def __init__(
        self, n_shards: int, factory: Callable[[int], "MemoryBackend"]
    ) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        self.shards: list[MemoryBackend] = [factory(i) for i in range(n_shards)]
        self.name = f"sharded[{n_shards}]"

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    def shard(self, index: int) -> "MemoryBackend":
        """The backend serving shard ``index``."""
        if not 0 <= index < len(self.shards):
            raise IndexError(f"shard {index} out of range [0, {len(self.shards)})")
        return self.shards[index]

    def __iter__(self):
        """Iterate over the per-shard backends in shard order."""
        return iter(self.shards)

    @property
    def size(self) -> int:
        """Total capacity across shards, in bytes."""
        return sum(s.size for s in self.shards)

    @property
    def bytes_allocated(self) -> int:
        """Total allocator high-water mark across shards."""
        return sum(s.bytes_allocated for s in self.shards)

    @property
    def abandoned_bytes(self) -> int:
        """Total unreachable (abandoned) bytes across shards."""
        return sum(s.abandoned_bytes for s in self.shards)

    @property
    def stats(self) -> MemStats:
        """Element-wise sum of every shard's counters (a fresh snapshot;
        mutating it does not affect the shards)."""
        return MemStats.merged_all(s.stats for s in self.shards)

    def crash(
        self,
        schedule: CrashSchedule | None = None,
        *,
        shard: int | None = None,
    ) -> list[CrashReport]:
        """Power-fail one shard (``shard=i``) or all of them.

        Returns one :class:`CrashReport` per crashed shard, in shard
        order. Un-crashed shards are untouched — their caches stay warm
        and their unflushed data stays at risk."""
        targets = self.shards if shard is None else [self.shard(shard)]
        return [s.crash(schedule) for s in targets]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardedBackend(n_shards={self.n_shards}, size={self.size})"
