"""Set-associative CPU cache simulator.

This stands in for the paper's real L1/L2/L3 hierarchy and its PAPI
L3-miss counters. One simulated level is enough: every effect the paper
measures — ``clflush`` invalidation forcing re-misses (Figures 2b, 6) and
contiguous probe sequences hitting in already-fetched lines (the group
sharing argument) — is a property of *line residency*, which a single
set-associative LRU level models exactly.

The simulator works on **line indices** (byte address // line size); the
owning :class:`~repro.nvm.memory.NVMRegion` does the address arithmetic
and charges latency costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of the simulated cache.

    The default is a scaled-down stand-in for the paper's 15 MB L3: the
    benchmark harness sizes the cache relative to the hash table so the
    cache:table ratio matches the paper's (table ≫ cache), which is what
    produces capacity misses on random probes.
    """

    #: total capacity in bytes
    size_bytes: int = 2 * 1024 * 1024
    #: cacheline size in bytes (64 on every x86 the paper considers)
    line_size: int = 64
    #: ways per set
    associativity: int = 8

    @property
    def n_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.size_bytes // self.line_size

    @property
    def n_sets(self) -> int:
        """Number of sets (capacity / (line * ways))."""
        return max(1, self.n_lines // self.associativity)

    def __post_init__(self) -> None:
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.size_bytes < self.line_size * self.associativity:
            raise ValueError(
                "cache must hold at least one full set "
                f"({self.line_size * self.associativity} bytes)"
            )


class CacheSim:
    """LRU set-associative cache over line indices.

    Each set is a ``dict`` mapping line index -> dirty flag; Python dicts
    preserve insertion order, so the first key is always the LRU victim
    and a touch is delete + reinsert. This keeps the per-access cost to a
    few dict operations, which matters because every simulated memory
    access funnels through here.
    """

    __slots__ = ("config", "_n_sets", "_assoc", "_sets")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._n_sets = config.n_sets
        self._assoc = config.associativity
        self._sets: list[dict[int, bool]] = [{} for _ in range(self._n_sets)]

    def access(
        self, line: int, *, is_write: bool
    ) -> tuple[bool, tuple[int, bool] | None]:
        """Touch ``line``; return ``(hit, evicted)``.

        ``evicted`` is ``(victim_line, victim_was_dirty)`` when the fill
        displaced a resident line, else ``None``. The caller is
        responsible for writing back a dirty victim to the persistent
        image (that is how eviction-time persistence happens).
        """
        bucket = self._sets[line % self._n_sets]
        dirty = bucket.pop(line, None)
        if dirty is not None:
            bucket[line] = dirty or is_write
            return True, None
        evicted: tuple[int, bool] | None = None
        if len(bucket) >= self._assoc:
            victim = next(iter(bucket))
            evicted = (victim, bucket.pop(victim))
        bucket[line] = is_write
        return False, evicted

    def touch_mru(self, line: int, is_write: bool) -> None:
        """Repeat-touch a line the caller *knows* is resident and MRU.

        Equivalent to :meth:`access` for that case but skips the LRU
        pop/reinsert: the line is already in MRU position, so only the
        dirty flag may need upgrading, and a dict value assignment does
        not disturb insertion order. :class:`~repro.nvm.memory.NVMRegion`
        uses this from its repeated-same-line fast path; calling it for
        a non-resident line raises ``KeyError`` (by design — it would
        mean the caller's residency invariant is broken).
        """
        bucket = self._sets[line % self._n_sets]
        if is_write and not bucket[line]:
            bucket[line] = True
        else:
            bucket[line]  # noqa: B018 — residency assertion on reads

    def flush(self, line: int) -> tuple[bool, bool]:
        """``clflush`` semantics: invalidate ``line``.

        Returns ``(was_cached, was_dirty)``. Invalidation — not just
        writeback — is the x86 behaviour the paper identifies as the
        source of logging's extra cache misses: the next read of the same
        address misses again.
        """
        bucket = self._sets[line % self._n_sets]
        dirty = bucket.pop(line, None)
        if dirty is None:
            return False, False
        return True, dirty

    def writeback(self, line: int) -> bool:
        """``clwb`` semantics: persist but keep the line resident (clean).

        Returns whether the line was dirty. Used by the ablation that
        separates the flush-latency cost of logging from its
        invalidation-induced re-miss cost.
        """
        bucket = self._sets[line % self._n_sets]
        if line in bucket:
            dirty = bucket[line]
            bucket[line] = False
            return dirty
        return False

    def contains(self, line: int) -> bool:
        """Whether ``line`` is currently resident."""
        return line in self._sets[line % self._n_sets]

    def is_dirty(self, line: int) -> bool:
        """Whether ``line`` is resident and modified."""
        return self._sets[line % self._n_sets].get(line, False)

    def dirty_lines(self) -> Iterator[int]:
        """Iterate over all resident dirty lines (crash-time inspection)."""
        for bucket in self._sets:
            for line, dirty in bucket.items():
                if dirty:
                    yield line

    def resident_lines(self) -> Iterator[int]:
        """Iterate over all resident lines."""
        for bucket in self._sets:
            yield from bucket

    def invalidate_all(self) -> None:
        """Drop every line without writeback (power-loss semantics)."""
        for bucket in self._sets:
            bucket.clear()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._sets)
