"""Crash schedules: what survives a power failure.

At crash time, every cacheline that was *flushed or evicted* is already
in the persistent image. For lines still dirty in the cache, real
hardware may have written back none, some, or all of them, in any order,
and within the failure-atomicity unit (8 bytes, per the paper's Section
2.2) each aligned word either fully persists or fully does not.

A :class:`CrashSchedule` decides, per dirty line, which of its modified
8-byte words reached NVM. ``random_schedule`` draws an arbitrary subset —
strictly more adversarial than any real reordering — which is what the
hypothesis-based consistency fuzz tests use: recovery must restore a
consistent state under *every* schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence


class CrashSchedule(Protocol):
    """Strategy deciding which dirty words persist at crash time."""

    def words_persisted(
        self, line_addr: int, dirty_word_offsets: Sequence[int]
    ) -> Sequence[int]:
        """Return the subset of ``dirty_word_offsets`` that reach NVM.

        ``line_addr`` is the byte address of the line start;
        ``dirty_word_offsets`` are byte offsets (within the region, not
        the line) of 8-byte-aligned words whose cached value differs from
        the persistent image.
        """
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class _PersistAll:
    def words_persisted(
        self, line_addr: int, dirty_word_offsets: Sequence[int]
    ) -> Sequence[int]:
        return dirty_word_offsets


@dataclass(frozen=True)
class _DropAll:
    def words_persisted(
        self, line_addr: int, dirty_word_offsets: Sequence[int]
    ) -> Sequence[int]:
        return ()


@dataclass
class _RandomSubset:
    rng: random.Random
    persist_probability: float = 0.5

    def words_persisted(
        self, line_addr: int, dirty_word_offsets: Sequence[int]
    ) -> Sequence[int]:
        return [
            off
            for off in dirty_word_offsets
            if self.rng.random() < self.persist_probability
        ]


@dataclass
class FunctionSchedule:
    """Adapt a plain callable ``(line_addr, offsets) -> offsets`` to the
    :class:`CrashSchedule` protocol. Used by tests that want full control
    over exactly which words tear."""

    fn: Callable[[int, Sequence[int]], Sequence[int]]

    def words_persisted(
        self, line_addr: int, dirty_word_offsets: Sequence[int]
    ) -> Sequence[int]:
        """Delegate the decision to the wrapped callable."""
        return self.fn(line_addr, dirty_word_offsets)


@dataclass
class RecordingSchedule:
    """Wrap another schedule and record its decisions (for assertions)."""

    inner: CrashSchedule
    decisions: list[tuple[int, tuple[int, ...], tuple[int, ...]]] = field(
        default_factory=list
    )

    def words_persisted(
        self, line_addr: int, dirty_word_offsets: Sequence[int]
    ) -> Sequence[int]:
        """Record and forward the inner schedule's decision."""
        chosen = tuple(self.inner.words_persisted(line_addr, dirty_word_offsets))
        self.decisions.append((line_addr, tuple(dirty_word_offsets), chosen))
        return chosen


def persist_all_schedule() -> CrashSchedule:
    """Every dirty word reaches NVM (the luckiest possible crash)."""
    return _PersistAll()


def drop_all_schedule() -> CrashSchedule:
    """No unflushed write reaches NVM (pure power-cut semantics)."""
    return _DropAll()


def random_schedule(seed: int, persist_probability: float = 0.5) -> CrashSchedule:
    """Each dirty 8-byte word independently persists with the given
    probability — the fuzzing workhorse."""
    return _RandomSubset(random.Random(seed), persist_probability)
