"""Deterministic crash-matrix fault injection.

The hypothesis fuzz in :mod:`tests` samples *random* crash points and
*random* survival schedules; a specific ordering bug can hide between
samples forever. This module makes the paper's consistency claim an
enumerable property instead: record the program-order persistence event
log (``write``/``flush``/``fence``) of a deterministic workload, then
**replay the workload once per crash boundary** — before every event,
plus the run-to-completion point — inject a power failure there, run the
scheme's recovery, and check three oracles against a shadow dict:

- **invariant** — the structure itself is sound after recovery
  (:meth:`~repro.tables.base.PersistentHashTable.integrity_violations`:
  persistent count matches occupancy, no duplicate keys, undo log
  truncated; group hashing adds Algorithm 4's unoccupied-cells-are-zero
  postcondition);
- **durability** — every operation that *completed* before the crash is
  fully reflected (its persists had retired, so no schedule may lose it);
- **atomicity** — the one in-flight operation is all-or-nothing: the
  recovered table equals the shadow state either before or after it,
  never in between. For an in-flight :class:`BatchOp` (a coalesced
  multi-item commit) the contract is per item: any *subset* of the
  batch's items may have survived, but each surviving item must carry
  exactly its batch value — a batch is a set of individually-atomic
  commits sharing flushes, not one jumbo transaction.

At each boundary the crash itself is varied: besides the two extremes
(drop every unflushed word / persist every unflushed word) the campaign
enumerates per-word survival subsets of the dirty lines — exhaustively
when ``2^w - 2`` fits the budget, otherwise singletons, complements and
seeded pseudo-random subsets. Everything is a pure function of the
workload and the seed, so a failing cell replays bit-identically and the
first failing boundary *is* the minimal failing event prefix.

The machinery is scheme-agnostic: campaigns drive a
:class:`CrashHarness`, a thin adapter built fresh for every replay.
:mod:`repro.bench.experiments.crashmatrix` supplies harnesses for every
table scheme and for :class:`~repro.core.sharded.ShardedTable` per-shard
crash domains, and runs campaign cells through the bench engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

from repro.nvm.backend import MemoryBackend
from repro.nvm.crash import CrashSchedule
from repro.nvm.memory import ATOMIC_UNIT, SimulatedPowerFailure

#: oracle identifiers used in :class:`Violation.oracle`
ORACLES = ("invariant", "durability", "atomicity")


@dataclass(frozen=True)
class Op:
    """One logical table operation in a campaign workload."""

    #: "insert" | "delete" | "update"
    kind: str
    key: bytes
    value: bytes | None = None


@dataclass(frozen=True)
class BatchOp:
    """One *batched* table operation — a coalesced multi-item commit
    whose crash boundaries land inside the batch's shared flush window.
    Campaign workloads must use fresh keys (not in the pre-fill, not
    repeated) so the per-key atomicity oracle stays unambiguous."""

    #: "put_many"
    kind: str
    #: the batch payload, in submission order
    items: tuple[tuple[bytes, bytes], ...]


def op_keys(op: "Op | BatchOp") -> tuple[bytes, ...]:
    """Keys an op touches (one for scalar ops, all items for a batch)."""
    if isinstance(op, BatchOp):
        return tuple(key for key, _ in op.items)
    return (op.key,)


@dataclass(frozen=True)
class PersistEvent:
    """One recorded persistence-relevant event (program order)."""

    kind: str
    addr: int
    size: int

    def to_list(self) -> list:
        """JSON-ready ``[kind, addr, size]`` triple."""
        return [self.kind, self.addr, self.size]


@dataclass
class WorkloadTrace:
    """Program-order event log of one recorded workload run."""

    #: every write/flush/fence the crash-domain backend saw, in order
    events: list[PersistEvent]
    #: ``op_end_events[i]`` = events executed when op ``i`` completed
    op_end_events: list[int]
    #: event windows ``(start, end]`` of ops during which the harness
    #: performed at least one segment split (directory growth) — empty
    #: for fixed-size schemes. A crash boundary ``k`` with
    #: ``start < k <= end`` lands *while a split is in progress*.
    split_windows: list[tuple[int, int]] = field(default_factory=list)
    #: event windows of ops that were *logically concurrent* with
    #: another client's in-flight op — only populated when the harness
    #: exposes ``concurrent_ops`` (a set of op indices, produced by the
    #: deterministic multi-client interleaver). A crash boundary inside
    #: such a window fires between two clients' in-flight ops.
    concurrent_windows: list[tuple[int, int]] = field(default_factory=list)

    @property
    def n_events(self) -> int:
        """Total persistence events in the measured window."""
        return len(self.events)

    @property
    def n_splits(self) -> int:
        """Number of recorded split-carrying ops."""
        return len(self.split_windows)

    def in_split_window(self, event_index: int) -> bool:
        """Whether crash boundary ``event_index`` falls inside an op
        that was performing a segment split."""
        return any(s < event_index <= e for s, e in self.split_windows)

    def in_concurrent_window(self, event_index: int) -> bool:
        """Whether crash boundary ``event_index`` falls inside an op
        that overlapped another client's in-flight op."""
        return any(s < event_index <= e for s, e in self.concurrent_windows)

    def completed_ops(self, executed_events: int) -> int:
        """Number of ops fully applied after ``executed_events`` events."""
        done = 0
        for end in self.op_end_events:
            if end <= executed_events:
                done += 1
            else:
                break
        return done


@dataclass(frozen=True)
class WordSubsetSchedule:
    """:class:`~repro.nvm.crash.CrashSchedule` persisting exactly a
    chosen set of absolute 8-byte word offsets (everything else drops).

    The deterministic building block of the matrix: drop-all is the
    empty set, persist-all is the full dirty set, and every enumerated
    subset in between is one concrete way the hardware could have torn
    the unflushed lines."""

    persisted: frozenset[int]

    def words_persisted(
        self, line_addr: int, dirty_word_offsets: Sequence[int]
    ) -> Sequence[int]:
        """Keep the dirty words named by :attr:`persisted`."""
        return [off for off in dirty_word_offsets if off in self.persisted]


class CrashHarness(Protocol):
    """What a campaign needs from one scheme-under-test replay.

    A harness wraps a freshly built (and pre-filled) table; campaigns
    construct one per replay via the factory passed to
    :func:`run_campaign`, so no state leaks between crash points.
    """

    @property
    def crash_backend(self) -> MemoryBackend:
        """The backend forming the crash domain (armed + introspected)."""
        ...  # pragma: no cover - protocol

    def apply(self, op: Op) -> bool:
        """Apply one op to the table; True when it took effect."""
        ...  # pragma: no cover - protocol

    def crash(self, schedule: CrashSchedule) -> None:
        """Power-fail the crash domain with the given schedule."""
        ...  # pragma: no cover - protocol

    def recover(self) -> None:
        """Reattach volatile mirrors and run the scheme's recovery."""
        ...  # pragma: no cover - protocol

    def snapshot(self) -> dict[bytes, bytes]:
        """Recovered table contents as a plain dict."""
        ...  # pragma: no cover - protocol

    def integrity_violations(self) -> list[str]:
        """Structural problems after recovery (empty when sound)."""
        ...  # pragma: no cover - protocol

    # Optional: harnesses over growable (directory) schemes may expose a
    # ``split_count`` int property; :func:`record_trace` samples it
    # around every op to mark split-in-progress event windows on the
    # trace. Multi-client harnesses may expose ``concurrent_ops`` (a set
    # of op indices that logically overlapped another client's in-flight
    # op); their event windows become the trace's concurrent windows.
    # Fixed-size / single-client harnesses simply omit both.


@dataclass(frozen=True)
class Violation:
    """One oracle failure at one (crash point, schedule) cell."""

    #: which oracle failed ("invariant" / "durability" / "atomicity")
    oracle: str
    #: 1-based index of the event the crash fired before
    #: (``n_events + 1`` = the run-to-completion crash)
    event_index: int
    #: schedule identifier ("drop-all", "persist-all", "subset:<i>")
    schedule: str
    #: index of the in-flight op (-1 when none was in flight)
    op_index: int
    detail: str

    def to_dict(self) -> dict:
        """JSON-ready field dict."""
        return {
            "oracle": self.oracle,
            "event_index": self.event_index,
            "schedule": self.schedule,
            "op_index": self.op_index,
            "detail": self.detail,
        }


@dataclass
class CampaignResult:
    """Outcome of one exhaustive crash campaign."""

    #: recorded trace of the uncrashed workload
    trace: WorkloadTrace
    #: number of ops in the workload
    n_ops: int
    #: crash boundaries enumerated (one per event, plus completion)
    points: int = 0
    #: enumerated boundaries that landed inside a split-in-progress
    #: window (0 for fixed-size schemes)
    split_points: int = 0
    #: enumerated boundaries that landed inside an op logically
    #: concurrent with another client's in-flight op (0 for
    #: single-client workloads)
    concurrent_points: int = 0
    #: (boundary, schedule) replays actually executed
    replays: int = 0
    violations: list[Violation] = field(default_factory=list)
    #: flight-recorder dump trimmed to the minimal failing prefix —
    #: the last recorded ops/events leading up to the earliest failing
    #: boundary; ``None`` when the campaign is clean or no recorder was
    #: attached
    failure_context: dict | None = None

    @property
    def ok(self) -> bool:
        """Whether every replay satisfied every oracle."""
        return not self.violations

    def minimal_failing_prefix(self) -> list[PersistEvent] | None:
        """The event prefix executed before the earliest failing crash
        point — the shortest schedule that demonstrates the bug — or
        ``None`` when the campaign is clean. Boundaries are enumerated
        in program order, so the first recorded violation is minimal."""
        if not self.violations:
            return None
        first = min(v.event_index for v in self.violations)
        return self.trace.events[: first - 1]


def record_trace(
    harness: CrashHarness,
    ops: Sequence[Op | BatchOp],
    recorder=None,
) -> WorkloadTrace:
    """Run ``ops`` uncrashed on a fresh harness, recording the event log.

    ``recorder`` (a :class:`~repro.obs.FlightRecorder`) optionally
    mirrors the recording into a bounded ring — each persist event with
    its program-order index, each op with the event count it retired at
    — so a failing campaign can ship last-N context alongside the
    minimal failing prefix. The recorder is volatile-only: it observes
    the same hook invocations the trace does and never changes them.

    Raises if any op does not take effect — campaign workloads must be
    deterministic, and an op that fails in the recording would silently
    desynchronise the shadow oracle in every replay."""
    events: list[PersistEvent] = []
    backend = harness.crash_backend

    if recorder is None:

        def hook(kind: str, addr: int, size: int) -> None:
            events.append(PersistEvent(kind, addr, size))

    else:

        def hook(kind: str, addr: int, size: int) -> None:
            recorder.record_event(index=len(events) + 1, kind=kind, addr=addr)
            events.append(PersistEvent(kind, addr, size))

    backend.event_hook = hook
    op_end_events: list[int] = []
    split_windows: list[tuple[int, int]] = []
    concurrent_windows: list[tuple[int, int]] = []
    # growable harnesses expose a split counter; sampling it around each
    # op marks the event windows where a split was in progress
    tracks_splits = getattr(harness, "split_count", None) is not None
    # multi-client harnesses mark the ops that logically overlapped
    # another client's in-flight op (the workload is the interleaver's
    # serialized commit order); their event windows are where a crash
    # fires between two clients' in-flight ops
    concurrent_ops = getattr(harness, "concurrent_ops", None) or frozenset()
    try:
        for i, op in enumerate(ops):
            start = len(events)
            splits_before = harness.split_count if tracks_splits else 0
            if not harness.apply(op):
                raise RuntimeError(
                    f"campaign op {i} ({op.kind} {op.key!r}) did not apply; "
                    "choose a workload whose every op succeeds"
                )
            op_end_events.append(len(events))
            if tracks_splits and harness.split_count > splits_before:
                split_windows.append((start, len(events)))
            if i in concurrent_ops:
                concurrent_windows.append((start, len(events)))
            if recorder is not None:
                recorder.record_op(
                    0,
                    index=i,
                    kind=op.kind,
                    key=op_keys(op)[0].hex(),
                    events_done=len(events),
                )
    finally:
        backend.event_hook = None
    return WorkloadTrace(
        events=events,
        op_end_events=op_end_events,
        split_windows=split_windows,
        concurrent_windows=concurrent_windows,
    )


def shadow_states(
    ops: Sequence[Op | BatchOp], base: dict[bytes, bytes] | None = None
) -> list[dict[bytes, bytes]]:
    """Expected table contents after each op prefix.

    ``states[j]`` is the shadow dict once the first ``j`` ops applied;
    ``states[0]`` is the pre-workload state (``base``: the pre-fill
    items, empty by default). Seeding the base here — rather than
    merging it afterwards — keeps deletes of pre-filled keys from
    resurrecting in later states."""
    states = [dict(base or {})]
    for op in ops:
        state = dict(states[-1])
        if op.kind == "put_many":
            for key, value in op.items:
                state[key] = value
        elif op.kind == "insert" or op.kind == "update":
            state[op.key] = op.value
        elif op.kind == "delete":
            state.pop(op.key, None)
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")
        states.append(state)
    return states


def dirty_word_offsets(backend: MemoryBackend) -> tuple[int, ...]:
    """Absolute offsets of every 8-byte word whose volatile value has
    not reached the persistent image — the words a crash schedule gets
    to rule on."""
    offsets: list[int] = []
    for addr, size in backend.unpersisted_ranges():
        start = addr - addr % ATOMIC_UNIT
        offsets.extend(range(start, addr + size, ATOMIC_UNIT))
    return tuple(offsets)


def enumerate_schedules(
    dirty: Sequence[int], *, budget: int, seed: int, event_index: int
) -> list[tuple[str, WordSubsetSchedule]]:
    """Deterministic survival schedules for one crash boundary.

    Always the two extremes; with ``w >= 2`` dirty words also up to
    ``budget`` *strict* subsets: all ``2^w - 2`` of them when they fit
    the budget, otherwise singletons, then complements, then subsets
    drawn from a PRNG seeded by ``(seed, event_index)`` — so the same
    campaign always tests the same matrix."""
    out: list[tuple[str, WordSubsetSchedule]] = [
        ("drop-all", WordSubsetSchedule(frozenset()))
    ]
    w = len(dirty)
    if w == 0:
        return out
    out.append(("persist-all", WordSubsetSchedule(frozenset(dirty))))
    if w < 2 or budget <= 0:
        return out
    subsets: list[frozenset[int]] = []
    seen: set[frozenset[int]] = set()

    def add(subset: frozenset[int]) -> None:
        if 0 < len(subset) < w and subset not in seen:
            seen.add(subset)
            subsets.append(subset)

    n_strict = (1 << w) - 2
    if n_strict <= budget:
        for mask in range(1, (1 << w) - 1):
            add(frozenset(off for i, off in enumerate(dirty) if mask >> i & 1))
    else:
        for off in dirty:
            add(frozenset((off,)))
        for off in dirty:
            add(frozenset(dirty) - {off})
        rng = random.Random((seed << 20) ^ event_index)
        attempts = 0
        while len(subsets) < budget and attempts < 16 * budget:
            attempts += 1
            add(frozenset(off for off in dirty if rng.random() < 0.5))
    return out + [
        (f"subset:{i}", WordSubsetSchedule(s))
        for i, s in enumerate(subsets[:budget])
    ]


def check_recovery(
    recovered: dict[bytes, bytes],
    *,
    completed_state: dict[bytes, bytes],
    inflight_state: dict[bytes, bytes],
    inflight_op: Op | BatchOp | None,
    structural: Sequence[str],
    event_index: int,
    schedule: str,
    op_index: int,
) -> list[Violation]:
    """Run the three oracles on one recovered state.

    ``completed_state`` is the shadow after every completed op;
    ``inflight_state`` is the shadow if the in-flight op had also
    applied (equal to ``completed_state`` when nothing was in flight).
    The atomicity oracle is per affected key, which for a scalar op is
    the classic all-or-nothing check and for an in-flight
    :class:`BatchOp` admits any surviving subset of the batch's items —
    each one either absent or carrying exactly its batch value.
    """
    violations = [
        Violation("invariant", event_index, schedule, op_index, problem)
        for problem in structural
    ]
    inflight_keys = (
        frozenset(op_keys(inflight_op)) if inflight_op is not None else frozenset()
    )
    for key, value in completed_state.items():
        if key in inflight_keys:
            continue
        got = recovered.get(key)
        if got != value:
            violations.append(
                Violation(
                    "durability", event_index, schedule, op_index,
                    f"committed key {key.hex()} "
                    + ("lost" if got is None else f"corrupted to {got.hex()}"),
                )
            )
    for key in recovered:
        if key not in completed_state and key not in inflight_keys:
            violations.append(
                Violation(
                    "atomicity", event_index, schedule, op_index,
                    f"phantom key {key.hex()} surfaced by the crash",
                )
            )
    for key in sorted(inflight_keys):
        got = recovered.get(key)
        legal = {completed_state.get(key), inflight_state.get(key)}
        if got not in legal:
            violations.append(
                Violation(
                    "atomicity", event_index, schedule, op_index,
                    f"in-flight {inflight_op.kind} key {key.hex()} "
                    f"partially visible (found {got.hex() if got else None})",
                )
            )
    return violations


def _replay(
    factory: Callable[[], CrashHarness],
    ops: Sequence[Op | BatchOp],
    event_index: int,
    schedule: CrashSchedule,
) -> tuple[CrashHarness, int, tuple[int, ...]]:
    """Rebuild the harness, crash before event ``event_index``, and
    power-fail with ``schedule``. Returns the harness (post-crash,
    pre-recovery), the in-flight op index (-1 = none) and the dirty
    word offsets at the boundary."""
    harness = factory()
    backend = harness.crash_backend
    backend.arm_crash(event_index)
    inflight = -1
    try:
        for i, op in enumerate(ops):
            inflight = i
            harness.apply(op)
            inflight = -1
    except SimulatedPowerFailure:
        pass
    backend.disarm_crash()
    dirty = dirty_word_offsets(backend)
    harness.crash(schedule)
    return harness, inflight, dirty


def run_campaign(
    factory: Callable[[], CrashHarness],
    ops: Sequence[Op | BatchOp],
    *,
    subset_budget: int = 2,
    seed: int = 0,
    prefill: dict[bytes, bytes] | None = None,
    max_points: int | None = None,
    recorder=None,
) -> CampaignResult:
    """Enumerate every crash boundary of the ``ops`` workload.

    ``factory`` must build an identical, deterministic harness each
    call (table constructed and pre-filled with ``prefill``). For each
    boundary ``k`` in ``1..n_events`` (crash fires before event ``k``)
    plus the run-to-completion point, the workload is replayed once per
    enumerated survival schedule; after each crash the harness recovers
    and the oracles run. ``max_points`` truncates the boundary sweep
    (diagnostics only — a truncated campaign proves nothing about the
    boundaries it skipped).

    ``recorder`` (a :class:`~repro.obs.FlightRecorder`) observes the
    recording run; when the campaign fails, its dump — trimmed to the
    ops and events that executed before the earliest failing boundary —
    lands in :attr:`CampaignResult.failure_context`, so the report that
    carries the minimal failing prefix also carries the last recorded
    ops leading into it."""
    trace = record_trace(factory(), ops, recorder=recorder)
    states = shadow_states(ops, base=prefill)
    result = CampaignResult(trace=trace, n_ops=len(ops))
    boundaries = range(1, trace.n_events + 2)
    for event_index in boundaries:
        if max_points is not None and result.points >= max_points:
            break
        result.points += 1
        if trace.in_split_window(event_index):
            result.split_points += 1
        if trace.in_concurrent_window(event_index):
            result.concurrent_points += 1
        # first replay discovers the boundary's dirty words (drop-all)
        harness, inflight, dirty = _replay(
            factory, ops, event_index, WordSubsetSchedule(frozenset())
        )
        schedules = enumerate_schedules(
            dirty, budget=subset_budget, seed=seed, event_index=event_index
        )
        for i, (schedule_id, schedule) in enumerate(schedules):
            if i > 0:
                harness, inflight, _ = _replay(factory, ops, event_index, schedule)
            result.replays += 1
            harness.recover()
            executed = min(event_index - 1, trace.n_events)
            completed = trace.completed_ops(executed)
            if inflight >= 0 and inflight != completed:
                raise RuntimeError(
                    f"non-deterministic replay: boundary {event_index} fired "
                    f"inside op {inflight} but the recorded trace says "
                    f"{completed} ops had completed"
                )
            inflight_op = ops[inflight] if inflight >= 0 else None
            result.violations.extend(
                check_recovery(
                    harness.snapshot(),
                    completed_state=states[completed],
                    inflight_state=(
                        states[completed + 1] if inflight_op is not None
                        else states[completed]
                    ),
                    inflight_op=inflight_op,
                    structural=harness.integrity_violations(),
                    event_index=event_index,
                    schedule=schedule_id,
                    op_index=inflight,
                )
            )
    if result.violations and recorder is not None:
        first = min(v.event_index for v in result.violations)
        dump = recorder.dump()
        # keep only what executed before the failing boundary, so the
        # context matches the minimal failing prefix exactly
        dump["ops"] = {
            client: [op for op in ring if op.get("events_done", 0) < first]
            for client, ring in dump["ops"].items()
        }
        dump["events"] = [e for e in dump["events"] if e.get("index", 0) < first]
        dump["first_failing_boundary"] = first
        result.failure_context = dump
    return result
