"""Discrete event-cost model for the simulated memory hierarchy.

The paper (Section 4.1) emulates NVM by adding a fixed extra latency
(300 ns by default, following PMFS) after every ``clflush``; reads are
left at DRAM speed because NVM read latency is close to DRAM and hard to
emulate faithfully. We encode exactly that model, plus the Table 1
technology presets so ablation benchmarks can ask "what if the medium
were PCM / ReRAM / STT-MRAM?".

All costs are in nanoseconds of *simulated* time.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyModel:
    """Per-event costs charged by :class:`~repro.nvm.memory.NVMRegion`.

    The defaults model the paper's testbed: a cache hit costs an L3-ish
    access, a miss costs a DRAM-speed line fill (NVM reads ≈ DRAM reads,
    per the paper), and persisting a dirty line costs the medium's write
    latency plus the emulation penalty charged after ``clflush``.
    """

    #: name of the technology preset (for reports)
    name: str = "paper-nvm"
    #: cost of an access that hits in the simulated cache
    cache_hit_ns: float = 5.0
    #: cost of filling a line from the medium on a miss (read latency)
    line_fill_ns: float = 100.0
    #: cost of an access satisfied by the sequential hardware prefetcher
    #: (the line was streamed in ahead of the demand access). The paper's
    #: group-sharing and linear-probing arguments rest on this: scanning
    #: *contiguous* cells costs ~an L3 hit per line instead of a full
    #: memory round-trip, and does not count as an L3 miss.
    prefetch_hit_ns: float = 10.0
    #: base cost of executing a ``clflush`` (instruction + writeback issue)
    flush_base_ns: float = 40.0
    #: extra latency charged per *dirty* line actually written to the
    #: medium — the paper's "+300 ns after a clflush" knob
    nvm_write_extra_ns: float = 300.0
    #: cost of a memory fence
    fence_ns: float = 10.0
    #: cost charged when a dirty line is written back by *eviction*
    #: (happens asynchronously on real hardware, so cheaper than a flush)
    eviction_writeback_ns: float = 0.0

    def flush_cost(self, dirty: bool) -> float:
        """Simulated cost of one ``clflush`` of a line.

        A clean (or uncached) line only pays the instruction cost; a dirty
        line additionally pays the medium write penalty, which is the
        dominant term and the effect the paper's evaluation turns on.
        """
        cost = self.flush_base_ns
        if dirty:
            cost += self.nvm_write_extra_ns
        return cost


#: DRAM reference point (Table 1: 10 ns read / 10 ns write). With DRAM
#: there is no post-flush penalty — useful as the "volatile" ablation.
DRAM = LatencyModel(
    name="dram",
    cache_hit_ns=5.0,
    line_fill_ns=100.0,
    flush_base_ns=40.0,
    nvm_write_extra_ns=0.0,
    fence_ns=10.0,
)

#: The paper's default emulation: DRAM-speed reads, +300 ns per flush.
PAPER_NVM = LatencyModel(name="paper-nvm")

#: Phase-change memory (Table 1: 20–85 ns read, 150–1000 ns write).
PCM = LatencyModel(
    name="pcm",
    cache_hit_ns=5.0,
    line_fill_ns=150.0,
    flush_base_ns=40.0,
    nvm_write_extra_ns=500.0,
    fence_ns=10.0,
)

#: Resistive RAM (Table 1: 10–20 ns read, 100 ns write).
RERAM = LatencyModel(
    name="reram",
    cache_hit_ns=5.0,
    line_fill_ns=110.0,
    flush_base_ns=40.0,
    nvm_write_extra_ns=100.0,
    fence_ns=10.0,
)

#: Spin-transfer torque MRAM (Table 1: 5–15 ns read, 10–30 ns write).
STT_MRAM = LatencyModel(
    name="stt-mram",
    cache_hit_ns=5.0,
    line_fill_ns=100.0,
    flush_base_ns=40.0,
    nvm_write_extra_ns=20.0,
    fence_ns=10.0,
)

#: All presets keyed by name, for CLI / benchmark parameterisation.
TECHNOLOGY_PRESETS: dict[str, LatencyModel] = {
    model.name: model for model in (DRAM, PAPER_NVM, PCM, RERAM, STT_MRAM)
}
