"""Byte-addressable simulated NVM region.

:class:`NVMRegion` is the substrate every hash table in this repository
runs on. It keeps two images of the memory:

- the **volatile view** — what loads return; includes writes still
  sitting in the simulated CPU cache;
- the **persistent image** — what survives :meth:`NVMRegion.crash`;
  updated only when a dirty line is ``clflush``-ed or evicted.

Data paths mirror x86 + NVDIMM semantics: stores dirty a cacheline,
``clflush`` writes the line to the medium *and invalidates it* (charging
the paper's +300 ns emulation penalty), ``mfence`` orders — in this
sequential simulator, ordering is already program order, so the fence
only charges its cost. Crash semantics are delegated to a
:class:`~repro.nvm.crash.CrashSchedule` at 8-byte-word granularity.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.nvm.cache import CacheConfig, CacheSim
from repro.nvm.crash import CrashSchedule, drop_all_schedule
from repro.nvm.latency import PAPER_NVM, LatencyModel
from repro.nvm.stats import MemStats
from repro.nvm.wear import WearMap

#: x86 cacheline size; also the alignment unit for table layouts.
CACHELINE = 64

#: failure-atomicity unit of NVM (paper Section 2.2)
ATOMIC_UNIT = 8

_U64 = struct.Struct("<Q")


class SimulatedPowerFailure(RuntimeError):
    """Raised mid-operation when an armed crash point trips.

    Crash-consistency tests arm a countdown with
    :meth:`NVMRegion.arm_crash`, run an operation, catch this exception,
    and then call :meth:`NVMRegion.crash` to materialise the power
    failure with a chosen schedule.
    """


@dataclass(frozen=True)
class SimConfig:
    """Bundle of latency model + cache geometry for one region."""

    latency: LatencyModel = PAPER_NVM
    cache: CacheConfig = field(default_factory=CacheConfig)
    #: ``clflush`` (True) vs ``clwb`` (False) semantics for persist;
    #: the paper's hardware has only ``clflush``, which invalidates.
    flush_invalidates: bool = True
    #: count medium writes per line (endurance analysis, Section 2.1);
    #: off by default — it adds a counter bump to every writeback
    track_wear: bool = False


@dataclass
class CrashReport:
    """What a simulated crash did to in-flight (unflushed) data."""

    #: dirty lines resident in the cache at crash time
    dirty_lines: int = 0
    #: 8-byte words whose new value reached the persistent image
    words_persisted: int = 0
    #: 8-byte words whose new value was lost
    words_dropped: int = 0

    @property
    def torn(self) -> bool:
        """Whether the crash both persisted and dropped data (a "torn"
        state, the hardest case for recovery)."""
        return self.words_persisted > 0 and self.words_dropped > 0


@dataclass(frozen=True)
class Allocation:
    """One named extent handed out by :meth:`NVMRegion.alloc`."""

    label: str
    addr: int
    size: int


class NVMRegion:
    """A simulated persistent memory region with a cache in front.

    All addresses are offsets into the region. Use :meth:`alloc` to carve
    named extents (tables allocate their levels and metadata blocks this
    way) and the ``read``/``write``/``persist`` family for data access.

    ``__slots__`` covers the base class; subclasses (e.g.
    :class:`~repro.nvm.wearlevel.WearLevelledRegion`) may still add
    attributes — they get a ``__dict__`` of their own.
    """

    __slots__ = (
        "name",
        "size",
        "config",
        "_latency",
        "_persistent",
        "_volatile",
        "cache",
        "stats",
        "_line",
        "_alloc_cursor",
        "allocations",
        "_crash_countdown",
        "abandoned_bytes",
        "wear",
        "event_hook",
        "_prev_line",
        "_fast_line",
    )

    def __init__(
        self,
        size: int,
        config: SimConfig | None = None,
        *,
        name: str = "nvm",
    ) -> None:
        if size <= 0:
            raise ValueError("region size must be positive")
        self.name = name
        self.size = size
        self.config = config or SimConfig()
        self._latency = self.config.latency
        self._persistent = bytearray(size)
        self._volatile = bytearray(size)
        self.cache = CacheSim(self.config.cache)
        self.stats = MemStats()
        self._line = self.config.cache.line_size
        self._alloc_cursor = 0
        self.allocations: list[Allocation] = []
        self._crash_countdown: int | None = None
        #: bytes allocated but no longer reachable from any live structure
        #: (half-built expansion tables, orphaned split segments, retired
        #: directory arrays). The bump allocator never reuses space, so
        #: leaks are permanent — this counter makes them auditable instead
        #: of silent. Volatile bookkeeping: it does not survive a real
        #: reboot, but within one process it bounds the waste.
        self.abandoned_bytes = 0
        self.wear: WearMap | None = (
            WearMap(size, self._line) if self.config.track_wear else None
        )
        #: optional observer called as ``hook(kind, addr, size)`` for
        #: "write" / "flush" / "fence" events, in program order. Tests
        #: use it to assert persist *ordering* (e.g. Algorithm 1 flushes
        #: the key-value bytes before the bitmap store issues); it is
        #: also the extension point for external trace collection.
        self.event_hook = None
        # sequential-stream prefetcher state: the last line touched; a
        # miss on line N+1 right after touching line N is treated as
        # prefetch-covered (see LatencyModel.prefetch_hit_ns)
        self._prev_line = -(1 << 30)
        # fast-path marker: the last line run through the cache, which
        # is therefore resident and in MRU position until something
        # invalidates it (clflush of that line, or a crash). Distinct
        # from _prev_line, which is prefetcher state and must NOT be
        # cleared on invalidation.
        self._fast_line = -1

    # ------------------------------------------------------------------
    # allocation

    def alloc(self, nbytes: int, *, align: int = ATOMIC_UNIT, label: str = "") -> int:
        """Bump-allocate ``nbytes`` with the given alignment.

        This is deliberately a linear allocator: the paper's structures
        are all allocated once at table-creation time, and a linear
        allocator keeps each structure contiguous — which is the property
        group sharing exploits.
        """
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if align <= 0 or align & (align - 1):
            raise ValueError(f"alignment must be a power of two, got {align}")
        addr = (self._alloc_cursor + align - 1) & ~(align - 1)
        if addr + nbytes > self.size:
            raise MemoryError(
                f"region '{self.name}' exhausted: need {nbytes} bytes at "
                f"{addr}, size {self.size}"
            )
        self._alloc_cursor = addr + nbytes
        self.allocations.append(
            Allocation(label or f"alloc{len(self.allocations)}", addr, nbytes)
        )
        return addr

    @property
    def bytes_allocated(self) -> int:
        """High-water mark of the bump allocator."""
        return self._alloc_cursor

    def mark_abandoned(self, nbytes: int) -> None:
        """Record ``nbytes`` of allocated space as permanently
        unreachable (e.g. a half-built expansion table after a failed
        rebuild, or a split segment orphaned by a crash)."""
        if nbytes < 0:
            raise ValueError("abandoned byte count must be non-negative")
        self.abandoned_bytes += nbytes

    @property
    def line_size(self) -> int:
        """Flush granularity in bytes (the cacheline)."""
        return self._line

    # ------------------------------------------------------------------
    # cache plumbing

    def _writeback(self, line: int) -> None:
        """Copy one cacheline from the volatile view to the persistent
        image (the medium-write half of a flush or eviction)."""
        start = line * self._line
        end = min(start + self._line, self.size)
        self._persistent[start:end] = self._volatile[start:end]
        self.stats.writebacks += 1
        self.stats.nvm_line_writes += 1
        self.stats.nvm_bytes_written += end - start
        if self.wear is not None:
            self.wear.record(line)

    def _touch(self, addr: int, size: int, is_write: bool) -> None:
        """Run the touched line range through the cache simulator and
        charge hit/fill costs."""
        line_size = self._line
        first = addr // line_size
        last = (addr + size - 1) // line_size
        stats = self.stats
        latency = self._latency
        if first == last:
            # single-line access — the overwhelmingly common case (cells
            # never straddle lines), kept free of the range loop
            if first == self._fast_line:
                # repeat of the line touched last: still resident and in
                # MRU position (nothing else was accessed since), so
                # this is a hit with no possible eviction — skip the LRU
                # reorder and only upgrade the dirty flag
                self.cache.touch_mru(first, is_write)
                stats.cache_hits += 1
                stats.sim_time_ns += latency.cache_hit_ns
                return
            hit, evicted = self.cache.access(first, is_write=is_write)
            if hit:
                stats.cache_hits += 1
                stats.sim_time_ns += latency.cache_hit_ns
            elif first == self._prev_line + 1:
                # forward unit-stride miss: the stream prefetcher has
                # already pulled this line — cheap, and not a demand miss
                stats.prefetched_fills += 1
                stats.nvm_line_reads += 1
                stats.sim_time_ns += latency.prefetch_hit_ns
            else:
                stats.cache_misses += 1
                stats.nvm_line_reads += 1
                stats.sim_time_ns += latency.line_fill_ns
            self._prev_line = first
            self._fast_line = first
            if evicted is not None:
                victim, victim_dirty = evicted
                stats.evictions += 1
                if victim_dirty:
                    self._writeback(victim)
                    stats.sim_time_ns += latency.eviction_writeback_ns
            return
        for line in range(first, last + 1):
            hit, evicted = self.cache.access(line, is_write=is_write)
            if hit:
                stats.cache_hits += 1
                stats.sim_time_ns += latency.cache_hit_ns
            elif line == self._prev_line + 1:
                # forward unit-stride miss: the stream prefetcher has
                # already pulled this line — cheap, and not a demand miss
                stats.prefetched_fills += 1
                stats.nvm_line_reads += 1
                stats.sim_time_ns += latency.prefetch_hit_ns
            else:
                stats.cache_misses += 1
                stats.nvm_line_reads += 1
                stats.sim_time_ns += latency.line_fill_ns
            self._prev_line = line
            if evicted is not None:
                victim, victim_dirty = evicted
                stats.evictions += 1
                if victim_dirty:
                    self._writeback(victim)
                    stats.sim_time_ns += latency.eviction_writeback_ns
        # the final line is the one most recently run through the cache
        self._fast_line = last

    def _check_range(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.size:
            raise IndexError(
                f"access [{addr}, {addr + size}) outside region of size {self.size}"
            )

    # ------------------------------------------------------------------
    # crash injection

    def arm_crash(self, after_events: int) -> None:
        """Arm a power failure that fires just before the ``after_events``-th
        subsequent *persistence-relevant* event (store, flush, or fence).

        Counting stores as well as flushes lets the fuzzer land crashes
        between a write and its flush — the window where torn data is
        possible."""
        if after_events <= 0:
            raise ValueError("after_events must be positive")
        self._crash_countdown = after_events

    def disarm_crash(self) -> None:
        """Cancel a pending armed crash (if it has not fired)."""
        self._crash_countdown = None

    def _crash_tick(self) -> None:
        if self._crash_countdown is None:
            return
        self._crash_countdown -= 1
        if self._crash_countdown <= 0:
            self._crash_countdown = None
            raise SimulatedPowerFailure("armed crash point reached")

    # ------------------------------------------------------------------
    # data path

    def read(self, addr: int, size: int) -> bytes:
        """Load ``size`` bytes from the volatile view."""
        if addr < 0 or size < 0 or addr + size > self.size:
            self._check_range(addr, size)
        self._touch(addr, size, False)
        stats = self.stats
        stats.reads += 1
        stats.bytes_read += size
        return bytes(self._volatile[addr : addr + size])

    def write(self, addr: int, data: bytes) -> None:
        """Store ``data``; it lands in the cache, not yet in NVM."""
        size = len(data)
        if addr < 0 or size < 0 or addr + size > self.size:
            self._check_range(addr, size)
        if self._crash_countdown is not None:
            self._crash_tick()
        if self.event_hook is not None:
            self.event_hook("write", addr, size)
        self._touch(addr, size, True)
        stats = self.stats
        stats.writes += 1
        stats.bytes_written += size
        self._volatile[addr : addr + size] = data

    def read_u64(self, addr: int) -> int:
        """Load an 8-byte little-endian unsigned integer.

        Hot path of every header probe (:meth:`scan_clear_u64` funnels
        here), so the base class unpacks straight from the volatile
        view instead of slicing a ``bytes`` through :meth:`read`.
        Subclasses that remap addresses (wear leveling) get the
        polymorphic :meth:`read` route; events are identical either way.
        """
        if self.__class__ is not NVMRegion:
            return _U64.unpack(self.read(addr, 8))[0]
        if addr < 0 or addr + 8 > self.size:
            self._check_range(addr, 8)
        self._touch(addr, 8, False)
        stats = self.stats
        stats.reads += 1
        stats.bytes_read += 8
        return _U64.unpack_from(self._volatile, addr)[0]

    def write_u64(self, addr: int, value: int) -> None:
        """Store an 8-byte little-endian unsigned integer."""
        self.write(addr, _U64.pack(value))

    def write_atomic_u64(self, addr: int, value: int) -> None:
        """The paper's 8-byte failure-atomic write.

        Requires natural alignment so the word cannot straddle two
        atomicity units. Semantically identical to :meth:`write_u64`
        (the crash model already guarantees aligned 8-byte words never
        tear); the separate name asserts alignment and documents intent
        at every commit point in the hashing schemes.
        """
        if addr % ATOMIC_UNIT:
            raise ValueError(
                f"atomic write requires {ATOMIC_UNIT}-byte alignment, got addr {addr}"
            )
        self.write_u64(addr, value)

    # ------------------------------------------------------------------
    # bulk probes (reference event semantics for every backend)

    def scan_clear_u64(
        self, addr: int, stride: int, count: int, mask: int = 1
    ) -> int | None:
        """Index of the first of ``count`` strided header words with
        ``(word & mask) == 0``, or None.

        This loop of :meth:`read_u64` calls *is* the contract: the cache
        behaviour, latency and event counts of a bulk probe are exactly
        those of probing each word in turn and stopping at the first
        clear one. Fast backends reimplement the loop natively."""
        read_u64 = self.read_u64
        for i in range(count):
            if not read_u64(addr) & mask:
                return i
            addr += stride
        return None

    def scan_match(
        self,
        addr: int,
        stride: int,
        count: int,
        key: bytes,
        *,
        mask: int = 1,
        key_offset: int = 8,
    ) -> int | None:
        """Index of the first of ``count`` strided cells that is occupied
        (header byte 0 & ``mask``) and stores ``key`` at ``key_offset``.

        Reference semantics: one ``read`` of header+key per probed cell
        (a single simulated load — they travel together), stopping at
        the match. This is the access pattern of the paper's contiguous
        level-2 group scan."""
        size = key_offset + len(key)
        for i in range(count):
            raw = self.read(addr, size)
            if raw[0] & mask and raw[key_offset:] == key:
                return i
            addr += stride
        return None

    def scan_occupied_bitmap(
        self, addr: int, stride: int, count: int, mask: int = 1
    ) -> int:
        """Bitmap of the ``mask`` bit over ``count`` strided header words:
        bit ``i`` of the result is set iff ``word(addr + i*stride) & mask``.

        Reference semantics: one :meth:`read_u64` per header word — a
        *full* scan with no early exit, which is what batch planners need
        (they want the whole group's occupancy in one call)."""
        read_u64 = self.read_u64
        bitmap = 0
        for i in range(count):
            if read_u64(addr) & mask:
                bitmap |= 1 << i
            addr += stride
        return bitmap

    def scan_occupied_at(self, addrs, mask: int = 1) -> int:
        """Gather variant of :meth:`scan_occupied_bitmap`: bit ``i`` of
        the result reflects the header word at ``addrs[i]``.

        Reference semantics: one :meth:`read_u64` per address, full scan."""
        read_u64 = self.read_u64
        bitmap = 0
        for i, addr in enumerate(addrs):
            if read_u64(addr) & mask:
                bitmap |= 1 << i
        return bitmap

    def scan_match_many(
        self,
        addr: int,
        stride: int,
        count: int,
        keys,
        *,
        mask: int = 1,
        key_offset: int = 8,
    ) -> list[int | None]:
        """Multi-key :meth:`scan_match` over one strided window: for each
        key in ``keys``, the index of its first matching cell (or None).

        Reference semantics are the concatenation of the per-key
        :meth:`scan_match` event sequences, in key order."""
        return [
            self.scan_match(
                addr, stride, count, key, mask=mask, key_offset=key_offset
            )
            for key in keys
        ]

    def scan_probe(
        self,
        addr: int,
        stride: int,
        count: int,
        key: bytes,
        *,
        mask: int = 1,
        key_offset: int = 8,
    ) -> tuple[int, bool] | None:
        """First of ``count`` strided cells that is *empty* (header byte 0
        has no ``mask`` bit) or occupied and storing ``key``: returns
        ``(index, matched)``, or None when every cell is occupied by
        other keys. The linear-probing lookup pattern.

        Reference semantics: one ``read`` of header+key per probed cell,
        stopping at the empty-or-match cell."""
        size = key_offset + len(key)
        for i in range(count):
            raw = self.read(addr, size)
            if not raw[0] & mask:
                return i, False
            if raw[key_offset:] == key:
                return i, True
            addr += stride
        return None

    def scan_clear_at(self, addrs, mask: int = 1) -> int | None:
        """Gather variant of :meth:`scan_clear_u64`: index of the first
        address in ``addrs`` whose header word has no ``mask`` bit.

        Reference semantics: one :meth:`read_u64` per probed address,
        stopping at the first clear one — the path-hashing insert probe,
        whose candidate cells live in separate per-level arrays."""
        read_u64 = self.read_u64
        for i, addr in enumerate(addrs):
            if not read_u64(addr) & mask:
                return i
        return None

    def scan_match_at(
        self, addrs, key: bytes, *, mask: int = 1, key_offset: int = 8
    ) -> int | None:
        """Gather variant of :meth:`scan_match`: index of the first
        address in ``addrs`` holding an occupied cell that stores ``key``.

        Reference semantics: one ``read`` of header+key per probed
        address, stopping at the match."""
        size = key_offset + len(key)
        for i, addr in enumerate(addrs):
            raw = self.read(addr, size)
            if raw[0] & mask and raw[key_offset:] == key:
                return i
        return None

    def scan_match_pairs(
        self, pairs, *, mask: int = 1, key_offset: int = 8
    ) -> list[bool]:
        """Independent occupied-and-matches tests over ``(addr, key)``
        pairs; element ``i`` of the result is True iff the cell at
        ``pairs[i][0]`` is occupied and stores ``pairs[i][1]``.

        Reference semantics: one ``read`` of header+key per pair (a full
        scan — every pair is tested). This is the batched level-1 probe:
        one call filters a whole batch's home cells."""
        out: list[bool] = []
        for addr, key in pairs:
            raw = self.read(addr, key_offset + len(key))
            out.append(bool(raw[0] & mask) and raw[key_offset:] == key)
        return out

    # ------------------------------------------------------------------
    # persistence primitives

    def clflush(self, addr: int) -> None:
        """Flush (and, with ``clflush`` semantics, invalidate) the line
        containing ``addr``. A dirty line pays the NVM write penalty."""
        self._check_range(addr, 1)
        self._crash_tick()
        if self.event_hook is not None:
            self.event_hook("flush", addr, self._line)
        line = addr // self._line
        if self.config.flush_invalidates:
            was_cached, was_dirty = self.cache.flush(line)
            if line == self._fast_line:
                # the invalidated line is no longer resident; the
                # prefetcher state (_prev_line) deliberately survives
                self._fast_line = -1
        else:
            was_dirty = self.cache.writeback(line)
            was_cached = was_dirty or self.cache.contains(line)
        self.stats.flushes += 1
        if was_dirty:
            self._writeback(line)
            self.stats.dirty_flushes += 1
        self.stats.sim_time_ns += self._latency.flush_cost(was_dirty)

    def flush_range(self, addr: int, size: int) -> None:
        """``clflush`` every line overlapping ``[addr, addr+size)``."""
        if size <= 0:
            return
        self._check_range(addr, size)
        first = addr // self._line
        last = (addr + size - 1) // self._line
        for line in range(first, last + 1):
            self.clflush(line * self._line)

    def mfence(self) -> None:
        """Memory fence: orders stores (a no-op for correctness in this
        sequential simulator) and charges its cost."""
        self._crash_tick()
        if self.event_hook is not None:
            self.event_hook("fence", 0, 0)
        self.stats.fences += 1
        self.stats.sim_time_ns += self._latency.fence_ns

    sfence = mfence

    def persist(self, addr: int, size: int = 8) -> None:
        """The paper's ``Persist``: ``clflush`` the range, then ``mfence``."""
        self.flush_range(addr, size)
        self.mfence()

    # ------------------------------------------------------------------
    # crash/recovery support

    def crash(self, schedule: CrashSchedule | None = None) -> CrashReport:
        """Simulate a power failure.

        For every line still dirty in the cache, the schedule picks which
        modified 8-byte words reach the persistent image. Afterwards the
        volatile view is reset to the persistent image and the cache is
        cold — exactly the state recovery code sees at reboot.
        """
        schedule = schedule or drop_all_schedule()
        self._crash_countdown = None
        report = CrashReport()
        for line in list(self.cache.dirty_lines()):
            start = line * self._line
            end = min(start + self._line, self.size)
            dirty_words = [
                off
                for off in range(start, end, ATOMIC_UNIT)
                if self._volatile[off : off + ATOMIC_UNIT]
                != self._persistent[off : off + ATOMIC_UNIT]
            ]
            if not dirty_words:
                continue
            report.dirty_lines += 1
            persisted = set(schedule.words_persisted(start, dirty_words))
            for off in dirty_words:
                if off in persisted:
                    self._persistent[off : off + ATOMIC_UNIT] = self._volatile[
                        off : off + ATOMIC_UNIT
                    ]
                    report.words_persisted += 1
                else:
                    report.words_dropped += 1
        self._volatile[:] = self._persistent
        self.cache.invalidate_all()
        self._fast_line = -1
        return report

    # ------------------------------------------------------------------
    # introspection (tests and debugging; no costs charged)

    def peek_persistent(self, addr: int, size: int) -> bytes:
        """Read the persistent image directly (no cache, no cost)."""
        self._check_range(addr, size)
        return bytes(self._persistent[addr : addr + size])

    def peek_volatile(self, addr: int, size: int) -> bytes:
        """Read the volatile view directly (no cache, no cost)."""
        self._check_range(addr, size)
        return bytes(self._volatile[addr : addr + size])

    def unpersisted_ranges(self) -> list[tuple[int, int]]:
        """Return ``(addr, size)`` extents where the volatile view and the
        persistent image differ — i.e. data that would be at risk in a
        crash right now. Useful for durability assertions in tests."""
        diffs: list[tuple[int, int]] = []
        run_start: int | None = None
        for off in range(0, self.size, ATOMIC_UNIT):
            same = (
                self._volatile[off : off + ATOMIC_UNIT]
                == self._persistent[off : off + ATOMIC_UNIT]
            )
            if same and run_start is not None:
                diffs.append((run_start, off - run_start))
                run_start = None
            elif not same and run_start is None:
                run_start = off
        if run_start is not None:
            diffs.append((run_start, self.size - run_start))
        return diffs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NVMRegion(name={self.name!r}, size={self.size}, "
            f"allocated={self._alloc_cursor}, tech={self._latency.name})"
        )
