"""Event counters for the simulated memory hierarchy.

Every interesting event in the simulator increments a counter here; the
benchmark harness measures a phase by snapshotting the stats before and
after and taking the difference (:meth:`MemStats.delta`). Simulated time
(``sim_time_ns``) accumulates the latency model's cost for each event, so
"average request latency" in the reproduced figures is
``delta.sim_time_ns / n_requests``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable


@dataclass(slots=True)
class MemStats:
    """Counters for one :class:`~repro.nvm.memory.NVMRegion`.

    Attributes mirror the quantities the paper reports or reasons about:

    - ``cache_misses`` is the stand-in for the paper's PAPI L3 miss counter
      (Figures 2b and 6).
    - ``sim_time_ns`` is the simulated clock used for request latency
      (Figures 2a, 5, 8a and Table 3).
    - ``nvm_line_writes`` / ``nvm_bytes_written`` quantify write traffic to
      the persistent medium (the endurance argument in Section 2.1).
    """

    #: number of read accesses issued by the program
    reads: int = 0
    #: number of write accesses issued by the program
    writes: int = 0
    #: bytes read by the program
    bytes_read: int = 0
    #: bytes written by the program
    bytes_written: int = 0

    #: accesses that hit in the simulated cache
    cache_hits: int = 0
    #: accesses that missed and caused a demand line fill from NVM
    cache_misses: int = 0
    #: accesses that missed but were covered by the sequential prefetcher
    #: (next-line streams); cheap, and not counted as cache_misses — this
    #: mirrors how a prefetch-satisfied access does not appear as an L3
    #: demand miss in the paper's PAPI counters
    prefetched_fills: int = 0
    #: lines evicted to make room (clean or dirty)
    evictions: int = 0
    #: dirty lines written back to the persistent image (eviction or flush)
    writebacks: int = 0

    #: explicit ``clflush`` instructions executed
    flushes: int = 0
    #: ``clflush`` calls that actually wrote a dirty line back
    dirty_flushes: int = 0
    #: memory fences executed
    fences: int = 0

    #: cachelines written to the persistent medium
    nvm_line_writes: int = 0
    #: bytes written to the persistent medium
    nvm_bytes_written: int = 0
    #: line fills read from the persistent medium
    nvm_line_reads: int = 0

    #: simulated elapsed time in nanoseconds
    sim_time_ns: float = 0.0

    def snapshot(self) -> "MemStats":
        """Return an independent copy of the current counters."""
        return dataclasses.replace(self)

    def delta(self, earlier: "MemStats") -> "MemStats":
        """Return counters accumulated since ``earlier`` was snapshotted."""
        out = MemStats()
        for field in dataclasses.fields(MemStats):
            setattr(
                out,
                field.name,
                getattr(self, field.name) - getattr(earlier, field.name),
            )
        return out

    def merged(self, other: "MemStats") -> "MemStats":
        """Return the element-wise sum of two counter sets."""
        out = MemStats()
        for field in dataclasses.fields(MemStats):
            setattr(
                out,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return out

    @classmethod
    def merged_all(cls, stats: "Iterable[MemStats]") -> "MemStats":
        """Element-wise sum of any number of counter sets (zeros for an
        empty iterable) — the aggregation shards and worker processes
        use instead of hand-rolled merge loops."""
        out = cls()
        for s in stats:
            out = out.merged(s)
        return out

    @property
    def accesses(self) -> int:
        """Total program-issued memory accesses."""
        return self.reads + self.writes

    @property
    def miss_ratio(self) -> float:
        """Cache miss ratio over all accesses (0.0 when idle)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_misses / total if total else 0.0

    def reset(self) -> None:
        """Zero every counter in place."""
        for field in dataclasses.fields(MemStats):
            setattr(self, field.name, 0.0 if field.name == "sim_time_ns" else 0)

    def as_dict(self) -> dict[str, int | float]:
        """Return counters as a plain dict (for reports and JSON dumps).

        Every event counter is an exact ``int``; only ``sim_time_ns`` is
        a float. :meth:`from_dict` round-trips the exact values."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: "dict[str, int | float]") -> "MemStats":
        """Rebuild a counter set from :meth:`as_dict` output (unknown
        keys are ignored, missing ones default to zero)."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})
