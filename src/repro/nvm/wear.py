"""Per-cacheline wear tracking (paper Section 2.1).

NVM cells endure a bounded number of writes (Table 1: 10^8 for PCM up
to 10^15 for STT-MRAM). The paper argues its design "of eliminating
duplicate copy writes to NVMs can be combined with wear-leveling
schemes to further lengthen NVM's lifetime" but never measures write
distribution; this extension does.

:class:`WearMap` counts medium writes per cacheline (a write reaches the
medium only on flush or dirty eviction, which is where the counter
hooks). :meth:`WearMap.report` summarises total traffic, hottest lines,
and the concentration of wear — an undo log, for instance, focuses its
writes on the log head lines, a hot spot a wear-leveler would have to
rotate away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class WearReport:
    """Summary of medium-write wear across a region."""

    #: total line writes to the medium
    total_line_writes: int
    #: number of distinct lines ever written
    lines_touched: int
    #: write count of the most-written line
    max_line_writes: int
    #: mean writes over touched lines
    mean_line_writes: float
    #: fraction of all writes absorbed by the hottest 1% of touched lines
    hot1pct_share: float
    #: Gini coefficient of writes over touched lines — 0.0 is perfectly
    #: level wear, 1.0 is all writes on one line
    gini: float = 0.0

    @property
    def imbalance(self) -> float:
        """max/mean over touched lines — 1.0 is perfectly level wear."""
        if not self.mean_line_writes:
            return 0.0
        return self.max_line_writes / self.mean_line_writes

    def lifetime_fraction(self, endurance: float) -> float:
        """Fraction of the hottest line's endurance consumed."""
        return self.max_line_writes / endurance


class WearMap:
    """Numpy-backed per-line write counters for one region."""

    def __init__(self, size: int, line_size: int) -> None:
        if size <= 0 or line_size <= 0:
            raise ValueError("size and line_size must be positive")
        self.line_size = line_size
        self._counts = np.zeros((size + line_size - 1) // line_size, dtype=np.int64)
        #: optional volatile observer called with each recorded line —
        #: how the window sampler feeds its wear-heat series; purely
        #: observational, never touches the backend
        self.on_record: Callable[[int], None] | None = None

    def record(self, line: int) -> None:
        """Count one medium write of ``line``."""
        self._counts[line] += 1
        if self.on_record is not None:
            self.on_record(line)

    def line_writes(self, line: int) -> int:
        """Write count of one line."""
        return int(self._counts[line])

    def counts(self) -> np.ndarray:
        """Copy of the raw per-line counters."""
        return self._counts.copy()

    def hottest(self, n: int = 10) -> list[tuple[int, int]]:
        """The ``n`` most-written lines as (line, writes), hottest first."""
        order = np.argsort(self._counts)[::-1][:n]
        return [(int(i), int(self._counts[i])) for i in order if self._counts[i] > 0]

    def report(self) -> WearReport:
        """Summarise the current wear distribution."""
        counts = self._counts
        touched = counts[counts > 0]
        total = int(counts.sum())
        if touched.size == 0:
            return WearReport(0, 0, 0, 0.0, 0.0, 0.0)
        hot_n = max(1, touched.size // 100)
        ascending = np.sort(touched)
        hottest = ascending[::-1][:hot_n]
        # Gini over touched lines via the sorted-rank identity:
        # G = 2 Σ i·x_(i) / (n Σ x) − (n + 1)/n, with x ascending
        n = touched.size
        ranks = np.arange(1, n + 1, dtype=np.int64)
        gini = float(
            2.0 * int((ranks * ascending).sum()) / (n * total) - (n + 1) / n
        )
        return WearReport(
            total_line_writes=total,
            lines_touched=int(n),
            max_line_writes=int(touched.max()),
            mean_line_writes=float(touched.mean()),
            hot1pct_share=float(hottest.sum() / total),
            gini=gini,
        )

    def reset(self) -> None:
        """Zero all counters (e.g. after a wear-leveling rotation)."""
        self._counts[:] = 0


def export_wear_metrics(region, metrics, *, prefix: str = "wear") -> WearReport | None:
    """Publish a region's wear summary into a metrics registry.

    Sets ``<prefix>.*`` gauges (total/touched/max/mean line writes,
    imbalance, Gini, hot-1% share) from ``region.wear`` so wear shows
    up in ``profile`` and ``timeline`` output next to every other
    metric, not only in the dedicated wear tests. Gauges merge by
    ``max`` across workers, which is the conservative (worst-region)
    combination for wear. Returns the report, or ``None`` when the
    region tracks no wear (then nothing is published)."""
    wear = getattr(region, "wear", None)
    if wear is None or metrics is None:
        return None
    report = wear.report()
    metrics.gauge(f"{prefix}.total_line_writes").set(report.total_line_writes)
    metrics.gauge(f"{prefix}.lines_touched").set(report.lines_touched)
    metrics.gauge(f"{prefix}.max_line_writes").set(report.max_line_writes)
    metrics.gauge(f"{prefix}.mean_line_writes").set(report.mean_line_writes)
    metrics.gauge(f"{prefix}.imbalance").set(report.imbalance)
    metrics.gauge(f"{prefix}.gini").set(report.gini)
    metrics.gauge(f"{prefix}.hot1pct_share").set(report.hot1pct_share)
    return report

