"""Start-Gap wear leveling — the substrate the paper assumes exists.

Section 2.1: "As most of the wear-leveling schemes are built on device
level, we assume such wear leveling schemes exist and do not address it
in our group hashing." This module makes that assumption concrete with
the canonical algebraic scheme (Qureshi et al., MICRO'09):

- the device has ``N + 1`` physical lines for ``N`` logical lines; one
  physical line — the **gap** — is always unused;
- every ``rotate_every`` line writes, the line just before the gap is
  copied into it and the gap moves down one slot; when the gap wraps,
  the **start** register advances, so over time every logical line
  visits every physical slot;
- translation is two registers and two adds:
  ``PA = (LA + start) mod N``, plus one if ``PA >= gap``.

Crash safety comes for free from the gap being unused: a rotation first
copies into the (unreachable) gap line and persists it, and only then
atomically persists the updated registers — a crash between the two
leaves the old mapping fully intact. The registers live in a reserved
physical line so :class:`WearLevelledRegion` can reattach after a
simulated power failure.

:class:`WearLevelledRegion` subclasses :class:`~repro.nvm.memory.NVMRegion`
so every hash table runs on it unchanged; the ablation benchmark
measures what rotation costs and how much it flattens the wear map.
"""

from __future__ import annotations

from repro.nvm.memory import ATOMIC_UNIT, NVMRegion, SimConfig


class StartGapMapper:
    """Pure translation state for start-gap (no I/O)."""

    def __init__(self, n_lines: int, rotate_every: int) -> None:
        if n_lines <= 1:
            raise ValueError("need at least two logical lines")
        if rotate_every <= 0:
            raise ValueError("rotate_every must be positive")
        self.n = n_lines
        self.rotate_every = rotate_every
        self.start = 0
        self.gap = n_lines  # physical line index of the unused slot
        self._writes_since_rotation = 0

    def translate(self, logical_line: int) -> int:
        """Physical line for ``logical_line``."""
        if not 0 <= logical_line < self.n:
            raise IndexError(f"logical line {logical_line} out of range")
        pa = (logical_line + self.start) % self.n
        if pa >= self.gap:
            pa += 1
        return pa

    def source_of_next_rotation(self) -> int:
        """Physical line whose content the next rotation copies into the
        gap (the line just before it, cyclically)."""
        return self.gap - 1 if self.gap > 0 else self.n

    def note_write(self) -> bool:
        """Count one line write; True when a rotation is due."""
        self._writes_since_rotation += 1
        if self._writes_since_rotation >= self.rotate_every:
            self._writes_since_rotation = 0
            return True
        return False

    def advance_gap(self) -> None:
        """Apply one rotation to the registers (after the data copy)."""
        if self.gap > 0:
            self.gap -= 1
        else:
            self.gap = self.n
            self.start = (self.start + 1) % self.n


class WearLevelledRegion(NVMRegion):
    """An :class:`NVMRegion` with device-level start-gap remapping.

    ``size`` is the *logical* capacity; physically the region holds two
    extra lines (the gap and a register line). All inherited data-path
    methods operate on logical addresses.
    """

    def __init__(
        self,
        size: int,
        config: SimConfig | None = None,
        *,
        rotate_every: int = 128,
        name: str = "wl-nvm",
    ) -> None:
        config = config or SimConfig()
        line = config.cache.line_size
        n_lines = -(-size // line)
        # physical: n logical lines + gap line + register line
        super().__init__((n_lines + 2) * line, config, name=name)
        self.logical_size = n_lines * line
        self.mapper = StartGapMapper(n_lines, rotate_every)
        self._register_addr = (n_lines + 1) * line
        self._rotating = False
        self._persist_registers()

    # ------------------------------------------------------------------
    # register plumbing (stored physically, so they survive crashes)

    def _persist_registers(self) -> None:
        # _rotating switches the inherited data path to physical
        # addressing (NVMRegion.flush_range dispatches back into our
        # clflush override)
        was_rotating = self._rotating
        self._rotating = True
        try:
            packed = (self.mapper.start << 32) | self.mapper.gap
            super().write(self._register_addr, packed.to_bytes(8, "little"))
            super().flush_range(self._register_addr, 8)
            super().mfence()
        finally:
            self._rotating = was_rotating

    def reload_registers(self) -> None:
        """Reattach the mapper after a simulated crash."""
        packed = int.from_bytes(
            super().peek_persistent(self._register_addr, 8), "little"
        )
        self.mapper.start = packed >> 32
        self.mapper.gap = packed & 0xFFFFFFFF

    # ------------------------------------------------------------------
    # rotation

    def _rotate(self) -> None:
        """One start-gap step: copy the pre-gap line into the gap, then
        atomically publish the new registers. Charged like any other
        traffic (this is the wear-leveling overhead)."""
        line = self.config.cache.line_size
        src = self.mapper.source_of_next_rotation() * line
        dst = self.mapper.gap * line
        self._rotating = True
        try:
            data = super().read(src, line)
            super().write(dst, data)
            super().flush_range(dst, line)
            super().mfence()
            self.mapper.advance_gap()
            self._persist_registers()
        finally:
            self._rotating = False

    def _writeback(self, line: int) -> None:
        """Register-line writes model on-controller registers (as in the
        original start-gap hardware), so they don't count as media wear."""
        register_line = self._register_addr // self.config.cache.line_size
        if self.wear is not None and line == register_line:
            wear, self.wear = self.wear, None
            try:
                super()._writeback(line)
            finally:
                self.wear = wear
            return
        super()._writeback(line)

    # ------------------------------------------------------------------
    # allocation is bounded by the logical capacity (the gap and the
    # register line must stay out of reach)

    def alloc(self, nbytes: int, *, align: int = ATOMIC_UNIT, label: str = "") -> int:
        addr = super().alloc(nbytes, align=align, label=label)
        if addr + nbytes > self.logical_size:
            raise MemoryError(
                f"region '{self.name}' exhausted: logical capacity is "
                f"{self.logical_size} bytes"
            )
        return addr

    # ------------------------------------------------------------------
    # logical data path: split accesses per logical line and translate

    def _check_logical(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.logical_size:
            raise IndexError(
                f"logical access [{addr}, {addr + size}) outside region of "
                f"size {self.logical_size}"
            )

    def _segments(self, addr: int, size: int):
        """Yield (physical_addr, start_offset, end_offset) per touched
        logical line."""
        line = self.config.cache.line_size
        offset = 0
        while offset < size:
            logical = (addr + offset) // line
            within = (addr + offset) % line
            take = min(line - within, size - offset)
            phys = self.mapper.translate(logical) * line + within
            yield phys, offset, offset + take
            offset += take

    def read(self, addr: int, size: int) -> bytes:
        if self._rotating:  # rotation's own traffic is already physical
            return super().read(addr, size)
        self._check_logical(addr, size)
        parts = [
            super(WearLevelledRegion, self).read(p, e - s)
            for p, s, e in self._segments(addr, size)
        ]
        return b"".join(parts)

    def write(self, addr: int, data: bytes) -> None:
        if self._rotating:
            super().write(addr, data)
            return
        self._check_logical(addr, len(data))
        rotate = False
        for phys, s, e in self._segments(addr, len(data)):
            super().write(phys, data[s:e])
            rotate |= self.mapper.note_write()
        if rotate:
            self._rotate()

    def clflush(self, addr: int) -> None:
        if self._rotating:
            super().clflush(addr)
            return
        self._check_logical(addr, 1)
        line = self.config.cache.line_size
        phys = self.mapper.translate(addr // line) * line
        super().clflush(phys)

    def flush_range(self, addr: int, size: int) -> None:
        if self._rotating or size <= 0:
            super().flush_range(addr, size)
            return
        self._check_logical(addr, size)
        line = self.config.cache.line_size
        first = addr // line
        last = (addr + size - 1) // line
        for logical in range(first, last + 1):
            super().clflush(self.mapper.translate(logical) * line)

    # ------------------------------------------------------------------
    # logical introspection

    def peek_volatile(self, addr: int, size: int) -> bytes:
        """Volatile view through the mapping (no cost). Tables' item
        inventories use this with logical addresses, so it translates."""
        self._check_logical(addr, size)
        return b"".join(
            super(WearLevelledRegion, self).peek_volatile(p, e - s)
            for p, s, e in self._segments(addr, size)
        )

    def peek_persistent(self, addr: int, size: int) -> bytes:
        """Persistent image through the mapping (no cost)."""
        self._check_logical(addr, size)
        return b"".join(
            super(WearLevelledRegion, self).peek_persistent(p, e - s)
            for p, s, e in self._segments(addr, size)
        )

    def write_atomic_u64(self, addr: int, value: int) -> None:
        if addr % ATOMIC_UNIT:
            raise ValueError(
                f"atomic write requires {ATOMIC_UNIT}-byte alignment, got addr {addr}"
            )
        # an aligned 8-byte word never straddles lines, so the single
        # translated segment keeps failure atomicity
        self.write(addr, value.to_bytes(8, "little"))
