"""Structured observability: span tracing and a mergeable metrics registry.

Two complementary views of one simulated run:

- :class:`Tracer` (``tracer.py``) attributes every simulated nanosecond
  and persist event to a tree of named spans (hash → level-1 probe →
  group overflow probe → bitmap commit → undo-log write), exportable as
  an aggregate attribution table or a Chrome ``trace_event`` file;
- :class:`MetricsRegistry` (``metrics.py``) counts structural facts —
  probe-length histograms, per-group heat, WAL/rollback counters —
  in plain Python, mergeable across engine worker processes;
- :class:`WindowSeries` / :class:`WindowSampler` (``timeseries.py``)
  slice those facts into fixed-width simulated-time windows — the
  behavior-over-time view (`python -m repro.bench timeline`);
- :class:`FlightRecorder` (``recorder.py``) keeps a bounded ring of
  recent ops + persist events so oracle failures ship their
  last-N-ops context;
- :class:`SloRule` / :func:`evaluate` (``health.py``) turn a series
  into a declarative pass/warn/fail health report.

All of it is strictly observational: with sinks disabled the
simulation is byte-identical, and even enabled they issue zero extra
region events.
"""

from repro.obs.health import (
    STATUSES,
    HealthCheck,
    HealthReport,
    SloRule,
    evaluate,
)
from repro.obs.metrics import (
    N_BUCKETS,
    Counter,
    Gauge,
    Heat,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_label,
    merge_metric_dicts,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.timeseries import (
    SURROGATE_EVENT_NS,
    WindowSampler,
    WindowSeries,
)
from repro.obs.tracer import Tracer

__all__ = [
    "N_BUCKETS",
    "STATUSES",
    "SURROGATE_EVENT_NS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Heat",
    "HealthCheck",
    "HealthReport",
    "Histogram",
    "MetricsRegistry",
    "SloRule",
    "Tracer",
    "WindowSampler",
    "WindowSeries",
    "bucket_index",
    "bucket_label",
    "evaluate",
    "merge_metric_dicts",
]
