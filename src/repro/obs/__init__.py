"""Structured observability: span tracing and a mergeable metrics registry.

Two complementary views of one simulated run:

- :class:`Tracer` (``tracer.py``) attributes every simulated nanosecond
  and persist event to a tree of named spans (hash → level-1 probe →
  group overflow probe → bitmap commit → undo-log write), exportable as
  an aggregate attribution table or a Chrome ``trace_event`` file;
- :class:`MetricsRegistry` (``metrics.py``) counts structural facts —
  probe-length histograms, per-group heat, WAL/rollback counters —
  in plain Python, mergeable across engine worker processes.

Both are strictly observational: with them disabled the simulation is
byte-identical, and even enabled they issue zero extra region events.
"""

from repro.obs.metrics import (
    N_BUCKETS,
    Counter,
    Gauge,
    Heat,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_label,
    merge_metric_dicts,
)
from repro.obs.tracer import Tracer

__all__ = [
    "N_BUCKETS",
    "Counter",
    "Gauge",
    "Heat",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "bucket_index",
    "bucket_label",
    "merge_metric_dicts",
]
