"""Declarative SLO thresholds evaluated into a pass/warn/fail report.

A timeline without judgment is a wall of numbers; serving systems state
their expectations as SLOs — "p99 under X", "abort rate under Y" — and
check behavior against them mechanically. :class:`SloRule` declares one
such threshold (a warn level and a fail level over a named metric);
:func:`evaluate` applies a rule set to a flat ``{metric: value}`` dict
and produces a :class:`HealthReport` whose overall status is the worst
per-rule status. The report is JSON-round-trippable, so
``scripts/ci_perf_gate.py`` gates on the dumped report without
re-deriving anything.

A metric missing from the values dict evaluates to ``warn`` (visible
in the report, not fatal): a renamed metric should never silently turn
a health gate green.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

#: status names from best to worst; list order defines severity
STATUSES: tuple[str, ...] = ("pass", "warn", "fail")


@dataclass(frozen=True)
class SloRule:
    """One declarative threshold over one scalar metric.

    ``direction`` says which side is unhealthy: ``"above"`` fails when
    the value reaches the threshold from below (latency, abort rate),
    ``"below"`` when it sinks to it (throughput floors)."""

    #: metric key in the values dict :func:`evaluate` receives
    metric: str
    #: reaching this level (in the bad direction) marks the rule warn
    warn: float
    #: reaching this level marks the rule — and the report — fail
    fail: float
    direction: str = "above"
    description: str = ""

    def __post_init__(self) -> None:
        if self.direction not in ("above", "below"):
            raise ValueError(f"unknown direction {self.direction!r}")
        bad = (
            self.fail < self.warn
            if self.direction == "above"
            else self.fail > self.warn
        )
        if bad:
            raise ValueError(
                f"rule {self.metric!r}: fail threshold must be at least as "
                f"{self.direction} as the warn threshold"
            )

    def status_of(self, value: "float | None") -> str:
        """Evaluate one observed value against this rule."""
        if value is None:
            return "warn"
        if self.direction == "above":
            if value >= self.fail:
                return "fail"
            return "warn" if value >= self.warn else "pass"
        if value <= self.fail:
            return "fail"
        return "warn" if value <= self.warn else "pass"

    def to_dict(self) -> dict:
        """JSON-ready field dict."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class HealthCheck:
    """One rule's verdict over one observed value."""

    metric: str
    status: str
    #: the observed value (``None`` when the metric was missing)
    value: "float | None"
    warn: float
    fail: float
    direction: str
    description: str = ""

    def to_dict(self) -> dict:
        """JSON-ready field dict."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "HealthCheck":
        """Rebuild a check from :meth:`to_dict` output."""
        return cls(**data)


@dataclass
class HealthReport:
    """Every rule's verdict plus the worst overall status."""

    checks: list[HealthCheck]

    @property
    def status(self) -> str:
        """Worst per-check status ("pass" when there are no checks)."""
        worst = 0
        for check in self.checks:
            worst = max(worst, STATUSES.index(check.status))
        return STATUSES[worst]

    def failing(self) -> list[HealthCheck]:
        """Checks whose status is ``fail``."""
        return [c for c in self.checks if c.status == "fail"]

    def warning(self) -> list[HealthCheck]:
        """Checks whose status is ``warn``."""
        return [c for c in self.checks if c.status == "warn"]

    def as_dict(self) -> dict:
        """JSON-ready dict: overall status plus every check."""
        return {
            "status": self.status,
            "checks": [check.to_dict() for check in self.checks],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HealthReport":
        """Rebuild a report from :meth:`as_dict` output."""
        return cls(
            checks=[HealthCheck.from_dict(c) for c in payload.get("checks", [])]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HealthReport(status={self.status!r}, checks={len(self.checks)})"


def evaluate(
    rules: "list[SloRule] | tuple[SloRule, ...]", values: dict
) -> HealthReport:
    """Apply every rule to ``values`` (``{metric: scalar}``) and return
    the combined report, in rule order."""
    checks = [
        HealthCheck(
            metric=rule.metric,
            status=rule.status_of(values.get(rule.metric)),
            value=values.get(rule.metric),
            warn=rule.warn,
            fail=rule.fail,
            direction=rule.direction,
            description=rule.description,
        )
        for rule in rules
    ]
    return HealthReport(checks=checks)
