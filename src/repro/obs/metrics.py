"""Metrics registry: counters, log2 histograms, gauges and heat maps.

The bench layer attributes *simulated* cost; the metrics layer counts
*structural* facts the paper reasons about but never shows directly —
probe lengths, stash spills, per-group pressure, undo-log traffic.
Four instrument kinds cover everything the instrumented tables need:

- :class:`Counter` — a monotonically increasing integer;
- :class:`Gauge` — a last-write-wins float (merges by ``max``, which is
  the only order-free combination for point-in-time samples);
- :class:`Histogram` — fixed log2 buckets (bucket ``i`` holds values
  whose integer part has bit length ``i``, i.e. ``[2^(i-1), 2^i)``), so
  recording is one ``int.bit_length()`` and merging is element-wise
  addition — no rebinning, ever;
- :class:`Heat` — a sparse integer-keyed counter map with a ``top(k)``
  view, for "which level-2 group is hottest" style questions.

Every instrument (and the :class:`MetricsRegistry` holding them) is
**dict-exportable** (:meth:`~MetricsRegistry.as_dict`), **rebuildable**
(:meth:`~MetricsRegistry.from_dict`) and **mergeable**
(:meth:`~MetricsRegistry.merged` / :func:`merge_metric_dicts`), which is
what lets engine worker processes each fill a private registry and the
parent combine the JSON blocks without losing exactness: all counts are
ints end to end.

Recording never touches a :class:`~repro.nvm.backend.MemoryBackend`, so
metrics collection cannot perturb simulated statistics — the invariance
the observability tests pin.
"""

from __future__ import annotations

#: number of log2 buckets a histogram keeps; bucket 63 absorbs every
#: value ≥ 2^62, far beyond any probe length or simulated-ns delta
N_BUCKETS = 64


def bucket_index(value: float) -> int:
    """Log2 bucket for ``value``: ``int(value).bit_length()``, clamped.

    0 and negatives land in bucket 0, 1 in bucket 1, 2–3 in bucket 2,
    4–7 in bucket 3, and so on — bucket ``i`` covers ``[2^(i-1), 2^i)``.
    """
    v = int(value)
    if v <= 0:
        return 0
    return min(v.bit_length(), N_BUCKETS - 1)


def bucket_label(index: int) -> str:
    """Human-readable range label for bucket ``index`` ("0", "1",
    "2-3", "4-7", ...)."""
    if index <= 0:
        return "0"
    if index == 1:
        return "1"
    lo, hi = 1 << (index - 1), (1 << index) - 1
    return f"{lo}-{hi}"


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n

    def merge(self, other: "Counter") -> None:
        """Fold another counter in (element-wise sum)."""
        self.value += other.value

    def as_dict(self) -> int:
        """Export as its exact integer value."""
        return self.value

    @classmethod
    def from_dict(cls, payload: int) -> "Counter":
        """Rebuild from :meth:`as_dict` output."""
        return cls(int(payload))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Gauge:
    """Last-write-wins point sample (merges by ``max``)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def merge(self, other: "Gauge") -> None:
        """Combine with another gauge; ``max`` is the only merge that
        does not depend on worker ordering."""
        self.value = max(self.value, other.value)

    def as_dict(self) -> float:
        """Export as its numeric value."""
        return self.value

    @classmethod
    def from_dict(cls, payload: float) -> "Gauge":
        """Rebuild from :meth:`as_dict` output."""
        return cls(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.value})"


class Histogram:
    """Fixed log2-bucket histogram with exact count/sum/min/max.

    Buckets never move, so histograms recorded in different processes
    merge by element-wise addition; quantile estimates come from the
    bucket upper bounds (exact to within one power of two, which is the
    resolution the probe-length and latency analyses need).
    """

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * N_BUCKETS
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def record(self, value: float) -> None:
        """Add one observation."""
        self.counts[bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q``-quantile
        observation (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target and c:
                return float((1 << i) - 1) if i else 0.0
        return float(self.max or 0.0)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (buckets add; extremes combine)."""
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        for bound in (other.min,):
            if bound is not None and (self.min is None or bound < self.min):
                self.min = bound
        for bound in (other.max,):
            if bound is not None and (self.max is None or bound > self.max):
                self.max = bound

    def as_dict(self) -> dict:
        """Export counts and summary stats (buckets trimmed of trailing
        zeros; bucket index is position)."""
        last = 0
        for i, c in enumerate(self.counts):
            if c:
                last = i + 1
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": self.counts[:last],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        """Rebuild from :meth:`as_dict` output."""
        hist = cls()
        buckets = payload.get("buckets", [])
        hist.counts[: len(buckets)] = [int(c) for c in buckets]
        hist.count = int(payload.get("count", 0))
        hist.total = payload.get("sum", 0.0)
        hist.min = payload.get("min")
        hist.max = payload.get("max")
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, mean={self.mean:.2f})"


class Heat:
    """Sparse integer-keyed counter map (per-group pressure, top-k)."""

    __slots__ = ("cells",)

    def __init__(self) -> None:
        self.cells: dict[int, int] = {}

    def touch(self, key: int, n: int = 1) -> None:
        """Add ``n`` hits to ``key``'s cell."""
        self.cells[key] = self.cells.get(key, 0) + n

    @property
    def total(self) -> int:
        """Sum of all cells."""
        return sum(self.cells.values())

    def top(self, k: int = 10) -> list[tuple[int, int]]:
        """The ``k`` hottest ``(key, hits)`` pairs, hottest first (ties
        broken by key for determinism)."""
        return sorted(self.cells.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

    def merge(self, other: "Heat") -> None:
        """Fold another heat map in (cells add)."""
        for key, n in other.cells.items():
            self.touch(key, n)

    def as_dict(self) -> dict:
        """Export the full map with string keys (JSON object keys)."""
        return {str(k): v for k, v in sorted(self.cells.items())}

    @classmethod
    def from_dict(cls, payload: dict) -> "Heat":
        """Rebuild from :meth:`as_dict` output."""
        heat = cls()
        for key, n in payload.items():
            heat.cells[int(key)] = int(n)
        return heat

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Heat(cells={len(self.cells)}, total={self.total})"


#: registry section name per instrument class, in export order
_KINDS: tuple[tuple[str, type], ...] = (
    ("counters", Counter),
    ("gauges", Gauge),
    ("histograms", Histogram),
    ("heats", Heat),
)


class MetricsRegistry:
    """Named instruments, one flat namespace per kind.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name)`` /
    ``heat(name)`` get-or-create, so instrumented code never has to
    pre-declare; a name is bound to one kind for the registry's lifetime
    (requesting it as another kind raises).
    """

    def __init__(self) -> None:
        self._sections: dict[str, dict[str, object]] = {
            section: {} for section, _ in _KINDS
        }

    def _get(self, section: str, cls: type, name: str):
        for other, instruments in self._sections.items():
            if other != section and name in instruments:
                raise ValueError(
                    f"metric {name!r} already registered under {other!r}"
                )
        instruments = self._sections[section]
        inst = instruments.get(name)
        if inst is None:
            inst = instruments[name] = cls()
        return inst

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get("counters", Counter, name)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get("gauges", Gauge, name)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._get("histograms", Histogram, name)

    def heat(self, name: str) -> Heat:
        """Get or create the heat map called ``name``."""
        return self._get("heats", Heat, name)

    def merged(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Return a new registry combining ``self`` and ``other``
        (inputs untouched)."""
        out = MetricsRegistry()
        for source in (self, other):
            for (section, cls) in _KINDS:
                for name, inst in source._sections[section].items():
                    out._get(section, cls, name).merge(inst)
        return out

    def as_dict(self) -> dict:
        """Export every instrument, grouped by kind — the ``metrics``
        block carried in benchmark results and cache entries."""
        return {
            section: {
                name: inst.as_dict()
                for name, inst in sorted(self._sections[section].items())
            }
            for section, _ in _KINDS
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`as_dict` output."""
        registry = cls()
        for section, inst_cls in _KINDS:
            for name, data in payload.get(section, {}).items():
                registry._sections[section][name] = inst_cls.from_dict(data)
        return registry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = {s: len(d) for s, d in self._sections.items() if d}
        return f"MetricsRegistry({sizes})"


def merge_metric_dicts(payloads: "list[dict]") -> dict:
    """Merge exported metrics blocks (e.g. one per engine worker) into
    one, preserving integer exactness — the cross-process aggregation
    path."""
    merged = MetricsRegistry()
    for payload in payloads:
        merged = merged.merged(MetricsRegistry.from_dict(payload))
    return merged.as_dict()
