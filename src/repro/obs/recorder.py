"""Flight recorder: bounded rings of recent ops and persist events.

When a shadow oracle or a crash-matrix replay reports a violation, the
aggregate numbers say *that* something broke; the question a debugger
asks is *what just happened* — the last N operations each client ran
and the persist events around the failure. :class:`FlightRecorder`
keeps exactly that, in bounded per-client deques, so a campaign over
thousands of replays carries a constant-memory black box instead of a
full trace.

Recording is append-to-a-``deque`` only — no region reads, no clocks
of its own (callers stamp entries with whatever clock or event index
they already track) — so an attached recorder never perturbs the
simulated event stream (pinned alongside the sampler invariance test).

:func:`~repro.concurrency.scheduler.run_concurrent` feeds one and dumps
it into :class:`~repro.concurrency.scheduler.ConcurrentRunResult`
``failure_context`` when a shadow check fails;
:func:`~repro.nvm.crashpoint.run_campaign` feeds one during trace
recording and attaches the context trimmed to the minimal failing
prefix, so every violation report ships its last-N-ops story.
"""

from __future__ import annotations

from collections import deque
from typing import Deque


class FlightRecorder:
    """Bounded rings of recent per-client ops and global persist events.

    ``capacity`` bounds each client's op ring; ``event_capacity``
    bounds the shared persist-event ring. Entries are plain dicts (the
    caller chooses the fields, stamping clocks/indices itself), so a
    dump is JSON-ready as-is.
    """

    def __init__(self, capacity: int = 32, event_capacity: int = 128) -> None:
        if capacity < 1 or event_capacity < 1:
            raise ValueError("capacity and event_capacity must be positive")
        self.capacity = capacity
        self.event_capacity = event_capacity
        self._ops: dict[int, Deque[dict]] = {}
        self._events: Deque[dict] = deque(maxlen=event_capacity)
        #: totals beyond the rings (how much history was dropped)
        self.ops_seen = 0
        self.events_seen = 0

    def record_op(self, client: int, **fields) -> None:
        """Append one op entry to ``client``'s ring (oldest falls off)."""
        ring = self._ops.get(client)
        if ring is None:
            ring = self._ops[client] = deque(maxlen=self.capacity)
        ring.append(fields)
        self.ops_seen += 1

    def record_event(self, **fields) -> None:
        """Append one persist-event entry to the shared ring."""
        self._events.append(fields)
        self.events_seen += 1

    def dump(self) -> dict:
        """JSON-ready snapshot: per-client op rings (string client
        keys), the event ring, and how much history the rings have
        dropped."""
        return {
            "capacity": self.capacity,
            "event_capacity": self.event_capacity,
            "ops_seen": self.ops_seen,
            "events_seen": self.events_seen,
            "ops": {
                str(client): list(ring)
                for client, ring in sorted(self._ops.items())
            },
            "events": list(self._events),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlightRecorder(clients={len(self._ops)}, "
            f"ops_seen={self.ops_seen}, events_seen={self.events_seen})"
        )
