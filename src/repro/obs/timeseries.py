"""Windowed time-series telemetry over the simulated clock.

Aggregate metrics answer "how much in total"; the interesting behavior
of a serving system is transient — the p99 spike *while* a segment
split is in flight, the abort storm as Zipfian contention ramps, wear
concentrating on a hot group. :class:`WindowSeries` slices the
simulated clock into fixed-width windows and keeps, per window, the
same four instrument kinds as :class:`~repro.obs.MetricsRegistry`:

- **counters** — events per window (ops, writes, flushes, fences,
  aborts, retries, splits);
- **gauges** — point samples per window, last write wins (occupancy);
- **histograms** — per-window log2 :class:`~repro.obs.Histogram`
  (latency and probe-length quantiles *within* each window);
- **heats** — per-window sparse :class:`~repro.obs.Heat` maps
  (per-line wear).

A series is JSON-round-trippable (:meth:`WindowSeries.as_dict` /
:meth:`WindowSeries.from_dict`), mergeable across engine workers
(:meth:`WindowSeries.merge` — counters/histograms/heats add, gauges
``max``), exactly re-bucketable to coarser windows
(:meth:`WindowSeries.rebucketed`), and exportable as Chrome
``trace_event`` counter ("C") events so one trace file shows spans and
timelines together (:meth:`WindowSeries.chrome_counter_events`).

:class:`WindowSampler` attaches a series to a backend the same way the
:class:`~repro.obs.Tracer` does — a chained ``event_hook`` plus (when
the region tracks wear) a chained :class:`~repro.nvm.wear.WearMap`
observer — and restores both exactly on detach. Sampling reads clocks
and observes hooks only; it never issues a region event, so the
simulated event stream is byte-identical with a sampler attached
(pinned by ``tests/test_timeseries.py``).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.metrics import Heat, Histogram

#: surrogate simulated ns per persist event on backends without a
#: costed clock (matches the concurrency scheduler's surrogate)
SURROGATE_EVENT_NS = 100.0

#: section name per per-window instrument kind, in export order
_KINDS: tuple[str, ...] = ("counters", "gauges", "histograms", "heats")


class WindowSeries:
    """Per-window instruments keyed by ``int(t_ns // window_ns)``.

    Windows are *simulated-time* slices: the clock fed to every
    recording call decides the window, so a series is a pure function
    of the event stream and merges exactly across workers. A channel
    name is bound to one kind for the series' lifetime (recording it
    as another kind raises, mirroring the metrics registry).
    """

    def __init__(self, window_ns: float) -> None:
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        self.window_ns = float(window_ns)
        self._counters: dict[str, dict[int, int]] = {}
        self._gauges: dict[str, dict[int, float]] = {}
        self._histograms: dict[str, dict[int, Histogram]] = {}
        self._heats: dict[str, dict[int, Heat]] = {}
        self._kind_of: dict[str, str] = {}

    # ------------------------------------------------------------------
    # recording

    def _channel(self, section: str, name: str) -> dict:
        bound = self._kind_of.get(name)
        if bound is None:
            self._kind_of[name] = section
        elif bound != section:
            raise ValueError(
                f"channel {name!r} already recorded under {bound!r}"
            )
        return getattr(self, f"_{section}")

    def window_of(self, t_ns: float) -> int:
        """Window index containing simulated time ``t_ns``."""
        return int(t_ns // self.window_ns)

    def inc(self, name: str, t_ns: float, n: int = 1) -> None:
        """Add ``n`` to counter channel ``name`` in ``t_ns``'s window."""
        channel = self._channel("counters", name).setdefault(name, {})
        w = self.window_of(t_ns)
        channel[w] = channel.get(w, 0) + n

    def set_gauge(self, name: str, t_ns: float, value: float) -> None:
        """Record a point sample (last write in a window wins)."""
        self._channel("gauges", name).setdefault(name, {})[
            self.window_of(t_ns)
        ] = float(value)

    def observe(self, name: str, t_ns: float, value: float) -> None:
        """Add one observation to histogram channel ``name``."""
        channel = self._channel("histograms", name).setdefault(name, {})
        w = self.window_of(t_ns)
        hist = channel.get(w)
        if hist is None:
            hist = channel[w] = Histogram()
        hist.record(value)

    def touch(self, name: str, t_ns: float, key: int, n: int = 1) -> None:
        """Add ``n`` hits to ``key`` in heat channel ``name``."""
        channel = self._channel("heats", name).setdefault(name, {})
        w = self.window_of(t_ns)
        heat = channel.get(w)
        if heat is None:
            heat = channel[w] = Heat()
        heat.touch(key, n)

    def record_event(
        self, kind: str, t_ns: float, addr: int = 0, size: int = 0
    ) -> None:
        """Fold one persist event into the standard channels: ``kind``
        bumps the ``writes`` / ``flushes`` / ``fences`` counter of
        ``t_ns``'s window."""
        if kind == "write":
            self.inc("writes", t_ns)
        elif kind == "flush":
            self.inc("flushes", t_ns)
        else:
            self.inc("fences", t_ns)

    # ------------------------------------------------------------------
    # views

    def windows(self) -> list[int]:
        """Sorted union of every window index any channel touched."""
        seen: set[int] = set()
        for section in _KINDS:
            for channel in getattr(self, f"_{section}").values():
                seen.update(channel)
        return sorted(seen)

    def channels(self) -> dict[str, str]:
        """Channel name → kind for every recorded channel."""
        return dict(sorted(self._kind_of.items()))

    def counter_values(
        self, name: str, windows: "list[int] | None" = None
    ) -> list[int]:
        """Counter ``name``'s per-window values over ``windows``
        (default: every touched window), 0 where it never fired."""
        channel = self._counters.get(name, {})
        return [channel.get(w, 0) for w in (windows or self.windows())]

    def gauge_values(
        self, name: str, windows: "list[int] | None" = None
    ) -> list[float]:
        """Gauge ``name``'s per-window samples, carrying the last seen
        value forward through windows without a sample (0.0 before the
        first)."""
        channel = self._gauges.get(name, {})
        out: list[float] = []
        last = 0.0
        for w in windows or self.windows():
            last = channel.get(w, last)
            out.append(last)
        return out

    def quantile_values(
        self, name: str, q: float, windows: "list[int] | None" = None
    ) -> list[float]:
        """Histogram ``name``'s per-window ``q``-quantile (0.0 in
        windows with no observations)."""
        channel = self._histograms.get(name, {})
        out = []
        for w in windows or self.windows():
            hist = channel.get(w)
            out.append(hist.quantile(q) if hist is not None else 0.0)
        return out

    def heat_totals(
        self, name: str, windows: "list[int] | None" = None
    ) -> list[int]:
        """Heat ``name``'s per-window total hits."""
        channel = self._heats.get(name, {})
        out = []
        for w in windows or self.windows():
            heat = channel.get(w)
            out.append(heat.total if heat is not None else 0)
        return out

    def merged_heat(self, name: str) -> Heat:
        """Heat ``name`` folded across every window (whole-run view)."""
        merged = Heat()
        for heat in self._heats.get(name, {}).values():
            merged.merge(heat)
        return merged

    # ------------------------------------------------------------------
    # merge / rebucket / round trip

    def merge(self, other: "WindowSeries") -> None:
        """Fold ``other`` in: counters/histograms/heats add per window,
        gauges combine by ``max`` (the order-free choice). Window
        widths must match and a channel must keep its kind — anything
        else raises rather than silently mixing shapes."""
        if other.window_ns != self.window_ns:
            raise ValueError(
                f"cannot merge series with window_ns {other.window_ns} "
                f"into window_ns {self.window_ns}"
            )
        for name, channel in other._counters.items():
            mine = self._channel("counters", name).setdefault(name, {})
            for w, n in channel.items():
                mine[w] = mine.get(w, 0) + n
        for name, channel in other._gauges.items():
            mine = self._channel("gauges", name).setdefault(name, {})
            for w, v in channel.items():
                mine[w] = max(mine.get(w, v), v)
        for name, channel in other._histograms.items():
            mine = self._channel("histograms", name).setdefault(name, {})
            for w, hist in channel.items():
                if w not in mine:
                    mine[w] = Histogram()
                mine[w].merge(hist)
        for name, channel in other._heats.items():
            mine = self._channel("heats", name).setdefault(name, {})
            for w, heat in channel.items():
                if w not in mine:
                    mine[w] = Heat()
                mine[w].merge(heat)

    def rebucketed(self, factor: int) -> "WindowSeries":
        """A new series with ``factor``-times-wider windows (window
        ``w`` folds into ``w // factor``) — exact, since counters,
        histograms and heats merge by addition; gauges keep the
        ``max`` of their folded windows."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        out = WindowSeries(self.window_ns * factor)
        if factor == 1:
            out.merge(self)
            return out
        for name, channel in self._counters.items():
            mine = out._channel("counters", name).setdefault(name, {})
            for w, n in channel.items():
                mine[w // factor] = mine.get(w // factor, 0) + n
        for name, channel in self._gauges.items():
            mine = out._channel("gauges", name).setdefault(name, {})
            for w, v in channel.items():
                mine[w // factor] = max(mine.get(w // factor, v), v)
        for name, channel in self._histograms.items():
            mine = out._channel("histograms", name).setdefault(name, {})
            for w, hist in channel.items():
                target = mine.setdefault(w // factor, Histogram())
                target.merge(hist)
        for name, channel in self._heats.items():
            mine = out._channel("heats", name).setdefault(name, {})
            for w, heat in channel.items():
                target = mine.setdefault(w // factor, Heat())
                target.merge(heat)
        return out

    def as_dict(self) -> dict:
        """Export every channel with string window keys (JSON object
        keys), sorted for byte-stable dumps."""
        return {
            "window_ns": self.window_ns,
            "counters": {
                name: {str(w): n for w, n in sorted(channel.items())}
                for name, channel in sorted(self._counters.items())
            },
            "gauges": {
                name: {str(w): v for w, v in sorted(channel.items())}
                for name, channel in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    str(w): hist.as_dict() for w, hist in sorted(channel.items())
                }
                for name, channel in sorted(self._histograms.items())
            },
            "heats": {
                name: {
                    str(w): heat.as_dict() for w, heat in sorted(channel.items())
                }
                for name, channel in sorted(self._heats.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WindowSeries":
        """Rebuild a series from :meth:`as_dict` output."""
        series = cls(payload["window_ns"])
        for name, channel in payload.get("counters", {}).items():
            series._channel("counters", name)[name] = {
                int(w): int(n) for w, n in channel.items()
            }
        for name, channel in payload.get("gauges", {}).items():
            series._channel("gauges", name)[name] = {
                int(w): float(v) for w, v in channel.items()
            }
        for name, channel in payload.get("histograms", {}).items():
            series._channel("histograms", name)[name] = {
                int(w): Histogram.from_dict(data) for w, data in channel.items()
            }
        for name, channel in payload.get("heats", {}).items():
            series._channel("heats", name)[name] = {
                int(w): Heat.from_dict(data) for w, data in channel.items()
            }
        return series

    # ------------------------------------------------------------------
    # Chrome export

    def chrome_counter_events(
        self, *, pid: int = 1, quantile: float = 0.99
    ) -> list[dict]:
        """Counter ("C") ``trace_event`` records: one point per
        (channel, window) at the window's start, counters and gauges by
        value, histograms as their per-window ``quantile`` (suffixed
        ``.p99``-style), heats as per-window totals. Merged with a
        :meth:`~repro.obs.Tracer.chrome_events` span list, one trace
        file shows spans and timelines on the same simulated-clock
        axis."""
        out: list[dict] = []
        suffix = f".p{int(round(quantile * 100))}"

        def emit(name: str, w: int, value) -> None:
            out.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": w * self.window_ns / 1e3,
                    "pid": pid,
                    "args": {name: value},
                }
            )

        for name, channel in sorted(self._counters.items()):
            for w, n in sorted(channel.items()):
                emit(name, w, n)
        for name, channel in sorted(self._gauges.items()):
            for w, v in sorted(channel.items()):
                emit(name, w, v)
        for name, channel in sorted(self._histograms.items()):
            for w, hist in sorted(channel.items()):
                emit(name + suffix, w, hist.quantile(quantile))
        for name, channel in sorted(self._heats.items()):
            for w, heat in sorted(channel.items()):
                emit(name + ".touches", w, heat.total)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowSeries(window_ns={self.window_ns}, "
            f"channels={len(self._kind_of)}, windows={len(self.windows())})"
        )


class WindowSampler:
    """Feeds a :class:`WindowSeries` from a backend's event stream.

    Attaching chains the backend's ``event_hook`` (every shard's, for a
    sharded backend) exactly like the tracer does, counting ``writes``
    / ``flushes`` / ``fences`` per window; when a region tracks wear
    (:class:`~repro.nvm.memory.SimConfig` ``track_wear``), the wear
    map's observer is chained too and every medium line write lands in
    the ``wear_heat`` heat channel. :meth:`detach` restores every hook
    to exactly what it was.

    The window clock is, in order of preference: an explicit ``clock``
    callable, the first attached backend's ``stats.sim_time_ns``, or a
    deterministic per-event surrogate (:data:`SURROGATE_EVENT_NS` per
    event) for backends without a costed clock.
    """

    def __init__(
        self,
        series: WindowSeries,
        *,
        clock: "Callable[[], float] | None" = None,
    ) -> None:
        self.series = series
        self._clock = clock
        self._stats: Any = None
        self._surrogate_ns = 0.0
        self._attached: list[tuple[Any, Callable | None]] = []
        self._wear_attached: list[tuple[Any, Callable | None]] = []

    def _now(self) -> float:
        """Current simulated time for window assignment."""
        if self._clock is not None:
            return self._clock()
        if self._stats is not None:
            return float(self._stats.sim_time_ns)
        return self._surrogate_ns

    def attach(self, backend: Any) -> None:
        """Start sampling ``backend`` (each shard, when sharded):
        chain its ``event_hook`` and, where present, its wear map's
        ``on_record`` observer."""
        targets = list(backend.shards) if hasattr(backend, "shards") else [backend]
        for target in targets:
            prev = target.event_hook
            target.event_hook = self._chained(prev)
            self._attached.append((target, prev))
            if self._stats is None and self._clock is None:
                stats = getattr(target, "stats", None)
                if stats is not None and hasattr(stats, "sim_time_ns"):
                    self._stats = stats
            wear = getattr(target, "wear", None)
            if wear is not None:
                prev_obs = wear.on_record
                wear.on_record = self._chained_wear(prev_obs)
                self._wear_attached.append((wear, prev_obs))

    def detach(self) -> None:
        """Stop sampling: restore every chained hook and wear observer
        to exactly its pre-:meth:`attach` value."""
        for target, prev in reversed(self._attached):
            target.event_hook = prev
        self._attached.clear()
        for wear, prev in reversed(self._wear_attached):
            wear.on_record = prev
        self._wear_attached.clear()
        self._stats = None

    def _chained(self, prev: "Callable | None") -> Callable:
        if prev is None:
            return self._on_event

        def hook(kind: str, addr: int, size: int) -> None:
            prev(kind, addr, size)
            self._on_event(kind, addr, size)

        return hook

    def _chained_wear(self, prev: "Callable | None") -> Callable:
        if prev is None:
            return self._on_wear

        def observer(line: int) -> None:
            prev(line)
            self._on_wear(line)

        return observer

    def _on_event(self, kind: str, addr: int, size: int) -> None:
        self.series.record_event(kind, self._now(), addr, size)
        if self._clock is None and self._stats is None:
            self._surrogate_ns += SURROGATE_EVENT_NS

    def _on_wear(self, line: int) -> None:
        self.series.touch("wear_heat", self._now(), line)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowSampler(attached={len(self._attached)}, "
            f"wear={len(self._wear_attached)})"
        )
