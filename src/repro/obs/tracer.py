"""Span tracer: attribute every simulated nanosecond and persist event.

A :class:`Tracer` records a tree of named spans around region activity.
Each span captures, between its ``push`` and ``pop``:

- the **simulated-time delta** and cache hit/miss/NVM-write deltas,
  read from the attached backend's :class:`~repro.nvm.stats.MemStats`
  via cost-free snapshots — spans measure *simulated* cost, never
  wall-clock;
- the **persist events by kind** (``write`` / ``flush`` / ``fence``),
  observed through the backend's ``event_hook`` in program order.

Two outputs come out of one recording:

- an **aggregate by span path** (:meth:`Tracer.span_summary`) —
  ``"insert/l2_probe"``-style keys mapping to inclusive and self cost,
  the attribution table of ``python -m repro.bench profile``;
- an optional **event log** (:meth:`Tracer.chrome_trace`) in Chrome
  ``trace_event`` format (load it at ``chrome://tracing`` or in
  Perfetto), with the simulated clock as the timeline.

Instrumented code guards every call site with ``if tracer is not
None:`` — a tracer that was never created costs the disabled path two
local-variable tests per stage and **zero simulated events**, so
simulation results are byte-identical with tracing off (pinned by
``tests/test_obs.py``). Attaching chains any pre-existing ``event_hook``
and :meth:`Tracer.detach` restores it exactly, including the raw
backend's no-hook fast path.
"""

from __future__ import annotations

from typing import Any, Callable

#: MemStats fields each span snapshots, in capture order; sim_time_ns
#: must stay first (reconciliation sums index 0)
_FIELDS = (
    "sim_time_ns",
    "cache_hits",
    "cache_misses",
    "reads",
    "writes",
    "flushes",
    "fences",
    "nvm_bytes_written",
)

#: per-span exported delta names, aligned with ``_FIELDS``
_DELTA_NAMES = (
    "sim_ns",
    "cache_hits",
    "cache_misses",
    "reads",
    "writes",
    "flushes",
    "fences",
    "nvm_bytes_written",
)

_ZEROS = (0.0,) + (0,) * (len(_FIELDS) - 1)


class _Frame:
    """One live (un-popped) span."""

    __slots__ = ("name", "path", "start", "ev_write", "ev_flush", "ev_fence",
                 "child_ns")

    def __init__(self, name: str, path: str, start: tuple) -> None:
        self.name = name
        self.path = path
        self.start = start
        #: persist events observed while this frame (or a child) is live;
        #: children roll their totals up at pop, so counts are inclusive
        self.ev_write = 0
        self.ev_flush = 0
        self.ev_fence = 0
        #: inclusive simulated ns of completed children (for self time)
        self.child_ns = 0.0


class _SpanAgg:
    """Accumulated cost of every completed span sharing one path."""

    __slots__ = ("count", "deltas", "self_ns", "ev_write", "ev_flush",
                 "ev_fence")

    def __init__(self) -> None:
        self.count = 0
        self.deltas = list(_ZEROS)
        self.self_ns = 0.0
        self.ev_write = 0
        self.ev_flush = 0
        self.ev_fence = 0

    def as_dict(self) -> dict:
        """Export as the ``spans`` entry carried in bench results."""
        out: dict[str, Any] = {"count": self.count}
        out.update(zip(_DELTA_NAMES, self.deltas))
        out["self_ns"] = self.self_ns
        out["ev_write"] = self.ev_write
        out["ev_flush"] = self.ev_flush
        out["ev_fence"] = self.ev_fence
        return out


class _SpanCtx:
    """Reusable ``with`` adapter over :meth:`Tracer.push` / ``pop``."""

    __slots__ = ("_tracer", "_name")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_SpanCtx":
        self._tracer.push(self._name)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer.pop()
        return False


class Tracer:
    """Records a span tree over one backend's simulated activity.

    Parameters:

    - ``backend`` — the :class:`~repro.nvm.backend.MemoryBackend` (or
      :class:`~repro.nvm.backend.ShardedBackend`) to observe; attaching
      installs a chained ``event_hook`` on it (each shard, when
      sharded). ``None`` defers to a later :meth:`attach`.
    - ``keep_events`` — also keep per-span-instance records for the
      Chrome trace export (aggregation alone is unbounded-safe; the
      event log is capped).
    - ``max_events`` — event-log cap; completed spans beyond it still
      aggregate but are dropped from the export (``events_dropped``
      reports how many).
    """

    def __init__(
        self,
        backend: Any = None,
        *,
        keep_events: bool = True,
        max_events: int = 100_000,
    ) -> None:
        self._src: Any = None
        self._attached: list[tuple[Any, Callable | None]] = []
        self._stack: list[_Frame] = []
        self._agg: dict[str, _SpanAgg] = {}
        self.keep_events = keep_events
        self.max_events = max_events
        #: completed span instances: (path, depth, start_ns, dur_ns,
        #: ev_write, ev_flush, ev_fence, cache_misses)
        self._events: list[tuple] = []
        self.events_dropped = 0
        #: persist events observed outside any span
        self.untracked_events = {"write": 0, "flush": 0, "fence": 0}
        if backend is not None:
            self.attach(backend)

    # ------------------------------------------------------------------
    # backend attachment

    def attach(self, backend: Any) -> None:
        """Start observing ``backend``: chain this tracer onto its
        ``event_hook`` (every shard's, for a sharded backend) and use
        its ``stats`` for span snapshots."""
        targets = list(backend.shards) if hasattr(backend, "shards") else [backend]
        for target in targets:
            prev = target.event_hook
            target.event_hook = self._chained(prev)
            self._attached.append((target, prev))
        self._src = backend

    def detach(self) -> None:
        """Stop observing: restore every chained ``event_hook`` to
        exactly what it was before :meth:`attach` (re-enabling any
        backend fast path that hooks disable)."""
        for target, prev in reversed(self._attached):
            target.event_hook = prev
        self._attached.clear()
        self._src = None

    def _chained(self, prev: Callable | None) -> Callable:
        if prev is None:
            return self._on_event

        def hook(kind: str, addr: int, size: int) -> None:
            prev(kind, addr, size)
            self._on_event(kind, addr, size)

        return hook

    def _on_event(self, kind: str, addr: int, size: int) -> None:
        stack = self._stack
        if not stack:
            self.untracked_events[kind] = self.untracked_events.get(kind, 0) + 1
            return
        frame = stack[-1]
        if kind == "write":
            frame.ev_write += 1
        elif kind == "flush":
            frame.ev_flush += 1
        else:
            frame.ev_fence += 1

    def _grab(self) -> tuple:
        src = self._src
        if src is None:
            return _ZEROS
        stats = src.stats
        return (
            stats.sim_time_ns,
            stats.cache_hits,
            stats.cache_misses,
            stats.reads,
            stats.writes,
            stats.flushes,
            stats.fences,
            stats.nvm_bytes_written,
        )

    # ------------------------------------------------------------------
    # span recording

    def span(self, name: str) -> _SpanCtx:
        """Context manager recording one span called ``name`` (nested
        under the currently live span, if any)."""
        return _SpanCtx(self, name)

    def push(self, name: str) -> None:
        """Open a span. Callers on hot paths use guarded ``push``/``pop``
        pairs instead of :meth:`span` to keep the disabled path free of
        allocations."""
        stack = self._stack
        path = f"{stack[-1].path}/{name}" if stack else name
        stack.append(_Frame(name, path, self._grab()))

    def pop(self) -> None:
        """Close the innermost span and account its deltas."""
        frame = self._stack.pop()
        end = self._grab()
        start = frame.start
        agg = self._agg.get(frame.path)
        if agg is None:
            agg = self._agg[frame.path] = _SpanAgg()
        agg.count += 1
        deltas = agg.deltas
        for i in range(len(_FIELDS)):
            deltas[i] += end[i] - start[i]
        dur = end[0] - start[0]
        agg.self_ns += dur - frame.child_ns
        agg.ev_write += frame.ev_write
        agg.ev_flush += frame.ev_flush
        agg.ev_fence += frame.ev_fence
        stack = self._stack
        if stack:
            parent = stack[-1]
            parent.child_ns += dur
            parent.ev_write += frame.ev_write
            parent.ev_flush += frame.ev_flush
            parent.ev_fence += frame.ev_fence
        if self.keep_events:
            if len(self._events) < self.max_events:
                self._events.append(
                    (
                        frame.path,
                        len(stack),
                        start[0],
                        dur,
                        frame.ev_write,
                        frame.ev_flush,
                        frame.ev_fence,
                        end[2] - start[2],
                    )
                )
            else:
                self.events_dropped += 1

    def unwind(self) -> None:
        """Pop every live span (cleanup after an exception that escaped
        instrumented code, e.g. a simulated power failure)."""
        while self._stack:
            self.pop()

    @property
    def depth(self) -> int:
        """Number of currently live (un-popped) spans."""
        return len(self._stack)

    # ------------------------------------------------------------------
    # outputs

    def span_summary(self) -> dict[str, dict]:
        """Aggregated cost per span path (inclusive deltas, self time,
        persist events), sorted by inclusive simulated ns, heaviest
        first."""
        items = sorted(
            self._agg.items(), key=lambda kv: (-kv[1].deltas[0], kv[0])
        )
        return {path: agg.as_dict() for path, agg in items}

    def chrome_events(self, *, pid: int = 1, tid: int = 1) -> list[dict]:
        """Completed spans as Chrome ``trace_event`` complete ("X")
        events. Timestamps are the *simulated* clock in microseconds —
        the flamegraph x-axis is simulated time, not wall-clock."""
        out = []
        for path, depth, start_ns, dur_ns, w, f, fe, misses in self._events:
            out.append(
                {
                    "name": path.rsplit("/", 1)[-1],
                    "cat": path,
                    "ph": "X",
                    "ts": start_ns / 1e3,
                    "dur": dur_ns / 1e3,
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "writes": w,
                        "flushes": f,
                        "fences": fe,
                        "cache_misses": misses,
                    },
                }
            )
        return out

    def chrome_trace(
        self,
        *,
        pid: int = 1,
        tid: int = 1,
        counter_events: "list[dict] | None" = None,
    ) -> dict:
        """A complete Chrome trace object (``{"traceEvents": [...]}``)
        ready to ``json.dump`` for ``chrome://tracing`` / Perfetto.

        ``counter_events`` appends counter ("C") records — e.g. a
        :meth:`~repro.obs.timeseries.WindowSeries.chrome_counter_events`
        export — after the span events, so one file shows the span
        flamegraph and the per-window timelines on the same
        simulated-clock axis."""
        events = self.chrome_events(pid=pid, tid=tid)
        if counter_events:
            events.extend(counter_events)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": {
                "clock": "simulated",
                "events_dropped": self.events_dropped,
            },
        }

    def as_dict(self) -> dict:
        """Export the aggregate view (the ``spans`` block of bench
        results): span summary plus untracked-event accounting."""
        return {
            "spans": self.span_summary(),
            "untracked_events": dict(self.untracked_events),
            "events_dropped": self.events_dropped,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(paths={len(self._agg)}, live={len(self._stack)}, "
            f"events={len(self._events)})"
        )
