"""Simulated networked serving tier over the sharded table.

Composes three deterministic pieces (ROADMAP item 3):

- :mod:`repro.serving.netmodel` — a frozen per-message network cost
  model (hop + overhead + bandwidth, in simulated ns) in the style of
  the NVM latency presets;
- :mod:`repro.serving.router` — per-shard FIFO request queues with
  doorbell batching, flushing through the table's coalesced batch APIs
  and metering service time on each shard's simulated clock;
- :mod:`repro.serving.client` — M step-generator clients with
  client-side location caches (key → segment hint, repaired by
  miss-and-retry — stale hints can miss but never lie), driven by the
  min-clock interleaver discipline of :mod:`repro.concurrency`.

Everything runs on the simulated clock: no sockets, no threads, no
wall-time — a serving run is a pure function of (table, streams,
parameters, seed), which is what lets the ``serving`` benchmark cache
and gate its numbers like every other experiment.
"""

from repro.serving.client import ServedRecord, ServingResult, run_serving
from repro.serving.netmodel import (
    LOOPBACK,
    NETWORK_PRESETS,
    RDMA_DC,
    TCP_LAN,
    NetworkModel,
)
from repro.serving.router import Request, Router, ServedReply

__all__ = [
    "LOOPBACK",
    "NETWORK_PRESETS",
    "RDMA_DC",
    "TCP_LAN",
    "NetworkModel",
    "Request",
    "Router",
    "ServedRecord",
    "ServedReply",
    "ServingResult",
    "run_serving",
]
