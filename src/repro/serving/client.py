"""Simulated serving clients: location caching over the routed path.

M logical clients drive one :class:`~repro.serving.router.Router` under
the same discipline the concurrency layer established (DESIGN.md
decision 14): each client is a *step generator* yielding the simulated
nanoseconds its current step consumed, and the driver always resumes
the client with the smallest simulated clock (ties broken by a seeded
permutation). Doorbell events — batch-full and batch-timer flushes —
live on a simulated-time heap and are processed before any client whose
clock has passed them, so the whole run (interleaving, queue contents,
op results, final table bytes) is a pure function of (table, streams,
parameters, seed).

Each client keeps a **location cache**: key → (shard, segment info
address), fed from the location the router reports with every routed
reply. A later query for a hinted key takes the one-sided fast path —
pay the wire cost, probe that exact segment directly (its simulated NVM
cost lands on the client's clock), and skip the shard queue entirely.
Hints go stale when a segment split moves the key; the protocol is
*miss-and-retry*: splits sweep moved tenants out of the victim segment
and updates are in-place, so a stale hint can only ever **miss** —
never return a wrong value — and a hinted miss invalidates the hint and
re-routes through the server, whose reply re-primes the cache. Every
one-sided hit is checked against the shadow model at its linearization
point (``wrong_answers`` must stay 0), and the final table contents
must equal the shadow applied in flush order.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from dataclasses import dataclass, field

from repro.bench.workload import LatencyRecorder
from repro.concurrency.scheduler import ClientOp
from repro.serving.netmodel import NetworkModel
from repro.serving.router import Request, Router, ServedReply

#: sentinel a client generator yields while waiting for a routed reply
_WAIT = object()


@dataclass
class ServedRecord:
    """One client op as it completed, in completion order.

    ``one_sided`` marks queries answered by the location-cache fast
    path (no server involvement); ``retried`` marks ops that first took
    the fast path, missed on a stale hint, and re-routed."""

    client: int
    op_index: int
    op: ClientOp
    issue_ns: float
    done_ns: float
    ok: bool
    found: bytes | None = None
    one_sided: bool = False
    retried: bool = False


@dataclass
class ServingResult:
    """Everything one serving run produced.

    ``check_failures`` non-empty (or ``wrong_answers`` non-zero) means
    the serving protocol itself is broken — callers should treat the
    run as failed, not as a slow run."""

    n_clients: int
    #: ops submitted across all clients
    ops: int
    #: completed ops in completion order
    committed: list[ServedRecord]
    #: per-client end-to-end latency (wire + queue + service)
    per_client: list[LatencyRecorder]
    overall: LatencyRecorder
    #: simulated wall-clock span of the whole run (max client clock)
    span_ns: float
    #: queries answered by the one-sided location-cache fast path
    one_sided_reads: int = 0
    #: requests that went through the router queues
    routed_ops: int = 0
    #: hinted probes that missed (stale or swept hints, then re-routed)
    hint_misses: int = 0
    #: one-sided hits that disagreed with the shadow — must be 0
    wrong_answers: int = 0
    #: ops that legitimately failed (e.g. insert into a full shard)
    failed_ops: int = 0
    #: router flush count across all shards
    flushes: int = 0
    #: ops executed through flushes (mean batch = batched_ops/flushes)
    batched_ops: int = 0
    #: deepest any shard queue got
    max_queue_depth: int = 0
    #: shadow-model violations (must be empty)
    check_failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the shadow checks all passed."""
        return not self.check_failures and self.wrong_answers == 0

    def throughput_kops(self) -> float:
        """Completed ops per simulated millisecond (kops/s simulated)."""
        if self.span_ns <= 0:
            return 0.0
        return len(self.committed) / self.span_ns * 1e6

    def mean_batch(self) -> float:
        """Average ops per flush."""
        return self.batched_ops / self.flushes if self.flushes else 0.0


class _ServingDriver:
    """One run's mutable state; :func:`run_serving` drives it."""

    def __init__(
        self,
        table,
        streams,
        *,
        net,
        batch_max,
        batch_wait_ns,
        wakeup_ns,
        dispatch_ns,
        location_cache,
        seed,
        shadow,
        metrics,
        timeline,
    ) -> None:
        self.router = Router(
            table,
            net,
            batch_max=batch_max,
            batch_wait_ns=batch_wait_ns,
            wakeup_ns=wakeup_ns,
            dispatch_ns=dispatch_ns,
            metrics=metrics,
            timeline=timeline,
        )
        self.table = table
        self.streams = streams
        self.seed = seed
        self.use_cache = location_cache
        self.metrics = metrics
        self.timeline = timeline
        self.shadow = dict(shadow) if shadow is not None else dict(table.items())
        n = len(streams)
        self.clock = [0.0] * n
        self.caches: list[dict[bytes, tuple[int, int]]] = [{} for _ in range(n)]
        self.per_client = [LatencyRecorder() for _ in range(n)]
        self.overall = LatencyRecorder()
        self.committed: list[ServedRecord] = []
        self.one_sided_reads = 0
        self.routed_ops = 0
        self.hint_misses = 0
        self.wrong_answers = 0
        self.failed_ops = 0
        self.check_failures: list[str] = []
        spec = table.spec
        self._read_bytes = spec.key_size
        self._write_bytes = spec.key_size + spec.value_size
        self._value_bytes = spec.value_size
        # the doorbell heap: (time, seq, kind, shard, generation)
        self._heap: list[tuple[float, int, str, int, int]] = []
        self._seq = itertools.count()
        #: reply payload for a client resumed after _WAIT
        self._pending: dict[int, tuple[bool, bytes | None, tuple | None]] = {}

    # ------------------------------------------------------------------
    # client op generators (each yields simulated-ns step costs)

    def _client_gen(self, client: int, stream):
        """The whole life of one client: its ops, in order."""
        net = self.router.net
        cache = self.caches[client]
        for op_index, op in enumerate(stream):
            issue = self.clock[client]
            retried = False
            if self.use_cache and op.kind == "query":
                hint = cache.get(op.key)
                if hint is not None:
                    # one-sided fast path: wire out+back, then probe the
                    # hinted segment directly — no queue, no server CPU
                    yield net.one_sided_read_ns(self._value_bytes)
                    value, probe_cost = self._one_sided_probe(hint, op.key)
                    self.one_sided_reads += 1
                    if self.metrics is not None:
                        self.metrics.counter("serving.one_sided").inc()
                    yield probe_cost
                    if value is not None:
                        self._check_one_sided(client, op, value)
                        self._commit(
                            client, op_index, op, issue,
                            ok=True, found=value, one_sided=True,
                        )
                        continue
                    # stale (or swept) hint: invalidate and re-route —
                    # the miss-and-retry protocol never trusts a miss
                    self.hint_misses += 1
                    retried = True
                    del cache[op.key]
                    if self.metrics is not None:
                        self.metrics.counter("serving.hint_misses").inc()
            payload = (
                self._write_bytes
                if op.kind in ("insert", "update")
                else self._read_bytes
            )
            yield net.request_ns(payload)
            reply = yield self._submit(client, op_index, op)
            ok, found, location = reply
            if self.use_cache and location is not None and op.kind != "delete":
                cache[op.key] = location
            elif op.kind == "delete":
                cache.pop(op.key, None)
            self._commit(
                client, op_index, op, issue,
                ok=ok, found=found, retried=retried,
            )

    def _submit(self, client: int, op_index: int, op: ClientOp):
        """Enqueue one routed request at the client's current clock and
        schedule whatever doorbell event that produced; the caller
        yields the returned ``_WAIT`` and blocks until delivery."""
        shard = self.router.shard_of(op.key)
        now = self.clock[client]
        event = self.router.enqueue(shard, Request(client, op_index, op, now))
        self.routed_ops += 1
        if event is not None:
            self._push(event, shard)
        return _WAIT

    def _one_sided_probe(
        self, hint: tuple[int, int], key: bytes
    ) -> tuple[bytes | None, float]:
        """Read ``key`` directly from the hinted segment, metering the
        probe's simulated NVM cost (charged to the client — a one-sided
        read involves no server CPU and no ``busy_until``)."""
        shard, seg_addr = hint
        table = self.router.table.tables[shard]
        target = table.segment_at(seg_addr) if hasattr(table, "segment_at") else table
        if target is None:
            # the segment address no longer names a live segment
            return None, 0.0
        mark = self.router._shard_clock(shard)
        value = target.query(key)
        return value, self.router._shard_clock(shard) - mark

    # ------------------------------------------------------------------
    # shadow model (applied in execution order)

    def _check_one_sided(self, client: int, op: ClientOp, value: bytes) -> None:
        """A one-sided *hit* linearizes at its probe; it must agree with
        the shadow or the staleness protocol is broken."""
        expected = self.shadow.get(op.key)
        if value != expected:
            self.wrong_answers += 1
            self.check_failures.append(
                f"client {client} one-sided read {op.key.hex()}: got "
                f"{value.hex()}, shadow says "
                f"{expected.hex() if expected else None}"
            )

    def _apply_shadow(self, reply: ServedReply) -> None:
        """Apply one flushed op to the shadow at its linearization point
        (flush execution order) and check the table agreed."""
        op = reply.request.op
        key = op.key
        result = reply.result
        live = key in self.shadow
        if op.kind == "query":
            expected = self.shadow.get(key)
            if result != expected:
                self.check_failures.append(
                    f"client {reply.request.client} routed query "
                    f"{key.hex()}: got "
                    f"{result.hex() if result else None}, shadow says "
                    f"{expected.hex() if expected else None}"
                )
        elif op.kind == "insert":
            if result:
                if live:
                    self.check_failures.append(
                        f"insert of live key {key.hex()} succeeded"
                    )
                self.shadow[key] = op.value
            else:
                self.failed_ops += 1
        elif op.kind == "update":
            if result and live:
                self.shadow[key] = op.value
            elif live:
                self.check_failures.append(f"update lost live key {key.hex()}")
            else:
                if result:
                    self.check_failures.append(
                        f"update of dead key {key.hex()} succeeded"
                    )
                self.failed_ops += 1
        elif op.kind == "delete":
            if bool(result) != live:
                self.check_failures.append(
                    f"delete of key {key.hex()} disagrees with the shadow "
                    f"(deleted={result}, live={live})"
                )
            if result and live:
                del self.shadow[key]
            if not result:
                self.failed_ops += 1

    # ------------------------------------------------------------------
    # bookkeeping

    def _commit(
        self,
        client: int,
        op_index: int,
        op: ClientOp,
        issue: float,
        *,
        ok: bool,
        found: bytes | None = None,
        one_sided: bool = False,
        retried: bool = False,
    ) -> None:
        done = self.clock[client]
        record = ServedRecord(
            client=client,
            op_index=op_index,
            op=op,
            issue_ns=issue,
            done_ns=done,
            ok=ok,
            found=found,
            one_sided=one_sided,
            retried=retried,
        )
        self.committed.append(record)
        latency = done - issue
        index = len(self.committed) - 1
        self.per_client[client].record(latency, index)
        self.overall.record(latency, index)
        if self.metrics is not None:
            self.metrics.histogram("serving.latency").record(latency)
        if self.timeline is not None:
            self.timeline.observe("latency", done, latency)
            self.timeline.inc("ops", done)

    def _push(self, event: tuple, shard: int) -> None:
        """Schedule one doorbell event on the simulated-time heap."""
        if event[0] == "flush":
            heapq.heappush(
                self._heap, (event[1], next(self._seq), "flush", shard, -1)
            )
        else:
            heapq.heappush(
                self._heap, (event[1], next(self._seq), "timer", shard, event[2])
            )

    def _flush(self, shard: int, now: float, ready: set[int]) -> None:
        """Run one shard flush: execute the batch, apply the shadow in
        execution order, deliver replies (unblocking their clients at
        the delivery time) and schedule the shard's next doorbell."""
        replies, followup = self.router.flush(shard, now)
        if followup is not None:
            self._push(followup, shard)
        for reply in replies:
            self._apply_shadow(reply)
            op = reply.request.op
            if op.kind == "query":
                payload = (True, reply.result, reply.location)
            else:
                payload = (bool(reply.result), None, reply.location)
            client = reply.request.client
            self.clock[client] = reply.delivery_ns
            self._pending[client] = payload
            ready.add(client)

    # ------------------------------------------------------------------
    # the interleaver

    def run(self) -> ServingResult:
        """Drive every client to completion and run the final check."""
        n = len(self.streams)
        order = list(range(n))
        random.Random((self.seed << 6) ^ 0x5E21).shuffle(order)
        priority = {client: rank for rank, client in enumerate(order)}
        generators = [
            self._client_gen(client, stream)
            for client, stream in enumerate(self.streams)
        ]
        alive = set(range(n))
        ready = set(range(n))
        heap = self._heap
        while alive:
            if ready:
                client = min(ready, key=lambda c: (self.clock[c], priority[c]))
                next_clock = self.clock[client]
            else:
                client = None
                next_clock = math.inf
            if heap and heap[0][0] <= next_clock:
                t, _, kind, shard, generation = heapq.heappop(heap)
                if kind == "timer" and not self.router.timer_valid(
                    shard, generation
                ):
                    continue
                self._flush(shard, t, ready)
                continue
            if client is None:
                raise RuntimeError(
                    "serving deadlock: clients blocked with no doorbell armed"
                )
            try:
                step = generators[client].send(self._pending.pop(client, None))
            except StopIteration:
                alive.discard(client)
                ready.discard(client)
                continue
            if step is _WAIT:
                ready.discard(client)
            else:
                self.clock[client] += step
        self._final_check()
        return ServingResult(
            n_clients=n,
            ops=sum(len(s) for s in self.streams),
            committed=self.committed,
            per_client=self.per_client,
            overall=self.overall,
            span_ns=max(self.clock) if self.clock else 0.0,
            one_sided_reads=self.one_sided_reads,
            routed_ops=self.routed_ops,
            hint_misses=self.hint_misses,
            wrong_answers=self.wrong_answers,
            failed_ops=self.failed_ops,
            flushes=self.router.flushes,
            batched_ops=self.router.batched_ops,
            max_queue_depth=self.router.max_queue_depth,
            check_failures=self.check_failures,
        )

    def _final_check(self) -> None:
        """Final-state oracle: the table's contents must equal the
        shadow applied in flush order."""
        final = dict(self.table.items())
        for key, value in self.shadow.items():
            got = final.get(key)
            if got != value:
                self.check_failures.append(
                    f"final state lost key {key.hex()}: expected "
                    f"{value.hex()}, found {got.hex() if got else None}"
                )
        for key in final:
            if key not in self.shadow:
                self.check_failures.append(
                    f"final state has phantom key {key.hex()}"
                )


def run_serving(
    table,
    streams: list[list[ClientOp]],
    *,
    net: NetworkModel,
    batch_max: int = 8,
    batch_wait_ns: float = 4000.0,
    wakeup_ns: float = 1500.0,
    dispatch_ns: float = 250.0,
    location_cache: bool = True,
    seed: int = 42,
    shadow: dict[bytes, bytes] | None = None,
    metrics=None,
    timeline=None,
) -> ServingResult:
    """Serve ``streams`` (one op list per remote client) against a
    :class:`~repro.core.ShardedTable` through the batching router.

    ``net`` prices the wire (see :mod:`repro.serving.netmodel`);
    ``batch_max`` / ``batch_wait_ns`` set the doorbell;
    ``wakeup_ns`` / ``dispatch_ns`` price the server CPU (per flush and
    per request — see :class:`~repro.serving.router.Router`); turning
    ``location_cache`` off forces every query through the routed path
    (the caching ablation). ``metrics`` / ``timeline`` receive
    ``serving.*`` counters, queue-depth gauges and latency channels;
    attaching them changes nothing about the interleaving. The result
    is a pure function of the arguments: same table state + streams +
    parameters + seed ⇒ identical interleaving, queue-depth timeline
    and final table bytes."""
    if not streams:
        raise ValueError("need at least one client stream")
    driver = _ServingDriver(
        table,
        streams,
        net=net,
        batch_max=batch_max,
        batch_wait_ns=batch_wait_ns,
        wakeup_ns=wakeup_ns,
        dispatch_ns=dispatch_ns,
        location_cache=location_cache,
        seed=seed,
        shadow=shadow,
        metrics=metrics,
        timeline=timeline,
    )
    return driver.run()
