"""Discrete network cost model for the simulated serving tier.

The paper evaluates the hash scheme as a local data structure; serving
it to remote clients adds a second cost domain — the wire. This module
encodes that domain the same way :mod:`repro.nvm.latency` encodes the
memory hierarchy: a frozen per-event cost table in *simulated*
nanoseconds, composed with the NVM model purely on the simulated clock,
so a serving run stays a deterministic pure function of its inputs (no
sockets, no wall-clock, byte-identical across processes and
``--jobs``).

Costs follow the standard linear model: each message pays a propagation
hop plus a fixed per-message software/NIC overhead plus a bandwidth
term proportional to its payload. One-sided reads (the location-cache
fast path, RDMA-READ-style) pay two hops and the bandwidth of a small
descriptor plus the returned payload, but *no server CPU* — which is
exactly why a client-side location cache helps: a hinted read never
waits in a shard's request queue.
"""

from __future__ import annotations

from dataclasses import dataclass

#: fixed framing bytes accounted per message (header, opcode, request id)
MESSAGE_HEADER_BYTES = 16


@dataclass(frozen=True)
class NetworkModel:
    """Per-message costs charged by the serving tier, in simulated ns.

    ``hop_ns`` is one-way propagation plus switching, ``msg_overhead_ns``
    the per-message NIC/doorbell/software cost on the two-sided RPC
    path, ``ns_per_byte`` the inverse link bandwidth, and
    ``one_sided_overhead_ns`` the (smaller) per-operation cost of a
    one-sided read that bypasses the remote CPU entirely.
    """

    #: name of the network preset (for reports)
    name: str = "rdma-dc"
    #: one-way propagation + switching per message
    hop_ns: float = 1500.0
    #: per-message software/NIC overhead on the RPC path
    msg_overhead_ns: float = 250.0
    #: inverse bandwidth (ns per payload byte on the wire)
    ns_per_byte: float = 0.025
    #: per-operation overhead of a one-sided (remote-CPU-free) read
    one_sided_overhead_ns: float = 150.0

    def message_ns(self, payload_bytes: int) -> float:
        """Cost of one message carrying ``payload_bytes`` of payload."""
        return (
            self.hop_ns
            + self.msg_overhead_ns
            + self.ns_per_byte * (MESSAGE_HEADER_BYTES + payload_bytes)
        )

    def request_ns(self, payload_bytes: int) -> float:
        """Client→server request message cost (alias of
        :meth:`message_ns`, named for call-site readability)."""
        return self.message_ns(payload_bytes)

    def response_ns(self, payload_bytes: int) -> float:
        """Server→client response message cost."""
        return self.message_ns(payload_bytes)

    def rpc_ns(self, request_bytes: int, response_bytes: int) -> float:
        """Round-trip wire cost of one two-sided RPC (excludes queueing
        and service time, which the router accounts separately)."""
        return self.message_ns(request_bytes) + self.message_ns(response_bytes)

    def one_sided_read_ns(self, payload_bytes: int) -> float:
        """Wire cost of one one-sided read returning ``payload_bytes``:
        two hops (descriptor out, payload back) and no remote CPU."""
        return (
            2.0 * self.hop_ns
            + self.one_sided_overhead_ns
            + self.ns_per_byte * (MESSAGE_HEADER_BYTES + payload_bytes)
        )


#: Datacenter RDMA fabric: ~1.5 µs hops, ~40 GB/s links, cheap one-sided
#: verbs — the setting where location caches shine.
RDMA_DC = NetworkModel(name="rdma-dc")

#: Kernel TCP on a LAN: ~25 µs hops and heavy per-message software cost;
#: "one-sided" reads degrade to a thin server-bypass RPC.
TCP_LAN = NetworkModel(
    name="tcp-lan",
    hop_ns=25_000.0,
    msg_overhead_ns=2_000.0,
    ns_per_byte=0.1,
    one_sided_overhead_ns=4_000.0,
)

#: Same-host loopback: sub-µs hops — the "network is almost free"
#: ablation that isolates queueing/batching effects from wire cost.
LOOPBACK = NetworkModel(
    name="loopback",
    hop_ns=300.0,
    msg_overhead_ns=100.0,
    ns_per_byte=0.005,
    one_sided_overhead_ns=50.0,
)

#: All presets keyed by name, for CLI / benchmark parameterisation.
NETWORK_PRESETS: dict[str, NetworkModel] = {
    model.name: model for model in (RDMA_DC, TCP_LAN, LOOPBACK)
}
