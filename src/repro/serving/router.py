"""Request router: per-shard FIFO queues with doorbell batching.

One router fronts one :class:`~repro.core.ShardedTable`. Every routed
request lands in its shard's FIFO queue; the shard flushes — executes
the queued ops against its table — when either the queue reaches
``batch_max`` ops (the doorbell fills) or the oldest queued op has
waited ``batch_wait_ns`` of simulated time (the doorbell timer fires).
A flush takes up to ``batch_max`` requests in arrival order, groups
them into maximal same-kind runs, and drives each run through the
table's coalesced batch APIs (``put_many`` / ``get_many`` /
``delete_many``, scalar fallback where a table type lacks one) — so
server-side batching inherits exactly the write-combining the batch
layer already proves out, and its benefit shows up as lower simulated
service time per op.

Service time is metered on the shard's own simulated clock (per-shard
``sim_time_ns`` deltas on costed backends, the deterministic per-event
surrogate otherwise), and shards are sequential servers: a flush starts
at ``max(doorbell time, busy_until)`` and pushes ``busy_until`` to its
end, so queueing delay under load is modelled rather than assumed away.

The router never owns time — the serving driver
(:func:`repro.serving.client.run_serving`) processes doorbell events in
simulated-time order and calls :meth:`Router.flush`. All telemetry
(queue-depth gauges, batch-size and service-time histograms, flush
counters) goes to an optional :class:`~repro.obs.MetricsRegistry` and
per-window :class:`~repro.obs.WindowSeries`; attaching them changes
nothing about the interleaving.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.concurrency.scheduler import RAW_EVENT_NS, ClientOp
from repro.nvm.memory import NVMRegion
from repro.serving.netmodel import NetworkModel


@dataclass(frozen=True)
class Request:
    """One routed client request as it sits in a shard queue."""

    client: int
    op_index: int
    op: ClientOp
    #: simulated ns at which the request reached the shard queue
    enqueue_ns: float


@dataclass(frozen=True)
class ServedReply:
    """One request's outcome after its batch flushed.

    ``result`` is the table op's return value (bool for writes, value
    bytes or ``None`` for queries); ``location`` is the (shard, segment
    info address) pair serving the key *after* the op executed — the
    client-side location cache is fed from here. ``delivery_ns`` is
    when the response message reaches the client."""

    request: Request
    result: object
    location: tuple[int, int] | None
    start_ns: float
    end_ns: float
    delivery_ns: float


class Router:
    """Per-shard FIFO queues + doorbell batching over a sharded table.

    :meth:`enqueue` and :meth:`flush` return *doorbell events* — plain
    tuples the driver schedules on its simulated-time heap — instead of
    the router acting on time itself, which keeps the router a passive,
    fully deterministic state machine."""

    def __init__(
        self,
        table,
        net: NetworkModel,
        *,
        batch_max: int = 8,
        batch_wait_ns: float = 4000.0,
        wakeup_ns: float = 1500.0,
        dispatch_ns: float = 250.0,
        metrics=None,
        timeline=None,
    ) -> None:
        if batch_max < 1:
            raise ValueError("batch_max must be at least 1")
        if batch_wait_ns < 0:
            raise ValueError("batch_wait_ns must be non-negative")
        self.table = table
        self.net = net
        self.batch_max = batch_max
        self.batch_wait_ns = batch_wait_ns
        #: server CPU cost of taking one doorbell (interrupt + context) —
        #: paid once per flush, so batching amortizes it; this is the
        #: classic reason doorbell batching lifts saturated throughput
        self.wakeup_ns = wakeup_ns
        #: server CPU cost of decoding/dispatching one request — paid
        #: per op regardless of batch size
        self.dispatch_ns = dispatch_ns
        self.metrics = metrics
        self.timeline = timeline
        n = table.n_shards
        self.queues: list[deque[Request]] = [deque() for _ in range(n)]
        #: flush count per shard; doubles as the timer-invalidation
        #: generation (any flush retires every armed timer of its shard)
        self.generation = [0] * n
        #: simulated ns until which each shard's server is busy
        self.busy_until = [0.0] * n
        self.flushes = 0
        self.batched_ops = 0
        self.max_queue_depth = 0
        # value payload size for response messages (one spec per table)
        self._value_bytes = table.spec.value_size
        # costed shards meter service on their region's simulated clock;
        # others get the deterministic per-event surrogate
        self._costed = [
            isinstance(table.backend.shard(i), NVMRegion) for i in range(n)
        ]

    # ------------------------------------------------------------------
    # shard clocks

    def _shard_clock(self, shard: int) -> float:
        """The shard backend's simulated clock (event-count surrogate on
        backends without one) — used only as deltas, so mixing shards is
        fine."""
        stats = self.table.backend.shard(shard).stats
        if self._costed[shard]:
            return float(stats.sim_time_ns)
        return RAW_EVENT_NS * (
            stats.reads + stats.writes + stats.flushes + stats.fences
        )

    # ------------------------------------------------------------------
    # queueing

    def shard_of(self, key: bytes) -> int:
        """Shard index serving ``key`` (the table's router hash)."""
        return self.table.shard_of(key)

    def enqueue(self, shard: int, request: Request):
        """Append ``request`` to its shard queue.

        Returns the doorbell event the driver must schedule:
        ``("flush", t)`` when this enqueue filled the batch,
        ``("timer", deadline, generation)`` when it started a fresh
        batch (the timer is valid only while ``generation`` matches —
        see :meth:`timer_valid`), else ``None``."""
        queue = self.queues[shard]
        queue.append(request)
        depth = len(queue)
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        now = request.enqueue_ns
        if self.metrics is not None:
            self.metrics.counter("serving.enqueued").inc()
        if self.timeline is not None:
            self.timeline.inc("enqueued", now)
            self.timeline.set_gauge(f"shard{shard}.queue_depth", now, depth)
        if depth >= self.batch_max:
            return ("flush", now)
        if depth == 1:
            return ("timer", now + self.batch_wait_ns, self.generation[shard])
        return None

    def timer_valid(self, shard: int, generation: int) -> bool:
        """Whether a timer armed at ``generation`` may still fire (no
        flush has retired that batch in the meantime)."""
        return self.generation[shard] == generation

    # ------------------------------------------------------------------
    # flushing

    def flush(self, shard: int, now: float):
        """Execute up to ``batch_max`` queued ops of ``shard`` at
        simulated time ``now``.

        Returns ``(replies, followup)``: the per-request
        :class:`ServedReply` list (batch arrival order — the
        linearization order the driver applies its shadow model in) and
        the next doorbell event for this shard, or ``None`` when its
        queue drained."""
        queue = self.queues[shard]
        if not queue:
            return [], None
        self.generation[shard] += 1
        batch = [queue.popleft() for _ in range(min(self.batch_max, len(queue)))]
        start = max(now, self.busy_until[shard])
        results: list[object] = []
        service_ns = self.wakeup_ns + self.dispatch_ns * len(batch)
        i = 0
        while i < len(batch):
            j = i + 1
            while j < len(batch) and batch[j].op.kind == batch[i].op.kind:
                j += 1
            out, cost = self._execute(shard, batch[i:j])
            results.extend(out)
            service_ns += cost
            i = j
        end = start + service_ns
        self.busy_until[shard] = end
        self.flushes += 1
        self.batched_ops += len(batch)
        replies = []
        for request, result in zip(batch, results):
            location = self.locate(shard, request.op.key)
            delivery = end + self.net.response_ns(self._value_bytes)
            replies.append(
                ServedReply(request, result, location, start, end, delivery)
            )
        if self.metrics is not None:
            self.metrics.counter("serving.flushes").inc()
            self.metrics.histogram("serving.batch_size").record(len(batch))
            self.metrics.histogram("serving.service_ns").record(end - start)
        if self.timeline is not None:
            self.timeline.inc("flushes", end)
            self.timeline.observe("batch_size", end, len(batch))
            self.timeline.observe("service_ns", end, end - start)
            self.timeline.set_gauge(f"shard{shard}.queue_depth", end, len(queue))
        followup = None
        if queue:
            if len(queue) >= self.batch_max:
                followup = ("flush", end)
            else:
                deadline = queue[0].enqueue_ns + self.batch_wait_ns
                followup = ("timer", max(deadline, end), self.generation[shard])
        return replies, followup

    def _execute(self, shard: int, run: list[Request]) -> tuple[list, float]:
        """Run one maximal same-kind run through the shard table's batch
        API (scalar fallback where the table type lacks one), metering
        its simulated cost via the shard clock. Returns (results,
        simulated service ns)."""
        table = self.table.tables[shard]
        kind = run[0].op.kind
        mark = self._shard_clock(shard)
        if kind == "query":
            keys = [r.op.key for r in run]
            if hasattr(table, "get_many"):
                out = table.get_many(keys)
            else:
                out = [table.query(k) for k in keys]
        elif kind == "insert":
            items = [(r.op.key, r.op.value) for r in run]
            if hasattr(table, "put_many"):
                out = table.put_many(items)
            else:
                out = [table.insert(k, v) for k, v in items]
        elif kind == "update":
            out = [table.update(r.op.key, r.op.value) for r in run]
        elif kind == "delete":
            keys = [r.op.key for r in run]
            if hasattr(table, "delete_many"):
                out = table.delete_many(keys)
            else:
                out = [table.delete(k) for k in keys]
        else:
            raise ValueError(f"unknown op kind {kind!r}")
        return out, self._shard_clock(shard) - mark

    # ------------------------------------------------------------------
    # control plane

    def locate(self, shard: int, key: bytes) -> tuple[int, int] | None:
        """(shard, segment info address) currently serving ``key`` —
        cost-free (volatile directory peek); ``None`` when the shard's
        table type has no addressable segments to hint at."""
        table = self.table.tables[shard]
        if hasattr(table, "segment_addr"):
            return (shard, table.segment_addr(key))
        return None
