"""Persistent hash-table schemes sharing one NVM substrate.

This package holds everything common to all schemes (cell codec, base
class, undo log) plus the paper's comparison baselines:

- :class:`~repro.tables.linear.LinearProbingTable` — classic linear
  probing with backward-shift deletion (the "complicated delete" the
  paper charges it for);
- :class:`~repro.tables.pfht.PFHTTable` — bucketized cuckoo with at most
  one displacement and a stash (Debnath et al.);
- :class:`~repro.tables.path.PathHashingTable` — inverted-binary-tree
  position sharing (Zuo & Hua);
- :class:`~repro.tables.chained.ChainedHashTable` and
  :class:`~repro.tables.two_choice.TwoChoiceTable` — the schemes the
  paper mentions but excludes, implemented for the exclusion ablation;
- :class:`~repro.tables.wal.UndoLog` — the duplicate-copy consistency
  layer that produces the ``-L`` variants.

The paper's own scheme lives in :mod:`repro.core`.
"""

from repro.tables.base import PersistentHashTable, TableFullError
from repro.tables.cell import CellCodec, ItemSpec
from repro.tables.chained import ChainedHashTable
from repro.tables.cuckoo import CuckooHashTable
from repro.tables.level import LevelHashTable
from repro.tables.linear import LinearProbingTable
from repro.tables.path import PathHashingTable
from repro.tables.pfht import PFHTTable
from repro.tables.two_choice import TwoChoiceTable
from repro.tables.wal import UndoLog

__all__ = [
    "CellCodec",
    "ChainedHashTable",
    "CuckooHashTable",
    "ItemSpec",
    "LevelHashTable",
    "LinearProbingTable",
    "PFHTTable",
    "PathHashingTable",
    "PersistentHashTable",
    "TableFullError",
    "TwoChoiceTable",
    "UndoLog",
]
