"""Abstract persistent hash table and the shared commit discipline.

Every scheme in the repository — the group-hashing contribution and all
baselines — derives from :class:`PersistentHashTable`, which provides:

- a 64-byte metadata block in NVM (magic, ``count``, ``capacity``) — the
  paper's *Global info* region;
- the **uniform commit discipline** used to make the latency comparison
  fair (DESIGN.md decision): an installed item is always committed as

  1. write key+value, ``persist``;
  2. atomically set the cell's bitmap bit, ``persist``;
  3. update the persistent ``count``, ``persist``;

  and a removal as bitmap-clear → persist → kv-clear → persist → count →
  persist (the paper's Algorithm 3 ordering). Baselines reuse these
  helpers for their *point* writes; what they lack (and what the undo log
  retrofits in the ``-L`` variants) is atomicity across *multi-cell*
  operations such as cuckoo displacement or backward-shift deletion.
- a generic post-crash ``recover`` that replays the undo log (if any) and
  rebuilds ``count`` by scanning. Group hashing overrides it with the
  paper's Algorithm 4.
"""

from __future__ import annotations

import abc
import hashlib
import struct
from typing import Iterator

from repro.hashes import HashFamily
from repro.nvm.backend import MemoryBackend
from repro.nvm.memory import CACHELINE
from repro.tables.cell import HEADER_SIZE, OCCUPIED_BIT, CellCodec, ItemSpec
from repro.tables.wal import UndoLog

_MAGIC = struct.Struct("<Q")


class TableFullError(RuntimeError):
    """Raised when an insertion cannot find any eligible empty cell.

    The space-utilization experiment (Figure 7) is defined as the load
    factor at which this is first raised.
    """


class PersistentHashTable(abc.ABC):
    """Base class for all NVM hash tables in this repository."""

    #: short scheme identifier used in reports ("linear", "pfht", ...)
    scheme_name: str = "abstract"

    def __init__(
        self,
        region: MemoryBackend,
        n_cells: int,
        spec: ItemSpec | None = None,
        *,
        log: UndoLog | None = None,
        seed: int = 0x5EED,
    ) -> None:
        if n_cells <= 0:
            raise ValueError("n_cells must be positive")
        self.region = region
        self.spec = spec or ItemSpec()
        self.codec = CellCodec(self.spec)
        self.n_cells = n_cells
        self.log = log
        self.family = HashFamily(seed)
        # Global info block (paper Figure 4): magic | count | capacity.
        self._info_addr = region.alloc(
            CACHELINE, align=CACHELINE, label=f"{self.scheme_name}.info"
        )
        self._count_addr = self._info_addr + 8
        self._count = 0
        #: observability hooks (``None`` = disabled; see ``instrument``).
        #: Hot paths guard on a local copy, so the disabled cost is a
        #: couple of attribute loads and None tests per operation.
        self.tracer = None
        self.metrics = None
        region.write_u64(self._info_addr, self._magic())
        region.write_u64(self._count_addr, 0)

    def _magic(self) -> int:
        # 4 bytes of name prefix (human-greppable in a region dump) plus
        # 4 bytes of a hash of the *full* name, so schemes sharing a long
        # prefix stay distinguishable at recovery time.
        name = self.scheme_name.encode()
        digest = hashlib.blake2b(name, digest_size=4).digest()
        return _MAGIC.unpack((name + b"\0" * 4)[:4] + digest)[0]

    def instrument(self, tracer=None, metrics=None) -> None:
        """Attach observability sinks (:class:`~repro.obs.Tracer` /
        :class:`~repro.obs.MetricsRegistry`); pass ``None`` to detach.

        Purely observational: the tracer reads stats snapshots and the
        metrics registry counts in plain Python, so instrumented runs
        issue exactly the same region events as uninstrumented ones.
        Attaching the tracer to the *backend* (``Tracer.attach``) is the
        caller's job — this wires the table-side span emission only.
        Subclasses with child tables (sharding) propagate the sinks."""
        self.tracer = tracer
        self.metrics = metrics
        if self.log is not None:
            self.log.metrics = metrics

    def _finish_layout(self) -> None:
        """Subclasses call this after allocating their cell arrays, once
        ``capacity`` is answerable, to persist the metadata block."""
        self.region.write_u64(self._info_addr + 16, self.capacity)
        self.region.persist(self._info_addr, CACHELINE)

    # ------------------------------------------------------------------
    # public API

    @abc.abstractmethod
    def insert(self, key: bytes, value: bytes) -> bool:
        """Insert an item; returns False (or raises
        :class:`TableFullError` from helpers) when no cell is available.
        Duplicate keys are *not* detected, matching the paper's
        Algorithm 1."""

    @abc.abstractmethod
    def query(self, key: bytes) -> bytes | None:
        """Return the value stored for ``key``, or ``None``."""

    @abc.abstractmethod
    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it was present."""

    def _locate(self, key: bytes) -> int | None:
        """Address of the cell holding ``key``, or None.

        Delegates to the scheme's cell-addressed ``_find(key) -> addr``
        when one is defined — every probe-structured scheme has one — so
        an in-place update costs a probe, not a table sweep. The
        inventory scan is only the fallback for schemes without a
        ``_find`` (correct for any layout, O(capacity)). A scheme whose
        ``_find`` returns something other than a cell address (linear
        probing returns an index) must override ``_locate`` itself."""
        find = getattr(self, "_find", None)
        if find is not None:
            return find(key)
        codec, region = self.codec, self.region
        for addr in self._iter_cell_addrs():
            occupied, cell_key = codec.probe(region, addr)
            if occupied and cell_key == key:
                return addr
        return None

    def update(self, key: bytes, value: bytes) -> bool:
        """In-place value update (extension — the paper defines no
        update operation).

        Crash atomicity: when the value field is at most 8 bytes (one
        failure-atomicity unit, naturally aligned because cells are),
        the update is a single word store — a crash leaves the old or
        the new value, never a torn one. Wider values are only
        crash-atomic in the logged (``-L``) variants; unlogged schemes
        should use delete+insert for multi-word values if atomicity
        matters.
        """
        if len(value) != self.spec.value_size:
            raise ValueError(
                f"value must be {self.spec.value_size} bytes, got {len(value)}"
            )
        addr = self._locate(key)
        if addr is None:
            return False
        codec, region = self.codec, self.region
        tr = self.tracer
        self._begin_op()
        if self.log is not None:
            if tr is not None:
                tr.push("undo_log")
            self.log.record(addr, codec.cell_size)
            if tr is not None:
                tr.pop()
        if tr is not None:
            tr.push("value_write")
        value_addr = addr + codec.value_offset
        region.write(value_addr, value)
        region.persist(value_addr, max(1, len(value)))
        if tr is not None:
            tr.pop()
        self._commit_op()
        return True

    @property
    @abc.abstractmethod
    def capacity(self) -> int:
        """Total number of cells (the load-factor denominator)."""

    # ------------------------------------------------------------------
    # concurrency-control geometry (consumed by repro.concurrency)

    @property
    def n_lock_stripes(self) -> int:
        """How many writer-lock stripes a concurrency layer should
        allocate for this table. The default hashes keys over ~one
        stripe per 64 cells; schemes with a natural locking unit (the
        group table's groups) override this."""
        return max(1, self.capacity // 64)

    def lock_stripes(self, key: bytes) -> tuple[int, ...]:
        """The lock stripes a writer must hold to mutate ``key``,
        sorted ascending (ordered acquisition makes writer deadlock
        impossible). The default is a single hash stripe; multi-choice
        schemes override with every candidate location's stripe."""
        h = self.__dict__.get("_lock_hash")
        if h is None:
            h = self._lock_hash = self.family.function(0)
        return (h(key) % self.n_lock_stripes,)

    @abc.abstractmethod
    def _iter_cell_addrs(self) -> Iterator[int]:
        """Yield the address of every cell the scheme owns (all levels,
        buckets, stash...). Used by recovery scans and test inventories."""

    # ------------------------------------------------------------------
    # shared commit discipline

    def _install(self, addr: int, key: bytes, value: bytes) -> None:
        """Commit one item into the (empty) cell at ``addr``.

        The codec helpers (``write_kv``/``set_occupied``/``kv_span``) are
        inlined here — this commit sequence runs on every insert of every
        scheme — but the region-level access sequence is exactly theirs.
        """
        codec, region = self.codec, self.region
        spec = codec.spec
        if len(key) != spec.key_size or len(value) != spec.value_size:
            raise ValueError(
                f"item must be {spec.key_size}+{spec.value_size} bytes, "
                f"got {len(key)}+{len(value)}"
            )
        tr = self.tracer
        if self.log is not None:
            if tr is not None:
                tr.push("undo_log")
            self.log.record(addr, codec.cell_size)
            if tr is not None:
                tr.pop()
        # 1. key+value, persisted (codec.write_kv + kv_span persist)
        if tr is not None:
            tr.push("kv_write")
        kv_addr = addr + HEADER_SIZE
        region.write(kv_addr, key + value)
        region.persist(kv_addr, spec.item_size)
        # 2. bitmap commit: atomic header store (codec.set_occupied)
        if tr is not None:
            tr.pop()
            tr.push("bitmap_commit")
        region.write_atomic_u64(addr, region.read_u64(addr) | OCCUPIED_BIT)
        region.persist(addr, HEADER_SIZE)
        # 3. persistent count
        if tr is not None:
            tr.pop()
            tr.push("count_commit")
        self._set_count(self._count + 1)
        if tr is not None:
            tr.pop()

    def _remove(self, addr: int) -> None:
        """Commit removal of the item in the cell at ``addr``.

        Bitmap first, then the key-value clear — the paper's Algorithm 3
        ordering, which recovery relies on (a cell with bitmap 0 may hold
        garbage; recovery resets it)."""
        codec, region = self.codec, self.region
        tr = self.tracer
        if self.log is not None:
            if tr is not None:
                tr.push("undo_log")
            self.log.record(addr, codec.cell_size)
            if tr is not None:
                tr.pop()
        if tr is not None:
            tr.push("bitmap_commit")
        codec.set_occupied(region, addr, False)
        region.persist(addr, HEADER_SIZE)
        if tr is not None:
            tr.pop()
            tr.push("kv_clear")
        codec.clear_kv(region, addr)
        region.persist(*codec.kv_span(addr))
        if tr is not None:
            tr.pop()
            tr.push("count_commit")
        self._set_count(self._count - 1)
        if tr is not None:
            tr.pop()

    def _relocate(self, src: int, dst: int, key: bytes, value: bytes) -> None:
        """Move an item between cells (cuckoo displacement / backward
        shift). Not crash-atomic without a log — this is exactly the
        operation the ``-L`` variants exist to protect."""
        codec, region = self.codec, self.region
        if self.log is not None:
            self.log.record(dst, codec.cell_size)
            self.log.record(src, codec.cell_size)
        codec.write_kv(region, dst, key, value)
        region.persist(*codec.kv_span(dst))
        codec.set_occupied(region, dst, True)
        region.persist(dst, HEADER_SIZE)
        codec.set_occupied(region, src, False)
        region.persist(src, HEADER_SIZE)
        codec.clear_kv(region, src)
        region.persist(*codec.kv_span(src))

    def _set_count(self, value: int) -> None:
        """Write-through the persistent occupancy counter."""
        self._count = value
        self.region.write_u64(self._count_addr, value)
        self.region.persist(self._count_addr, 8)

    def _begin_op(self) -> None:
        """Start a logged operation (no-op without a log)."""
        if self.log is not None:
            self.log.begin()

    def _commit_op(self) -> None:
        """Finish a logged operation: truncate the undo log."""
        if self.log is not None:
            self.log.commit()

    # ------------------------------------------------------------------
    # state

    @property
    def count(self) -> int:
        """Number of occupied cells (volatile mirror of the NVM field)."""
        return self._count

    @property
    def load_factor(self) -> float:
        """count / capacity."""
        return self._count / self.capacity

    @property
    def persisted_count(self) -> int:
        """The ``count`` field as read back from the region."""
        return self.region.read_u64(self._count_addr)

    # ------------------------------------------------------------------
    # recovery

    def reattach(self) -> None:
        """Reload volatile mirrors from NVM after a simulated crash.

        Subclasses with extra volatile state must extend this."""
        self._count = self.region.read_u64(self._count_addr)

    def recover(self) -> None:
        """Generic post-crash recovery: undo-log rollback, then rebuild
        ``count`` by scanning every cell. Group hashing overrides this
        with the paper's Algorithm 4 (which additionally resets the
        key/value fields of unoccupied cells)."""
        tr, mx = self.tracer, self.metrics
        if tr is not None:
            tr.push("recover")
        if self.log is not None:
            self.log.recover()
        occupied = 0
        scanned = 0
        for addr in self._iter_cell_addrs():
            scanned += 1
            if self.codec.is_occupied(self.region, addr):
                occupied += 1
        self._set_count(occupied)
        if mx is not None:
            mx.counter("recovery.cells_scanned").inc(scanned)
            mx.counter("recovery.runs").inc()
        if tr is not None:
            tr.pop()

    # ------------------------------------------------------------------
    # test/debug inventory (reads the volatile view without charging costs)

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Yield all stored ``(key, value)`` pairs. Free of simulation
        cost; intended for assertions, not for workload code."""
        spec, region = self.spec, self.region
        for addr in self._iter_cell_addrs():
            header = region.peek_volatile(addr, HEADER_SIZE)
            if header[0] & OCCUPIED_BIT:
                kv = region.peek_volatile(addr + HEADER_SIZE, spec.item_size)
                yield kv[: spec.key_size], kv[spec.key_size :]

    def check_count(self) -> bool:
        """Whether the persistent count matches actual occupancy
        (a consistency invariant used throughout the tests)."""
        return sum(1 for _ in self.items()) == self.persisted_count

    def integrity_violations(self) -> list[str]:
        """Structural problems with the recovered table, as human-readable
        strings (empty = sound).

        This is the crash-matrix "invariant" oracle
        (:mod:`repro.nvm.crashpoint`): the persistent ``count`` field must
        match actual occupancy, no key may appear in two cells, and an
        attached undo log must be truncated. Reads use the cost-free peek
        API so diagnostics never perturb simulated statistics. Subclasses
        extend this with scheme-specific postconditions (group hashing
        adds Algorithm 4's unoccupied-cells-are-zero check)."""
        problems: list[str] = []
        keys = [k for k, _ in self.items()]
        if len(set(keys)) != len(keys):
            problems.append(f"duplicate keys in table ({len(keys)} cells)")
        persisted = int.from_bytes(
            self.region.peek_persistent(self._count_addr, 8), "little"
        )
        if persisted != len(keys):
            problems.append(
                f"persistent count {persisted} != occupancy {len(keys)}"
            )
        if self.log is not None and self.log.persisted_tail != 0:
            problems.append(
                f"undo log tail {self.log.persisted_tail} not truncated"
            )
        return problems
