"""Fixed-layout hash cell shared by every scheme.

The paper adds "an 1-bit bitmap in each hashing cell"; to make the commit
a naturally aligned 8-byte atomic store, we give each cell an 8-byte
header whose bit 0 is that bitmap (Design decision 3 in DESIGN.md):

    +--------+--------------------+------------------------+
    | header |        key         |         value          |
    |  8 B   |   spec.key_size    |    spec.value_size     |
    +--------+--------------------+------------------------+

Cells are packed contiguously; the codec only does address arithmetic
and (de)serialisation — all memory traffic goes through the owning
table's :class:`~repro.nvm.backend.MemoryBackend` so it is costed and
crash-visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nvm.backend import MemoryBackend

#: header bit 0: the paper's per-cell bitmap (1 = occupied)
OCCUPIED_BIT = 1

HEADER_SIZE = 8


@dataclass(frozen=True)
class ItemSpec:
    """Key/value widths in bytes for one trace's items.

    RandomNum and Bag-of-Words use 8+8 (the paper's 16-byte items);
    Fingerprint uses 16+16 (32-byte items).
    """

    key_size: int = 8
    value_size: int = 8

    def __post_init__(self) -> None:
        if self.key_size <= 0 or self.value_size < 0:
            raise ValueError("key_size must be positive, value_size non-negative")

    @property
    def item_size(self) -> int:
        """Payload bytes per item (the paper's quoted item size)."""
        return self.key_size + self.value_size


class CellCodec:
    """Address arithmetic and field access for packed cells."""

    def __init__(self, spec: ItemSpec) -> None:
        self.spec = spec
        self.key_offset = HEADER_SIZE
        self.value_offset = HEADER_SIZE + spec.key_size
        #: full cell footprint, 8-byte aligned so every header is
        #: naturally aligned for the atomic commit store
        self.cell_size = -(-(HEADER_SIZE + spec.item_size) // 8) * 8
        self._empty_kv = bytes(spec.item_size)

    def addr(self, base: int, index: int) -> int:
        """Byte address of cell ``index`` in an array starting at ``base``."""
        return base + index * self.cell_size

    def array_bytes(self, n_cells: int) -> int:
        """Footprint of ``n_cells`` packed cells."""
        return n_cells * self.cell_size

    # -- reads ---------------------------------------------------------

    def read_header(self, region: MemoryBackend, addr: int) -> int:
        """Load the header word of the cell at ``addr``."""
        return region.read_u64(addr)

    def is_occupied(self, region: MemoryBackend, addr: int) -> bool:
        """Whether the cell's bitmap bit is set."""
        return bool(region.read_u64(addr) & OCCUPIED_BIT)

    def read_key(self, region: MemoryBackend, addr: int) -> bytes:
        """Load the key field."""
        return region.read(addr + self.key_offset, self.spec.key_size)

    def read_value(self, region: MemoryBackend, addr: int) -> bytes:
        """Load the value field."""
        return region.read(addr + self.value_offset, self.spec.value_size)

    def probe(self, region: MemoryBackend, addr: int) -> tuple[bool, bytes]:
        """Load header + key in one access (one or two touched lines,
        but a single simulated load) — the common probe step."""
        raw = region.read(addr, HEADER_SIZE + self.spec.key_size)
        occupied = bool(raw[0] & OCCUPIED_BIT)
        return occupied, raw[HEADER_SIZE:]

    # -- writes (no persistence; callers sequence persists) -------------

    def write_kv(
        self, region: MemoryBackend, addr: int, key: bytes, value: bytes
    ) -> None:
        """Store key and value fields (not the header) in one write."""
        if len(key) != self.spec.key_size or len(value) != self.spec.value_size:
            raise ValueError(
                f"item must be {self.spec.key_size}+{self.spec.value_size} bytes, "
                f"got {len(key)}+{len(value)}"
            )
        region.write(addr + HEADER_SIZE, key + value)

    def clear_kv(self, region: MemoryBackend, addr: int) -> None:
        """Zero the key and value fields (the recovery Reset step)."""
        region.write(addr + HEADER_SIZE, self._empty_kv)

    def set_occupied(self, region: MemoryBackend, addr: int, occupied: bool) -> None:
        """Atomically update the bitmap bit — the commit point of insert
        and delete in every scheme."""
        header = self.read_header(region, addr)
        if occupied:
            header |= OCCUPIED_BIT
        else:
            header &= ~OCCUPIED_BIT & 0xFFFFFFFFFFFFFFFF
        region.write_atomic_u64(addr, header)

    def kv_span(self, addr: int) -> tuple[int, int]:
        """``(addr, size)`` of the key+value fields (for persist calls)."""
        return addr + HEADER_SIZE, self.spec.item_size
