"""Chained hashing — the other scheme the paper excludes.

Section 4.1: "chained hashing performs poorly under memory pressure due
to frequent memory allocation and free calls." We implement it with a
fixed node pool (bump allocator + persistent free list) so the exclusion
ablation can measure its two real costs on NVM: allocator metadata
persists on every insert/delete, and chains are pointer-chased across
non-contiguous nodes (one potential cache miss per hop).

Node layout (implicit occupancy — a node is live iff reachable from a
bucket head)::

    +---------+--------------------+------------------------+
    |  next   |        key         |         value          |
    |   8 B   |                    |                        |
    +---------+--------------------+------------------------+

Insert is naturally crash-atomic (prepare node off-list, persist, then
atomically swing the bucket head pointer) — chaining's one genuine
virtue on NVM, also exercised by the tests.
"""

from __future__ import annotations

from typing import Iterator

from repro.nvm.backend import MemoryBackend
from repro.nvm.memory import CACHELINE
from repro.tables.base import PersistentHashTable
from repro.tables.cell import ItemSpec
from repro.tables.wal import UndoLog

#: null pointer — the metadata block occupies address 0, so no node can
#: ever live there.
NIL = 0


class ChainedHashTable(PersistentHashTable):
    """Separate chaining with a persistent node pool."""

    scheme_name = "chained"

    def __init__(
        self,
        region: MemoryBackend,
        n_cells: int,
        spec: ItemSpec | None = None,
        *,
        buckets_per_cell: float = 1.0,
        log: UndoLog | None = None,
        seed: int = 0x5EED,
    ) -> None:
        super().__init__(region, n_cells, spec, log=log, seed=seed)
        self._hash = self.family.function(0)
        self.n_buckets = max(1, int(n_cells * buckets_per_cell))
        self.node_size = -(-(8 + self.spec.item_size) // 8) * 8
        # extended metadata: bump cursor and free-list head live in the
        # info block so they survive crashes
        self._bump_addr = self._info_addr + 24
        self._free_addr = self._info_addr + 32
        self._buckets = region.alloc(
            8 * self.n_buckets, align=CACHELINE, label="chained.buckets"
        )
        self._pool = region.alloc(
            self.node_size * n_cells, align=CACHELINE, label="chained.pool"
        )
        self._bump = 0
        self._free = NIL
        region.write_u64(self._bump_addr, 0)
        region.write_u64(self._free_addr, NIL)
        for b in range(self.n_buckets):
            region.write_u64(self._buckets + 8 * b, NIL)
        region.flush_range(self._buckets, 8 * self.n_buckets)
        region.mfence()
        self._finish_layout()

    @property
    def capacity(self) -> int:
        return self.n_cells

    def _bucket_addr(self, key: bytes) -> int:
        return self._buckets + 8 * (self._hash(key) % self.n_buckets)

    # ------------------------------------------------------------------
    # node pool

    def _alloc_node(self) -> int:
        """Pop the free list or bump the cursor; persists allocator
        metadata — the per-operation allocator traffic the paper cites as
        chaining's weakness."""
        region = self.region
        if self._free != NIL:
            node = self._free
            self._free = region.read_u64(node)
            region.write_atomic_u64(self._free_addr, self._free)
            region.persist(self._free_addr, 8)
            return node
        if self._bump >= self.n_cells:
            return NIL
        node = self._pool + self._bump * self.node_size
        self._bump += 1
        region.write_atomic_u64(self._bump_addr, self._bump)
        region.persist(self._bump_addr, 8)
        return node

    def _free_node(self, node: int) -> None:
        region = self.region
        region.write_u64(node, self._free)
        region.persist(node, 8)
        self._free = node
        region.write_atomic_u64(self._free_addr, node)
        region.persist(self._free_addr, 8)

    # ------------------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> bool:
        region, spec = self.region, self.spec
        self._begin_op()
        node = self._alloc_node()
        if node == NIL:
            self._commit_op()
            return False
        bucket = self._bucket_addr(key)
        head = region.read_u64(bucket)
        # Prepare the node fully off-list, persist it, then publish with
        # one atomic pointer store: crash-atomic without logging.
        region.write_u64(node, head)
        region.write(node + 8, key + value)
        region.persist(node, 8 + spec.item_size)
        if self.log is not None:
            self.log.record(bucket, 8)
        region.write_atomic_u64(bucket, node)
        region.persist(bucket, 8)
        self._set_count(self._count + 1)
        self._commit_op()
        return True

    def _walk(self, key: bytes) -> tuple[int, int] | None:
        """Return ``(predecessor_ptr_addr, node)`` for ``key``."""
        region, spec = self.region, self.spec
        ptr_addr = self._bucket_addr(key)
        node = region.read_u64(ptr_addr)
        while node != NIL:
            node_key = region.read(node + 8, spec.key_size)
            if node_key == key:
                return ptr_addr, node
            ptr_addr = node
            node = region.read_u64(node)
        return None

    def query(self, key: bytes) -> bytes | None:
        found = self._walk(key)
        if found is None:
            return None
        _, node = found
        return self.region.read(node + 8 + self.spec.key_size, self.spec.value_size)

    def delete(self, key: bytes) -> bool:
        region = self.region
        found = self._walk(key)
        if found is None:
            return False
        ptr_addr, node = found
        self._begin_op()
        successor = region.read_u64(node)
        if self.log is not None:
            self.log.record(ptr_addr, 8)
            self.log.record(node, 8)
        region.write_atomic_u64(ptr_addr, successor)
        region.persist(ptr_addr, 8)
        self._free_node(node)
        self._set_count(self._count - 1)
        self._commit_op()
        return True

    def update(self, key: bytes, value: bytes) -> bool:
        """In-place value update of a chained node (nodes have no header
        word; the value field sits after the next pointer and key)."""
        if len(value) != self.spec.value_size:
            raise ValueError(
                f"value must be {self.spec.value_size} bytes, got {len(value)}"
            )
        found = self._walk(key)
        if found is None:
            return False
        _, node = found
        region = self.region
        self._begin_op()
        value_addr = node + 8 + self.spec.key_size
        if self.log is not None:
            self.log.record(value_addr, self.spec.value_size)
        region.write(value_addr, value)
        region.persist(value_addr, max(1, len(value)))
        self._commit_op()
        return True

    # ------------------------------------------------------------------
    # inventory (chains, not cells)

    def _iter_cell_addrs(self) -> Iterator[int]:
        # Chained nodes have no occupancy headers; recovery and item
        # inventory walk the chains instead.
        return iter(())

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        region, spec = self.region, self.spec
        for b in range(self.n_buckets):
            node = int.from_bytes(
                region.peek_volatile(self._buckets + 8 * b, 8), "little"
            )
            while node != NIL:
                kv = region.peek_volatile(node + 8, spec.item_size)
                yield kv[: spec.key_size], kv[spec.key_size :]
                node = int.from_bytes(region.peek_volatile(node, 8), "little")

    def reattach(self) -> None:
        super().reattach()
        self._bump = self.region.read_u64(self._bump_addr)
        self._free = self.region.read_u64(self._free_addr)

    def recover(self) -> None:
        """Rollback the log if present, reload allocator state, and
        recount by walking every chain."""
        if self.log is not None:
            self.log.recover()
        self.reattach()
        self._set_count(sum(1 for _ in self.items()))
