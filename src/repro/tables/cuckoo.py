"""Classic cuckoo hashing — PFHT's ancestor, for the cascade ablation.

The paper compares against PFHT, "an NVM optimized variant of cuckoo
hashing [that allows] at most one displacement", precisely because
classic cuckoo hashing (Pagh & Rodler) evicts in unbounded chains: each
insert may relocate dozens of items, and on NVM every relocation is a
persisted write. Implementing the classic scheme lets the ablation
benchmark *measure* the cascading-write problem PFHT was designed to
avoid — the justification the paper inherits from Debnath et al.

Two hash functions, one cell per bucket, eviction chains bounded by
``max_kicks`` (insert fails beyond it — a real implementation would
rehash).
"""

from __future__ import annotations

from typing import Iterator

from repro.nvm.backend import MemoryBackend
from repro.nvm.memory import CACHELINE
from repro.tables.base import PersistentHashTable
from repro.tables.cell import ItemSpec
from repro.tables.wal import UndoLog


class CuckooHashTable(PersistentHashTable):
    """Textbook two-function cuckoo hashing with eviction chains."""

    scheme_name = "cuckoo"

    def __init__(
        self,
        region: MemoryBackend,
        n_cells: int,
        spec: ItemSpec | None = None,
        *,
        max_kicks: int = 64,
        log: UndoLog | None = None,
        seed: int = 0x5EED,
    ) -> None:
        super().__init__(region, n_cells, spec, log=log, seed=seed)
        if max_kicks <= 0:
            raise ValueError("max_kicks must be positive")
        self.max_kicks = max_kicks
        self._h1, self._h2 = self.family.pair()
        self._base = region.alloc(
            self.codec.array_bytes(n_cells), align=CACHELINE, label="cuckoo.cells"
        )
        self._finish_layout()

    @property
    def capacity(self) -> int:
        return self.n_cells

    def _candidates(self, key: bytes) -> tuple[int, int]:
        n = self.n_cells
        return self._h1(key) % n, self._h2(key) % n

    def _addr(self, index: int) -> int:
        return self.codec.addr(self._base, index)

    def _iter_cell_addrs(self) -> Iterator[int]:
        for i in range(self.n_cells):
            yield self._addr(i)

    # ------------------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> bool:
        codec, region = self.codec, self.region
        c1, c2 = self._candidates(key)
        self._begin_op()
        try:
            for idx in (c1, c2):
                if not codec.is_occupied(region, self._addr(idx)):
                    self._install(self._addr(idx), key, value)
                    return True
            # both candidates taken: start the eviction chain at c1
            cur_key, cur_value, idx = key, value, c1
            chain: list[tuple[int, bytes, bytes]] = []
            for _ in range(self.max_kicks):
                addr = self._addr(idx)
                victim_key = codec.read_key(region, addr)
                victim_value = codec.read_value(region, addr)
                chain.append((addr, victim_key, victim_value))
                # overwrite in place with the wandering item — each hop
                # is a full persisted cell write (the cascade cost)
                if self.log is not None:
                    self.log.record(addr, codec.cell_size)
                codec.write_kv(region, addr, cur_key, cur_value)
                region.persist(*codec.kv_span(addr))
                cur_key, cur_value = victim_key, victim_value
                v1, v2 = self._candidates(cur_key)
                idx = v2 if idx == v1 else v1
                dest = self._addr(idx)
                if not codec.is_occupied(region, dest):
                    self._install(dest, cur_key, cur_value)
                    return True
            # chain too long: roll the displacements back so the failed
            # insert leaves the table exactly as it was (a production
            # implementation would rehash instead)
            for addr, victim_key, victim_value in reversed(chain):
                if self.log is not None:
                    self.log.record(addr, codec.cell_size)
                codec.write_kv(region, addr, victim_key, victim_value)
                region.persist(*codec.kv_span(addr))
            return False
        finally:
            self._commit_op()

    def _find(self, key: bytes) -> int | None:
        codec, region = self.codec, self.region
        for idx in self._candidates(key):
            addr = self._addr(idx)
            occupied, cell_key = codec.probe(region, addr)
            if occupied and cell_key == key:
                return addr
        return None

    def query(self, key: bytes) -> bytes | None:
        addr = self._find(key)
        if addr is None:
            return None
        return self.codec.read_value(self.region, addr)

    def delete(self, key: bytes) -> bool:
        addr = self._find(key)
        if addr is None:
            return False
        self._begin_op()
        self._remove(addr)
        self._commit_op()
        return True
