"""Level hashing — the contemporaneous point of comparison.

Zuo, Hua & Wu, "Write-Optimized and High-Performance Hashing Index
Scheme for Persistent Memory" (OSDI 2018) appeared the same year as the
paper reproduced here and attacks the same problem with strikingly
similar ingredients, which makes it the comparison users of this
repository ask for first. The structure:

- a **top level** of N buckets (4 slots each) addressable by two hash
  functions, and a **bottom level** of N/2 buckets, where bottom bucket
  ``b`` is shared by top buckets ``2b`` and ``2b+1`` — sharing one
  level down, where group hashing shares sideways within a group;
- an insert tries its two top buckets, then the two corresponding
  bottom buckets, then attempts **at most one movement** of a resident
  item to its alternate bucket (like PFHT's single displacement);
- consistency comes from slot-granular tokens committed with 8-byte
  atomic stores — the same log-free discipline as group hashing, which
  this implementation inherits directly from the shared
  :class:`~repro.tables.base.PersistentHashTable` commit helpers.

This is the algorithmic skeleton sufficient for latency/miss/
utilization comparison; the OSDI paper's in-place resizing and
fine-grained locking are out of scope here (as resizing/concurrency are
in the reproduced paper).
"""

from __future__ import annotations

from typing import Iterator

from repro.nvm.backend import MemoryBackend
from repro.nvm.memory import CACHELINE
from repro.tables.base import PersistentHashTable
from repro.tables.cell import ItemSpec
from repro.tables.wal import UndoLog


class LevelHashTable(PersistentHashTable):
    """Two-level bucketized hashing with one-movement inserts."""

    scheme_name = "level"

    def __init__(
        self,
        region: MemoryBackend,
        n_cells: int,
        spec: ItemSpec | None = None,
        *,
        bucket_size: int = 4,
        log: UndoLog | None = None,
        seed: int = 0x5EED,
    ) -> None:
        super().__init__(region, n_cells, spec, log=log, seed=seed)
        if bucket_size <= 0:
            raise ValueError("bucket_size must be positive")
        self.bucket_size = bucket_size
        # top : bottom = 2 : 1 in buckets → cells split 2/3 : 1/3
        self.n_top = max(2, (2 * n_cells) // (3 * bucket_size))
        if self.n_top % 2:
            self.n_top += 1  # bottom sharing needs an even top count
        self.n_bottom = self.n_top // 2
        self._h1, self._h2 = self.family.pair()
        self._top_base = region.alloc(
            self.codec.array_bytes(self.n_top * bucket_size),
            align=CACHELINE,
            label="level.top",
        )
        self._bottom_base = region.alloc(
            self.codec.array_bytes(self.n_bottom * bucket_size),
            align=CACHELINE,
            label="level.bottom",
        )
        self._finish_layout()

    @property
    def capacity(self) -> int:
        return (self.n_top + self.n_bottom) * self.bucket_size

    def _top_buckets(self, key: bytes) -> tuple[int, int]:
        return self._h1(key) % self.n_top, self._h2(key) % self.n_top

    def _top_addr(self, bucket: int, slot: int) -> int:
        return self.codec.addr(self._top_base, bucket * self.bucket_size + slot)

    def _bottom_addr(self, bucket: int, slot: int) -> int:
        return self.codec.addr(self._bottom_base, bucket * self.bucket_size + slot)

    def _iter_cell_addrs(self) -> Iterator[int]:
        for i in range(self.n_top * self.bucket_size):
            yield self.codec.addr(self._top_base, i)
        for i in range(self.n_bottom * self.bucket_size):
            yield self.codec.addr(self._bottom_base, i)

    def _candidate_buckets(self, key: bytes):
        """The four bucket scans of level hashing: two top, two bottom
        (bottom bucket = top bucket // 2, the position-sharing rule)."""
        t1, t2 = self._top_buckets(key)
        yield ("top", t1)
        if t2 != t1:
            yield ("top", t2)
        b1, b2 = t1 // 2, t2 // 2
        yield ("bottom", b1)
        if b2 != b1:
            yield ("bottom", b2)

    def _bucket_addr(self, level: str, bucket: int, slot: int) -> int:
        return (
            self._top_addr(bucket, slot)
            if level == "top"
            else self._bottom_addr(bucket, slot)
        )

    def _empty_slot(self, level: str, bucket: int) -> int | None:
        codec, region = self.codec, self.region
        for slot in range(self.bucket_size):
            if not codec.is_occupied(region, self._bucket_addr(level, bucket, slot)):
                return slot
        return None

    # ------------------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> bool:
        """Try the four candidate buckets, then one movement."""
        self._begin_op()
        try:
            for level, bucket in self._candidate_buckets(key):
                slot = self._empty_slot(level, bucket)
                if slot is not None:
                    self._install(self._bucket_addr(level, bucket, slot), key, value)
                    return True
            return self._move_and_install(key, value)
        finally:
            self._commit_op()

    def _move_and_install(self, key: bytes, value: bytes) -> bool:
        """Level hashing's single movement: evict one occupant of a top
        candidate bucket to the occupant's alternate top bucket (or its
        bottom bucket) if that has room."""
        codec, region = self.codec, self.region
        t1, t2 = self._top_buckets(key)
        for bucket in dict.fromkeys((t1, t2)):
            for slot in range(self.bucket_size):
                addr = self._top_addr(bucket, slot)
                occupied, victim_key = codec.probe(region, addr)
                if not occupied:  # pragma: no cover - bucket was full
                    continue
                v1, v2 = self._top_buckets(victim_key)
                alt_candidates = []
                alt_top = v2 if bucket == v1 else v1
                if alt_top != bucket:
                    alt_candidates.append(("top", alt_top))
                alt_candidates.append(("bottom", alt_top // 2))
                alt_candidates.append(("bottom", bucket // 2))
                for alt_level, alt_bucket in alt_candidates:
                    alt_slot = self._empty_slot(alt_level, alt_bucket)
                    if alt_slot is None:
                        continue
                    victim_value = codec.read_value(region, addr)
                    self._relocate(
                        addr,
                        self._bucket_addr(alt_level, alt_bucket, alt_slot),
                        victim_key,
                        victim_value,
                    )
                    self._install(addr, key, value)
                    return True
        return False

    # ------------------------------------------------------------------

    def _find(self, key: bytes) -> int | None:
        codec, region = self.codec, self.region
        for level, bucket in self._candidate_buckets(key):
            for slot in range(self.bucket_size):
                addr = self._bucket_addr(level, bucket, slot)
                occupied, cell_key = codec.probe(region, addr)
                if occupied and cell_key == key:
                    return addr
        return None

    def query(self, key: bytes) -> bytes | None:
        """Check the four candidate buckets (up to 16 contiguous cells
        across four cachelines)."""
        addr = self._find(key)
        if addr is None:
            return None
        return self.codec.read_value(self.region, addr)

    def delete(self, key: bytes) -> bool:
        """Token-clear commit, identical discipline to insert."""
        addr = self._find(key)
        if addr is None:
            return False
        self._begin_op()
        self._remove(addr)
        self._commit_op()
        return True
