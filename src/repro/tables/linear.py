"""Linear probing baseline.

The paper's representative "traditional DRAM hashing scheme": collision
resolution probes the immediately following cells, so probe sequences
are contiguous in memory — which is why it has the best cache behaviour
of the baselines (Section 2.3) — but deletion must restore the probe
invariant by **backward shifting** the cluster (no tombstones), the
"complicated delete process" whose extra writes and flushes the paper
measures (Figures 5 and 6, delete panels, especially at load factor
0.75).

Without an undo log, a crash in the middle of a backward-shift delete
leaves a duplicated or lost item — the motivating inconsistency for the
``linear-L`` variant.
"""

from __future__ import annotations

from typing import Iterator

from repro.nvm.backend import MemoryBackend
from repro.nvm.memory import CACHELINE
from repro.tables.base import PersistentHashTable
from repro.tables.cell import HEADER_SIZE, OCCUPIED_BIT, ItemSpec
from repro.tables.wal import UndoLog


class LinearProbingTable(PersistentHashTable):
    """Open-addressing hash table with linear probing."""

    scheme_name = "linear"

    def __init__(
        self,
        region: MemoryBackend,
        n_cells: int,
        spec: ItemSpec | None = None,
        *,
        log: UndoLog | None = None,
        seed: int = 0x5EED,
    ) -> None:
        super().__init__(region, n_cells, spec, log=log, seed=seed)
        self._hash = self.family.function(0)
        self._base = region.alloc(
            self.codec.array_bytes(n_cells), align=CACHELINE, label="linear.cells"
        )
        self._finish_layout()

    @property
    def capacity(self) -> int:
        return self.n_cells

    def _slot(self, key: bytes) -> int:
        return self._hash(key) % self.n_cells

    def _addr(self, index: int) -> int:
        return self.codec.addr(self._base, index)

    def _iter_cell_addrs(self) -> Iterator[int]:
        for i in range(self.n_cells):
            yield self._addr(i)

    # ------------------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> bool:
        codec, region, n = self.codec, self.region, self.n_cells
        tr, mx = self.tracer, self.metrics
        start = self._slot(key)
        self._begin_op()
        if tr is not None:
            tr.push("probe")
        # The wrapped cluster is at most two contiguous runs, so one
        # vectorized clear-scan per run replaces the per-cell loop; the
        # reference implementation probes cell by cell with early exit,
        # so the event sequence is unchanged.
        cell_size = codec.cell_size
        found = None
        i = region.scan_clear_u64(
            self._addr(start), cell_size, n - start, OCCUPIED_BIT
        )
        if i is not None:
            found = (i, self._addr(start + i))
        elif start:
            i = region.scan_clear_u64(self._base, cell_size, start, OCCUPIED_BIT)
            if i is not None:
                found = (n - start + i, self._addr(i))
        if tr is not None:
            tr.pop()
        if found is None:
            self._commit_op()
            return False
        if mx is not None:
            mx.histogram("linear.insert_probe_cells").record(found[0] + 1)
        self._install(found[1], key, value)
        self._commit_op()
        return True

    def query(self, key: bytes) -> bytes | None:
        idx = self._find(key)
        if idx is None:
            return None
        return self.codec.read_value(self.region, self._addr(idx))

    def _find(self, key: bytes) -> int | None:
        """Probe the cluster starting at the key's home slot; an empty
        cell terminates the search (valid because deletes backward-shift
        instead of leaving tombstones)."""
        codec, region, n = self.codec, self.region, self.n_cells
        tr, mx = self.tracer, self.metrics
        start = self._slot(key)
        if tr is not None:
            tr.push("probe")
        # Vectorized empty-or-match probe over the (at most two) runs of
        # the wrapped cluster; scan_probe stops at the first empty cell
        # or key hit exactly like the scalar loop did, reading
        # header+key per probed cell.
        cell_size = codec.cell_size
        result = None
        probed = 0
        hit = region.scan_probe(
            self._addr(start),
            cell_size,
            n - start,
            key,
            mask=OCCUPIED_BIT,
            key_offset=HEADER_SIZE,
        )
        if hit is not None:
            i, matched = hit
            probed = i + 1
            if matched:
                result = start + i
        else:
            probed = n - start
            if start:
                hit = region.scan_probe(
                    self._base,
                    cell_size,
                    start,
                    key,
                    mask=OCCUPIED_BIT,
                    key_offset=HEADER_SIZE,
                )
                if hit is not None:
                    i, matched = hit
                    probed += i + 1
                    if matched:
                        result = i
                else:
                    probed = n
        if tr is not None:
            tr.pop()
        if mx is not None:
            mx.histogram("linear.find_probe_cells").record(probed)
        return result

    def _locate(self, key: bytes) -> int | None:
        idx = self._find(key)
        return None if idx is None else self._addr(idx)

    def delete(self, key: bytes) -> bool:
        codec, region, n = self.codec, self.region, self.n_cells
        hole = self._find(key)
        if hole is None:
            return False
        self._begin_op()
        tr, mx = self.tracer, self.metrics
        if tr is not None:
            tr.push("backward_shift")
        shifts = 0
        # Backward-shift compaction (Knuth 6.4 Algorithm R): walk the rest
        # of the cluster and pull every item whose home slot would become
        # unreachable into the hole. Each pull is an extra NVM write +
        # persist — the delete cost the paper charges linear probing for.
        # The walk is bounded to one full cycle: with no empty cell in the
        # table (load factor 1.0) there is no cluster end to stop at, but
        # after visiting every other cell once the invariant is restored.
        j = hole
        for _ in range(n - 1):
            j += 1
            if j >= n:
                j -= n
            addr_j = self._addr(j)
            occupied, key_j = codec.probe(region, addr_j)
            if not occupied:
                break
            home = self._hash(key_j) % n
            # Move item j into the hole iff its home slot lies cyclically
            # outside (hole, j] — i.e. probing from `home` would pass the
            # hole before reaching j.
            if (j - home) % n >= (j - hole) % n:
                value_j = codec.read_value(region, addr_j)
                if self.log is not None:
                    self.log.record(self._addr(hole), codec.cell_size)
                codec.write_kv(region, self._addr(hole), key_j, value_j)
                region.persist(*codec.kv_span(self._addr(hole)))
                codec.set_occupied(region, self._addr(hole), True)
                region.persist(self._addr(hole), 8)
                hole = j
                shifts += 1
        if tr is not None:
            tr.pop()
        if mx is not None:
            mx.histogram("linear.delete_shifts").record(shifts)
            mx.counter("linear.shift_moves").inc(shifts)
        self._remove(self._addr(hole))
        self._commit_op()
        return True
