"""Path hashing baseline.

After Zuo & Hua, "A write-friendly hashing scheme for non-volatile
memory systems" (the paper's reference [34]): storage cells form an
*inverted complete binary tree*. The top level (level 0) has ``2^m``
cells addressable by two hash functions; when both positions collide,
the item descends the tree — the candidate at level ``i`` for leaf
position ``p`` is cell ``p >> i`` of a level holding ``2^(m-i)`` cells.
*Position sharing* means siblings share their ancestors' cells, and
*path shortening* allocates only the top ``reserved_levels`` levels
(the paper evaluates with 20).

The property the paper's motivation section hinges on: the cells along a
path live in **different level arrays**, so each probe step touches a
different cacheline — one memory access (and likely one L3 miss) per
level, which is why path hashing has the worst request latency and miss
counts despite its excellent space utilization (Figure 7).

Inserts write a single cell, but the paper still pairs it with logging
(``path-L``) since the scheme itself specifies no commit protocol.
"""

from __future__ import annotations

from typing import Iterator

from repro.nvm.backend import MemoryBackend
from repro.nvm.memory import CACHELINE
from repro.tables.base import PersistentHashTable
from repro.tables.cell import HEADER_SIZE, OCCUPIED_BIT, ItemSpec
from repro.tables.wal import UndoLog


class PathHashingTable(PersistentHashTable):
    """Inverted-binary-tree hashing with position sharing."""

    scheme_name = "path"

    def __init__(
        self,
        region: MemoryBackend,
        n_cells: int,
        spec: ItemSpec | None = None,
        *,
        reserved_levels: int = 20,
        log: UndoLog | None = None,
        seed: int = 0x5EED,
    ) -> None:
        # Level 0 must be a power of two so the shift-by-level addressing
        # of the binary tree works; round the request down.
        if n_cells <= 0:
            raise ValueError("n_cells must be positive")
        self._m = max(1, n_cells.bit_length() - 1)
        level0 = 1 << self._m
        super().__init__(region, level0, spec, log=log, seed=seed)
        self.reserved_levels = min(reserved_levels, self._m + 1)
        if self.reserved_levels < 1:
            raise ValueError("need at least one level")
        self._h1, self._h2 = self.family.pair()
        # One contiguous array per level; *separate* allocations so paths
        # cross arrays exactly as in the original layout.
        self._level_bases: list[int] = []
        self._level_sizes: list[int] = []
        for level in range(self.reserved_levels):
            size = level0 >> level
            self._level_bases.append(
                region.alloc(
                    self.codec.array_bytes(size),
                    align=CACHELINE,
                    label=f"path.level{level}",
                )
            )
            self._level_sizes.append(size)
        self._capacity = sum(self._level_sizes)
        self._finish_layout()

    @property
    def capacity(self) -> int:
        return self._capacity

    def _positions(self, key: bytes) -> tuple[int, int]:
        mask = (1 << self._m) - 1
        return self._h1(key) & mask, self._h2(key) & mask

    def _cell_addr(self, level: int, pos: int) -> int:
        return self.codec.addr(self._level_bases[level], pos)

    def _iter_cell_addrs(self) -> Iterator[int]:
        for level in range(self.reserved_levels):
            for pos in range(self._level_sizes[level]):
                yield self._cell_addr(level, pos)

    def _path_cells(self, key: bytes) -> Iterator[int]:
        """Yield candidate cell addresses: both positions per level,
        walking down the reserved levels."""
        p1, p2 = self._positions(key)
        for level in range(self.reserved_levels):
            yield self._cell_addr(level, p1 >> level)
            addr2 = self._cell_addr(level, p2 >> level)
            if (p2 >> level) != (p1 >> level):
                yield addr2

    # ------------------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> bool:
        region = self.region
        tr, mx = self.tracer, self.metrics
        self._begin_op()
        if tr is not None:
            tr.push("path_probe")
        # The candidate cells are scattered across the level arrays, so
        # the vectorized form is a gather: one clear-scan over the
        # precomputed address list, early exit at the first free cell
        # (one header read per probed cell, as before).
        addrs = list(self._path_cells(key))
        idx = region.scan_clear_at(addrs, OCCUPIED_BIT)
        found = None if idx is None else addrs[idx]
        probed = len(addrs) if idx is None else idx + 1
        if tr is not None:
            tr.pop()
        if found is None:
            self._commit_op()
            return False
        if mx is not None:
            mx.histogram("path.insert_probe_cells").record(probed)
        self._install(found, key, value)
        self._commit_op()
        return True

    def _find(self, key: bytes) -> int | None:
        region = self.region
        tr, mx = self.tracer, self.metrics
        if tr is not None:
            tr.push("path_probe")
        # Gathered match-scan down the path: early exit on hit, one
        # header+key read per probed cell — the scalar loop's events.
        addrs = list(self._path_cells(key))
        idx = region.scan_match_at(
            addrs, key, mask=OCCUPIED_BIT, key_offset=HEADER_SIZE
        )
        found = None if idx is None else addrs[idx]
        probed = len(addrs) if idx is None else idx + 1
        if tr is not None:
            tr.pop()
        if mx is not None:
            mx.histogram("path.find_probe_cells").record(probed)
        return found

    def query(self, key: bytes) -> bytes | None:
        addr = self._find(key)
        if addr is None:
            return None
        return self.codec.read_value(self.region, addr)

    def delete(self, key: bytes) -> bool:
        addr = self._find(key)
        if addr is None:
            return False
        self._begin_op()
        self._remove(addr)
        self._commit_op()
        return True
