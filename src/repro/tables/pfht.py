"""PFHT baseline — the PCM-friendly bucketized cuckoo hash table.

After Debnath et al., "Revisiting hash table design for phase change
memory" (the paper's reference [5]): a cuckoo variant that

- uses **4-cell buckets** (one 64-byte cacheline for 16-byte items, so a
  bucket probe is a single line fill),
- permits **at most one displacement** per insert (bounding the cascading
  writes of classic cuckoo hashing), and
- spills insertion failures into a **stash** sized at 3 % of the table,
  searched linearly.

The paper's evaluation settings are reproduced as defaults: bucket size
4, stash 3 %. At load factor 0.75 the stash fills up and its linear
search dominates — the PFHT/path crossover in Figures 5 and 6.

Displacement moves an item between two buckets in multiple steps, which
is not crash-atomic — hence the ``PFHT-L`` logged variant.
"""

from __future__ import annotations

from typing import Iterator

from repro.nvm.backend import MemoryBackend
from repro.nvm.memory import CACHELINE
from repro.tables.base import PersistentHashTable
from repro.tables.cell import HEADER_SIZE, OCCUPIED_BIT, ItemSpec
from repro.tables.wal import UndoLog


class PFHTTable(PersistentHashTable):
    """Bucketized cuckoo hashing with one displacement and a stash."""

    scheme_name = "pfht"

    def __init__(
        self,
        region: MemoryBackend,
        n_cells: int,
        spec: ItemSpec | None = None,
        *,
        bucket_size: int = 4,
        stash_fraction: float = 0.03,
        log: UndoLog | None = None,
        seed: int = 0x5EED,
    ) -> None:
        super().__init__(region, n_cells, spec, log=log, seed=seed)
        if bucket_size <= 0:
            raise ValueError("bucket_size must be positive")
        self.bucket_size = bucket_size
        self.n_buckets = max(1, n_cells // bucket_size)
        self.stash_cells = max(1, int(round(n_cells * stash_fraction)))
        self._h1, self._h2 = self.family.pair()
        self._base = region.alloc(
            self.codec.array_bytes(self.n_buckets * bucket_size),
            align=CACHELINE,
            label="pfht.buckets",
        )
        self._stash_base = region.alloc(
            self.codec.array_bytes(self.stash_cells),
            align=CACHELINE,
            label="pfht.stash",
        )
        self._finish_layout()

    @property
    def capacity(self) -> int:
        return self.n_buckets * self.bucket_size + self.stash_cells

    def _buckets_of(self, key: bytes) -> tuple[int, int]:
        return self._h1(key) % self.n_buckets, self._h2(key) % self.n_buckets

    def _cell_addr(self, bucket: int, slot: int) -> int:
        return self.codec.addr(self._base, bucket * self.bucket_size + slot)

    def _stash_addr(self, slot: int) -> int:
        return self.codec.addr(self._stash_base, slot)

    def _iter_cell_addrs(self) -> Iterator[int]:
        for i in range(self.n_buckets * self.bucket_size):
            yield self.codec.addr(self._base, i)
        for i in range(self.stash_cells):
            yield self._stash_addr(i)

    # ------------------------------------------------------------------

    def _empty_slot(self, bucket: int) -> int | None:
        """First free slot of ``bucket``: one clear-scan over the
        bucket's contiguous cells (events identical to the per-slot
        loop — the reference scan probes cell by cell, early exit)."""
        return self.region.scan_clear_u64(
            self._cell_addr(bucket, 0),
            self.codec.cell_size,
            self.bucket_size,
            OCCUPIED_BIT,
        )

    def insert(self, key: bytes, value: bytes) -> bool:
        mx = self.metrics
        b1, b2 = self._buckets_of(key)
        self._begin_op()
        try:
            for bucket in (b1, b2):
                slot = self._empty_slot(bucket)
                if slot is not None:
                    if mx is not None:
                        mx.counter("pfht.bucket_inserts").inc()
                    self._install(self._cell_addr(bucket, slot), key, value)
                    return True
            if self._displace_and_install(b1, key, value):
                return True
            if b2 != b1 and self._displace_and_install(b2, key, value):
                return True
            ok = self._stash_insert(key, value)
            if mx is not None:
                mx.counter("pfht.stash_inserts" if ok else "pfht.insert_failures").inc()
            return ok
        finally:
            self._commit_op()

    def _displace_and_install(self, bucket: int, key: bytes, value: bytes) -> bool:
        """Try to free one slot of ``bucket`` by moving an occupant to its
        alternate bucket — PFHT's single allowed displacement."""
        codec, region = self.codec, self.region
        for slot in range(self.bucket_size):
            addr = self._cell_addr(bucket, slot)
            occupied, victim_key = codec.probe(region, addr)
            if not occupied:  # pragma: no cover - caller checked fullness
                continue
            vb1, vb2 = self._buckets_of(victim_key)
            alt = vb2 if bucket == vb1 else vb1
            if alt == bucket:
                continue
            alt_slot = self._empty_slot(alt)
            if alt_slot is None:
                continue
            victim_value = codec.read_value(region, addr)
            tr, mx = self.tracer, self.metrics
            if mx is not None:
                mx.counter("pfht.displacements").inc()
            if tr is not None:
                tr.push("displace")
            self._relocate(
                addr, self._cell_addr(alt, alt_slot), victim_key, victim_value
            )
            if tr is not None:
                tr.pop()
            self._install(addr, key, value)
            return True
        return False

    def _stash_insert(self, key: bytes, value: bytes) -> bool:
        codec, region = self.codec, self.region
        for slot in range(self.stash_cells):
            addr = self._stash_addr(slot)
            if not codec.is_occupied(region, addr):
                self._install(addr, key, value)
                return True
        return False

    # ------------------------------------------------------------------

    def _find(self, key: bytes) -> int | None:
        """Return the cell address holding ``key``, searching both
        buckets and then the stash linearly."""
        codec, region = self.codec, self.region
        tr, mx = self.tracer, self.metrics
        cell_size = codec.cell_size
        b1, b2 = self._buckets_of(key)
        buckets = (b1,) if b1 == b2 else (b1, b2)
        probed = 0
        if tr is not None:
            tr.push("bucket_probe")
        # One match-scan per bucket (the group-filter primitive at
        # bucket granularity): early exit on hit, full bucket on miss,
        # header+key read per probed cell — the scalar loop's events.
        for bucket in buckets:
            slot = region.scan_match(
                self._cell_addr(bucket, 0),
                cell_size,
                self.bucket_size,
                key,
                mask=OCCUPIED_BIT,
                key_offset=HEADER_SIZE,
            )
            if slot is not None:
                probed += slot + 1
                if tr is not None:
                    tr.pop()
                if mx is not None:
                    mx.histogram("pfht.find_probe_cells").record(probed)
                return self._cell_addr(bucket, slot)
            probed += self.bucket_size
        if tr is not None:
            tr.pop()
            tr.push("stash_probe")
        slot = region.scan_match(
            self._stash_base,
            cell_size,
            self.stash_cells,
            key,
            mask=OCCUPIED_BIT,
            key_offset=HEADER_SIZE,
        )
        if slot is not None:
            probed += slot + 1
            if tr is not None:
                tr.pop()
            if mx is not None:
                mx.histogram("pfht.find_probe_cells").record(probed)
                mx.counter("pfht.stash_hits").inc()
            return self._stash_addr(slot)
        probed += self.stash_cells
        if tr is not None:
            tr.pop()
        if mx is not None:
            mx.histogram("pfht.find_probe_cells").record(probed)
        return None

    def query(self, key: bytes) -> bytes | None:
        addr = self._find(key)
        if addr is None:
            return None
        return self.codec.read_value(self.region, addr)

    def delete(self, key: bytes) -> bool:
        addr = self._find(key)
        if addr is None:
            return False
        self._begin_op()
        self._remove(addr)
        self._commit_op()
        return True

    # ------------------------------------------------------------------

    def stash_occupancy(self) -> int:
        """Number of items currently living in the stash (diagnostic for
        the load-factor-0.75 crossover analysis)."""
        codec, region = self.codec, self.region
        return sum(
            1
            for slot in range(self.stash_cells)
            if codec.is_occupied(region, self._stash_addr(slot))
        )
