"""2-choice hashing — a scheme the paper mentions only to exclude.

Section 4.1: "2-choice hashing has too low space utilization ratio,
[so] we do not take [it] into the comparison." We implement it anyway so
the exclusion ablation (`benchmarks/test_ablation_excluded_schemes.py`)
can *measure* that claim: each key has exactly two candidate cells and
no eviction, so inserts start failing at a load factor far below the
other schemes.
"""

from __future__ import annotations

from typing import Iterator

from repro.nvm.backend import MemoryBackend
from repro.nvm.memory import CACHELINE
from repro.tables.base import PersistentHashTable
from repro.tables.cell import ItemSpec
from repro.tables.wal import UndoLog


class TwoChoiceTable(PersistentHashTable):
    """Hashing with two candidate cells per key and no displacement."""

    scheme_name = "two-choice"

    def __init__(
        self,
        region: MemoryBackend,
        n_cells: int,
        spec: ItemSpec | None = None,
        *,
        log: UndoLog | None = None,
        seed: int = 0x5EED,
    ) -> None:
        super().__init__(region, n_cells, spec, log=log, seed=seed)
        self._h1, self._h2 = self.family.pair()
        self._base = region.alloc(
            self.codec.array_bytes(n_cells), align=CACHELINE, label="two_choice.cells"
        )
        self._finish_layout()

    @property
    def capacity(self) -> int:
        return self.n_cells

    def _candidates(self, key: bytes) -> tuple[int, int]:
        n = self.n_cells
        return self._h1(key) % n, self._h2(key) % n

    def _iter_cell_addrs(self) -> Iterator[int]:
        for i in range(self.n_cells):
            yield self.codec.addr(self._base, i)

    def insert(self, key: bytes, value: bytes) -> bool:
        codec, region = self.codec, self.region
        self._begin_op()
        for idx in self._candidates(key):
            addr = self.codec.addr(self._base, idx)
            if not codec.is_occupied(region, addr):
                self._install(addr, key, value)
                self._commit_op()
                return True
        self._commit_op()
        return False

    def _find(self, key: bytes) -> int | None:
        codec, region = self.codec, self.region
        for idx in self._candidates(key):
            addr = self.codec.addr(self._base, idx)
            occupied, cell_key = codec.probe(region, addr)
            if occupied and cell_key == key:
                return addr
        return None

    def query(self, key: bytes) -> bytes | None:
        addr = self._find(key)
        if addr is None:
            return None
        return self.codec.read_value(self.region, addr)

    def delete(self, key: bytes) -> bool:
        addr = self._find(key)
        if addr is None:
            return False
        self._begin_op()
        self._remove(addr)
        self._commit_op()
        return True
