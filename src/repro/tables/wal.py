"""Undo logging — the duplicate-copy consistency technique the paper
argues against.

The ``-L`` variants of the baselines wrap every mutating operation in an
undo transaction:

1. before a cell is overwritten, its old bytes are appended to the log
   and **persisted** (``clflush`` + ``mfence``), then the persistent tail
   pointer is atomically bumped and persisted — ordering that guarantees
   the old value is recoverable before the in-place write can reach NVM;
2. when the operation completes, the tail pointer is atomically reset to
   zero and persisted (commit/truncate).

Per logged cell this costs two extra flushes plus the re-misses caused
by ``clflush`` invalidating the log lines — which is precisely the
~2× latency and ~2.2× L3-miss inflation the paper measures in Figure 2.

Recovery (:meth:`UndoLog.recover`) rolls uncommitted entries back in
reverse order, restoring the pre-operation image.
"""

from __future__ import annotations

from repro.nvm.backend import MemoryBackend
from repro.nvm.memory import CACHELINE


class LogFullError(RuntimeError):
    """The undo area cannot hold another record; size the log for the
    scheme's worst-case operation (backward-shift deletes are the
    largest consumer)."""


class UndoLog:
    """Fixed-capacity undo log stored in the same NVM region.

    Layout::

        +-------------------+----------------------------------------+
        | tail (8 B, atomic)| entry 0 | entry 1 | ...                 |
        +-------------------+----------------------------------------+

    Entries have a fixed stride (``16 + record_size`` rounded to 8) so
    recovery can walk them backwards: ``addr (8) | size (8) | old bytes``.
    """

    def __init__(
        self,
        region: MemoryBackend,
        *,
        record_size: int,
        capacity: int = 1024,
    ) -> None:
        if record_size <= 0 or capacity <= 0:
            raise ValueError("record_size and capacity must be positive")
        self.region = region
        self.record_size = record_size
        self.capacity = capacity
        #: optional :class:`~repro.obs.MetricsRegistry` counting log
        #: traffic (``wal.records`` / ``wal.commits`` /
        #: ``wal.rollback_entries``); ``None`` = disabled. Wired by
        #: ``PersistentHashTable.instrument``.
        self.metrics = None
        self.entry_stride = 16 + (-(-record_size // 8) * 8)
        self._tail_addr = region.alloc(CACHELINE, align=CACHELINE, label="undolog.tail")
        self._entries_addr = region.alloc(
            capacity * self.entry_stride, align=CACHELINE, label="undolog.entries"
        )
        self._tail = 0
        region.write_u64(self._tail_addr, 0)
        region.persist(self._tail_addr, 8)

    # ------------------------------------------------------------------

    def begin(self) -> None:
        """Start a transaction. The log must be empty — nested or leaked
        transactions indicate a scheme bug, so fail loudly."""
        if self._tail != 0:
            raise RuntimeError(
                "undo log not empty at begin(); missing commit() or recover()?"
            )

    def record(self, addr: int, size: int) -> None:
        """Log the current (pre-image) contents of ``[addr, addr+size)``.

        Must be called *before* the in-place write it protects."""
        if size > self.record_size:
            raise ValueError(
                f"record of {size} bytes exceeds log record size {self.record_size}"
            )
        if self._tail >= self.capacity:
            raise LogFullError(
                f"undo log full ({self.capacity} entries); "
                "operation touches more cells than the log was sized for"
            )
        region = self.region
        old = region.read(addr, size)
        entry = self._entries_addr + self._tail * self.entry_stride
        region.write_u64(entry, addr)
        region.write_u64(entry + 8, size)
        region.write(entry + 16, old)
        region.persist(entry, 16 + size)
        self._tail += 1
        region.write_atomic_u64(self._tail_addr, self._tail)
        region.persist(self._tail_addr, 8)
        if self.metrics is not None:
            self.metrics.counter("wal.records").inc()

    def commit(self) -> None:
        """Operation complete: truncate the log with one atomic persist."""
        if self._tail == 0:
            return
        self._tail = 0
        self.region.write_atomic_u64(self._tail_addr, 0)
        self.region.persist(self._tail_addr, 8)
        if self.metrics is not None:
            self.metrics.counter("wal.commits").inc()

    # ------------------------------------------------------------------

    @property
    def pending_entries(self) -> int:
        """Entries not yet committed (nonzero only mid-operation)."""
        return self._tail

    @property
    def persisted_tail(self) -> int:
        """The tail pointer as stored in the persistent image (cost-free
        peek — used by integrity checks, not workload code)."""
        return int.from_bytes(self.region.peek_persistent(self._tail_addr, 8), "little")

    def needs_recovery(self) -> bool:
        """Whether the persistent tail indicates an interrupted operation."""
        return self.region.read_u64(self._tail_addr) != 0

    def reattach(self) -> None:
        """Reload the volatile tail mirror after a simulated crash."""
        self._tail = self.region.read_u64(self._tail_addr)

    def recover(self) -> None:
        """Roll back uncommitted entries in reverse order and truncate."""
        region = self.region
        tail = region.read_u64(self._tail_addr)
        for i in reversed(range(tail)):
            entry = self._entries_addr + i * self.entry_stride
            addr = region.read_u64(entry)
            size = region.read_u64(entry + 8)
            old = region.read(entry + 16, size)
            region.write(addr, old)
            region.persist(addr, size)
        self._tail = 0
        region.write_atomic_u64(self._tail_addr, 0)
        region.persist(self._tail_addr, 8)
        if self.metrics is not None:
            self.metrics.counter("wal.recoveries").inc()
            self.metrics.counter("wal.rollback_entries").inc(tail)
