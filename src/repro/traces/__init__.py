"""Workload traces (paper Section 4.1).

Three traces drive the evaluation. The paper uses one synthetic and two
real datasets; where the real data is not redistributable we generate a
synthetic equivalent with the same key structure and item size (the
substitution table in DESIGN.md):

- :class:`~repro.traces.random_num.RandomNumTrace` — random integers in
  ``[0, 2^26)``, 16-byte items (exactly the paper's generator);
- :class:`~repro.traces.bag_of_words.BagOfWordsTrace` — (DocID, WordID)
  pairs with Zipfian word frequencies, modelled on the UCI PubMed
  bags-of-words collection, 16-byte items;
- :class:`~repro.traces.fingerprint.FingerprintTrace` — MD5 digests of
  synthetic file contents, modelled on the FSL Mac OS X snapshots,
  32-byte items.

Every trace yields unique keys (the hash tables, like the paper's
Algorithm 1, do not check for duplicates) and knows its
:class:`~repro.tables.cell.ItemSpec`.
"""

from repro.traces.base import Trace
from repro.traces.bag_of_words import BagOfWordsTrace
from repro.traces.fingerprint import FingerprintTrace
from repro.traces.random_num import RandomNumTrace

#: trace registry for the benchmark CLI, keyed by the paper's names
TRACES: dict[str, type[Trace]] = {
    "randomnum": RandomNumTrace,
    "bagofwords": BagOfWordsTrace,
    "fingerprint": FingerprintTrace,
}

__all__ = [
    "BagOfWordsTrace",
    "FingerprintTrace",
    "RandomNumTrace",
    "TRACES",
    "Trace",
]
