"""Bag-of-Words trace — synthetic stand-in for the UCI PubMed collection.

The paper uses the PubMed abstracts bag-of-words dataset (~8.2M
documents, 141k-word vocabulary, ~82M (DocID, WordID) items) and keys
the hash items by the (DocID, WordID) combination, 16 bytes per item.

The dataset is not bundled here (no network, ~2 GB raw), so we generate
a synthetic equivalent that preserves the two properties the hash tables
can observe (DESIGN.md substitution table):

- **key structure**: a (DocID: u32, WordID: u32) pair packed into an
  8-byte key — a highly structured, non-uniform bit pattern (small
  integers in both halves), which exercises the hash functions harder
  than RandomNum's uniform keys;
- **distribution**: word IDs follow a Zipf law (word frequencies in
  natural-language corpora are Zipfian); document IDs increase
  sequentially with a Poisson-ish number of distinct words each. The
  per-document (doc, word) combinations are unique by construction,
  matching the bag-of-words format where each (DocID, WordID) row
  appears once with its count.

Values are the 8-byte little-endian word count (log-normal-ish, ≥ 1),
mirroring the dataset's count column.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tables.cell import ItemSpec
from repro.traces.base import Trace

#: PubMed vocabulary size (from the UCI dataset's docword header)
PUBMED_VOCAB = 141_043

#: mean distinct words per PubMed abstract (≈ 82M items / 8.2M docs)
WORDS_PER_DOC = 10.0


class BagOfWordsTrace(Trace):
    """(DocID, WordID) keys with Zipfian word popularity, 16-byte items."""

    name = "bagofwords"

    def __init__(
        self,
        seed: int = 0,
        *,
        vocab: int = PUBMED_VOCAB,
        words_per_doc: float = WORDS_PER_DOC,
        zipf_s: float = 1.1,
    ) -> None:
        super().__init__(seed)
        if vocab <= 1:
            raise ValueError("vocab must be > 1")
        if words_per_doc <= 0:
            raise ValueError("words_per_doc must be positive")
        if zipf_s <= 1.0:
            raise ValueError("numpy's Zipf sampler requires s > 1")
        self.vocab = vocab
        self.words_per_doc = words_per_doc
        self.zipf_s = zipf_s

    @property
    def spec(self) -> ItemSpec:
        return ItemSpec(key_size=8, value_size=8)

    def _generate(self) -> Iterator[tuple[bytes, bytes]]:
        rng = np.random.default_rng(self.seed)
        doc_id = 0
        while True:
            doc_id += 1
            n_words = max(1, int(rng.poisson(self.words_per_doc)))
            # Zipf draw for word identity; clip into the vocabulary and
            # dedupe within the document (bag-of-words rows are unique
            # per (doc, word)). Word IDs are 1-based, as in the UCI
            # docword format.
            words = rng.zipf(self.zipf_s, size=n_words)
            words = np.unique(np.minimum(words, self.vocab))
            counts = 1 + rng.poisson(1.5, size=len(words))
            for word, count in zip(words.tolist(), counts.tolist()):
                key = int(doc_id).to_bytes(4, "little") + int(word).to_bytes(
                    4, "little"
                )
                yield key, int(count).to_bytes(8, "little")
