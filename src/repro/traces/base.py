"""Trace protocol shared by all workloads.

A trace is an infinite-ish deterministic stream of unique ``(key,
value)`` items of a fixed :class:`~repro.tables.cell.ItemSpec`. The
harness consumes as many as it needs (fill phase + measured phase), so
traces generate lazily and guarantee uniqueness by construction or with
a seen-set.
"""

from __future__ import annotations

import abc
from typing import Iterator

from repro.tables.cell import ItemSpec


class Trace(abc.ABC):
    """Deterministic, seeded item stream."""

    #: registry/report name — matches the paper's trace names
    name: str = "abstract"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    @property
    @abc.abstractmethod
    def spec(self) -> ItemSpec:
        """Key/value widths of this trace's items."""

    @abc.abstractmethod
    def _generate(self) -> Iterator[tuple[bytes, bytes]]:
        """Yield raw (possibly repeating) items; :meth:`items` dedupes."""

    def unique_items(self) -> Iterator[tuple[bytes, bytes]]:
        """Yield the stream with duplicate keys filtered out.

        Uniqueness matters because the paper's insert algorithms do not
        check for duplicates; feeding a duplicate key would create two
        live cells for one key and corrupt delete/query accounting.
        """
        seen: set[bytes] = set()
        for key, value in self._generate():
            if key in seen:
                continue
            seen.add(key)
            yield key, value

    def items(self, n: int) -> list[tuple[bytes, bytes]]:
        """Return the first ``n`` unique items of the stream."""
        out: list[tuple[bytes, bytes]] = []
        for item in self.unique_items():
            out.append(item)
            if len(out) == n:
                return out
        raise ValueError(
            f"trace {self.name} exhausted after {len(out)} unique items "
            f"(requested {n})"
        )

    def keys(self, n: int) -> list[bytes]:
        """The first ``n`` unique keys."""
        return [key for key, _ in self.items(n)]
