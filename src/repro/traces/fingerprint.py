"""Fingerprint trace — synthetic stand-in for the FSL Mac OS X snapshots.

The paper's third trace comes from daily snapshots of a Mac OS X server
(Tarasov et al., ATC'12): the 16-byte MD5 fingerprints of files are the
hash keys, and items are 32 bytes. The snapshot corpus is not
redistributable, so we synthesise fingerprints with the properties the
hash tables observe (DESIGN.md substitution table):

- keys are genuine **MD5 digests** (computed with :mod:`hashlib` over
  synthetic file identities), so key bits are uniformly distributed
  exactly like real content fingerprints;
- a configurable **duplicate rate** models deduplication workloads where
  the same content hash is seen repeatedly (the :meth:`Trace.items`
  dedupe then mirrors a dedup index admitting each fingerprint once);
- values are 16 bytes of file metadata (size + mtime-like fields),
  completing the paper's 32-byte item.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

import numpy as np

from repro.tables.cell import ItemSpec
from repro.traces.base import Trace


class FingerprintTrace(Trace):
    """MD5 file fingerprints, 32-byte items."""

    name = "fingerprint"

    def __init__(self, seed: int = 0, *, duplicate_rate: float = 0.3) -> None:
        super().__init__(seed)
        if not 0.0 <= duplicate_rate < 1.0:
            raise ValueError("duplicate_rate must be in [0, 1)")
        self.duplicate_rate = duplicate_rate

    @property
    def spec(self) -> ItemSpec:
        return ItemSpec(key_size=16, value_size=16)

    def _generate(self) -> Iterator[tuple[bytes, bytes]]:
        rng = np.random.default_rng(self.seed)
        file_no = 0
        recent: list[bytes] = []
        while True:
            if recent and rng.random() < self.duplicate_rate:
                # re-reference an existing file's content (dedup hit);
                # Trace.items() filters these, as a dedup index would
                key = recent[int(rng.integers(0, len(recent)))]
            else:
                file_no += 1
                content_id = f"{self.seed}/file-{file_no}".encode()
                key = hashlib.md5(content_id).digest()
                if len(recent) < 4096:
                    recent.append(key)
            size = int(rng.lognormal(9.0, 2.0))  # file sizes, median ~8 KiB
            mtime = int(rng.integers(1_300_000_000, 1_600_000_000))
            value = size.to_bytes(8, "little") + mtime.to_bytes(8, "little")
            yield key, value
