"""Trace file I/O: plug real datasets into the harness.

The paper's two real traces come from published datasets we cannot
bundle (UCI Bag-of-Words; FSL homes snapshots). These loaders accept
the original file formats, so anyone with the data can swap the
synthetic stand-ins for the real thing:

- :func:`load_docword` reads the UCI ``docword.*.txt`` format
  (optionally gzipped): three header lines (D, W, NNZ) then
  ``docID wordID count`` triples — exactly what ``BagOfWordsTrace``
  synthesises;
- :func:`load_fingerprints` reads one hex MD5 per line (the common
  export of the fsl-trace tools), with optional ``size mtime`` columns;
- the corresponding ``save_*`` functions write the same formats, so the
  synthetic traces can be materialised to disk and diffed/shared.

Each loader returns a :class:`FileTrace`, a drop-in
:class:`~repro.traces.base.Trace`.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterator

from repro.tables.cell import ItemSpec
from repro.traces.base import Trace


class FileTrace(Trace):
    """A trace backed by a pre-loaded item list."""

    name = "file"

    def __init__(
        self, items: list[tuple[bytes, bytes]], spec: ItemSpec, name: str
    ) -> None:
        super().__init__(seed=0)
        if not items:
            raise ValueError("trace file contained no items")
        self._items = items
        self._spec = spec
        self.name = name

    @property
    def spec(self) -> ItemSpec:
        return self._spec

    def _generate(self) -> Iterator[tuple[bytes, bytes]]:
        yield from self._items

    def __len__(self) -> int:
        return len(self._items)


def _open_text(path: str | Path):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt")
    return open(path, "r")


def load_docword(path: str | Path, *, limit: int | None = None) -> FileTrace:
    """Load a UCI bag-of-words ``docword`` file.

    Keys are (docID u32, wordID u32) packed little-endian — the paper's
    "combinations of DocID and WordID"; values are the 8-byte count.
    """
    items: list[tuple[bytes, bytes]] = []
    with _open_text(path) as fh:
        try:
            n_docs = int(fh.readline())
            n_words = int(fh.readline())
            nnz = int(fh.readline())
        except ValueError as exc:
            raise ValueError(f"{path}: not a docword file (bad header)") from exc
        for line in fh:
            parts = line.split()
            if len(parts) != 3:
                raise ValueError(f"{path}: malformed row {line!r}")
            doc, word, count = (int(p) for p in parts)
            if not (1 <= doc <= n_docs and 1 <= word <= n_words):
                raise ValueError(f"{path}: row out of declared range: {line!r}")
            key = doc.to_bytes(4, "little") + word.to_bytes(4, "little")
            items.append((key, count.to_bytes(8, "little")))
            if limit is not None and len(items) >= limit:
                break
    if limit is None and len(items) != nnz:
        raise ValueError(f"{path}: header declares {nnz} rows, found {len(items)}")
    return FileTrace(items, ItemSpec(8, 8), name=f"docword:{Path(path).name}")


def save_docword(path: str | Path, items: list[tuple[bytes, bytes]]) -> None:
    """Write items (docword-style 8-byte keys) in UCI format."""
    rows = []
    max_doc = max_word = 0
    for key, value in items:
        doc = int.from_bytes(key[:4], "little")
        word = int.from_bytes(key[4:8], "little")
        count = int.from_bytes(value, "little")
        max_doc, max_word = max(max_doc, doc), max(max_word, word)
        rows.append(f"{doc} {word} {count}\n")
    with open(path, "w") as fh:
        fh.write(f"{max_doc}\n{max_word}\n{len(rows)}\n")
        fh.writelines(rows)


def load_fingerprints(path: str | Path, *, limit: int | None = None) -> FileTrace:
    """Load a fingerprint list: ``<32 hex chars> [size [mtime]]`` per line.

    Items are the paper's 32 bytes: 16-byte digest key + 16-byte
    metadata value (size and mtime, zero when absent)."""
    items: list[tuple[bytes, bytes]] = []
    with _open_text(path) as fh:
        for lineno, line in enumerate(fh, 1):
            parts = line.split()
            if not parts:
                continue
            digest = parts[0]
            if len(digest) != 32:
                raise ValueError(f"{path}:{lineno}: expected 32 hex chars")
            try:
                key = bytes.fromhex(digest)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: bad hex digest") from exc
            size = int(parts[1]) if len(parts) > 1 else 0
            mtime = int(parts[2]) if len(parts) > 2 else 0
            value = size.to_bytes(8, "little") + mtime.to_bytes(8, "little")
            items.append((key, value))
            if limit is not None and len(items) >= limit:
                break
    return FileTrace(items, ItemSpec(16, 16), name=f"fingerprints:{Path(path).name}")


def save_fingerprints(path: str | Path, items: list[tuple[bytes, bytes]]) -> None:
    """Write fingerprint items in the hex-per-line format."""
    with open(path, "w") as fh:
        for key, value in items:
            size = int.from_bytes(value[:8], "little")
            mtime = int.from_bytes(value[8:16], "little")
            fh.write(f"{key.hex()} {size} {mtime}\n")
