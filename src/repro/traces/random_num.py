"""RandomNum trace (paper Section 4.1).

"We generate the random integer ranging from 0 to 2^26 and use the
generated integers as the keys of the hash items... The size of an item
in this trace is 16 bytes." This is the trace used by the motivation
experiment (Figure 2), the group-size sweep (Figure 8) and the recovery
measurement (Table 3), and also by SmartCuckoo and path hashing — so it
is the one fully-faithful workload in the reproduction.

Keys are 8-byte little-endian integers drawn uniformly from
``[0, key_space)``; values are the low 8 bytes of a mix of the key, so
tests can recompute the expected value from the key alone.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.hashes.functions import splitmix64
from repro.tables.cell import ItemSpec
from repro.traces.base import Trace


def value_for_key(key: bytes) -> bytes:
    """Deterministic 8-byte value derived from a key — shared by the
    trace and by tests that want to validate queried values."""
    return splitmix64(int.from_bytes(key, "little")).to_bytes(8, "little")


class RandomNumTrace(Trace):
    """Uniform random integer keys, 16-byte items."""

    name = "randomnum"

    def __init__(self, seed: int = 0, key_space: int = 1 << 26) -> None:
        super().__init__(seed)
        if key_space <= 0:
            raise ValueError("key_space must be positive")
        self.key_space = key_space

    @property
    def spec(self) -> ItemSpec:
        return ItemSpec(key_size=8, value_size=8)

    def _generate(self) -> Iterator[tuple[bytes, bytes]]:
        rng = np.random.default_rng(self.seed)
        while True:
            # batch draws through numpy: the harness consumes hundreds of
            # thousands of items during table fill
            batch = rng.integers(0, self.key_space, size=4096, dtype=np.uint64)
            raw = batch.astype("<u8").tobytes()
            for off in range(0, len(raw), 8):
                key = raw[off : off + 8]
                yield key, value_for_key(key)
