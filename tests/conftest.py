"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random

import pytest

# Tests must be hermetic: never serve experiment results from (or write
# them to) an on-disk bench cache. Set before anything can construct the
# default engine; tests that exercise the cache pass explicit cache dirs.
os.environ.setdefault("REPRO_BENCH_NO_CACHE", "1")

from repro import (  # noqa: E402  (the cache env var must be set first)
    CacheConfig,
    ChainedHashTable,
    CuckooHashTable,
    GroupHashTable,
    ItemSpec,
    LevelHashTable,
    LinearProbingTable,
    NVMRegion,
    PFHTTable,
    PathHashingTable,
    SimConfig,
    TwoChoiceTable,
    UndoLog,
)

#: small cache so tests exercise evictions and misses
SMALL_CACHE = CacheConfig(size_bytes=16 * 1024, line_size=64, associativity=4)


def small_region(size: int = 4 << 20, **kw) -> NVMRegion:
    """Region with a deliberately small cache."""
    return NVMRegion(size, SimConfig(cache=SMALL_CACHE, **kw))


@pytest.fixture
def region() -> NVMRegion:
    return small_region()


#: (name, factory) for every scheme, sized at 512 cells; factories take
#: (region, log) so logged variants can be built uniformly
SCHEME_FACTORIES = {
    "linear": lambda r, log=None: LinearProbingTable(r, 512, log=log),
    "pfht": lambda r, log=None: PFHTTable(r, 512, log=log),
    "path": lambda r, log=None: PathHashingTable(r, 256, log=log),
    "chained": lambda r, log=None: ChainedHashTable(r, 512, log=log),
    "two-choice": lambda r, log=None: TwoChoiceTable(r, 512, log=log),
    "cuckoo": lambda r, log=None: CuckooHashTable(r, 512, log=log),
    "level": lambda r, log=None: LevelHashTable(r, 512, log=log),
    "group": lambda r, log=None: GroupHashTable(r, 512, group_size=32),
}

ALL_SCHEMES = tuple(SCHEME_FACTORIES)

#: schemes that accept an undo log
LOGGABLE_SCHEMES = tuple(n for n in ALL_SCHEMES if n != "group")


def make_table(name: str, region: NVMRegion, *, logged: bool = False):
    """Build a test-sized table of the named scheme."""
    log = None
    if logged:
        log = UndoLog(region, record_size=64, capacity=2048)
    return SCHEME_FACTORIES[name](region, log=log)


def random_items(n: int, seed: int = 0, spec: ItemSpec | None = None):
    """Deterministic unique (key, value) pairs of the given spec."""
    spec = spec or ItemSpec()
    rng = random.Random(seed)
    items = []
    seen = set()
    while len(items) < n:
        key = rng.getrandbits(8 * spec.key_size).to_bytes(spec.key_size, "little")
        if key in seen:
            continue
        seen.add(key)
        value = rng.getrandbits(8 * spec.value_size).to_bytes(
            spec.value_size, "little"
        )
        items.append((key, value))
    return items
