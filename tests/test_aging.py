"""Aging tests: long insert/delete churn, hole reuse, steady state.

The paper's protocol fills once and measures; real deployments churn.
These tests run thousands of mixed operations per scheme and check the
structures neither leak capacity nor corrupt under sustained reuse of
freed cells.
"""

import random

import pytest

from tests.conftest import ALL_SCHEMES, make_table, random_items, small_region


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_steady_state_churn(scheme):
    """Hold ~40% occupancy while inserting/deleting 2000 times."""
    region = small_region()
    table = make_table(scheme, region)
    rng = random.Random(1)
    pool = iter(random_items(4000, seed=1))
    live: list[tuple[bytes, bytes]] = []
    target = int(table.capacity * 0.4)
    inserts = deletes = 0
    for _ in range(2000):
        if len(live) < target or (live and rng.random() < 0.4):
            if live and len(live) >= target:
                k, _ = live.pop(rng.randrange(len(live)))
                assert table.delete(k)
                deletes += 1
            else:
                k, v = next(pool)
                if table.insert(k, v):
                    live.append((k, v))
                    inserts += 1
        else:
            k, _ = live.pop(rng.randrange(len(live)))
            assert table.delete(k)
            deletes += 1
    assert inserts > 500 and deletes > 300
    assert table.count == len(live)
    state = dict(table.items())
    assert state == dict(live)
    assert table.check_count()


def test_group_hole_reuse_keeps_groups_compactish():
    """Deleting from a group punches holes; re-inserting fills the first
    hole (Algorithm 1 scans from the group start), so long churn does
    not push items ever deeper."""
    region = small_region()
    table = make_table("group", region)

    def key_for_slot(slot, avoid):
        i = 0
        while True:
            key = i.to_bytes(8, "little")
            if key not in avoid and table.layout.slot(table._hashes[0](key)) == slot:
                return key
            i += 1

    avoid: set[bytes] = set()
    keys = []
    for _ in range(6):  # home + 5 spills into one group
        k = key_for_slot(9, avoid)
        avoid.add(k)
        keys.append(k)
        table.insert(k, b"v" * 8)
    group = table.layout.group_of(9)
    start = table.layout.group_start(9)
    # delete the two shallowest spills, then insert two fresh colliders
    table.delete(keys[1])
    table.delete(keys[2])
    fresh = []
    for _ in range(2):
        k = key_for_slot(9, avoid)
        avoid.add(k)
        fresh.append(k)
        table.insert(k, b"w" * 8)
    # they must occupy the freed shallow cells, not extend the prefix
    occupied_depths = [
        i
        for i in range(table.group_size)
        if table.codec.is_occupied(
            region, table.layout.tab2_addr(table.codec, start + i)
        )
    ]
    assert max(occupied_depths) == 4  # depth never grew past the original 5 spills
    assert table.group_fill(group) == 5


@pytest.mark.parametrize("scheme", ("linear", "group"))
def test_full_drain_and_refill(scheme):
    """Fill to capacity-ish, drain to zero, refill: the second fill must
    behave like the first (no residue)."""
    region = small_region()
    table = make_table(scheme, region)
    items1 = random_items(200, seed=2)
    accepted1 = [(k, v) for k, v in items1 if table.insert(k, v)]
    for k, _ in accepted1:
        assert table.delete(k)
    assert table.count == 0
    assert dict(table.items()) == {}
    items2 = random_items(200, seed=3)
    accepted2 = [(k, v) for k, v in items2 if table.insert(k, v)]
    assert len(accepted2) >= len(accepted1) - 5
    assert dict(table.items()) == dict(accepted2)


def test_churn_then_crash_then_churn():
    """Interleave churn, crash/recovery, and more churn on group
    hashing; consistency must hold at every boundary."""
    from repro.nvm import random_schedule

    region = small_region()
    table = make_table("group", region)
    rng = random.Random(7)
    pool = iter(random_items(3000, seed=4))
    live = {}
    for cycle in range(6):
        for _ in range(150):
            if live and rng.random() < 0.35:
                k = rng.choice(sorted(live))
                assert table.delete(k)
                del live[k]
            else:
                k, v = next(pool)
                if table.insert(k, v):
                    live[k] = v
        region.crash(random_schedule(cycle))
        table.reattach()
        table.recover()
        assert dict(table.items()) == live, f"cycle {cycle}"
        assert table.check_count()
