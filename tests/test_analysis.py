"""Theory-vs-simulation cross-validation for repro.bench.analysis."""

import math

import pytest

from tests.conftest import random_items, small_region

from repro import GroupHashTable, LinearProbingTable
from repro.bench.analysis import (
    CommitCost,
    expected_group_scan_cells,
    group_fill_fraction,
    group_level1_occupancy,
    group_level2_population,
    level1_hit_rate,
    linear_insert_probes,
    linear_success_probes,
    predicted_group_insert_ns,
    predicted_linear_insert_ns,
)
from repro.nvm.latency import PAPER_NVM


# ----------------------------------------------------------- pure math


def test_level1_occupancy_limits():
    assert group_level1_occupancy(0, 100) == 0
    # asymptotically n(1 - e^{-m/n})
    assert group_level1_occupancy(100, 100) == pytest.approx(
        100 * (1 - math.exp(-1)), rel=0.01
    )
    # never exceeds n or m
    assert group_level1_occupancy(10_000, 100) <= 100
    assert group_level1_occupancy(5, 100) <= 5


def test_level2_population_complements():
    m, n = 300, 256
    total = group_level1_occupancy(m, n) + group_level2_population(m, n)
    assert total == pytest.approx(m)


def test_fill_fraction_monotone_in_m():
    fractions = [group_fill_fraction(m, 256) for m in (64, 128, 256, 384)]
    assert fractions == sorted(fractions)


def test_expected_scan_scales_with_group_size():
    assert expected_group_scan_cells(256, 256, 128) == pytest.approx(
        2 * expected_group_scan_cells(256, 256, 64)
    )


def test_knuth_formulas():
    assert linear_success_probes(0.0) == 1.0
    assert linear_success_probes(0.5) == pytest.approx(1.5)
    assert linear_insert_probes(0.5) == pytest.approx(2.5)
    assert linear_insert_probes(0.75) == pytest.approx(8.5)
    with pytest.raises(ValueError):
        linear_success_probes(1.0)


def test_commit_cost_components():
    cost = CommitCost(PAPER_NVM)
    assert cost.flushes == 3
    assert cost.fences == 3
    assert cost.ns > 3 * PAPER_NVM.nvm_write_extra_ns


# ------------------------------------------------ theory vs simulation


def test_level_occupancy_matches_simulation():
    region = small_region()
    table = GroupHashTable(region, 2048, group_size=64)  # level = 1024
    m = 1024
    for k, v in random_items(m, seed=1):
        assert table.insert(k, v)
    l1, l2 = table.level_occupancy()
    assert l1 == pytest.approx(group_level1_occupancy(m, 1024), rel=0.05)
    assert l2 == pytest.approx(group_level2_population(m, 1024), rel=0.10)


def test_level1_hit_rate_matches_simulation():
    region = small_region()
    table = GroupHashTable(region, 2048, group_size=64)
    m = 700
    for k, v in random_items(m, seed=2):
        table.insert(k, v)
    l1, _ = table.level_occupancy()
    assert l1 / m == pytest.approx(level1_hit_rate(m, 1024), rel=0.05)


def test_linear_probe_length_matches_simulation():
    """Measured probe reads per successful query ≈ Knuth's formula."""
    region = small_region()
    table = LinearProbingTable(region, 1024)
    items = random_items(512, seed=3)  # α = 0.5
    for k, v in items:
        table.insert(k, v)
    before = region.stats.reads
    sample = items[::4]
    for k, _ in sample:
        table.query(k)
    probes = (region.stats.reads - before) / len(sample)
    # each probe is one cell read (+1 value read on the hit)
    assert probes == pytest.approx(linear_success_probes(0.5) + 1, rel=0.25)


def test_predicted_group_insert_close_to_simulation():
    region = small_region()
    table = GroupHashTable(region, 4096, group_size=128)  # level = 2048
    m = 2048  # lf 0.5
    items = random_items(m + 200, seed=4)
    for k, v in items[:m]:
        table.insert(k, v)
    before = region.stats.snapshot()
    for k, v in items[m:]:
        table.insert(k, v)
    measured = region.stats.delta(before).sim_time_ns / 200
    predicted = predicted_group_insert_ns(m, 2048, 128, PAPER_NVM)
    assert measured == pytest.approx(predicted, rel=0.30)


def test_predicted_linear_insert_close_to_simulation():
    region = small_region()
    table = LinearProbingTable(region, 4096)
    items = random_items(2048 + 200, seed=5)
    for k, v in items[:2048]:
        table.insert(k, v)
    before = region.stats.snapshot()
    for k, v in items[2048:]:
        table.insert(k, v)
    measured = region.stats.delta(before).sim_time_ns / 200
    predicted = predicted_linear_insert_ns(0.5, PAPER_NVM)
    assert measured == pytest.approx(predicted, rel=0.30)


def test_scale_invariance_of_fill_fraction():
    """The DESIGN.md scaling argument, formally: fill fraction depends
    on the load factor only, not on absolute size."""
    small = group_fill_fraction(512, 1024)
    paper = group_fill_fraction(512 * 8192, 1024 * 8192)
    # the overflow fraction amplifies the finite-n correction by ~1/f;
    # 0.5% relative agreement is the O(m/n^2) prediction here
    assert small == pytest.approx(paper, rel=5e-3)
