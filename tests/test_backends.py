"""Backend parity and protocol tests (the multi-backend refactor).

Three layers of guarantees:

1. **Protocol**: :class:`NVMRegion` and :class:`RawBackend` both satisfy
   the runtime-checkable :class:`MemoryBackend` protocol.
2. **Parity**: a table driven identically on the simulator and on the
   raw backend reaches the identical state — same items, same persistent
   count, same program-issued event counts (reads/writes/flushes/
   fences), and the same post-crash recovery outcome for deterministic
   crash schedules, including crashes armed mid-operation.
3. **Pinned simulator counts**: the measured latencies and miss counts
   of the figure workloads on :class:`SimBackend` are pinned to the
   values produced before the backend refactor — optimizations must not
   move a single simulated event.
"""

from __future__ import annotations

import pytest

from tests.conftest import ALL_SCHEMES, make_table, random_items, small_region

from repro import (
    GroupHashTable,
    MemoryBackend,
    NVMRegion,
    RawBackend,
    ShardedBackend,
    ShardedTable,
    SimBackend,
    SimulatedPowerFailure,
    drop_all_schedule,
    persist_all_schedule,
    random_schedule,
)
from repro.bench.runner import RunSpec, run_workload
from repro.tables.cell import ItemSpec


def make_raw(size: int = 4 << 20) -> RawBackend:
    return RawBackend(size)


def event_counts(backend):
    s = backend.stats
    return (s.reads, s.writes, s.flushes, s.fences, s.bytes_read, s.bytes_written)


# ----------------------------------------------------------------------
# protocol conformance


def test_backends_satisfy_protocol():
    assert isinstance(small_region(), MemoryBackend)
    assert isinstance(make_raw(), MemoryBackend)
    sharded = ShardedBackend(2, lambda i: RawBackend(1 << 16))
    assert isinstance(sharded.shard(0), MemoryBackend)


def test_simbackend_is_nvmregion():
    # the alias guarantees bit-for-bit identical simulation
    assert SimBackend is NVMRegion


# ----------------------------------------------------------------------
# raw backend unit behaviour


def test_raw_basic_readwrite_and_bounds():
    r = make_raw(1 << 12)
    addr = r.alloc(64, align=64)
    r.write(addr, b"x" * 16)
    assert r.read(addr, 16) == b"x" * 16
    r.write_u64(addr + 16, 0xDEADBEEF)
    assert r.read_u64(addr + 16) == 0xDEADBEEF
    with pytest.raises(IndexError):
        r.read(1 << 12, 1)
    with pytest.raises(IndexError):
        r.read(-1, 4)
    with pytest.raises(IndexError):
        r.write((1 << 12) - 4, b"12345678")
    with pytest.raises(ValueError):
        r.write_atomic_u64(addr + 4, 1)  # misaligned


def test_raw_dirty_tracking_and_persist():
    r = make_raw(1 << 12)
    addr = r.alloc(64, align=64)
    r.write(addr, b"a" * 8)
    assert r.peek_persistent(addr, 8) == bytes(8)
    assert r.unpersisted_ranges() == [(addr, 8)]
    r.persist(addr, 8)
    assert r.peek_persistent(addr, 8) == b"a" * 8
    assert r.unpersisted_ranges() == []


def test_raw_crash_drops_unflushed_words():
    r = make_raw(1 << 12)
    addr = r.alloc(64, align=64)
    r.write(addr, b"a" * 8)
    r.persist(addr, 8)
    r.write(addr + 8, b"b" * 8)  # never flushed
    report = r.crash(drop_all_schedule())
    assert report.words_dropped == 1
    assert r.read(addr, 8) == b"a" * 8
    assert r.read(addr + 8, 8) == bytes(8)


def test_raw_crash_persist_all_keeps_words():
    r = make_raw(1 << 12)
    addr = r.alloc(64, align=64)
    r.write(addr, b"c" * 8)
    report = r.crash(persist_all_schedule())
    assert report.words_persisted == 1
    assert r.read(addr, 8) == b"c" * 8


def test_raw_armed_crash_fires_and_disarms():
    r = make_raw(1 << 12)
    addr = r.alloc(64, align=64)
    r.arm_crash(3)
    r.write(addr, b"a" * 8)  # tick 1
    r.clflush(addr)          # tick 2
    with pytest.raises(SimulatedPowerFailure):
        r.mfence()           # tick 3
    # countdown cleared: further events run normally
    r.write(addr, b"b" * 8)
    r.persist(addr, 8)
    assert r.peek_persistent(addr, 8) == b"b" * 8


def test_raw_event_hook_observes_events():
    r = make_raw(1 << 12)
    addr = r.alloc(64, align=64)
    events = []
    r.event_hook = lambda kind, a, s: events.append(kind)
    r.write(addr, b"a" * 8)
    r.persist(addr, 8)
    r.event_hook = None
    r.write(addr, b"b" * 8)  # not observed
    assert events == ["write", "flush", "fence"]


def test_raw_scan_primitives_match_reference():
    # same contents on both backends -> same scan results
    sim, raw = small_region(), make_raw()
    for backend in (sim, raw):
        base = backend.alloc(24 * 16, align=64)
        for i in range(16):
            header = 1 if i % 3 == 0 else 0
            backend.write_u64(base + 24 * i, header)
            backend.write(base + 24 * i + 8, bytes([i]) * 8)
    sim_base = sim.allocations[-1].addr
    raw_base = raw.allocations[-1].addr
    assert (
        sim.scan_clear_u64(sim_base, 24, 16)
        == raw.scan_clear_u64(raw_base, 24, 16)
        == 1
    )
    assert sim.scan_clear_u64(sim_base, 24, 1) is None
    assert raw.scan_clear_u64(raw_base, 24, 1) is None
    key = bytes([6]) * 8
    assert (
        sim.scan_match(sim_base, 24, 16, key)
        == raw.scan_match(raw_base, 24, 16, key)
        == 6
    )
    missing = bytes([7]) * 8  # written but cell 7 is unoccupied
    assert sim.scan_match(sim_base, 24, 16, missing) is None
    assert raw.scan_match(raw_base, 24, 16, missing) is None


def test_raw_scan_counts_reads_like_reference():
    sim, raw = small_region(), make_raw()
    for backend in (sim, raw):
        base = backend.alloc(24 * 8, align=64)
        for i in range(8):
            backend.write_u64(base + 24 * i, 1 if i < 5 else 0)
    before_sim, before_raw = sim.stats.reads, raw.stats.reads
    sim.scan_clear_u64(sim.allocations[-1].addr, 24, 8)
    raw.scan_clear_u64(raw.allocations[-1].addr, 24, 8)
    assert sim.stats.reads - before_sim == raw.stats.reads - before_raw == 6


# ----------------------------------------------------------------------
# scheme parity: same ops on sim and raw -> same state, same events


def drive(table, n_items: int, seed: int):
    """A deterministic insert/update/delete mix."""
    items = random_items(n_items, seed=seed)
    accepted = [(k, v) for k, v in items if table.insert(k, v)]
    for k, _ in accepted[::3]:
        table.update(k, b"U" * 8)
    for k, _ in accepted[1::3]:
        table.delete(k)
    return accepted


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_scheme_state_parity_sim_vs_raw(scheme):
    sim_table = make_table(scheme, small_region())
    raw_table = make_table(scheme, make_raw())
    drive(sim_table, 150, seed=11)
    drive(raw_table, 150, seed=11)
    assert dict(sim_table.items()) == dict(raw_table.items())
    assert sim_table.count == raw_table.count
    assert sim_table.persisted_count == raw_table.persisted_count
    assert sim_table.check_count() and raw_table.check_count()


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_scheme_event_parity_sim_vs_raw(scheme):
    # program-issued events are backend-independent; only the simulated
    # cost model (latency, misses, evictions) differs
    sim_region, raw_region = small_region(), make_raw()
    drive(make_table(scheme, sim_region), 120, seed=5)
    drive(make_table(scheme, raw_region), 120, seed=5)
    assert event_counts(sim_region) == event_counts(raw_region)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
@pytest.mark.parametrize("schedule_seed", [0, 3])
def test_crash_recovery_parity_sim_vs_raw(scheme, schedule_seed):
    # Crash with identical deterministic schedules after identical ops:
    # under the uniform commit discipline the dirty word set matches, so
    # recovery lands both backends in the same state.
    sim_table = make_table(scheme, small_region())
    raw_table = make_table(scheme, make_raw())
    for table in (sim_table, raw_table):
        for k, v in random_items(80, seed=21):
            table.insert(k, v)
    sim_table.region.crash(random_schedule(seed=schedule_seed))
    raw_table.region.crash(random_schedule(seed=schedule_seed))
    for table in (sim_table, raw_table):
        table.reattach()
        table.recover()
    assert dict(sim_table.items()) == dict(raw_table.items())
    assert sim_table.persisted_count == raw_table.persisted_count


@pytest.mark.parametrize("armed_after", [5, 17, 40])
def test_armed_midop_crash_parity_group(armed_after):
    # Arm the same countdown on both backends, crash mid-insert at the
    # same event, apply the same schedule: recovery must agree.
    tables = []
    for region in (small_region(), make_raw()):
        table = GroupHashTable(region, 512, group_size=32)
        for k, v in random_items(60, seed=9):
            table.insert(k, v)
        region.arm_crash(armed_after)
        fired = False
        try:
            for k, v in random_items(40, seed=10):
                table.insert(k, v)
        except SimulatedPowerFailure:
            fired = True
        assert fired
        region.crash(random_schedule(seed=2))
        table.reattach()
        table.recover()
        assert table.check_count()
        tables.append(table)
    sim_table, raw_table = tables
    assert dict(sim_table.items()) == dict(raw_table.items())
    assert sim_table.persisted_count == raw_table.persisted_count


# ----------------------------------------------------------------------
# sharded table


def test_sharded_routing_is_stable_and_total():
    st = ShardedTable(1 << 10, n_shards=4)
    items = random_items(300, seed=4)
    for k, v in items:
        assert st.insert(k, v)
    assert st.count == 300
    assert sum(st.shard_counts()) == 300
    assert st.persisted_count == 300
    assert dict(st.items()) == dict(items)
    for k, v in items[:50]:
        assert st.query(k) == v
        assert st.table_for(k) is st.tables[st.shard_of(k)]
    # reasonable balance: no shard empty, none hoarding
    counts = st.shard_counts()
    assert min(counts) > 0 and max(counts) < 300


def test_sharded_crud_routes_to_one_shard():
    st = ShardedTable(1 << 10, n_shards=4)
    key, value = b"k" * 8, b"v" * 8
    st.insert(key, value)
    assert st.query(key) == value
    st.update(key, b"w" * 8)
    assert st.query(key) == b"w" * 8
    assert st.delete(key)
    assert st.query(key) is None
    assert st.count == 0 and st.check_count()


def test_sharded_independent_crash_and_recovery():
    st = ShardedTable(1 << 10, n_shards=4, seed=77)
    items = random_items(400, seed=8)
    for k, v in items:
        assert st.insert(k, v)
    victim = 2
    survivors = {k: v for k, v in items if st.shard_of(k) != victim}
    # leave unflushed data in the victim shard only, then crash it
    victim_keys = [k for k, _ in items if st.shard_of(k) == victim]
    reports = st.crash(drop_all_schedule(), shard=victim)
    assert len(reports) == 1
    st.reattach(shard=victim)
    st.recover(shard=victim)
    # other shards were never touched: still serving, still consistent
    got = dict(st.items())
    for k, v in survivors.items():
        assert got[k] == v
    assert st.check_count()
    assert st.count == st.persisted_count
    # the victim shard still holds every item it had persisted
    for k in victim_keys:
        assert st.query(k) == dict(items)[k]


def test_sharded_global_crash_recovery():
    st = ShardedTable(1 << 10, n_shards=2)
    items = random_items(200, seed=13)
    for k, v in items:
        assert st.insert(k, v)
    reports = st.crash(drop_all_schedule())
    assert len(reports) == 2
    st.reattach()
    st.recover()
    assert dict(st.items()) == dict(items)
    assert st.check_count()


def test_sharded_stats_aggregate():
    st = ShardedTable(1 << 10, n_shards=4)
    for k, v in random_items(100, seed=3):
        st.insert(k, v)
    total = st.stats
    assert total.writes == sum(s.stats.writes for s in st.backend)
    assert total.writes > 0
    assert st.backend.size == sum(s.size for s in st.backend)


def test_sharded_on_simulator_shards():
    # any backend factory works, including per-shard simulators
    st = ShardedTable(512, n_shards=2, backend_factory=lambda i: small_region(1 << 20))
    for k, v in random_items(64, seed=6):
        assert st.insert(k, v)
    assert st.stats.sim_time_ns > 0
    assert st.check_count()


def test_sharded_validates_arguments():
    with pytest.raises(ValueError):
        ShardedTable(1 << 10, n_shards=0)
    with pytest.raises(ValueError):
        ShardedTable(2, n_shards=4)


def test_sharded_rejects_out_of_range_shard_index():
    st = ShardedTable(1 << 10, n_shards=4)
    for bad in (-1, 4, 99):
        with pytest.raises(IndexError):
            st.crash(shard=bad)
        with pytest.raises(IndexError):
            st.reattach(shard=bad)
        with pytest.raises(IndexError):
            st.recover(shard=bad)
        with pytest.raises(IndexError):
            st.backend.shard(bad)


# ----------------------------------------------------------------------
# batch/scalar duplicate-key parity (the delete_many claim-routing bug)


def test_delete_many_duplicate_key_matches_scalar_with_two_copies():
    # insert never checks presence, so two copies of one key can be
    # resident; a batch naming the key twice must delete both, exactly
    # like the scalar loop (the batch path used to report False for the
    # second occurrence and leave the second copy live)
    def build():
        table = GroupHashTable(small_region(), 512, group_size=32)
        items = random_items(20, seed=31)
        for k, v in items:
            table.insert(k, v)
        key = items[0][0]
        table.insert(key, b"DUP-COPY")
        return table, key

    scalar_table, key = build()
    batch_table, _ = build()
    keys = [key, key, key]
    scalar_results = [scalar_table.delete(k) for k in keys]
    assert scalar_results == [True, True, False]
    assert batch_table.delete_many(keys) == scalar_results
    assert batch_table.count == scalar_table.count
    assert dict(batch_table.items()) == dict(scalar_table.items())


@pytest.mark.parametrize("growable", [False, True])
def test_sharded_delete_many_duplicate_key_matches_scalar(growable):
    # the parity must hold through the routing layer for both table
    # families a shard can host (fixed group tables and growable
    # directory tables — the hasattr fallback family audit)
    def build():
        st = ShardedTable(1 << 10, n_shards=4, growable=growable, seed=5)
        items = random_items(60, seed=32)
        for k, v in items:
            st.insert(k, v)
        dups = [items[i][0] for i in (0, 7, 13)]
        for k in dups:
            st.insert(k, b"2ndCOPYx")
        return st, dups

    scalar_st, dups = build()
    batch_st, _ = build()
    keys = [k for dup in dups for k in (dup, dup)]
    scalar_results = [scalar_st.delete(k) for k in keys]
    assert scalar_results == [True] * len(keys)
    assert batch_st.delete_many(keys) == scalar_results
    assert batch_st.count == scalar_st.count
    assert dict(batch_st.items()) == dict(scalar_st.items())


# ----------------------------------------------------------------------
# wall-clock: the raw backend must actually be fast


def test_raw_backend_is_faster_than_sim():
    # modest margin (the acceptance benchmark demonstrates ~5x at
    # 2^16 cells; this guard at small scale just proves the fast path
    # is wired, without becoming flaky on loaded CI runners)
    import time

    from repro.bench.config import region_for

    spec = ItemSpec(8, 8)
    n = 1 << 13

    def fill(backend: str) -> float:
        region = region_for(n, spec, backend=backend)
        table = GroupHashTable(region, n, spec, group_size=64)
        start = time.perf_counter()
        for i in range(int(n * 0.6)):
            table.insert(i.to_bytes(8, "little"), b"x" * 8)
        return time.perf_counter() - start

    sim_s, raw_s = fill("sim"), fill("raw")
    assert raw_s < sim_s / 1.5


# ----------------------------------------------------------------------
# pinned simulator counts: the refactor moved no simulated event

#: (insert_ns, query_ns, delete_ns, insert_misses, query_misses,
#: delete_misses, insert_flushes, delete_fences) measured on the seed
#: code before the backend refactor, for the small pinned workload below
PINNED_SIM_COUNTS = {
    "linear":     (140675.0, 8430.0, 176310.0, 278, 73, 322, 317, 380),
    "linear-L":   (277410.0, 8430.0, 359220.0, 579, 73, 704, 617, 760),
    "pfht":       (147355.0, 9600.0, 135510.0, 296, 80, 241, 329, 300),
    "path":       (150660.0, 13460.0, 142260.0, 383, 125, 309, 317, 300),
    "group":      (146600.0, 11900.0, 141470.0, 308, 95, 283, 316, 300),
    "chained":    (189600.0, 18325.0, 179980.0, 399, 174, 382, 425, 400),
    "two-choice": (120160.0, 10650.0, 137730.0, 274, 98, 275, 262, 300),
    "cuckoo":     (178865.0, 11295.0, 138035.0, 376, 105, 271, 397, 300),
    "level":      (145675.0, 9530.0, 139245.0, 297, 75, 254, 322, 300),
}


@pytest.mark.parametrize("scheme", sorted(PINNED_SIM_COUNTS))
def test_pinned_simulator_event_counts(scheme):
    result = run_workload(
        RunSpec(
            scheme=scheme,
            trace="randomnum",
            load_factor=0.4,
            total_cells=1 << 10,
            group_size=32,
            measure_ops=100,
            seed=7,
        )
    )
    got = (
        result.insert.sim_ns,
        result.query.sim_ns,
        result.delete.sim_ns,
        result.insert.cache_misses,
        result.query.cache_misses,
        result.delete.cache_misses,
        result.insert.flushes,
        result.delete.fences,
    )
    assert got == PINNED_SIM_COUNTS[scheme]


def test_runspec_raw_backend_runs_workload():
    # the runner accepts backend="raw": correctness path with zero
    # simulated cost
    result = run_workload(
        RunSpec(
            scheme="group",
            load_factor=0.3,
            total_cells=1 << 9,
            group_size=16,
            measure_ops=50,
            seed=3,
            backend="raw",
        )
    )
    assert result.insert.sim_ns == 0.0
    assert result.insert.flushes > 0


# ----------------------------------------------------------------------
# event_hook semantics across backends (observability satellite)


def record_hook(log, tag=None):
    """A hook appending (kind, addr, size) (tagged when requested)."""

    def hook(kind, addr, size):
        log.append((tag, kind, addr, size) if tag is not None else (kind, addr, size))

    return hook


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_event_hook_sequence_parity_sim_vs_raw(scheme):
    # The hook is part of the backend contract: the parity workload must
    # produce the identical (kind, addr, size) sequence, in program
    # order, on the simulator and on the raw fast path.
    sim_region, raw_region = small_region(), make_raw()
    sim_table = make_table(scheme, sim_region)
    raw_table = make_table(scheme, raw_region)
    sim_events, raw_events = [], []
    sim_region.event_hook = record_hook(sim_events)
    raw_region.event_hook = record_hook(raw_events)
    drive(sim_table, 100, seed=9)
    drive(raw_table, 100, seed=9)
    assert sim_events, "hook never fired"
    assert sim_events == raw_events


def test_event_hook_sequence_parity_sharded_sim_vs_raw():
    # Sharded parity: per-shard hooks observe the same tagged sequence
    # whether the shards are simulators or raw backends.
    def build(factory):
        st = ShardedTable(512, n_shards=2, backend_factory=factory, seed=7)
        events = []
        for i in range(st.n_shards):
            st.backend.shard(i).event_hook = record_hook(events, tag=i)
        for k, v in random_items(80, seed=21):
            st.insert(k, v)
            st.query(k)
        return events

    sim_events = build(lambda i: small_region(1 << 20))
    raw_events = build(lambda i: RawBackend(1 << 20))
    assert sim_events and sim_events == raw_events


def test_event_hook_kinds_and_sizes():
    # one write+persist = a "write", a line-sized "flush", and a "fence"
    r = make_raw(1 << 12)
    addr = r.alloc(64, align=64)
    events = []
    r.event_hook = record_hook(events)
    r.write(addr, b"x" * 8)
    r.persist(addr, 8)
    kinds = [e[0] for e in events]
    assert kinds == ["write", "flush", "fence"]
    assert events[0][1:] == (addr, 8)
    assert events[1][2] == r.line_size


def test_event_hook_uninstall_restores_raw_fast_path():
    r = make_raw(1 << 12)
    addr = r.alloc(64, align=64)
    assert r._slow is False
    events = []
    r.event_hook = record_hook(events)
    assert r._slow is True
    r.write_u64(addr, 1)
    assert events
    r.event_hook = None
    n = len(events)
    r.write_u64(addr, 2)
    r.persist(addr, 8)
    # no further deliveries, and the slow flag dropped back
    assert len(events) == n
    assert r._slow is False
    assert r.event_hook is None


def test_event_hook_uninstall_stops_deliveries_on_sim():
    region = small_region()
    addr = region.alloc(64, align=64)
    events = []
    region.event_hook = record_hook(events)
    region.write_u64(addr, 1)
    region.persist(addr, 8)
    n = len(events)
    assert n == 3
    region.event_hook = None
    region.write_u64(addr, 2)
    region.persist(addr, 8)
    assert len(events) == n
