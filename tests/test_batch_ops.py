"""Batch APIs vs scalar op loops — identity, savings, crash safety.

The batch operations (``put_many`` / ``get_many`` / ``delete_many``)
promise three things, each pinned here:

1. **state identity** — a batch leaves the table byte-for-byte identical
   to the scalar loop over the same items in the same order (placement
   planning replays Algorithm 1's policy against volatile occupancy
   caches);
2. **persist savings** — coalescing dedupes cacheline flushes and
   collapses per-item fences into two barriers per batch; the exact
   flush/fence counts of a fixed workload are pinned so a regression in
   the coalescing shows up as a number, not a vibe;
3. **crash safety** — every crash boundary inside a coalesced commit
   window recovers to a per-key-atomic subset of the batch (the
   crash-matrix oracle generalised in :mod:`repro.nvm.crashpoint`).
"""

from __future__ import annotations

import pytest

from tests.conftest import random_items, small_region

from repro import (
    DirectoryTable,
    GroupHashTable,
    ItemSpec,
    NVMRegion,
    RawBackend,
    ShardedTable,
)
from repro.kv import KVStore


def group_pair(raw=False, n_cells=512, group_size=32):
    """Two identically-built (region, table) pairs for A/B runs."""
    out = []
    for _ in range(2):
        region = RawBackend(4 << 20) if raw else small_region()
        out.append((region, GroupHashTable(region, n_cells, group_size=group_size)))
    return out


def assert_same_cells(r1, t1, r2, t2):
    """Every storage cell byte-for-byte equal between the two tables."""
    size = t1.codec.cell_size
    for a1, a2 in zip(t1._iter_cell_addrs(), t2._iter_cell_addrs()):
        assert r1.peek_volatile(a1, size) == r2.peek_volatile(a2, size)


# ----------------------------------------------------------------------
# state identity


@pytest.mark.parametrize("raw", [False, True], ids=["sim", "raw"])
def test_put_many_byte_identical_to_insert_loop(raw):
    items = random_items(300, seed=21)
    (r1, scalar), (r2, batch) = group_pair(raw=raw)
    loop_results = [scalar.insert(k, v) for k, v in items]
    batch_results = batch.put_many(items)
    assert batch_results == loop_results
    assert batch.count == scalar.count
    assert_same_cells(r1, scalar, r2, batch)
    assert r2.unpersisted_ranges() == []


def test_put_many_overflow_matches_loop():
    """Rejections land on the same items as the scalar loop."""
    items = random_items(120, seed=22)
    (r1, scalar), (r2, batch) = group_pair(n_cells=64, group_size=4)
    loop_results = [scalar.insert(k, v) for k, v in items]
    assert batch.put_many(items) == loop_results
    assert not all(loop_results)  # 120 items into 64 cells must overflow
    assert_same_cells(r1, scalar, r2, batch)


def test_get_many_matches_query():
    items = random_items(250, seed=23)
    (_, table), _ = group_pair()
    table.put_many(items)
    keys = [k for k, _ in items[:100]] + [b"missing-" for _ in range(3)]
    assert table.get_many(keys) == [table.query(k) for k in keys]


def test_delete_many_byte_identical_to_delete_loop():
    items = random_items(300, seed=24)
    (r1, scalar), (r2, batch) = group_pair()
    scalar.put_many(items)
    batch.put_many(items)
    keys = [k for k, _ in items[:150]] + [b"missing-"]
    loop_results = [scalar.delete(k) for k in keys]
    assert batch.delete_many(keys) == loop_results
    assert batch.count == scalar.count
    assert_same_cells(r1, scalar, r2, batch)
    assert r2.unpersisted_ranges() == []


def test_delete_many_duplicate_key_claims_once():
    items = random_items(10, seed=25)
    (_, table), _ = group_pair()
    table.put_many(items)
    key = items[0][0]
    # second occurrence must not double-free the same victim cell
    assert table.delete_many([key, key]) == [True, False]
    assert table.count == 9


# ----------------------------------------------------------------------
# pinned persist savings (fixed workload: 300 puts / 150 deletes, one
# batch call each, 512 cells, group_size=32, sim backend)


def test_batch_persist_savings_pinned():
    items = random_items(300, seed=21)
    (r1, scalar), (r2, batch) = group_pair()

    f0, n0 = r1.stats.flushes, r1.stats.fences
    for k, v in items:
        scalar.insert(k, v)
    assert (r1.stats.flushes - f0, r1.stats.fences - n0) == (939, 900)

    f0, n0 = r2.stats.flushes, r2.stats.fences
    assert all(batch.put_many(items))
    assert (r2.stats.flushes - f0, r2.stats.fences - n0) == (283, 3)

    keys = [k for k, _ in items[:150]]
    f0, n0 = r1.stats.flushes, r1.stats.fences
    for k in keys:
        scalar.delete(k)
    assert (r1.stats.flushes - f0, r1.stats.fences - n0) == (469, 450)

    f0, n0 = r2.stats.flushes, r2.stats.fences
    assert all(batch.delete_many(keys))
    assert (r2.stats.flushes - f0, r2.stats.fences - n0) == (185, 3)


# ----------------------------------------------------------------------
# directory (growing) tables


def test_directory_put_many_matches_loop_through_splits():
    """Batches that trigger segment splits mid-run stay identical to
    the scalar loop: same results, same splits, same final contents."""
    items = random_items(700, seed=26)
    r1 = small_region()
    scalar = DirectoryTable(r1, 128, ItemSpec(), segment_cells=32, seed=7)
    r2 = small_region()
    batch = DirectoryTable(r2, 128, ItemSpec(), segment_cells=32, seed=7)
    loop_results = [scalar.insert(k, v) for k, v in items]
    assert batch.put_many(items) == loop_results
    assert batch.splits == scalar.splits
    assert batch.doublings == scalar.doublings
    assert dict(batch.items()) == dict(scalar.items())
    keys = [k for k, _ in items[:200]]
    assert batch.get_many(keys) == [scalar.query(k) for k in keys]
    assert batch.delete_many(keys) == [scalar.delete(k) for k in keys]
    assert dict(batch.items()) == dict(scalar.items())


def test_sharded_batch_matches_loop():
    items = random_items(400, seed=27)
    scalar = ShardedTable(1 << 10, n_shards=4)
    batch = ShardedTable(1 << 10, n_shards=4)
    loop_results = [scalar.insert(k, v) for k, v in items]
    assert batch.put_many(items) == loop_results
    keys = [k for k, _ in items] + [b"missing-"]
    assert batch.get_many(keys) == [scalar.query(k) for k in keys]
    half = keys[: len(keys) // 2]
    assert batch.delete_many(half) == [scalar.delete(k) for k in half]
    assert batch.count == scalar.count


# ----------------------------------------------------------------------
# KV store


def make_kv():
    region = NVMRegion(8 << 20)
    return region, KVStore(region, n_index_cells=1 << 10, group_size=32)


def test_kv_put_many_matches_scalar():
    pairs = [(f"user:{i}".encode(), bytes([i % 251]) * (i % 40 + 1)) for i in range(200)]
    r1, scalar = make_kv()
    r2, batch = make_kv()
    f0, n0 = r1.stats.flushes, r1.stats.fences
    loop_results = [scalar.put(k, v) for k, v in pairs]
    assert (r1.stats.flushes - f0, r1.stats.fences - n0) == (800, 800)
    f0, n0 = r2.stats.flushes, r2.stats.fences
    assert batch.put_many(pairs) == loop_results
    # pinned: flush dedup across records + index, four fences total
    assert (r2.stats.flushes - f0, r2.stats.fences - n0) == (453, 4)
    for k, v in pairs:
        assert batch.get(k) == v
    keys = [k for k, _ in pairs] + [b"nope"]
    assert batch.get_many(keys) == [scalar.get(k) for k in keys]


def test_kv_put_many_falls_back_on_existing_keys():
    """A batch touching an existing digest routes through scalar put
    (update semantics preserved)."""
    _, store = make_kv()
    assert store.put(b"k1", b"old")
    results = store.put_many([(b"k0", b"a"), (b"k1", b"new"), (b"k2", b"c")])
    assert results == [True, True, True]
    assert store.get(b"k1") == b"new"
    assert store.get(b"k0") == b"a" and store.get(b"k2") == b"c"


def test_kv_delete_many():
    pairs = [(f"d:{i}".encode(), b"v" * (i + 1)) for i in range(50)]
    _, store = make_kv()
    assert all(store.put_many(pairs))
    keys = [k for k, _ in pairs[:25]] + [b"ghost"]
    assert store.delete_many(keys) == [True] * 25 + [False]
    assert store.get_many(keys) == [None] * 26
    for k, v in pairs[25:]:
        assert store.get(k) == v


# ----------------------------------------------------------------------
# crash safety of the coalesced commit window


def test_put_many_crash_boundaries_per_key_atomic():
    """Every crash boundary inside a small batched campaign recovers to
    a per-key-atomic subset — zero oracle violations."""
    from repro.bench.experiments.crashmatrix import (
        CrashMatrixSpec,
        run_crash_matrix_spec,
    )

    spec = CrashMatrixSpec(
        scheme="group",
        backend="raw",
        total_cells=128,
        group_size=16,
        n_ops=4,
        subset_budget=2,
        batch=3,
        seed=11,
    )
    cell = run_crash_matrix_spec(spec)
    assert cell["violations"] == []
    assert cell["points"] > 20  # boundaries inside the batch windows
    assert cell["batch"] == 3
