"""Tests for the benchmark configuration layer (scales, factories)."""

import pytest

from repro.bench.config import (
    EXTRA_SCHEMES,
    SCALES,
    SCHEMES,
    build_table,
    make_trace,
    region_for,
)
from repro.tables import ItemSpec


def test_scales_are_ordered_by_size():
    assert (
        SCALES["tiny"].total_cells
        < SCALES["small"].total_cells
        < SCALES["medium"].total_cells
        < SCALES["paper"].total_cells
    )


def test_paper_scale_matches_paper_parameters():
    paper = SCALES["paper"]
    assert paper.total_cells == 1 << 23  # RandomNum table size
    assert paper.group_size == 256
    assert paper.measure_ops == 1000
    assert paper.group_sizes == (64, 128, 256, 512, 1024)  # Figure 8 sweep


def test_scheme_list_matches_figure_order():
    assert SCHEMES == (
        "linear",
        "linear-L",
        "pfht",
        "pfht-L",
        "path",
        "path-L",
        "group",
    )


@pytest.mark.parametrize("scheme", SCHEMES + EXTRA_SCHEMES)
def test_build_every_scheme(scheme):
    built = build_table(scheme, 1 << 10, ItemSpec(), group_size=32)
    table = built.table
    # capacities comparable: within 2x of the requested total cells
    assert (1 << 10) * 0.5 <= table.capacity <= (1 << 10) * 1.25
    assert table.insert(b"k" * 8, b"v" * 8)
    assert table.query(b"k" * 8) == b"v" * 8
    assert (built.log is not None) == scheme.endswith("-L")


def test_logged_build_attaches_log():
    built = build_table("linear-L", 512, ItemSpec())
    assert built.log is not None
    assert built.table.log is built.log


def test_group_rejects_log_suffix():
    with pytest.raises(ValueError):
        build_table("group-L", 512, ItemSpec())


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        build_table("robinhood", 512, ItemSpec())


def test_region_cache_scales_with_table():
    small = region_for(1 << 10, ItemSpec(), cache_ratio=8.0)
    large = region_for(1 << 14, ItemSpec(), cache_ratio=8.0)
    assert large.config.cache.size_bytes > small.config.cache.size_bytes
    # ratio ≈ table bytes / 8
    table_bytes = (1 << 14) * 24
    assert large.config.cache.size_bytes == pytest.approx(table_bytes / 8, rel=0.1)


def test_region_big_enough_for_every_scheme():
    for scheme in SCHEMES + EXTRA_SCHEMES:
        built = build_table(scheme, 1 << 12, ItemSpec(16, 16))
        assert built.region.bytes_allocated <= built.region.size


def test_make_trace():
    assert make_trace("randomnum").name == "randomnum"
    with pytest.raises(ValueError):
        make_trace("nope")
