"""Tests for the measurement runner (fill, phases, utilization, recovery)."""

import pytest

from repro.bench import (
    RunSpec,
    measure_recovery,
    measure_space_utilization,
    run_workload,
)
from repro.bench.config import build_table, make_trace
from repro.bench.runner import OpMetrics, fill_to_load_factor
from repro.nvm import MemStats


SMALL = dict(total_cells=1 << 10, group_size=32, measure_ops=50)


def test_op_metrics_averages():
    delta = MemStats(cache_misses=30, flushes=20, sim_time_ns=5000.0)
    m = OpMetrics.from_delta(10, delta)
    assert m.avg_latency_ns == 500.0
    assert m.avg_misses == 3.0
    assert m.avg_flushes == 2.0


def test_op_metrics_zero_ops_safe():
    m = OpMetrics()
    assert m.avg_latency_ns == 0.0
    assert m.avg_misses == 0.0


def test_fill_reaches_target_load_factor():
    trace = make_trace("randomnum")
    built = build_table("linear", 1 << 10, trace.spec)
    resident, failures = fill_to_load_factor(built, trace.unique_items(), 0.5)
    assert built.table.count == int(0.5 * built.table.capacity)
    assert len(resident) == built.table.count
    assert failures == 0  # linear never rejects below capacity


def test_fill_raises_when_impossible():
    # a load factor beyond 1.0 is structurally unreachable: the fill
    # loop must give up with a diagnostic instead of spinning forever
    trace = make_trace("randomnum")
    built = build_table("chained", 256, trace.spec)
    with pytest.raises(RuntimeError, match="cannot fill"):
        fill_to_load_factor(built, trace.unique_items(), 1.5)


def test_run_workload_produces_all_phases():
    spec = RunSpec(scheme="group", trace="randomnum", load_factor=0.5, **SMALL)
    result = run_workload(spec)
    assert result.insert.ops == 50
    assert result.query.ops == 50
    assert result.delete.ops == 50
    assert result.insert.avg_latency_ns > 0
    assert result.query.avg_latency_ns > 0
    assert result.fill_count == int(0.5 * result.capacity)


def test_run_workload_query_has_no_writes():
    spec = RunSpec(scheme="linear", trace="randomnum", load_factor=0.5, **SMALL)
    result = run_workload(spec)
    assert result.query.flushes == 0
    assert result.query.nvm_bytes_written == 0
    # mutating phases do write
    assert result.insert.flushes > 0
    assert result.delete.flushes > 0


def test_run_workload_deterministic_per_seed():
    spec = RunSpec(scheme="pfht", trace="randomnum", load_factor=0.5, seed=9, **SMALL)
    a = run_workload(spec)
    b = run_workload(spec)
    assert a.insert.sim_ns == b.insert.sim_ns
    assert a.query.cache_misses == b.query.cache_misses


def test_run_workload_all_traces():
    for trace in ("randomnum", "bagofwords", "fingerprint"):
        spec = RunSpec(scheme="group", trace=trace, load_factor=0.5, **SMALL)
        result = run_workload(spec)
        assert result.insert.avg_latency_ns > 0


def test_from_scale_constructor():
    from repro.bench.config import SCALES

    spec = RunSpec.from_scale("group", "randomnum", 0.75, SCALES["tiny"], seed=1)
    assert spec.total_cells == SCALES["tiny"].total_cells
    assert spec.load_factor == 0.75
    assert spec.seed == 1


def test_space_utilization_group_below_one():
    util = measure_space_utilization(
        "group", "randomnum", total_cells=1 << 10, group_size=32
    )
    assert 0.3 < util < 1.0


def test_space_utilization_path_high():
    util = measure_space_utilization("path", "randomnum", total_cells=1 << 10)
    assert util > 0.8


def test_measure_recovery_fields():
    result = measure_recovery(total_cells=1 << 10, group_size=32)
    assert result["recovery_ms"] > 0
    assert result["execution_ms"] > result["recovery_ms"]
    assert 0 < result["percentage"] < 100
    assert result["table_bytes"] == (1 << 10) * 24


def test_op_metrics_shortfall():
    assert OpMetrics(ops=10, attempted=10).shortfall == 0
    assert OpMetrics(ops=8, attempted=10).shortfall == 2
    # attempted not recorded (legacy 0) never reads as negative shortfall
    assert OpMetrics(ops=10, attempted=0).shortfall == 0


def test_run_workload_records_attempted():
    spec = RunSpec(scheme="group", trace="randomnum", load_factor=0.5, **SMALL)
    result = run_workload(spec)
    assert result.insert.attempted == result.insert.ops  # room to spare
    assert result.query.attempted == spec.measure_ops
    assert result.delete.attempted == spec.measure_ops
    assert result.shortfalls() == {}


def test_shortfalls_surface_partial_phases():
    from repro.bench.runner import RunResult

    result = RunResult(
        spec=RunSpec(scheme="group", trace="randomnum", load_factor=0.5, **SMALL),
        fill_count=0,
        capacity=SMALL["total_cells"],
        insert=OpMetrics(ops=40, attempted=50),
        query=OpMetrics(ops=50, attempted=50),
        delete=OpMetrics(ops=50, attempted=50),
    )
    assert result.shortfalls() == {"insert": 10}
