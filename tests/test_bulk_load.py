"""Tests for the bulk-loading fast path."""


from tests.conftest import random_items, small_region

from repro import GroupHashTable, bulk_load


def build(n_cells=512, group_size=32):
    region = small_region()
    return region, GroupHashTable(region, n_cells, group_size=group_size)


def test_bulk_load_equivalent_to_inserts():
    """Same items, same order → cell-for-cell identical table."""
    items = random_items(300, seed=1)
    r1, incremental = build()
    for k, v in items:
        incremental.insert(k, v)
    r2, bulk = build()
    rejected = bulk_load(bulk, items)
    assert rejected == []
    assert bulk.count == incremental.count
    assert dict(bulk.items()) == dict(incremental.items())
    # placement policy identical: every cell byte-for-byte equal
    for a1, a2 in zip(incremental._iter_cell_addrs(), bulk._iter_cell_addrs()):
        assert r1.peek_volatile(a1, 24) == r2.peek_volatile(a2, 24)


def test_bulk_load_is_fully_persistent():
    region, table = build()
    bulk_load(table, random_items(200, seed=2))
    assert region.unpersisted_ranges() == []
    region.crash()
    table.reattach()
    assert table.count == 200
    assert table.check_count()


def test_bulk_load_much_cheaper_than_inserts():
    items = random_items(400, seed=3)
    r1, incremental = build()
    for k, v in items:
        incremental.insert(k, v)
    r2, bulk = build()
    bulk_load(bulk, items)
    assert r2.stats.flushes < 0.4 * r1.stats.flushes
    assert r2.stats.sim_time_ns < 0.5 * r1.stats.sim_time_ns


def test_bulk_load_respects_existing_items():
    _, table = build()
    pre = random_items(50, seed=4)
    for k, v in pre:
        table.insert(k, v)
    new = random_items(100, seed=5)
    bulk_load(table, new)
    state = dict(table.items())
    for k, v in pre + new:
        assert state[k] == v
    assert table.count == 150


def test_bulk_load_reports_overflow():
    _, table = build(n_cells=64, group_size=4)
    items = random_items(200, seed=6)
    rejected = bulk_load(table, items)
    assert rejected  # 200 items into 64 cells must overflow
    assert table.count + len(rejected) == 200
    placed = dict(table.items())
    for k, v in rejected:
        assert k not in placed


def test_bulk_load_prescan_uses_two_range_peeks(monkeypatch):
    """The occupancy pre-scan reads each level array once — two range
    peeks total, never one peek per cell (pinning the fix for the
    per-cell peek storm)."""
    region, table = build()
    for k, v in random_items(60, seed=8):
        table.insert(k, v)
    calls: list[tuple[int, int]] = []
    orig = type(region).peek_volatile

    def counting_peek(self, addr, size):
        calls.append((addr, size))
        return orig(self, addr, size)

    monkeypatch.setattr(type(region), "peek_volatile", counting_peek)
    bulk_load(table, random_items(100, seed=9))
    assert len(calls) == 2
    # and they are *range* reads covering the level arrays, not cells
    cell_size = table.codec.cell_size
    assert all(size == cell_size * table.layout.n_cells_level for _, size in calls)


def test_bulk_load_empty():
    _, table = build()
    assert bulk_load(table, []) == []
    assert table.count == 0


def test_normal_operations_after_bulk_load():
    """The table returns to Algorithm 1 semantics afterwards."""
    region, table = build()
    items = random_items(250, seed=7)
    bulk_load(table, items)
    extra = random_items(270, seed=7)[250:]
    for k, v in extra:
        assert table.insert(k, v)
    for k, _ in items[:50]:
        assert table.delete(k)
    assert table.check_count()
    # crash/recover still sound
    region.crash()
    table.reattach()
    table.recover()
    assert table.check_count()
