"""Unit and property tests for the set-associative cache simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.cache import CacheConfig, CacheSim


def tiny_cache(assoc=2, sets=4) -> CacheSim:
    return CacheSim(
        CacheConfig(size_bytes=64 * assoc * sets, line_size=64, associativity=assoc)
    )


def test_config_geometry():
    cfg = CacheConfig(size_bytes=2 * 1024 * 1024, line_size=64, associativity=8)
    assert cfg.n_lines == 32768
    assert cfg.n_sets == 4096


def test_config_rejects_bad_line_size():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1024, line_size=48, associativity=2)


def test_config_rejects_undersized_cache():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=64, line_size=64, associativity=4)


def test_first_access_misses_then_hits():
    cache = tiny_cache()
    hit, evicted = cache.access(10, is_write=False)
    assert not hit and evicted is None
    hit, evicted = cache.access(10, is_write=False)
    assert hit and evicted is None


def test_write_marks_dirty():
    cache = tiny_cache()
    cache.access(3, is_write=True)
    assert cache.is_dirty(3)
    cache.access(4, is_write=False)
    assert not cache.is_dirty(4)


def test_read_after_write_keeps_dirty():
    cache = tiny_cache()
    cache.access(3, is_write=True)
    cache.access(3, is_write=False)
    assert cache.is_dirty(3)


def test_lru_eviction_order():
    cache = tiny_cache(assoc=2, sets=1)
    cache.access(0, is_write=False)
    cache.access(1, is_write=False)
    cache.access(0, is_write=False)  # refresh 0: LRU victim is now 1
    hit, evicted = cache.access(2, is_write=False)
    assert not hit
    assert evicted == (1, False)
    assert cache.contains(0) and cache.contains(2) and not cache.contains(1)


def test_eviction_reports_dirtiness():
    cache = tiny_cache(assoc=1, sets=1)
    cache.access(0, is_write=True)
    _, evicted = cache.access(1, is_write=False)
    assert evicted == (0, True)


def test_flush_invalidates_and_reports_dirty():
    cache = tiny_cache()
    cache.access(5, is_write=True)
    was_cached, was_dirty = cache.flush(5)
    assert was_cached and was_dirty
    assert not cache.contains(5)
    # flushing again: not cached
    assert cache.flush(5) == (False, False)


def test_writeback_keeps_line_clean_resident():
    cache = tiny_cache()
    cache.access(5, is_write=True)
    assert cache.writeback(5) is True
    assert cache.contains(5)
    assert not cache.is_dirty(5)
    assert cache.writeback(5) is False  # already clean


def test_dirty_lines_enumeration():
    cache = tiny_cache(assoc=4, sets=2)
    cache.access(0, is_write=True)
    cache.access(1, is_write=False)
    cache.access(2, is_write=True)
    assert sorted(cache.dirty_lines()) == [0, 2]
    assert sorted(cache.resident_lines()) == [0, 1, 2]


def test_invalidate_all():
    cache = tiny_cache()
    for line in range(5):
        cache.access(line, is_write=True)
    cache.invalidate_all()
    assert len(cache) == 0
    assert list(cache.dirty_lines()) == []


def test_lines_map_to_distinct_sets():
    cache = tiny_cache(assoc=1, sets=4)
    # lines 0..3 land in different sets: no evictions
    for line in range(4):
        _, evicted = cache.access(line, is_write=False)
        assert evicted is None
    assert len(cache) == 4


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), max_size=200))
def test_capacity_invariant(ops):
    """Residency can never exceed associativity per set or total capacity."""
    cache = tiny_cache(assoc=2, sets=4)
    for line, is_write in ops:
        cache.access(line, is_write=is_write)
        assert len(cache) <= 8
        per_set: dict[int, int] = {}
        for resident in cache.resident_lines():
            per_set[resident % 4] = per_set.get(resident % 4, 0) + 1
        assert all(v <= 2 for v in per_set.values())


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 15), st.booleans()), max_size=100))
def test_matches_reference_lru_model(ops):
    """Cross-check against a straightforward per-set LRU list model."""
    assoc, n_sets = 2, 2
    cache = tiny_cache(assoc=assoc, sets=n_sets)
    model: dict[int, list[int]] = {s: [] for s in range(n_sets)}
    for line, is_write in ops:
        bucket = model[line % n_sets]
        expect_hit = line in bucket
        hit, _ = cache.access(line, is_write=is_write)
        assert hit == expect_hit
        if expect_hit:
            bucket.remove(line)
        elif len(bucket) == assoc:
            bucket.pop(0)
        bucket.append(line)
    for s in range(n_sets):
        resident = sorted(l for l in cache.resident_lines() if l % n_sets == s)
        assert resident == sorted(model[s])


def test_writeback_clean_or_absent_returns_false():
    cache = tiny_cache()
    assert cache.writeback(5) is False  # never resident
    cache.access(5, is_write=False)
    assert cache.writeback(5) is False  # resident but clean


def test_writeback_cleans_but_keeps_residency():
    cache = tiny_cache()
    cache.access(7, is_write=True)
    assert cache.is_dirty(7)
    assert cache.writeback(7) is True
    assert cache.contains(7)
    assert not cache.is_dirty(7)
    # a second writeback finds nothing left to persist
    assert cache.writeback(7) is False


def test_writeback_does_not_disturb_lru_order():
    cache = tiny_cache(assoc=2, sets=1)
    cache.access(0, is_write=True)
    cache.access(1, is_write=False)
    cache.writeback(0)  # clwb on the LRU line must not refresh it
    _, evicted = cache.access(2, is_write=False)
    assert evicted == (0, False)  # 0 is still the victim, now clean


def test_dirty_lines_yields_only_dirty():
    cache = tiny_cache()
    cache.access(0, is_write=True)
    cache.access(1, is_write=False)
    cache.access(2, is_write=True)
    assert sorted(cache.dirty_lines()) == [0, 2]


def test_invalidate_all_drops_everything_without_writeback():
    cache = tiny_cache()
    for line in range(4):
        cache.access(line, is_write=True)
    cache.invalidate_all()
    assert len(cache) == 0
    assert list(cache.dirty_lines()) == []
    hit, _ = cache.access(0, is_write=False)
    assert not hit  # power loss: everything re-misses


def test_touch_mru_upgrades_dirty_and_preserves_order():
    cache = tiny_cache(assoc=2, sets=1)
    cache.access(0, is_write=False)
    cache.access(1, is_write=False)
    cache.touch_mru(1, True)  # repeat-touch of the MRU line, as a write
    assert cache.is_dirty(1)
    assert not cache.is_dirty(0)
    _, evicted = cache.access(2, is_write=False)
    assert evicted == (0, False)  # LRU order unchanged by touch_mru


def test_touch_mru_read_does_not_dirty():
    cache = tiny_cache()
    cache.access(3, is_write=False)
    cache.touch_mru(3, False)
    assert not cache.is_dirty(3)


def test_touch_mru_asserts_residency():
    cache = tiny_cache()
    with pytest.raises(KeyError):
        cache.touch_mru(9, False)
    with pytest.raises(KeyError):
        cache.touch_mru(9, True)
