"""Unit tests for the cell codec (layout, bitmap commit, kv access)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm import NVMRegion
from repro.tables.cell import HEADER_SIZE, CellCodec, ItemSpec


def region():
    return NVMRegion(1 << 16)


def test_item_spec_sizes():
    spec = ItemSpec(8, 8)
    assert spec.item_size == 16
    assert ItemSpec(16, 16).item_size == 32


def test_item_spec_validation():
    with pytest.raises(ValueError):
        ItemSpec(0, 8)
    with pytest.raises(ValueError):
        ItemSpec(8, -1)


def test_cell_size_is_8_byte_aligned():
    for key, value in ((8, 8), (16, 16), (8, 5), (3, 3)):
        codec = CellCodec(ItemSpec(key, value))
        assert codec.cell_size % 8 == 0
        assert codec.cell_size >= HEADER_SIZE + key + value


def test_addr_arithmetic():
    codec = CellCodec(ItemSpec(8, 8))
    assert codec.addr(100, 0) == 100
    assert codec.addr(100, 3) == 100 + 3 * codec.cell_size
    assert codec.array_bytes(10) == 10 * codec.cell_size


def test_fresh_cell_is_empty():
    codec = CellCodec(ItemSpec())
    r = region()
    assert not codec.is_occupied(r, 0)


def test_write_kv_does_not_set_bitmap():
    codec = CellCodec(ItemSpec())
    r = region()
    codec.write_kv(r, 0, b"k" * 8, b"v" * 8)
    assert not codec.is_occupied(r, 0)
    assert codec.read_key(r, 0) == b"k" * 8
    assert codec.read_value(r, 0) == b"v" * 8


def test_set_occupied_commit_and_clear():
    codec = CellCodec(ItemSpec())
    r = region()
    codec.set_occupied(r, 0, True)
    assert codec.is_occupied(r, 0)
    codec.set_occupied(r, 0, False)
    assert not codec.is_occupied(r, 0)


def test_set_occupied_preserves_other_header_bits():
    codec = CellCodec(ItemSpec())
    r = region()
    r.write_u64(0, 0xFF00)  # future header bits
    codec.set_occupied(r, 0, True)
    assert r.read_u64(0) == 0xFF01
    codec.set_occupied(r, 0, False)
    assert r.read_u64(0) == 0xFF00


def test_probe_reads_header_and_key_together():
    codec = CellCodec(ItemSpec())
    r = region()
    codec.write_kv(r, 0, b"abcdefgh", b"v" * 8)
    codec.set_occupied(r, 0, True)
    occupied, key = codec.probe(r, 0)
    assert occupied and key == b"abcdefgh"


def test_clear_kv():
    codec = CellCodec(ItemSpec())
    r = region()
    codec.write_kv(r, 0, b"k" * 8, b"v" * 8)
    codec.clear_kv(r, 0)
    assert codec.read_key(r, 0) == bytes(8)
    assert codec.read_value(r, 0) == bytes(8)


def test_write_kv_validates_sizes():
    codec = CellCodec(ItemSpec(8, 8))
    r = region()
    with pytest.raises(ValueError):
        codec.write_kv(r, 0, b"short", b"v" * 8)
    with pytest.raises(ValueError):
        codec.write_kv(r, 0, b"k" * 8, b"v" * 9)


def test_kv_span_covers_item():
    codec = CellCodec(ItemSpec(16, 16))
    addr, size = codec.kv_span(1000)
    assert addr == 1000 + HEADER_SIZE
    assert size == 32


def test_headers_are_atomically_alignable_in_arrays():
    """Every cell header in a packed array must be 8-byte aligned, or the
    bitmap commit could not be failure-atomic."""
    for spec in (ItemSpec(8, 8), ItemSpec(16, 16), ItemSpec(8, 3)):
        codec = CellCodec(spec)
        for i in range(5):
            assert codec.addr(0, i) % 8 == 0


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=8, max_size=8), st.binary(min_size=8, max_size=8))
def test_kv_roundtrip_property(key, value):
    codec = CellCodec(ItemSpec())
    r = region()
    codec.write_kv(r, 64, key, value)
    assert codec.read_key(r, 64) == key
    assert codec.read_value(r, 64) == value
