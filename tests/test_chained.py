"""Scheme-specific tests for chained hashing (node pool, atomic link-in,
free list)."""


from tests.conftest import random_items, small_region

from repro import ChainedHashTable
from repro.tables.chained import NIL


def build(n_cells=128, seed=1, **kw):
    region = small_region()
    return region, ChainedHashTable(region, n_cells, seed=seed, **kw)


def test_pool_capacity_bounds_items():
    _, table = build(n_cells=16)
    accepted = sum(table.insert(k, v) for k, v in random_items(32, seed=1))
    assert accepted == 16
    assert not table.insert(b"overflow", b"v" * 8)


def test_chain_collisions_resolved():
    region, table = build(n_cells=64)
    # force all keys into one bucket by using a single-bucket table
    region2 = small_region()
    one_bucket = ChainedHashTable(region2, 32, buckets_per_cell=1 / 32)
    assert one_bucket.n_buckets == 1
    items = random_items(10, seed=2)
    for k, v in items:
        assert one_bucket.insert(k, v)
    for k, v in items:
        assert one_bucket.query(k) == v
    # delete from head, middle, tail of the chain
    for idx in (0, 5, 9):
        assert one_bucket.delete(items[idx][0])
    remaining = [it for i, it in enumerate(items) if i not in (0, 5, 9)]
    for k, v in remaining:
        assert one_bucket.query(k) == v
    assert one_bucket.count == 7


def test_free_list_reuses_nodes():
    region, table = build(n_cells=8)
    items = random_items(8, seed=3)
    for k, v in items:
        table.insert(k, v)
    bump_after_fill = region.read_u64(table._bump_addr)
    assert bump_after_fill == 8
    # delete two, insert two: bump must not advance (free list reuse)
    table.delete(items[0][0])
    table.delete(items[1][0])
    for k, v in random_items(2, seed=4):
        assert table.insert(k, v)
    assert region.read_u64(table._bump_addr) == 8


def test_insert_is_crash_atomic_without_log():
    """Chaining's virtue: prepare node off-list, publish with one atomic
    pointer store. A crash at ANY event inside insert leaves either the
    old chain or the new chain, never a broken one."""
    from repro.nvm import SimulatedPowerFailure, random_schedule

    base_items = random_items(6, seed=5)
    for at_event in range(1, 14):
        region, table = build(n_cells=32)
        for k, v in base_items:
            table.insert(k, v)
        new_key, new_value = b"inflight", b"newvalue"
        region.arm_crash(at_event)
        completed = False
        try:
            table.insert(new_key, new_value)
            completed = True
            region.disarm_crash()
        except SimulatedPowerFailure:
            region.crash(random_schedule(at_event))
            table.reattach()
            table.recover()
        state = dict(table.items())
        for k, v in base_items:
            assert state.get(k) == v, f"lost committed item at event {at_event}"
        assert state.get(new_key) in (None, new_value)
        assert table.check_count()
        if completed:
            assert state[new_key] == new_value


def test_allocator_state_survives_crash():
    region, table = build(n_cells=16)
    for k, v in random_items(5, seed=6):
        table.insert(k, v)
    region.crash()
    table.reattach()
    assert table._bump == 5
    # can keep inserting after reboot
    assert table.insert(b"afterboot", b"v" * 8)
    assert table.count == 6


def test_nil_is_zero_and_unreachable():
    region, table = build()
    # node pool starts after the metadata block: address 0 is never a node
    assert table._pool > 0
    assert NIL == 0


def test_allocator_persists_metadata():
    """The paper's complaint about chaining: allocator traffic on every
    insert. Verify each insert persists allocator state."""
    region, table = build()
    flushes = region.stats.flushes
    table.insert(b"k" * 8, b"v" * 8)
    # node persist + bucket persist + count persist + allocator persist
    assert region.stats.flushes - flushes >= 4
