"""Tests for the shared CI-gate plumbing and the perf regression gate.

The gate scripts live in ``scripts/`` (not the package), so they are
loaded by file path here — ``gate_common`` first, so the gates' sibling
import resolves exactly the way it does when CI runs them as scripts.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


def _load(name: str):
    """Import one gate script by path (registering it for siblings)."""
    if str(SCRIPTS) not in sys.path:
        sys.path.insert(0, str(SCRIPTS))
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


gate_common = _load("gate_common")
ci_perf_gate = _load("ci_perf_gate")


# ----------------------------------------------------------------------
# gate_common plumbing


def test_gate_prints_and_tracks_state(capsys):
    gate = gate_common.Gate()
    gate.ok("fine")
    gate.warn("slow")
    assert gate.finish("all good") == 0
    out = capsys.readouterr().out
    assert "ok: fine" in out and "WARN: slow" in out
    assert "gate passed: all good" in out
    assert gate.warnings == 1

    gate = gate_common.Gate()
    gate.fail("broken")
    assert gate.finish("nope") == 1
    out = capsys.readouterr().out
    assert "FAIL: broken" in out and "gate passed" not in out


def test_report_section_exits_cleanly_on_missing_section():
    with pytest.raises(SystemExit, match="no 'contention' section"):
        gate_common.report_section({"timeline": {}}, "contention")
    assert gate_common.report_section({"x": {"cells": []}}, "x") == {"cells": []}


def test_cells_by_spec_keys_on_sorted_items():
    cells = [
        {"spec": {"b": 2, "a": 1}, "v": "first"},
        {"spec": {"a": 9, "b": 2}, "v": "second"},
    ]
    index = gate_common.cells_by_spec({"cells": cells})
    assert index[(("a", 1), ("b", 2))]["v"] == "first"
    assert gate_common.spec_key({"b": 2, "a": 1}) == (("a", 1), ("b", 2))


def test_dig_walks_dotted_paths():
    payload = {"total": {"p99": 42.0}}
    assert gate_common.dig(payload, "total.p99") == 42.0
    assert gate_common.dig(payload, "total.missing") is None
    assert gate_common.dig(payload, "total.p99.deeper", default=-1) == -1


def test_print_failure_context_shows_recorder_rings(capsys):
    gate_common.print_failure_context(None)
    assert capsys.readouterr().out == ""
    context = {
        "first_failing_boundary": 7,
        "events_seen": 9,
        "ops_seen": 3,
        "events": [{"index": 6, "kind": "write"}],
        "ops": {"0": [{"index": 2, "kind": "insert"}]},
    }
    gate_common.print_failure_context(context)
    out = capsys.readouterr().out
    assert "failing boundary 7" in out
    assert "'kind': 'write'" in out and "client 0 op" in out


# ----------------------------------------------------------------------
# ci_perf_gate end to end


def _contention_dump(kops=100.0, p99=500.0, aborts=10) -> dict:
    cell = {
        "spec": {"n_clients": 4, "seed": 1},
        "clients": 4,
        "throughput_kops": kops,
        "total": {"p99": p99},
        "read_aborts": aborts,
    }
    return {"contention": {"cells": [cell]}}


def _timeline_dump(status="pass", spike=30.0) -> dict:
    growth = {
        "spec": {"kind": "growth", "seed": 1},
        "split_spike_ratio": spike,
        "steady_window_p99_ns": 2000.0,
    }
    health = {
        "status": status,
        "checks": [
            {
                "metric": "growth.split_spike_ratio",
                "status": status,
                "value": spike,
                "warn": 100.0,
                "fail": 1000.0,
                "direction": "above",
                "description": "",
            }
        ],
    }
    return {"timeline": {"cells": [growth], "health": health}}


def _run(tmp_path, fresh: dict, base: dict, *extra: str) -> int:
    fresh_path = tmp_path / "fresh.json"
    base_path = tmp_path / "base.json"
    fresh_path.write_text(json.dumps(fresh))
    base_path.write_text(json.dumps(base))
    return ci_perf_gate.main(
        [str(fresh_path), "--baseline", str(base_path), *extra]
    )


def test_perf_gate_passes_on_identical_dumps(tmp_path, capsys):
    dump = _contention_dump()
    assert _run(tmp_path, dump, dump) == 0
    assert "gate passed" in capsys.readouterr().out


def test_perf_gate_fails_on_deterministic_regression(tmp_path, capsys):
    assert _run(tmp_path, _contention_dump(kops=50.0), _contention_dump()) == 1
    out = capsys.readouterr().out
    assert "FAIL: contention/4 client(s) throughput_kops" in out


def test_perf_gate_tolerates_drift_within_tolerance(tmp_path):
    assert _run(tmp_path, _contention_dump(p99=560.0), _contention_dump()) == 0


def test_perf_gate_fails_on_missing_baseline_cell(tmp_path, capsys):
    fresh = {"contention": {"cells": []}}
    assert _run(tmp_path, fresh, _contention_dump()) == 1
    assert "missing from fresh run" in capsys.readouterr().out


def test_perf_gate_wall_clock_only_warns(tmp_path, capsys):
    cell = {
        "spec": {"scheme": "group", "backend": "raw", "batch": 0},
        "fill": {"wall_ops_per_s": 1000.0},
        "query": {"wall_ops_per_s": 1000.0},
    }
    base = {"throughput": {"cells": [cell]}}
    slow = {
        "throughput": {
            "cells": [dict(cell, fill={"wall_ops_per_s": 100.0})]
        }
    }
    assert _run(tmp_path, slow, base) == 0
    out = capsys.readouterr().out
    assert "WARN: throughput/group/raw b0 fill.wall_ops_per_s" in out
    assert "non-gating" in out


def test_perf_gate_gates_on_health_failure(tmp_path, capsys):
    fresh = _timeline_dump(status="fail", spike=2000.0)
    base = _timeline_dump()
    # trajectory comparison alone would fail too; health must also fail
    assert _run(tmp_path, fresh, base) == 1
    out = capsys.readouterr().out
    assert "FAIL: timeline: health report status is 'fail'" in out
    assert "FAIL: timeline health growth.split_spike_ratio" in out


def _serving_dump(kops=500.0, wrong=0, one_sided=200) -> dict:
    cell = {
        "spec": {
            "n_clients": 64,
            "batch_max": 8,
            "location_cache": True,
            "seed": 1,
        },
        "throughput_kops": kops,
        "total": {"p99": 900.0},
        "wrong_answers": wrong,
        "shadow_failures": 0,
        "one_sided_reads": one_sided,
    }
    return {"serving": {"cells": [cell]}}


def test_perf_gate_serving_wrong_answers_zero_tolerance(tmp_path, capsys):
    assert _run(tmp_path, _serving_dump(), _serving_dump()) == 0
    # a single wrong answer off a zero baseline is a hard failure — this
    # is a correctness gate wearing a perf gate's clothes
    assert _run(tmp_path, _serving_dump(wrong=1), _serving_dump()) == 1
    assert "FAIL: serving/64c b8 +loc wrong_answers" in capsys.readouterr().out


def test_perf_gate_serving_catches_dead_fast_path(tmp_path, capsys):
    # the location-cache path silently never firing must not pass
    assert _run(tmp_path, _serving_dump(one_sided=0), _serving_dump()) == 1
    assert "one_sided_reads" in capsys.readouterr().out


def test_perf_gate_reports_missing_baseline_file(tmp_path, capsys):
    fresh_path = tmp_path / "fresh.json"
    fresh_path.write_text(json.dumps(_contention_dump()))
    code = ci_perf_gate.main(
        [str(fresh_path), "--baseline", str(tmp_path / "nope.json")]
    )
    assert code == 1
    assert "no baseline" in capsys.readouterr().out


def test_perf_gate_rejects_dumps_with_no_common_section(tmp_path, capsys):
    assert _run(tmp_path, {"contention": {"cells": []}}, {"timeline": {}}) == 1
    assert "no gateable section" in capsys.readouterr().out


def test_perf_gate_real_baselines_self_compare():
    """The committed baselines gate cleanly against themselves."""
    root = SCRIPTS.parent
    for name in (
        "bench_contention.json",
        "bench_timeline.json",
        "bench_serving.json",
    ):
        path = root / name
        assert path.exists(), f"committed baseline {name} is missing"
        assert ci_perf_gate.main([str(path), "--baseline", str(path)]) == 0
