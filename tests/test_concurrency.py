"""Tests for the deterministic multi-client concurrency layer.

Covers the tentpole guarantees: versioned stripe-lock semantics
(parity, ownership, fingerprint multisets), scheduler determinism
(same seed ⇒ identical interleaving, op results and final table
bytes; different seed ⇒ a different schedule that still passes every
oracle), genuine contention (aborts, retries and lock waits appear
with multiple clients and vanish with one), the shadow model's teeth
(a corrupted oracle is reported, not swallowed), per-client event
attribution, the raw-backend surrogate clock, engine integration
(byte-identity across worker counts, executor repeatability), and the
crash-matrix multi-client cell (boundaries land between two clients'
in-flight ops and recovery stays clean).
"""

import pytest

from repro import GroupHashTable, ItemSpec
from repro.bench.cache import ResultCache
from repro.bench.config import build_table
from repro.bench.engine import Engine
from repro.bench.experiments.contention import (
    ConcurrentSpec,
    run_concurrent_spec,
)
from repro.bench.experiments.crashmatrix import (
    CrashMatrixSpec,
    build_concurrent_workload,
    run_crash_matrix_spec,
)
from repro.concurrency import (
    ClientOp,
    VersionedLockTable,
    fingerprint_of,
    run_concurrent,
    table_digest,
)
from repro.obs import MetricsRegistry

from .conftest import small_region


def make_table(cells: int = 512, seed: int = 1) -> GroupHashTable:
    return GroupHashTable(
        small_region(), cells, ItemSpec(), group_size=32, seed=seed
    )


def key_of(i: int) -> bytes:
    return (i + 1).to_bytes(8, "little")


def value_of(i: int) -> bytes:
    return ((i * 2654435761 + 1) & (2**64 - 1)).to_bytes(8, "little")


def hot_streams(n_clients: int, per_client: int, n_keys: int = 8):
    """Per-client streams hammering a small shared key set (update/query
    alternating), the worst case for stripe locks."""
    streams = []
    for client in range(n_clients):
        ops = []
        for i in range(per_client):
            k = key_of((client + i) % n_keys)
            if i % 2 == 0:
                ops.append(ClientOp("update", k, value_of(client * 100 + i)))
            else:
                ops.append(ClientOp("query", k))
        streams.append(ops)
    return streams


def prefill(table, n_keys: int = 8) -> dict[bytes, bytes]:
    shadow = {}
    for i in range(n_keys):
        key, value = key_of(i), value_of(i)
        assert table.insert(key, value)
        shadow[key] = value
    return shadow


def commit_signature(result):
    return [
        (r.client, r.op_index, r.op.kind, r.op.key, r.ok, r.found)
        for r in result.committed
    ]


# ----------------------------------------------------------------------
# versioned lock table


def test_lock_version_parity_and_counters():
    locks = VersionedLockTable(4)
    assert locks.version(0) == 0 and not locks.locked(0)
    assert locks.try_acquire(0, owner=1)
    assert locks.version(0) == 1 and locks.locked(0)
    assert locks.owner(0) == 1
    assert not locks.try_acquire(0, owner=2)  # held -> spin
    locks.release(0)
    assert locks.version(0) == 2 and not locks.locked(0)
    assert locks.acquires == 1
    assert locks.contended == 1
    # versions are per-stripe
    assert locks.version(1) == 0


def test_lock_release_unheld_raises():
    locks = VersionedLockTable(2)
    with pytest.raises(RuntimeError):
        locks.release(0)


def test_lock_snapshot_tracks_writers():
    locks = VersionedLockTable(4)
    snap = locks.snapshot((0, 2))
    assert snap == (0, 0)
    locks.try_acquire(2, owner=0)
    assert locks.snapshot((0, 2)) != snap
    locks.release(2)
    # release changed the version again: optimistic readers must see
    # that a writer committed in between, not the original snapshot
    assert locks.snapshot((0, 2)) == (0, 2)


def test_fingerprint_multiset():
    locks = VersionedLockTable(2)
    fp = fingerprint_of(b"somekey1")
    assert not locks.fp_may_contain(0, fp)
    locks.fp_add(0, fp)
    locks.fp_add(0, fp)  # two residents sharing a tag
    assert locks.fp_may_contain(0, fp)
    locks.fp_remove(0, fp)
    assert locks.fp_may_contain(0, fp)  # one still resident
    locks.fp_remove(0, fp)
    assert not locks.fp_may_contain(0, fp)
    with pytest.raises(RuntimeError):
        locks.fp_remove(0, fp)


def test_fingerprint_of_is_a_byte():
    tags = {fingerprint_of(key_of(i)) for i in range(200)}
    assert all(0 <= tag <= 255 for tag in tags)
    assert len(tags) > 1
    assert fingerprint_of(b"abcdefgh") == fingerprint_of(b"abcdefgh")


# ----------------------------------------------------------------------
# scheduler determinism


def test_same_seed_same_run():
    results = []
    digests = []
    for _ in range(2):
        table = make_table()
        shadow = prefill(table)
        result = run_concurrent(
            table, hot_streams(4, 12), seed=9, shadow=shadow
        )
        assert result.ok, result.check_failures
        results.append(result)
        digests.append(table_digest(table))
    a, b = results
    assert commit_signature(a) == commit_signature(b)
    assert a.span_ns == b.span_ns
    assert (a.read_aborts, a.read_retries, a.lock_waits) == (
        b.read_aborts, b.read_retries, b.lock_waits
    )
    assert a.client_events == b.client_events
    assert digests[0] == digests[1]


def test_different_seed_different_interleaving():
    signatures = []
    for seed in (9, 10):
        table = make_table()
        shadow = prefill(table)
        result = run_concurrent(
            table, hot_streams(4, 12), seed=seed, shadow=shadow
        )
        # every schedule must pass the oracles, not just the default one
        assert result.ok, result.check_failures
        signatures.append(commit_signature(result))
    assert signatures[0] != signatures[1]


def test_contention_appears_with_clients_and_not_alone():
    table = make_table()
    shadow = prefill(table)
    solo = run_concurrent(table, hot_streams(1, 24), seed=5, shadow=shadow)
    assert solo.ok
    assert solo.read_aborts == solo.read_retries == solo.lock_waits == 0
    assert not any(r.concurrent for r in solo.committed)

    table = make_table()
    shadow = prefill(table)
    busy = run_concurrent(table, hot_streams(6, 12), seed=5, shadow=shadow)
    assert busy.ok, busy.check_failures
    assert busy.read_aborts > 0 or busy.read_retries > 0
    assert busy.lock_waits > 0
    assert busy.lock_wait_ns > 0
    assert any(r.concurrent for r in busy.committed)
    assert busy.failed_ops == 0
    assert busy.span_ns > 0
    assert busy.throughput_kops() > 0


def test_metrics_registry_receives_counters():
    table = make_table()
    shadow = prefill(table)
    metrics = MetricsRegistry()
    result = run_concurrent(
        table, hot_streams(6, 12), seed=5, shadow=shadow, metrics=metrics
    )
    counters = metrics.as_dict()["counters"]
    assert counters.get("ccl.lock_waits", 0) == result.lock_waits
    assert counters.get("ccl.read_aborts", 0) == result.read_aborts
    histograms = metrics.as_dict()["histograms"]
    assert "ccl.latency.client0" in histograms


def test_per_client_event_attribution():
    table = make_table()
    shadow = prefill(table)
    result = run_concurrent(table, hot_streams(3, 10), seed=3, shadow=shadow)
    assert len(result.client_events) == 3
    # every client wrote (update-heavy streams), and attribution is
    # per-client, not one bucket
    for events in result.client_events:
        assert events["write"] > 0
        assert events["bytes"] > 0


def test_fingerprint_short_circuits_definite_misses():
    table = make_table()
    # empty table: every query is a definite miss by fingerprint
    missing = [ClientOp("query", key_of(1000 + i)) for i in range(6)]
    result = run_concurrent(table, [missing], seed=2, shadow={})
    assert result.ok
    assert result.fp_skips == len(missing)
    assert all(r.found is None for r in result.committed)


def test_shadow_oracle_detects_corruption():
    table = make_table()
    shadow = prefill(table)
    # claim a key the table never saw: the final-state oracle must
    # report it as lost, and the query must disagree with the shadow
    bogus = key_of(999)
    shadow[bogus] = value_of(999)
    result = run_concurrent(
        table, [[ClientOp("query", bogus)]], seed=1, shadow=shadow
    )
    assert not result.ok
    assert result.lost_updates >= 1
    assert result.check_failures


def test_insert_and_delete_maintain_fingerprints():
    table = make_table()
    ops = [
        ClientOp("insert", key_of(50), value_of(50)),
        ClientOp("query", key_of(50)),
        ClientOp("delete", key_of(50)),
        ClientOp("query", key_of(50)),
    ]
    result = run_concurrent(table, [ops], seed=4, shadow={})
    assert result.ok, result.check_failures
    found = [r.found for r in result.committed if r.op.kind == "query"]
    assert found == [value_of(50), None]
    # after the delete the fingerprint is gone: the second query is a
    # definite miss again
    assert result.fp_skips == 1


def test_raw_backend_surrogate_clock():
    built = build_table(
        "group", 512, ItemSpec(), group_size=32, seed=1, backend="raw"
    )
    shadow = prefill(built.table)
    result = run_concurrent(
        built.table, hot_streams(3, 8), seed=6, shadow=shadow
    )
    assert result.ok, result.check_failures
    # RawBackend has no costed clock; the per-event surrogate must
    # still advance simulated time deterministically
    assert result.span_ns > 0
    assert any(r.concurrent for r in result.committed)


def test_empty_streams_rejected():
    table = make_table()
    with pytest.raises(ValueError):
        run_concurrent(table, [], seed=1)


# ----------------------------------------------------------------------
# engine integration (contention experiment)

TINY_SPEC = ConcurrentSpec(
    total_cells=1 << 10, group_size=32, n_clients=4, n_ops=80, seed=7
)


def test_concurrent_spec_round_trip():
    assert ConcurrentSpec.from_dict(TINY_SPEC.to_dict()) == TINY_SPEC
    assert TINY_SPEC.replace(n_clients=1).label == "1 client"
    assert TINY_SPEC.label == "4 clients"


def test_executor_repeatable():
    a = run_concurrent_spec(TINY_SPEC)
    b = run_concurrent_spec(TINY_SPEC)
    assert a == b
    assert a["lost_updates"] == 0 and not a["check_failures"]
    assert a["table_digest"] == b["table_digest"]


def test_engine_byte_identity_across_jobs(tmp_path):
    specs = [TINY_SPEC, TINY_SPEC.replace(n_clients=1)]
    serial = Engine(jobs=1, cache=False).run(specs)
    parallel = Engine(
        jobs=2, cache=ResultCache(tmp_path / "cache")
    ).run(specs)
    assert serial == parallel


# ----------------------------------------------------------------------
# crash-matrix multi-client cell

TINY_CRASH = CrashMatrixSpec(
    scheme="group",
    backend="raw",
    total_cells=128,
    group_size=32,
    n_ops=6,
    subset_budget=1,
    clients=2,
    seed=11,
)


def test_build_concurrent_workload_deterministic():
    a = build_concurrent_workload(TINY_CRASH)
    b = build_concurrent_workload(TINY_CRASH)
    assert a == b
    prefill_items, ops, concurrent = a
    assert prefill_items and ops
    # both clients contribute to the serialized commit order
    clients = {op.key[0] for op in ops}
    assert clients <= {1, 2} and len(clients) == 2
    assert concurrent, "no op overlapped another client's op"


def test_crash_matrix_concurrent_cell_recovers():
    cell = run_crash_matrix_spec(TINY_CRASH)
    assert cell["clients"] == 2
    assert cell["violations"] == []
    assert cell["concurrent_points"] >= 1
    assert cell["points"] > 0
