"""Property tests on the cost model itself: invariants any defensible
event-cost accounting must satisfy, checked under random access
sequences. A violation here would undermine every latency number in
EXPERIMENTS.md."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.nvm import CacheConfig, NVMRegion, SimConfig
from repro.nvm.latency import DRAM, PCM

CACHE = CacheConfig(size_bytes=4096, line_size=64, associativity=2)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("read"), st.integers(0, 2000), st.integers(1, 64)),
        st.tuples(st.just("write"), st.integers(0, 2000), st.integers(1, 64)),
        st.tuples(st.just("flush"), st.integers(0, 2000), st.just(1)),
        st.tuples(st.just("fence"), st.just(0), st.just(0)),
    ),
    max_size=80,
)


def apply(region, ops):
    for kind, addr, size in ops:
        if kind == "read":
            region.read(addr, min(size, region.size - addr))
        elif kind == "write":
            region.write(addr, b"x" * min(size, region.size - addr))
        elif kind == "flush":
            region.clflush(addr)
        else:
            region.mfence()


@settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_sim_time_is_monotone_nondecreasing(ops):
    region = NVMRegion(4096, SimConfig(cache=CACHE))
    last = 0.0
    for op in ops:
        apply(region, [op])
        assert region.stats.sim_time_ns >= last
        last = region.stats.sim_time_ns


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_same_ops_same_cost(ops):
    """Determinism: identical sequences cost identically."""
    a = NVMRegion(4096, SimConfig(cache=CACHE))
    b = NVMRegion(4096, SimConfig(cache=CACHE))
    apply(a, ops)
    apply(b, ops)
    assert a.stats.as_dict() == b.stats.as_dict()


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_slower_medium_never_cheaper(ops):
    """Dominance: raising every event cost cannot reduce total time."""
    fast = NVMRegion(4096, SimConfig(latency=DRAM, cache=CACHE))
    slow = NVMRegion(4096, SimConfig(latency=PCM, cache=CACHE))
    apply(fast, ops)
    apply(slow, ops)
    assert slow.stats.sim_time_ns >= fast.stats.sim_time_ns
    # event counts themselves are technology-independent
    assert slow.stats.cache_misses == fast.stats.cache_misses
    assert slow.stats.flushes == fast.stats.flushes


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_accounting_identities(ops):
    """Counter identities: hits + misses + prefetched = touched lines;
    dirty flushes ≤ flushes; medium line writes = writebacks."""
    region = NVMRegion(4096, SimConfig(cache=CACHE))
    apply(region, ops)
    s = region.stats
    assert s.dirty_flushes <= s.flushes
    assert s.nvm_line_writes == s.writebacks
    assert s.cache_hits + s.cache_misses + s.prefetched_fills >= s.accesses
    assert s.nvm_bytes_written % 8 == 0  # line-granular (64) actually
    assert s.miss_ratio <= 1.0


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_volatile_view_is_last_writer(ops):
    """The volatile view always reflects program order regardless of
    cache/flush activity (a cache that corrupted data would be caught
    here)."""
    region = NVMRegion(4096, SimConfig(cache=CACHE))
    shadow = bytearray(4096)
    for kind, addr, size in ops:
        if kind == "write":
            size = min(size, 4096 - addr)
            region.write(addr, b"x" * size)
            shadow[addr : addr + size] = b"x" * size
        elif kind == "read":
            size = min(size, 4096 - addr)
            assert region.read(addr, size) == bytes(shadow[addr : addr + size])
        elif kind == "flush":
            region.clflush(addr)
        else:
            region.mfence()
    assert region.peek_volatile(0, 4096) == bytes(shadow)


def test_flush_then_refill_costs_more_than_hit():
    """The clflush-invalidation effect, in cost terms: touch-flush-touch
    is strictly costlier than touch-touch."""
    a = NVMRegion(4096, SimConfig(cache=CACHE))
    a.read(0, 8)
    a.read(0, 8)
    b = NVMRegion(4096, SimConfig(cache=CACHE))
    b.read(0, 8)
    b.clflush(0)
    b.read(0, 8)
    assert b.stats.sim_time_ns > a.stats.sim_time_ns
    assert b.stats.cache_misses == 2 and a.stats.cache_misses == 1
