"""Crash-consistency fuzzing — the paper's core correctness claim.

Group hashing promises: after a power failure at *any* point inside an
insert or delete, with *any* subset of unflushed 8-byte words reaching
NVM, Algorithm 4 recovery restores a consistent state:

- every item committed before the in-flight operation is intact;
- the in-flight operation is atomic — fully applied or fully absent;
- the persistent count matches actual occupancy;
- every unoccupied cell is zeroed.

The same fuzz runs against the logged (``-L``) baselines, whose undo log
must provide equivalent atomicity. It also demonstrates (as a regression
pin, not a bug) that *unlogged* multi-cell operations — linear's
backward-shift delete — genuinely can corrupt, which is the paper's
motivation for comparing against logged variants only.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import make_table, random_items, small_region

from repro.nvm import SimulatedPowerFailure, random_schedule


def fuzz_one_crash(
    scheme: str,
    *,
    logged: bool,
    n_pre: int,
    op_kind: str,
    at_event: int,
    schedule_seed: int,
    item_seed: int = 7,
) -> None:
    """Build a table, crash mid-operation, recover, check invariants."""
    region = small_region()
    table = make_table(scheme, region, logged=logged)
    items = random_items(n_pre + 1, seed=item_seed)
    pre, extra = items[:n_pre], items[n_pre]
    committed = {k: v for k, v in pre if table.insert(k, v)}

    if op_kind == "insert":
        def op():
            return table.insert(*extra)
        in_flight = extra
    else:
        victim = sorted(committed)[len(committed) // 2]

        def op():
            return table.delete(victim)
        in_flight = (victim, committed[victim])

    region.arm_crash(at_event)
    crashed = False
    try:
        op()
    except SimulatedPowerFailure:
        crashed = True
    region.disarm_crash()
    if not crashed:
        # the op finished before the armed event count: apply it to the
        # model and fall through to the same invariant checks
        if op_kind == "insert":
            committed[in_flight[0]] = in_flight[1]
        else:
            committed.pop(in_flight[0], None)
    region.crash(random_schedule(schedule_seed))
    table.reattach()
    table.recover()

    state = dict(table.items())
    key, value = in_flight
    # atomicity of the in-flight op: present-and-complete or absent
    if key in state:
        assert state[key] == value
        with_op = dict(committed)
        if op_kind == "insert":
            with_op[key] = value
        assert state == with_op or state == committed
    else:
        without_op = dict(committed)
        without_op.pop(key, None)
        assert state == without_op or state == committed
    # all other committed items intact (implied above, kept explicit)
    for k, v in committed.items():
        if k != key:
            assert state.get(k) == v
    # count matches occupancy
    assert table.check_count()
    # queries agree with the inventory
    assert table.query(key) == state.get(key)


EVENTS = st.integers(1, 16)
SCHED = st.integers(0, 2**20)


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(op=st.sampled_from(["insert", "delete"]), at=EVENTS, sched=SCHED)
def test_group_crash_consistency_fuzz(op, at, sched):
    fuzz_one_crash(
        "group", logged=False, n_pre=24, op_kind=op, at_event=at, schedule_seed=sched
    )


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(op=st.sampled_from(["insert", "delete"]), at=st.integers(1, 40), sched=SCHED)
def test_logged_linear_crash_consistency_fuzz(op, at, sched):
    fuzz_one_crash(
        "linear", logged=True, n_pre=24, op_kind=op, at_event=at, schedule_seed=sched
    )


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(op=st.sampled_from(["insert", "delete"]), at=st.integers(1, 40), sched=SCHED)
def test_logged_pfht_crash_consistency_fuzz(op, at, sched):
    fuzz_one_crash(
        "pfht", logged=True, n_pre=24, op_kind=op, at_event=at, schedule_seed=sched
    )


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(op=st.sampled_from(["insert", "delete"]), at=st.integers(1, 40), sched=SCHED)
def test_logged_path_crash_consistency_fuzz(op, at, sched):
    fuzz_one_crash(
        "path", logged=True, n_pre=24, op_kind=op, at_event=at, schedule_seed=sched
    )


def test_unlogged_linear_delete_can_corrupt():
    """Motivation pin: crash mid-backward-shift WITHOUT a log can
    duplicate an item — exactly the inconsistency class the paper's
    Section 2.2 describes. (If this ever stops reproducing, the cost
    model for the -L comparison needs rechecking.)"""
    region = small_region()
    table = make_table("linear", region)
    # build a cluster: 4 keys homed at the same slot
    def key_for_slot(slot, avoid=()):
        i = 0
        while True:
            key = i.to_bytes(8, "little")
            if key not in avoid and table._slot(key) == slot:
                return key
            i += 1

    keys = [key_for_slot(9)]
    for _ in range(3):
        keys.append(key_for_slot(9, avoid=set(keys)))
    for i, k in enumerate(keys):
        table.insert(k, bytes([i]) * 8)

    corrupted = False
    # try crashing at every event index inside the shifting delete
    for at in range(1, 30):
        r2 = small_region()
        t2 = make_table("linear", r2)
        for i, k in enumerate(keys):
            t2.insert(k, bytes([i]) * 8)
        r2.arm_crash(at)
        try:
            t2.delete(keys[0])
            r2.disarm_crash()
            break  # op completed; later indices won't fire mid-op either
        except SimulatedPowerFailure:
            pass
        r2.crash(random_schedule(at))
        t2.reattach()
        t2.recover()  # generic recovery: recount only — can't undo shifts
        inventory = list(k for k, _ in t2.items())
        if len(inventory) != len(set(inventory)):
            corrupted = True  # duplicate item observed
            break
        state = dict(t2.items())
        expected_full = {k: bytes([i]) * 8 for i, k in enumerate(keys)}
        expected_deleted = {k: v for k, v in expected_full.items() if k != keys[0]}
        if state not in (expected_full, expected_deleted):
            corrupted = True
            break
    assert corrupted, "backward-shift delete unexpectedly crash-atomic"


def test_group_many_crashes_in_sequence():
    """Longevity: crash/recover repeatedly while mutating; the table must
    stay coherent through every cycle."""
    region = small_region()
    table = make_table("group", region)
    model = {}
    items = iter(random_items(300, seed=11))
    for cycle in range(15):
        # a few clean ops
        for _ in range(4):
            k, v = next(items)
            if table.insert(k, v):
                model[k] = v
        # one op interrupted mid-flight
        k, v = next(items)
        region.arm_crash(1 + cycle % 7)
        try:
            if table.insert(k, v):
                model[k] = v
            region.disarm_crash()
        except SimulatedPowerFailure:
            region.crash(random_schedule(cycle))
            table.reattach()
            table.recover()
            if table.query(k) == v:
                model[k] = v
        assert dict(table.items()) == model
        assert table.check_count()
