"""Crash-consistency fuzzing for the update operation — extending the
insert/delete fuzz of test_crash_consistency.py to the third mutating
operation."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import make_table, random_items, small_region

from repro.nvm import SimulatedPowerFailure, random_schedule


def fuzz_update_crash(scheme, *, logged, at_event, schedule_seed):
    region = small_region()
    table = make_table(scheme, region, logged=logged)
    committed = {}
    for k, v in random_items(20, seed=13):
        if table.insert(k, v):
            committed[k] = v
    victim = sorted(committed)[7]
    old_value = committed[victim]
    new_value = b"\xAB" * 8

    region.arm_crash(at_event)
    finished = False
    try:
        finished = table.update(victim, new_value)
        region.disarm_crash()
    except SimulatedPowerFailure:
        pass
    region.crash(random_schedule(schedule_seed))
    table.reattach()
    table.recover()

    state = dict(table.items())
    # the victim must hold old or new value — never torn, never vanish
    assert state.get(victim) in (old_value, new_value)
    if finished:
        assert state[victim] == new_value
    for k, v in committed.items():
        if k != victim:
            assert state.get(k) == v
    assert table.check_count()


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(at=st.integers(1, 8), sched=st.integers(0, 2**18))
def test_group_update_crash_fuzz(at, sched):
    """8-byte values: update is a single atomic word — crash-safe with
    no log at all."""
    fuzz_update_crash("group", logged=False, at_event=at, schedule_seed=sched)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(at=st.integers(1, 12), sched=st.integers(0, 2**18))
def test_logged_linear_update_crash_fuzz(at, sched):
    fuzz_update_crash("linear", logged=True, at_event=at, schedule_seed=sched)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(at=st.integers(1, 12), sched=st.integers(0, 2**18))
def test_level_update_crash_fuzz(at, sched):
    """Level hashing inherits the same single-word update atomicity."""
    fuzz_update_crash("level", logged=False, at_event=at, schedule_seed=sched)