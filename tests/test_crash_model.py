"""Tests for crash schedules and NVMRegion.crash() semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm import CacheConfig, NVMRegion, SimConfig
from repro.nvm.crash import (
    FunctionSchedule,
    RecordingSchedule,
    drop_all_schedule,
    persist_all_schedule,
    random_schedule,
)

CFG = SimConfig(cache=CacheConfig(size_bytes=4096, line_size=64, associativity=2))


def region(size=1 << 14) -> NVMRegion:
    return NVMRegion(size, CFG)


def test_drop_all_loses_unflushed_writes():
    r = region()
    r.write(0, b"lostdata")
    report = r.crash(drop_all_schedule())
    assert report.words_dropped >= 1
    assert report.words_persisted == 0
    assert r.peek_persistent(0, 8) == bytes(8)
    # volatile view reset to persistent image
    assert r.peek_volatile(0, 8) == bytes(8)


def test_persist_all_keeps_unflushed_writes():
    r = region()
    r.write(0, b"luckyday")
    report = r.crash(persist_all_schedule())
    assert report.words_persisted >= 1
    assert report.words_dropped == 0
    assert r.peek_persistent(0, 8) == b"luckyday"


def test_flushed_data_survives_any_schedule():
    r = region()
    r.write(0, b"durable!")
    r.persist(0, 8)
    r.crash(drop_all_schedule())
    assert r.peek_persistent(0, 8) == b"durable!"


def test_torn_line_at_word_granularity():
    """A 16-byte write can persist one half and lose the other — the
    paper's Figure 1 case 3 — but never tears inside an 8-byte word."""
    r = region()
    r.write(0, b"A" * 8 + b"B" * 8)
    schedule = FunctionSchedule(lambda line, offs: [o for o in offs if o == 0])
    report = r.crash(schedule)
    assert report.torn
    assert r.peek_persistent(0, 16) == b"A" * 8 + bytes(8)


def test_crash_resets_cache():
    r = region()
    r.write(0, b"x")
    r.crash()
    misses = r.stats.cache_misses
    r.read(0, 1)
    assert r.stats.cache_misses == misses + 1  # cold after reboot


def test_crash_report_counts():
    r = region()
    r.write(0, b"12345678" * 2)  # 2 dirty words, one line
    r.write(128, b"12345678")  # 1 dirty word, another line
    schedule = FunctionSchedule(lambda line, offs: offs[:1])
    report = r.crash(schedule)
    assert report.dirty_lines == 2
    assert report.words_persisted == 2
    assert report.words_dropped == 1


def test_recording_schedule_wraps():
    r = region()
    r.write(0, b"abcdefgh")
    rec = RecordingSchedule(persist_all_schedule())
    r.crash(rec)
    assert len(rec.decisions) == 1
    line, dirty, chosen = rec.decisions[0]
    assert line == 0
    assert dirty == chosen == (0,)


def test_random_schedule_is_seed_deterministic():
    offs = tuple(range(0, 64, 8))
    a = random_schedule(123).words_persisted(0, offs)
    b = random_schedule(123).words_persisted(0, offs)
    assert list(a) == list(b)


def test_random_schedule_probability_extremes():
    offs = tuple(range(0, 64, 8))
    assert list(random_schedule(1, 0.0).words_persisted(0, offs)) == []
    assert list(random_schedule(1, 1.0 - 1e-12).words_persisted(0, offs)) == list(offs)


def test_double_crash_is_stable():
    r = region()
    r.write(0, b"x")
    r.crash()
    before = r.peek_persistent(0, 64)
    report = r.crash()
    assert report.dirty_lines == 0
    assert r.peek_persistent(0, 64) == before


@settings(max_examples=50, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 200), st.binary(min_size=1, max_size=24)),
        min_size=1,
        max_size=20,
    ),
    seed=st.integers(0, 2**16),
)
def test_crash_outcome_is_between_drop_all_and_persist_all(writes, seed):
    """Property: after any crash, each 8-byte word equals either its
    pre-crash persistent value or its pre-crash volatile value."""
    r = region(1024)
    for addr, data in writes:
        r.write(addr, data)
        if addr % 3 == 0:
            r.persist(addr, len(data))
    vol = r.peek_volatile(0, 1024)
    per = r.peek_persistent(0, 1024)
    r.crash(random_schedule(seed))
    out = r.peek_persistent(0, 1024)
    for off in range(0, 1024, 8):
        word = out[off : off + 8]
        assert word in (vol[off : off + 8], per[off : off + 8])
    # reboot invariant: volatile == persistent
    assert r.peek_volatile(0, 1024) == out
