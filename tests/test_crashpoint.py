"""Crash-matrix campaign machinery (:mod:`repro.nvm.crashpoint`) and the
bench-layer cells (:mod:`repro.bench.experiments.crashmatrix`).

Three layers of assurance:

- unit tests of the building blocks (schedules, shadow oracle, trace
  recording);
- end-to-end campaigns over correct schemes must come back clean;
- **mutation tests**: deliberately broken recovery must be *caught*,
  with a minimal failing event prefix — a fault-injection harness that
  cannot detect an injected bug is worthless.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.cache import ResultCache
from repro.bench.engine import Engine
from repro.bench.experiments.crashmatrix import (
    CrashMatrixSpec,
    build_workload,
    make_harness,
    run_crash_matrix_spec,
)
from repro.core import ShardedTable
from repro.core.group_hash import GroupHashTable
from repro.nvm.crashpoint import (
    Op,
    WordSubsetSchedule,
    enumerate_schedules,
    record_trace,
    run_campaign,
    shadow_states,
)
from repro.nvm.memory import SimulatedPowerFailure
from repro.tables.wal import UndoLog

from tests.conftest import random_items


def _campaign(spec: CrashMatrixSpec, **kw):
    """Run one campaign cell and return the raw CampaignResult."""
    prefill, ops = build_workload(spec)
    return run_campaign(
        lambda: make_harness(spec, prefill),
        ops,
        subset_budget=spec.subset_budget,
        seed=spec.seed,
        prefill=prefill,
        **kw,
    )


# ----------------------------------------------------------------------
# building blocks


def test_word_subset_schedule_filters_dirty_words():
    sched = WordSubsetSchedule(frozenset({8, 24}))
    assert list(sched.words_persisted(0, [0, 8, 16, 24])) == [8, 24]
    assert list(WordSubsetSchedule(frozenset()).words_persisted(0, [0, 8])) == []


def test_shadow_states_tracks_prefix_effects():
    ops = [
        Op("insert", b"a", b"1"),
        Op("update", b"a", b"2"),
        Op("delete", b"a"),
    ]
    states = shadow_states(ops)
    assert states == [{}, {b"a": b"1"}, {b"a": b"2"}, {}]


def test_shadow_states_delete_of_prefill_key_stays_deleted():
    # Regression guard: the base state must be threaded *through* the
    # fold — merging it afterwards would resurrect deleted keys.
    base = {b"p": b"0"}
    states = shadow_states([Op("delete", b"p"), Op("insert", b"q", b"1")], base)
    assert states[0] == {b"p": b"0"}
    assert states[1] == {}
    assert states[2] == {b"q": b"1"}


def test_enumerate_schedules_exhaustive_when_budget_allows():
    dirty = (0, 8, 16)
    scheds = enumerate_schedules(dirty, budget=10, seed=0, event_index=1)
    ids = [name for name, _ in scheds]
    assert ids[0] == "drop-all" and ids[1] == "persist-all"
    # 2^3 - 2 = 6 strict subsets, all distinct, all strict
    subsets = {s.persisted for name, s in scheds if name.startswith("subset")}
    assert len(subsets) == 6
    assert all(0 < len(s) < 3 for s in subsets)


def test_enumerate_schedules_respects_budget_and_is_deterministic():
    dirty = tuple(range(0, 80, 8))  # 10 words -> 1022 strict subsets
    a = enumerate_schedules(dirty, budget=5, seed=3, event_index=7)
    b = enumerate_schedules(dirty, budget=5, seed=3, event_index=7)
    assert len(a) == 2 + 5
    assert [(n, s.persisted) for n, s in a] == [(n, s.persisted) for n, s in b]
    # different boundary -> (potentially) different random subsets, but
    # always valid strict subsets
    for _, sched in enumerate_schedules(dirty, budget=5, seed=3, event_index=8):
        assert sched.persisted <= set(dirty)


def test_enumerate_schedules_single_dirty_word_has_no_strict_subsets():
    scheds = enumerate_schedules((8,), budget=4, seed=0, event_index=1)
    assert [name for name, _ in scheds] == ["drop-all", "persist-all"]


def test_record_trace_rejects_a_failing_op():
    spec = CrashMatrixSpec(n_ops=2, total_cells=256)
    prefill, _ = build_workload(spec)
    harness = make_harness(spec, prefill)
    with pytest.raises(RuntimeError, match="did not apply"):
        record_trace(harness, [Op("delete", b"\xff" * 8)])


def test_record_trace_orders_events_and_op_ends():
    spec = CrashMatrixSpec(n_ops=2, total_cells=256)
    prefill, ops = build_workload(spec)
    trace = record_trace(make_harness(spec, prefill), ops)
    assert trace.n_events > 0
    assert trace.op_end_events == sorted(trace.op_end_events)
    assert trace.op_end_events[-1] == trace.n_events
    assert {e.kind for e in trace.events} <= {"write", "flush", "fence"}
    assert trace.completed_ops(trace.n_events) == len(ops)
    assert trace.completed_ops(0) == 0


# ----------------------------------------------------------------------
# end-to-end campaigns over correct implementations


def test_group_campaign_is_clean():
    result = _campaign(CrashMatrixSpec(scheme="group", n_ops=6))
    assert result.ok
    assert result.points == result.trace.n_events + 1
    assert result.replays >= result.points
    assert result.minimal_failing_prefix() is None


def test_logged_campaign_is_clean():
    result = _campaign(CrashMatrixSpec(scheme="linear-L", n_ops=4))
    assert result.ok
    assert result.points == result.trace.n_events + 1


def test_sharded_campaign_is_clean():
    result = _campaign(CrashMatrixSpec(scheme="group", n_shards=4, n_ops=8))
    assert result.ok
    assert result.points > 0


def test_campaign_max_points_truncates():
    result = _campaign(CrashMatrixSpec(scheme="group", n_ops=6), max_points=5)
    assert result.points == 5


def test_spec_executor_round_trips_through_engine_cache(tmp_path):
    spec = CrashMatrixSpec(scheme="group", n_ops=4, subset_budget=1)
    engine = Engine(jobs=1, cache=ResultCache(tmp_path / "cache"))
    first = engine.run_one(spec)
    again = engine.run_one(spec)
    assert engine.cache.hits == 1
    assert first == again
    assert first == run_crash_matrix_spec(spec)
    assert first["violations"] == [] and first["min_failing_prefix"] is None


# ----------------------------------------------------------------------
# mutation tests: injected recovery bugs must be detected


def test_broken_group_recovery_is_caught(monkeypatch):
    # "Recovery" that rebuilds count but skips Algorithm 4's reset of
    # unoccupied cells — the exact step the paper's consistency argument
    # hinges on.
    def count_only(self):
        self._set_count(sum(1 for _ in self.items()))

    monkeypatch.setattr(GroupHashTable, "recover", count_only)
    result = _campaign(CrashMatrixSpec(scheme="group", n_ops=6))
    assert not result.ok
    assert any(v.oracle == "invariant" for v in result.violations)
    prefix = result.minimal_failing_prefix()
    assert prefix is not None
    assert len(prefix) == min(v.event_index for v in result.violations) - 1
    assert len(prefix) < result.trace.n_events


def test_broken_undo_rollback_is_caught(monkeypatch):
    # A rollback that forgets the log entirely: crashes that land inside
    # a logged operation leave the persistent tail nonzero, which the
    # invariant oracle must flag.
    monkeypatch.setattr(UndoLog, "recover", lambda self: None)
    result = _campaign(CrashMatrixSpec(scheme="linear-L", n_ops=4))
    assert not result.ok
    assert any("log tail" in v.detail for v in result.violations)
    assert result.minimal_failing_prefix() is not None


# ----------------------------------------------------------------------
# sharded crash domains: a shard failure is invisible to its neighbours


def test_sharded_crash_leaves_other_shards_untouched():
    table = ShardedTable(512, n_shards=4, seed=9)
    items = random_items(60, seed=9)
    for key, value in items:
        assert table.insert(key, value)

    crash_shard = table.shard_of(items[0][0])
    backend = table.backend.shard(crash_shard)
    # arm so the next operation on the crash shard dies mid-commit
    backend.arm_crash(3)
    victim = next(
        key
        for key, _ in random_items(200, seed=77)
        if table.shard_of(key) == crash_shard and table.query(key) is None
    )
    before = [
        dataclasses.asdict(table.backend.shard(i).stats)
        for i in range(table.n_shards)
    ]
    with pytest.raises(SimulatedPowerFailure):
        table.insert(victim, b"\x01" * 8)
    backend.disarm_crash()

    table.crash(shard=crash_shard)
    table.reattach(shard=crash_shard)
    table.recover(shard=crash_shard)

    # untouched shards saw zero additional simulated events end to end
    for i in range(table.n_shards):
        if i == crash_shard:
            continue
        assert dataclasses.asdict(table.backend.shard(i).stats) == before[i]
    # every committed item survived, on every shard
    recovered = dict(table.items())
    for key, value in items:
        assert recovered[key] == value
    assert victim not in recovered
    for shard_table in table.tables:
        assert shard_table.integrity_violations() == []
