"""Tests for classic cuckoo hashing (the cascade ablation scheme)."""

import pytest

from tests.conftest import random_items, small_region

from repro import CuckooHashTable, PFHTTable


def build(n_cells=256, max_kicks=64, seed=1):
    region = small_region()
    return region, CuckooHashTable(region, n_cells, max_kicks=max_kicks, seed=seed)


def test_basic_crud():
    _, table = build()
    items = random_items(120, seed=1)
    accepted = [(k, v) for k, v in items if table.insert(k, v)]
    assert len(accepted) >= 110  # cuckoo reaches ~50% at 1-cell buckets
    for k, v in accepted:
        assert table.query(k) == v
    for k, _ in accepted[::2]:
        assert table.delete(k)
    assert table.check_count()


def test_eviction_chain_relocates_items():
    region, table = build(n_cells=16)
    accepted = []
    for k, v in random_items(64, seed=2):
        if table.insert(k, v):
            accepted.append((k, v))
    # with 1-cell buckets insertion pressure forces displacement chains;
    # every accepted item must still be reachable afterwards
    for k, v in accepted:
        assert table.query(k) == v


def test_failed_chain_rolls_back():
    """A max_kicks overflow must leave the table exactly as it was."""
    _, table = build(n_cells=16, max_kicks=4)
    accepted = {}
    rejected = 0
    for k, v in random_items(200, seed=3):
        before = dict(table.items())
        if table.insert(k, v):
            accepted[k] = v
        else:
            rejected += 1
            assert dict(table.items()) == before  # untouched on failure
    assert rejected > 0
    assert dict(table.items()) == accepted
    assert table.check_count()


def test_cascades_cost_more_writes_than_pfht():
    """The reason PFHT exists (paper Section 4.1): classic cuckoo's
    eviction chains write many cells per insert; PFHT bounds it at one
    displacement."""
    region_c = small_region()
    cuckoo = CuckooHashTable(region_c, 256, seed=7)
    region_p = small_region()
    pfht = PFHTTable(region_p, 256, seed=7)
    items = random_items(115, seed=4)  # ~45% load: chains start forming
    worst_cuckoo = worst_pfht = 0
    for k, v in items:
        before = region_c.stats.writes
        cuckoo.insert(k, v)
        worst_cuckoo = max(worst_cuckoo, region_c.stats.writes - before)
        before = region_p.stats.writes
        pfht.insert(k, v)
        worst_pfht = max(worst_pfht, region_p.stats.writes - before)
    assert worst_pfht <= 7  # bounded: one displacement
    assert worst_cuckoo > worst_pfht  # unbounded chains observed


def test_max_kicks_validation():
    region = small_region()
    with pytest.raises(ValueError):
        CuckooHashTable(region, 64, max_kicks=0)


def test_first_failure_load_beats_two_choice():
    """Eviction is what 2-choice lacks: with the same two hash
    functions, cuckoo's first insertion failure arrives at a far higher
    load factor (classic threshold ≈ 0.5 vs 2-choice's ≈ 0.1)."""
    from repro import TwoChoiceTable

    def first_failure_load(table):
        for k, v in random_items(600, seed=6):
            if not table.insert(k, v):
                return table.load_factor
        pytest.fail("table never rejected an insert")

    cuckoo_load = first_failure_load(CuckooHashTable(small_region(), 256, seed=5))
    two_load = first_failure_load(TwoChoiceTable(small_region(), 256, seed=5))
    assert cuckoo_load > 2 * two_load
    assert cuckoo_load > 0.35
