"""Tests for incremental segment growth (core/directory.py).

Covers the three claims the directory layer makes:

- **growth**: a full segment splits alone (local rehash, bounded work),
  doubling the directory only when the victim's local depth catches the
  global depth — and the table keeps serving the same contents;
- **publication**: each directory-entry swing is exactly one 8-byte
  atomic write plus its persist (pinned via the backend event hook);
- **crash safety**: a power failure at *every* event boundary inside a
  splitting insert recovers to exactly the pre-insert or post-insert
  state, with every recovered directory entry equal to the old or the
  new pointer — never a torn or mixed mapping that loses items.
"""

from __future__ import annotations

import pytest

from tests.conftest import random_items, small_region

from repro import (
    DirectoryTable,
    GroupHashTable,
    ItemSpec,
    RawBackend,
    SimulatedPowerFailure,
    drop_all_schedule,
)
from repro.obs import MetricsRegistry


def build(n_cells=128, segment_cells=32, *, raw=False, seed=7):
    region = (
        RawBackend(4 << 20, name="dir-test") if raw else small_region()
    )
    table = DirectoryTable(
        region, n_cells, ItemSpec(), segment_cells=segment_cells, seed=seed
    )
    return region, table


def fill(table, n, seed=1):
    model = {}
    for k, v in random_items(n, seed=seed):
        assert table.insert(k, v)
        model[k] = v
    return model


# ----------------------------------------------------------------------
# growth behaviour


def test_starts_at_requested_geometry():
    _, table = build(n_cells=128, segment_cells=32)
    assert table.n_segments == 4
    assert table.global_depth == 2
    assert table.capacity == 128
    assert table.count == 0


def test_inserts_past_initial_capacity_by_splitting():
    _, table = build(n_cells=64, segment_cells=16)
    model = fill(table, 120)  # ~2x the initial capacity
    assert table.splits >= 3
    assert table.doublings >= 1
    assert table.capacity > 64
    assert table.count == len(model)
    assert dict(table.items()) == model
    for k, v in model.items():
        assert table.query(k) == v
    assert table.check_count()
    assert table.integrity_violations() == []


def test_split_work_is_bounded_by_one_segment():
    """Stability invariant: items never move once placed, splits
    excepted — and a split moves at most one segment's worth."""
    _, table = build(n_cells=64, segment_cells=16)
    metrics = MetricsRegistry()
    table.instrument(None, metrics)
    fill(table, 120)
    moved = metrics.histogram("directory.split_moved")
    assert moved.count == table.splits
    # every split rehashed only its victim's residents
    assert moved.max <= 16
    assert moved.total <= table.splits * 16


def test_items_only_move_when_their_segment_splits():
    _, table = build(n_cells=64, segment_cells=16, raw=True)
    placed: dict[bytes, int] = {}
    for k, v in random_items(120, seed=3):
        splits_before = table.splits
        assert table.insert(k, v)
        home = {
            key: table.segment_for(key)._info_addr for key in placed
        }
        if table.splits == splits_before:
            # no split during this insert: nothing may have moved
            assert home == {key: addr for key, addr in placed.items()}
        placed = home
        placed[k] = table.segment_for(k)._info_addr


def test_delete_update_and_routing_after_splits():
    _, table = build(n_cells=64, segment_cells=16)
    model = fill(table, 100)
    keys = sorted(model)
    for k in keys[:20]:
        assert table.delete(k)
        del model[k]
    for k in keys[20:40]:
        assert table.update(k, b"U" * 8)
        model[k] = b"U" * 8
    assert dict(table.items()) == model
    assert table.check_count()


def test_adopt_wraps_existing_table_without_moving_items():
    region = small_region()
    base = GroupHashTable(region, 64, ItemSpec(), group_size=8, seed=7)
    model = {}
    for k, v in random_items(30, seed=9):
        if base.insert(k, v):
            model[k] = v
    table = DirectoryTable.adopt(base)
    assert table.global_depth == 0
    assert table.n_segments == 1
    assert dict(table.items()) == model
    # overflow now splits the adopted table instead of failing
    extra = fill(table, 60, seed=10)
    model.update(extra)
    assert table.splits >= 1
    assert dict(table.items()) == model


def test_doubling_abandons_the_retired_directory_array():
    region, table = build(n_cells=64, segment_cells=16)
    assert region.abandoned_bytes == 0
    fill(table, 120)
    assert table.doublings >= 1
    # every doubling strands exactly the previous 8-byte-per-slot array
    expected = sum(
        8 << (table.global_depth - 1 - i) for i in range(table.doublings)
    )
    assert region.abandoned_bytes == expected


def test_segment_depths_are_consistent_with_directory_sharing():
    _, table = build(n_cells=64, segment_cells=16)
    fill(table, 120)
    depths = table.segment_depths()
    entries = table.directory_entries()
    assert set(depths) == set(entries)
    for addr, depth in depths.items():
        shared = entries.count(addr)
        assert shared == 1 << (table.global_depth - depth)


# ----------------------------------------------------------------------
# publication: the swing is one 8-byte atomic persist


def test_directory_swing_is_exactly_one_8_byte_persist():
    region, table = build(n_cells=64, segment_cells=16, raw=True)
    events: list[tuple[str, int, int]] = []
    stream = iter(random_items(400, seed=11))
    # drive until a split that does NOT double: the directory range is
    # then stable across the op and the swing is the only entry write
    while True:
        k, v = next(stream)
        before_entries = table.directory_entries()
        splits, doublings = table.splits, table.doublings
        base, n = table._dir_base, 1 << table.global_depth
        events.clear()
        region.event_hook = lambda kind, addr, size: events.append(
            (kind, addr, size)
        )
        assert table.insert(k, v)
        region.event_hook = None
        if table.splits > splits and table.doublings == doublings:
            break
    after_entries = table.directory_entries()
    changed = [
        i for i in range(n) if before_entries[i] != after_entries[i]
    ]
    assert changed, "a non-doubling split must redirect at least one entry"
    dir_writes = [
        (addr, size)
        for kind, addr, size in events
        if kind == "write" and base <= addr < base + 8 * n
    ]
    # one 8-byte write per redirected entry and nothing else in the array
    assert sorted(addr for addr, _ in dir_writes) == [
        base + 8 * i for i in sorted(changed)
    ]
    assert all(size == 8 for _, size in dir_writes)
    # each swing is persisted: a flush whose line covers the entry
    for addr, _ in dir_writes:
        idx = events.index(("write", addr, 8))
        assert any(
            kind == "flush" and flush_addr // 64 == addr // 64
            for kind, flush_addr, _ in events[idx + 1 :]
        ), "entry swing was never flushed"
    # all swung entries point at the one new sibling
    assert len({after_entries[i] for i in changed}) == 1


def test_root_swing_on_doubling_is_one_8_byte_persist():
    region, table = build(n_cells=32, segment_cells=16, raw=True)
    root = table._root_word_addr
    events: list[tuple[str, int, int]] = []
    stream = iter(random_items(400, seed=12))
    while table.doublings == 0:
        k, v = next(stream)
        region.event_hook = lambda kind, addr, size: events.append(
            (kind, addr, size)
        )
        assert table.insert(k, v)
        region.event_hook = None
        if table.doublings == 0:
            events.clear()
    root_writes = [
        (kind, addr, size)
        for kind, addr, size in events
        if kind == "write" and addr == root
    ]
    assert root_writes == [("write", root, 8)]


# ----------------------------------------------------------------------
# crash safety across a split


def _split_fixture(seed=7):
    """Deterministically build a fresh table plus the one insert whose
    execution performs at least one split (found by dry run)."""

    def fresh():
        region = RawBackend(4 << 20, name="dir-crash")
        table = DirectoryTable(
            region, 64, ItemSpec(), segment_cells=16, seed=seed
        )
        return region, table

    items = random_items(200, seed=13)
    region, table = fresh()
    for index, (k, v) in enumerate(items):
        splits = table.splits
        assert table.insert(k, v)
        if table.splits > splits:
            return fresh, items[:index], items[index]
    raise AssertionError("no split within 200 inserts")


def test_mid_split_crash_recovers_old_or_new_state():
    fresh, prefix, (key, value) = _split_fixture()

    # uncrashed reference run: count the events inside the splitting
    # insert and snapshot old/new directory states
    region, table = fresh()
    model = {}
    for k, v in prefix:
        table.insert(k, v)
        model[k] = v
    old_depth = table.global_depth
    old_entries = table.directory_entries()
    events = 0
    region.event_hook = lambda *a: None

    def count(kind, addr, size):
        nonlocal events
        events += 1

    region.event_hook = count
    table.insert(key, value)
    region.event_hook = None
    new_depth = table.global_depth
    new_entries = table.directory_entries()
    assert events > 0

    for boundary in range(1, events + 1):
        region, table = fresh()
        for k, v in prefix:
            table.insert(k, v)
        region.arm_crash(boundary)
        with pytest.raises(SimulatedPowerFailure):
            table.insert(key, value)
        region.disarm_crash()
        region.crash(drop_all_schedule())
        table.reattach()
        table.recover()

        recovered = dict(table.items())
        assert recovered in (model, {**model, key: value}), (
            f"boundary {boundary}: recovered neither old nor new contents"
        )
        assert table.check_count()
        assert table.integrity_violations() == []

        # directory oracle: depth is the old or the new one, and every
        # entry is exactly the old or the new pointer for its slot
        depth = table.global_depth
        assert depth in (old_depth, new_depth)
        entries = table.directory_entries()
        for i, entry in enumerate(entries):
            old = old_entries[i % len(old_entries)]
            new = new_entries[i % len(new_entries)] if depth == new_depth else old
            assert entry in (old, new), (
                f"boundary {boundary}: slot {i} points at neither the old "
                "nor the new segment"
            )

        # and the table still serves writes afterwards
        assert table.insert(b"\xfe" * 8, b"p" * 8) or True
        assert table.check_count()


def test_whole_table_crash_and_recovery_after_many_splits():
    region, table = build(n_cells=64, segment_cells=16, raw=True)
    model = fill(table, 150)
    assert table.splits >= 3
    snapshot = dict(table.items())
    assert snapshot == model
    region.crash()
    table.reattach()
    table.recover()
    assert dict(table.items()) == model
    assert table.check_count()
    assert table.integrity_violations() == []


def test_reattach_preserves_routing_identity():
    region, table = build(n_cells=64, segment_cells=16, raw=True)
    model = fill(table, 120)
    before = table.directory_entries()
    region.crash()  # everything persisted above — nothing is lost
    table.reattach()
    assert table.directory_entries() == before
    for k, v in model.items():
        assert table.query(k) == v
