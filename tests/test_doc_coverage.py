"""Documentation coverage: every public item in the library carries a
docstring. This enforces the repo's documentation deliverable
mechanically, so new code can't silently ship undocumented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.split(".")[-1].startswith("_")
]


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(obj) is not module:
            continue  # re-export; documented at its home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_") or not inspect.isfunction(attr):
                    continue
                # inspect.getdoc on the class attribute follows the MRO,
                # so overriding an already-documented method is fine
                if not inspect.getdoc(getattr(obj, attr_name)):
                    missing.append(f"{name}.{attr_name}")
    assert not missing, f"{module_name}: undocumented public items {missing}"


def test_top_level_package_documented():
    assert repro.__doc__ and "ICPP 2018" in repro.__doc__
