"""Edge-case tests across modules: boundaries, degenerate configs,
error paths that the mainline tests don't reach."""

import pytest

from tests.conftest import random_items, small_region

from repro import (
    CacheConfig,
    GroupHashTable,
    ItemSpec,
    LinearProbingTable,
    NVMRegion,
    SimConfig,
    UndoLog,
)
from repro.kv import KVStore
from repro.nvm.wearlevel import WearLevelledRegion


# --------------------------------------------------------------- tables


def test_one_group_table():
    """Degenerate: the whole level is one group."""
    region = small_region()
    table = GroupHashTable(region, 32, group_size=16)
    items = random_items(40, seed=1)
    accepted = [(k, v) for k, v in items if table.insert(k, v)]
    assert len(accepted) >= 16
    for k, v in accepted:
        assert table.query(k) == v


def test_group_size_one():
    region = small_region()
    table = GroupHashTable(region, 64, group_size=1)
    accepted = sum(table.insert(k, v) for k, v in random_items(64, seed=2))
    assert accepted >= 20  # each slot has exactly 1 overflow cell
    assert table.check_count()


def test_single_cell_linear_table():
    region = small_region()
    table = LinearProbingTable(region, 1)
    assert table.insert(b"k" * 8, b"v" * 8)
    assert not table.insert(b"x" * 8, b"v" * 8)
    assert table.query(b"k" * 8) == b"v" * 8
    assert table.delete(b"k" * 8)
    assert table.count == 0


def test_odd_item_spec_widths():
    """Non-multiple-of-8 key/value widths pad the cell but must work."""
    spec = ItemSpec(key_size=5, value_size=3)
    region = small_region()
    table = GroupHashTable(region, 64, spec, group_size=8)
    assert table.insert(b"abcde", b"xyz")
    assert table.query(b"abcde") == b"xyz"
    assert table.delete(b"abcde")


def test_value_size_zero_is_a_set():
    """value_size=0 turns the table into a persistent set."""
    spec = ItemSpec(key_size=8, value_size=0)
    region = small_region()
    table = LinearProbingTable(region, 64, spec)
    assert table.insert(b"member00", b"")
    assert table.query(b"member00") == b""
    assert table.query(b"stranger") is None


def test_zero_length_region_ops():
    region = NVMRegion(64)
    region.flush_range(0, 0)  # no-op, no error
    assert region.read(0, 0) == b""


# ------------------------------------------------------------------ wal


def test_undo_log_survives_repeated_recover_calls():
    region = small_region()
    log = UndoLog(region, record_size=16, capacity=4)
    addr = region.alloc(16)
    region.write(addr, b"old" + bytes(13))
    region.persist(addr, 16)
    log.begin()
    log.record(addr, 16)
    region.write(addr, b"new" + bytes(13))
    region.persist(addr, 16)
    log.recover()
    log.recover()  # idempotent
    assert region.peek_persistent(addr, 3) == b"old"


# ------------------------------------------------------------------- kv


def test_kv_store_single_byte_everything():
    region = NVMRegion(2 << 20)
    store = KVStore(region, n_index_cells=64, group_size=8,
                    slab_bytes_per_class=4096)
    assert store.put(b"k", b"")
    assert store.get(b"k") == b""
    assert store.put(b"k", b"x")  # overwrite with larger
    assert store.get(b"k") == b"x"


def test_kv_store_index_full_returns_false_and_frees_chunk():
    region = NVMRegion(2 << 20)
    store = KVStore(region, n_index_cells=8, group_size=2,
                    slab_bytes_per_class=4096)
    accepted = 0
    for i in range(64):
        if store.put(f"key-{i}".encode(), b"v"):
            accepted += 1
    assert accepted < 64
    # every rejected put must have released its chunk
    assert store.slab.allocated_chunks() == len(store)


def test_kv_key_equal_to_max_sizes():
    region = NVMRegion(4 << 20)
    store = KVStore(region, n_index_cells=64, group_size=8, max_value=256,
                    slab_bytes_per_class=8192)
    big_key = b"K" * 100
    assert store.put(big_key, b"V" * 256)
    assert store.get(big_key) == b"V" * 256


# ------------------------------------------------------------ wearlevel


def test_wearlevel_smallest_viable_region():
    region = WearLevelledRegion(
        128, SimConfig(cache=CacheConfig(size_bytes=1024, associativity=2))
    )
    region.write(0, b"12345678")
    region.persist(0, 8)
    assert region.read(0, 8) == b"12345678"


def test_wearlevel_atomic_write_alignment_enforced():
    region = WearLevelledRegion(
        1024, SimConfig(cache=CacheConfig(size_bytes=1024, associativity=2))
    )
    with pytest.raises(ValueError):
        region.write_atomic_u64(4, 1)
    region.write_atomic_u64(8, 0xFEED)
    assert region.read_u64(8) == 0xFEED


def test_wearlevel_rejects_out_of_logical_range():
    region = WearLevelledRegion(
        256, SimConfig(cache=CacheConfig(size_bytes=1024, associativity=2))
    )
    with pytest.raises(IndexError):
        region.read(250, 16)


# ----------------------------------------------------------- recorder


def test_event_hook_can_be_removed():
    region = small_region()
    events = []
    region.event_hook = lambda *a: events.append(a)
    region.write(0, b"x")
    assert events
    region.event_hook = None
    n = len(events)
    region.write(8, b"y")
    assert len(events) == n
