"""Tests for the benchmark execution engine and its result cache.

Covers the tentpole guarantees: content-addressed caching (hits return
the same results, corrupt entries are recomputed), batch dedup, result
ordering, JSON round-trips for every spec/result kind, and determinism
across worker counts and ``PYTHONHASHSEED`` values.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.bench.cache import ResultCache, code_version, spec_fingerprint
from repro.bench.engine import Engine, execute_spec
from repro.bench.runner import (
    NegativeQuerySpec,
    OpMetrics,
    RecoverySpec,
    RunResult,
    RunSpec,
    UtilizationSpec,
    run_workload,
)

TINY = dict(total_cells=1 << 10, group_size=32, measure_ops=20)


def tiny_spec(scheme="group", **kw) -> RunSpec:
    return RunSpec(scheme=scheme, trace="randomnum", load_factor=0.5, **TINY, **kw)


# ----------------------------------------------------------------------
# fingerprints


def test_code_version_is_stable_hex():
    token = code_version()
    assert token == code_version()
    assert len(token) == 16
    int(token, 16)  # hex-parsable


def test_fingerprint_stable_and_field_sensitive():
    a = tiny_spec()
    assert spec_fingerprint(a) == spec_fingerprint(tiny_spec())
    assert spec_fingerprint(a) != spec_fingerprint(tiny_spec(seed=43))
    assert spec_fingerprint(a) != spec_fingerprint(tiny_spec(scheme="linear"))


def test_fingerprint_distinguishes_spec_kinds():
    util = UtilizationSpec(scheme="group", total_cells=1 << 10, group_size=32)
    assert spec_fingerprint(util) != spec_fingerprint(
        UtilizationSpec(scheme="group", total_cells=1 << 10, group_size=64)
    )
    # same field values under a different kind must not collide
    neg = NegativeQuerySpec(scheme="group", total_cells=1 << 10, group_size=32)
    assert spec_fingerprint(util) != spec_fingerprint(neg)


# ----------------------------------------------------------------------
# result cache


def test_cache_roundtrip_and_counters(tmp_path):
    cache = ResultCache(tmp_path)
    spec = tiny_spec()
    assert cache.get(spec) is None
    cache.put(spec, {"result": {"x": 1}})
    assert cache.get(spec) == {"result": {"x": 1}}
    assert (cache.hits, cache.misses) == (1, 1)


def test_cache_tolerates_corrupt_entry(tmp_path):
    cache = ResultCache(tmp_path)
    spec = tiny_spec()
    cache.put(spec, {"result": 1})
    path = cache._path(spec)
    path.write_text("{not json")
    assert cache.get(spec) is None  # corrupt = miss, never an error


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(tiny_spec(), {"result": 1})
    cache.put(tiny_spec(seed=7), {"result": 2})
    assert cache.clear() == 2
    assert cache.get(tiny_spec()) is None


# ----------------------------------------------------------------------
# serde round-trips


def test_runspec_roundtrip():
    spec = tiny_spec(tech="pcm", flush_invalidates=False)
    assert RunSpec.from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize(
    "spec",
    [
        UtilizationSpec(scheme="path", trace="bagofwords", total_cells=512),
        RecoverySpec(total_cells=2048, load_factor=0.4),
        NegativeQuerySpec(scheme="pfht", measure_ops=17),
    ],
    ids=lambda s: type(s).__name__,
)
def test_aux_spec_roundtrip(spec):
    rebuilt = type(spec).from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rebuilt == spec


def test_run_result_json_roundtrip():
    result = run_workload(tiny_spec())
    encoded = json.dumps(result.to_dict())
    rebuilt = RunResult.from_dict(json.loads(encoded))
    assert rebuilt.spec == result.spec
    assert rebuilt.fill_count == result.fill_count
    assert rebuilt.capacity == result.capacity
    assert rebuilt.fill_failures == result.fill_failures
    assert rebuilt.extras == result.extras
    for phase in ("insert", "query", "delete"):
        assert rebuilt.phase(phase) == result.phase(phase)


def test_op_metrics_roundtrip():
    m = OpMetrics(ops=9, sim_ns=1.5, cache_misses=3, attempted=10)
    assert OpMetrics.from_dict(m.to_dict()) == m
    assert OpMetrics.from_dict(m.to_dict()).shortfall == 1


# ----------------------------------------------------------------------
# engine behaviour


def test_engine_serial_matches_direct_execution():
    spec = tiny_spec()
    direct = run_workload(spec)
    via_engine = Engine(jobs=1, cache=False).run_one(spec)
    assert via_engine.to_dict() == direct.to_dict()


def test_engine_preserves_input_order_and_dedupes(tmp_path):
    specs = [tiny_spec("group"), tiny_spec("linear"), tiny_spec("group")]
    engine = Engine(jobs=1, cache=ResultCache(tmp_path))
    results = engine.run(specs)
    assert [r.spec.scheme for r in results] == ["group", "linear", "group"]
    # the duplicate cell executed (and was cached) exactly once
    assert engine.cache.misses == 2
    assert results[0].to_dict() == results[2].to_dict()


def test_engine_mixed_kind_batch(tmp_path):
    engine = Engine(jobs=1, cache=ResultCache(tmp_path))
    batch = [
        tiny_spec(),
        UtilizationSpec(scheme="group", total_cells=1 << 10, group_size=32),
        RecoverySpec(total_cells=1 << 10, group_size=32),
    ]
    run_res, util_res, rec_res = engine.run(batch)
    assert isinstance(run_res, RunResult)
    assert 0.0 < util_res <= 1.0
    assert rec_res["recovery_ms"] >= 0.0


def test_warm_cache_serves_identical_results(tmp_path):
    specs = [tiny_spec(), tiny_spec(seed=7)]
    cold = Engine(jobs=1, cache=ResultCache(tmp_path)).run(specs)
    warm_engine = Engine(jobs=1, cache=ResultCache(tmp_path))
    warm = warm_engine.run(specs)
    assert warm_engine.cache.misses == 0
    assert warm_engine.cache.hits == 2
    assert [r.to_dict() for r in warm] == [r.to_dict() for r in cold]


def test_engine_rejects_unknown_spec_kind():
    with pytest.raises(TypeError):
        execute_spec(object())


def test_parallel_results_identical_to_serial():
    """--jobs N must not change a single bit of the results (the pool
    only changes *where* a cell executes, never what it computes)."""
    specs = [tiny_spec("group"), tiny_spec("linear"), tiny_spec("pfht")]
    serial = Engine(jobs=1, cache=False).run(specs)
    parallel = Engine(jobs=2, cache=False).run(specs)
    serial_blob = json.dumps([r.to_dict() for r in serial], sort_keys=True)
    parallel_blob = json.dumps([r.to_dict() for r in parallel], sort_keys=True)
    assert serial_blob == parallel_blob


# ----------------------------------------------------------------------
# determinism across interpreter hash randomisation

_HASHSEED_PROG = """
import json
from repro.bench.engine import Engine
from repro.bench.runner import RunSpec
spec = RunSpec(scheme="group", trace="randomnum", load_factor=0.5,
               total_cells=1 << 10, group_size=32, measure_ops=20)
result = Engine(jobs=1, cache=False).run_one(spec)
print(json.dumps(result.to_dict(), sort_keys=True))
"""


def _run_with_hashseed(seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=seed)
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    out = subprocess.run(
        [sys.executable, "-c", _HASHSEED_PROG],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return out.stdout


def test_results_independent_of_pythonhashseed():
    """Workload results must not leak builtin-hash iteration order: the
    same spec under different PYTHONHASHSEED values is byte-identical."""
    outputs = {_run_with_hashseed(seed) for seed in ("0", "1", "12345")}
    assert len(outputs) == 1
