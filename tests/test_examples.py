"""Smoke tests: every example in examples/ must run to completion.

Examples are documentation that executes; these tests keep them from
rotting. Each example's own asserts run as part of the script, so a
passing run is also a correctness check of the scenario it narrates.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    # examples size their workloads for interactive runs; shrink any
    # module-level knobs they expose so CI stays fast
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"
    assert "Traceback" not in out


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "kv_cache_server",
        "dedup_index",
        "figure1_inconsistencies",
        "object_store",
        "endurance_analysis",
    } <= names
