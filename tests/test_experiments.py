"""Smoke + structure tests for the experiment drivers and CLI.

The heavy shape assertions live in benchmarks/; here we verify the
drivers produce well-formed structured data and readable reports at the
tiny scale, and that the CLI wires everything together.
"""

import pytest

from repro.bench.config import SCALES
from repro.bench.experiments import fig2, fig5, fig6, fig7, fig8, table3
from repro.bench.experiments.latency_matrix import clear_cache, collect_matrix
from repro.bench.report import format_table, hrule

TINY = SCALES["tiny"]
SEED = 7


@pytest.fixture(scope="module")
def matrix():
    clear_cache()
    return collect_matrix(TINY, SEED)


def test_matrix_covers_full_grid(matrix):
    assert len(matrix) == 3 * 2 * 7  # traces x load factors x schemes
    for result in matrix.values():
        assert result.insert.ops > 0


def test_matrix_is_memoised():
    a = collect_matrix(TINY, SEED)
    b = collect_matrix(TINY, SEED)
    assert a is b


def test_fig2_structure(matrix):
    result = fig2.run(TINY, seed=SEED)
    assert result.name == "fig2"
    assert set(result.data["latency"]) == {
        "linear", "linear-L", "pfht", "pfht-L", "path", "path-L",
    }
    assert result.data["latency_ratio"] > 1
    assert "Figure 2(a)" in result.text and "Figure 2(b)" in result.text


def test_fig5_structure(matrix):
    result = fig5.run(TINY, seed=SEED)
    assert set(result.data) == {"randomnum", "bagofwords", "fingerprint"}
    assert set(result.data["randomnum"]) == {0.5, 0.75}
    cell = result.data["randomnum"][0.5]["group"]
    assert set(cell) == {"insert", "query", "delete"}
    assert result.text.count("Figure 5") == 6  # 3 traces x 2 lfs


def test_fig6_structure(matrix):
    result = fig6.run(TINY, seed=SEED)
    assert result.data["randomnum"][0.5]["path"]["query"] >= 0
    assert "misses/request" in result.text


def test_fig7_structure():
    result = fig7.run(TINY, seed=SEED)
    assert set(result.data) == {"pfht", "path", "group"}
    for scheme, values in result.data.items():
        for trace, util in values.items():
            assert 0 < util <= 1, (scheme, trace, util)


def test_fig8_structure():
    result = fig8.run(TINY, seed=SEED)
    assert set(result.data) == set(TINY.group_sizes)
    for gs, payload in result.data.items():
        assert 0 < payload["utilization"] <= 1
        assert payload["latency"]["insert"] > 0


def test_table3_structure():
    result = table3.run(TINY, seed=SEED)
    assert set(result.data) == set(TINY.recovery_cells)
    for cells, row in result.data.items():
        assert row["recovery_ms"] > 0
        assert row["percentage"] < 100


# ----------------------------------------------------------- formatting


def test_format_table_alignment():
    text = format_table(
        "T", ("a", "b"), [("row1", {"a": 1.0, "b": 2.5}), ("r2", {"a": 3.0, "b": 4.0})]
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "row1" in lines[2] and "1.0" in lines[2]
    # columns align: same position of 'b' values
    assert lines[2].index("2.5") == lines[3].index("4.0")


def test_format_table_missing_value_is_nan():
    text = format_table("T", ("a",), [("r", {})])
    assert "nan" in text


def test_hrule():
    assert hrule("X").startswith("\n== X ")


# ------------------------------------------------------------------ CLI


def test_cli_runs_one_experiment(capsys):
    from repro.bench.__main__ import main

    rc = main(["fig2", "--scale", "tiny", "--seed", "7"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 2(a)" in out
    assert "logging slowdown" in out
    assert "simulated ns" in out


def test_cli_rejects_unknown_experiment():
    from repro.bench.__main__ import main

    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_rejects_unknown_scale():
    from repro.bench.__main__ import main

    with pytest.raises(SystemExit):
        main(["fig2", "--scale", "galactic"])
