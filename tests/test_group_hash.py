"""Scheme-specific tests for group hashing (Algorithms 1-3, group
sharing, the 8-byte atomic commit discipline)."""

import pytest

from tests.conftest import random_items, small_region

from repro import GroupHashTable, ItemSpec, UndoLog


def build(n_cells=512, group_size=32, seed=1, **kw):
    region = small_region()
    return region, GroupHashTable(
        region, n_cells, group_size=group_size, seed=seed, **kw
    )


def key_for_slot(table, slot, avoid=()):
    i = 0
    while True:
        key = i.to_bytes(8, "little")
        if key not in avoid and table.layout.slot(table._hashes[0](key)) == slot:
            return key
        i += 1


# ------------------------------------------------------------ structure


def test_two_equal_levels():
    _, table = build(512, 32)
    assert table.layout.n_cells_level == 256
    assert table.capacity == 512


def test_constructor_validation():
    region = small_region()
    with pytest.raises(ValueError):
        GroupHashTable(region, 511)  # odd
    with pytest.raises(ValueError):
        GroupHashTable(region, 512, group_size=100)  # doesn't divide 256
    with pytest.raises(ValueError):
        GroupHashTable(region, 512, group_size=32, n_hash_functions=0)


def test_rejects_undo_log():
    region = small_region()
    log = UndoLog(region, record_size=32, capacity=8)
    with pytest.raises(ValueError):
        GroupHashTable(region, 512, log=log)


def test_global_info_block_contents():
    region, table = build(512, 32)
    # Figure 4: count | group_size | table_size live in the info block
    assert region.read_u64(table._info_addr + 24) == 32
    assert region.read_u64(table._info_addr + 32) == 256


# ----------------------------------------------------------- algorithms


def test_insert_prefers_level1_home_cell():
    region, table = build()
    key = key_for_slot(table, 17)
    table.insert(key, b"v" * 8)
    addr = table.layout.tab1_addr(table.codec, 17)
    assert table.codec.read_key(region, addr) == key


def test_collision_spills_into_matched_level2_group():
    region, table = build(512, 32)
    k1 = key_for_slot(table, 40)
    k2 = key_for_slot(table, 40, avoid={k1})
    table.insert(k1, b"a" * 8)
    table.insert(k2, b"b" * 8)
    # k2 must be in level-2 group 40//32 = 1, at its first empty cell
    group_start = table.layout.group_start(40)
    assert group_start == 32
    addr = table.layout.tab2_addr(table.codec, 32)
    assert table.codec.read_key(region, addr) == k2
    assert table.query(k2) == b"b" * 8


def test_level2_fills_in_scan_order():
    region, table = build(512, 32)
    base = key_for_slot(table, 70)
    spill = []
    avoid = {base}
    for _ in range(3):
        k = key_for_slot(table, 70, avoid=avoid)
        avoid.add(k)
        spill.append(k)
    table.insert(base, b"0" * 8)
    for i, k in enumerate(spill):
        table.insert(k, bytes([i + 1]) * 8)
    start = table.layout.group_start(70)
    for i, k in enumerate(spill):
        addr = table.layout.tab2_addr(table.codec, start + i)
        assert table.codec.read_key(region, addr) == k


def test_group_full_insert_fails():
    _, table = build(128, 8)  # level = 64, groups of 8
    target_slot = 9
    keys = [key_for_slot(table, target_slot)]
    # same slot → same group; 1 (level1) + 8 (group) fit, 10th fails
    while len(keys) < 10:
        keys.append(key_for_slot(table, target_slot, avoid=set(keys)))
    results = [table.insert(k, b"v" * 8) for k in keys]
    assert results == [True] * 9 + [False]


def test_overflow_only_into_own_group():
    """Group sharing is strict: a full group fails even when other
    groups are empty (the utilization price measured in Figure 7)."""
    _, table = build(128, 8)
    keys = []
    while len(keys) < 10:
        keys.append(key_for_slot(table, 9, avoid=set(keys)))
    for k in keys[:9]:
        table.insert(k, b"v" * 8)
    assert not table.insert(keys[9], b"v" * 8)
    # a key homed in a different group still inserts fine
    other = key_for_slot(table, 50, avoid=set(keys))
    assert table.insert(other, b"v" * 8)


def test_delete_from_level1_and_level2():
    _, table = build()
    k1 = key_for_slot(table, 100)
    k2 = key_for_slot(table, 100, avoid={k1})
    table.insert(k1, b"a" * 8)
    table.insert(k2, b"b" * 8)
    assert table.delete(k2)  # lives in level 2
    assert table.query(k2) is None
    assert table.query(k1) == b"a" * 8
    assert table.delete(k1)  # lives in level 1
    assert table.count == 0


def test_delete_clears_kv_field():
    """Algorithm 3 + recovery contract: a deleted cell's key/value field
    is zeroed, so recovery can distinguish garbage from clean cells."""
    region, table = build()
    key = key_for_slot(table, 5)
    table.insert(key, b"v" * 8)
    addr = table.layout.tab1_addr(table.codec, 5)
    table.delete(key)
    assert region.peek_volatile(addr + 8, 16) == bytes(16)


def test_commit_ordering_insert():
    """Algorithm 1's persist ordering: the kv field must be persistent
    *before* the bitmap flips. We check the weaker observable: right
    after insert, both are persistent and the cell is committed."""
    region, table = build()
    key = key_for_slot(table, 8)
    table.insert(key, b"v" * 8)
    addr = table.layout.tab1_addr(table.codec, 8)
    assert region.peek_persistent(addr + 8, 8) == key
    assert region.peek_persistent(addr, 1)[0] & 1 == 1


def test_level_occupancy_diagnostic():
    _, table = build(512, 32)
    for k, v in random_items(100, seed=2):
        table.insert(k, v)
    l1, l2 = table.level_occupancy()
    assert l1 + l2 == 100
    assert l1 > l2  # level 1 absorbs most items below half-full


def test_group_fill_diagnostic():
    _, table = build(128, 8)
    keys = []
    while len(keys) < 4:
        keys.append(key_for_slot(table, 9, avoid=set(keys)))
    for k in keys:
        table.insert(k, b"v" * 8)
    assert table.group_fill(1) == 3  # 1 in level 1, 3 spilled to group 1


def test_two_hash_mode_improves_reach():
    """n_hash_functions=2 (Section 4.4 ablation): a key whose first
    group is full can still land via its second hash."""
    _, one = build(128, 8, n_hash_functions=1)
    _, two = build(128, 8, n_hash_functions=2)
    keys = []
    while len(keys) < 12:
        keys.append(key_for_slot(one, 9, avoid=set(keys)))
    accepted_one = sum(one.insert(k, b"v" * 8) for k in keys)
    accepted_two = sum(two.insert(k, b"v" * 8) for k in keys)
    assert accepted_two >= accepted_one


def test_wide_items():
    region = small_region()
    table = GroupHashTable(region, 256, ItemSpec(16, 16), group_size=16)
    items = random_items(100, seed=3, spec=ItemSpec(16, 16))
    accepted = [(k, v) for k, v in items if table.insert(k, v)]
    assert len(accepted) >= 90
    for k, v in accepted:
        assert table.query(k) == v


def test_insert_flush_budget():
    """The headline write-efficiency claim: an uncontended insert costs
    exactly 3 flushes (kv, bitmap, count) — no log writes, no CoW."""
    region, table = build()
    key = key_for_slot(table, 33)
    flushes = region.stats.flushes
    table.insert(key, b"v" * 8)
    assert region.stats.flushes - flushes == 3
