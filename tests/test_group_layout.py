"""Unit tests for GroupLayout (Figure 3/4 address map)."""

import pytest

from repro import CellCodec, GroupLayout, ItemSpec


def layout(n=256, g=32):
    return GroupLayout(n_cells_level=n, group_size=g, tab1_base=0, tab2_base=10_000)


def test_group_count_and_totals():
    lay = layout(256, 32)
    assert lay.n_groups == 8
    assert lay.total_cells == 512


def test_group_size_must_divide_level():
    with pytest.raises(ValueError):
        GroupLayout(n_cells_level=100, group_size=32, tab1_base=0, tab2_base=1)


def test_rejects_nonpositive():
    with pytest.raises(ValueError):
        GroupLayout(n_cells_level=0, group_size=1, tab1_base=0, tab2_base=1)
    with pytest.raises(ValueError):
        GroupLayout(n_cells_level=8, group_size=0, tab1_base=0, tab2_base=1)


def test_slot_wraps_hash():
    lay = layout(256, 32)
    assert lay.slot(256) == 0
    assert lay.slot(300) == 44


def test_group_start_matches_paper_formula():
    """j = k - k % group_size (Algorithm 1, line 13)."""
    lay = layout(256, 32)
    for k in (0, 1, 31, 32, 63, 255):
        assert lay.group_start(k) == k - k % 32
        assert lay.group_of(k) == k // 32


def test_matched_groups_have_same_number():
    """Figure 3: level-1 group g overflows into level-2 group g."""
    lay = layout(256, 4)
    # paper example: cell index 5 → level-2 cells [4, 7]
    k = 5
    start = lay.group_start(k)
    assert start == 4
    assert [start + i for i in range(4)] == [4, 5, 6, 7]


def test_addresses_are_contiguous_within_group():
    lay = layout(256, 32)
    codec = CellCodec(ItemSpec())
    addrs = [lay.tab2_addr(codec, i) for i in range(32)]
    deltas = {b - a for a, b in zip(addrs, addrs[1:])}
    assert deltas == {codec.cell_size}


def test_tab1_tab2_disjoint():
    lay = layout(256, 32)
    codec = CellCodec(ItemSpec())
    end_tab1 = lay.tab1_addr(codec, 255) + codec.cell_size
    assert end_tab1 <= lay.tab2_addr(codec, 0)
